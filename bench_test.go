// Benchmarks regenerating each figure of the FrogWild paper's
// evaluation (Section 3), as indexed in DESIGN.md. Each BenchmarkFigN*
// target runs the corresponding experiment at the tiny scale and
// reports the figure's key quantity as a custom metric, so
// `go test -bench=Fig -benchmem` both times the reproduction and
// surfaces its headline numbers. The Benchmark*Op targets measure the
// core per-operation costs of the engine and algorithms.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/harness"
	"repro/internal/serve"
)

// benchEnv caches one tiny-scale experiment environment across
// benchmarks (workload generation and exact PageRank are setup, not the
// thing being measured).
var benchEnv = sync.OnceValue(func() *harness.Env {
	return harness.NewEnv(harness.ScaleTiny, 20240613)
})

func runFig(b *testing.B, fig int) []*harness.Table {
	b.Helper()
	env := benchEnv()
	var tables []*harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = harness.Figure(env, fig)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// lastColRatio reports max/min of a column, a scale-free shape number.
func colRatio(tab *harness.Table, col string) float64 {
	vals, ok := tab.Column(col)
	if !ok || len(vals) == 0 {
		return 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}

// BenchmarkFig1TimePerIter regenerates Figure 1(a)–(d): per-iteration
// time, total time, network and CPU versus cluster size. The reported
// metric is the GL-PR-exact to FrogWild-ps=1 network ratio at 24
// machines (the paper reports ≈1000x against ~800x-smaller FrogWild
// messages; shape, not absolute, is the target).
func BenchmarkFig1ClusterSweep(b *testing.B) {
	tables := runFig(b, 1)
	netTab := tables[2] // fig1c
	gl, _ := netTab.Column("GLPR exact")
	fw, _ := netTab.Column("FW ps=1")
	if len(gl) > 0 && fw[len(fw)-1] > 0 {
		b.ReportMetric(gl[len(gl)-1]/fw[len(fw)-1], "netratio/glpr-vs-fw")
	}
}

// BenchmarkFig2AccuracyVsK regenerates Figure 2(a)/(b) and reports
// FrogWild ps=1 captured mass at the first k row.
func BenchmarkFig2AccuracyVsK(b *testing.B) {
	tables := runFig(b, 2)
	if vals, ok := tables[0].Column("FW ps=1"); ok && len(vals) > 0 {
		b.ReportMetric(vals[0], "mass/fw-ps1-k30")
	}
}

// BenchmarkFig3Tradeoff regenerates Figures 3(a)/(b) and 4 (Twitter
// trade-off) and reports the spread of total times across
// configurations.
func BenchmarkFig3Tradeoff(b *testing.B) {
	tables := runFig(b, 3)
	b.ReportMetric(colRatio(tables[0], "total time (s)"), "timespread/max-over-min")
}

// BenchmarkFig5Sparsify regenerates Figure 5 (FrogWild vs uniform
// sparsification).
func BenchmarkFig5Sparsify(b *testing.B) {
	tables := runFig(b, 5)
	b.ReportMetric(colRatio(tables[0], "network bytes"), "netspread/max-over-min")
}

// BenchmarkFig6WalkersIterations regenerates Figure 6(a)–(d)
// (LiveJournal accuracy/time vs walkers and iterations).
func BenchmarkFig6WalkersIterations(b *testing.B) {
	tables := runFig(b, 6)
	if vals, ok := tables[0].Column("FW ps=1"); ok && len(vals) > 0 {
		b.ReportMetric(vals[len(vals)-1], "mass/fw-ps1-maxwalkers")
	}
}

// BenchmarkFig7TradeoffLJ regenerates Figure 7 (LiveJournal trade-off).
func BenchmarkFig7TradeoffLJ(b *testing.B) {
	tables := runFig(b, 7)
	b.ReportMetric(colRatio(tables[0], "network bytes"), "netspread/max-over-min")
}

// BenchmarkFig8NetworkVsWalkers regenerates Figure 8 and reports the
// network growth ratio across the walker sweep (ideal: the 3.5x walker
// ratio).
func BenchmarkFig8NetworkVsWalkers(b *testing.B) {
	tables := runFig(b, 8)
	b.ReportMetric(colRatio(tables[0], "network bytes"), "netratio/1400k-over-400k")
}

// --- Core operation benchmarks ---

var benchGraph = sync.OnceValue(func() *repro.Graph {
	g, err := repro.TwitterLikeGraph(10000, 7)
	if err != nil {
		panic(err)
	}
	return g
})

var benchLayout = sync.OnceValue(func() *repro.Layout {
	lay, err := repro.NewLayout(benchGraph(), 16, nil, 7)
	if err != nil {
		panic(err)
	}
	return lay
})

// reportEngineMetrics attaches the bench job's tracked engine numbers:
// apply throughput (vertex/s, from the vertex ops summed over every
// timed iteration — runs seeded differently do different work) and the
// simulated-over-wall time ratio of the final run.
func reportEngineMetrics(b *testing.B, vertexOps int64, last *repro.RunStats) {
	b.Helper()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(vertexOps)/sec, "vertex/s")
	}
	if last.WallSeconds > 0 {
		b.ReportMetric(last.SimSeconds/last.WallSeconds, "simvswall")
	}
}

// BenchmarkFrogWildRun measures a complete FrogWild run (4 iterations,
// n/6 walkers, 16 machines) excluding ingress.
func BenchmarkFrogWildRun(b *testing.B) {
	g := benchGraph()
	lay := benchLayout()
	var last *repro.FrogWildResult
	var vertexOps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
			Walkers: g.NumVertices() / 6, Iterations: 4, PS: 0.7, Layout: lay, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
		vertexOps += res.Stats.Net.VertexOps
	}
	reportEngineMetrics(b, vertexOps, last.Stats)
}

// BenchmarkGraphLabPRIteration measures one synchronous PageRank
// superstep on the engine (per-iteration cost, the paper's Figure 1(a)
// baseline quantity).
func BenchmarkGraphLabPRIteration(b *testing.B) {
	g := benchGraph()
	lay := benchLayout()
	var last *repro.GraphLabPRResult
	var vertexOps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{
			Layout: lay, Iterations: 1, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
		vertexOps += res.Stats.Net.VertexOps
	}
	reportEngineMetrics(b, vertexOps, last.Stats)
}

// BenchmarkExactPageRank measures the serial ground-truth solver.
func BenchmarkExactPageRank(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.ExactPageRank(g, repro.PageRankOptions{Tolerance: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialFrogWalk measures the single-machine reference
// implementation (no engine overhead): the baseline for judging the
// simulator's bookkeeping cost.
func BenchmarkSerialFrogWalk(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.SerialFrogWalk(g, g.NumVertices()/6, 4, repro.DefaultTeleport, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGraph50k is the graph for the serial-vs-parallel speedup
// benchmarks: big enough (~1.5M edges) that per-iteration work, not
// scheduling overhead, dominates.
var benchGraph50k = sync.OnceValue(func() *repro.Graph {
	g, err := repro.TwitterLikeGraph(50000, 7)
	if err != nil {
		panic(err)
	}
	return g
})

// timeOnce measures fn once; used to cache each parallel benchmark's
// untimed Workers=1 baseline so it is not re-run every time the
// framework re-invokes the benchmark with a larger b.N.
func timeOnce(fn func() error) func() time.Duration {
	return sync.OnceValue(func() time.Duration {
		start := time.Now()
		if err := fn(); err != nil {
			panic(err)
		}
		return time.Since(start)
	})
}

// reportSpeedup attaches the serial-over-parallel throughput ratio.
func reportSpeedup(b *testing.B, serial time.Duration) {
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(serial.Seconds()/perOp, "speedup/serial-vs-parallel")
	}
}

var serialPageRankDur = timeOnce(func() error {
	_, err := repro.ExactPageRank(benchGraph50k(), repro.PageRankOptions{Tolerance: 1e-9, Workers: 1})
	return err
})

var serialFrogWalkDur = timeOnce(func() error {
	g := benchGraph50k()
	_, err := repro.SerialFrogWalkParallel(g, g.NumVertices()/6, 4, repro.DefaultTeleport, 1, 1)
	return err
})

var serialMonteCarloDur = timeOnce(func() error {
	_, err := repro.RunMonteCarloPR(benchGraph50k(), repro.MonteCarloConfig{Seed: 1, Workers: 1})
	return err
})

// BenchmarkExactPageRankParallel measures the multicore solver on the
// 50k-vertex twitter-like graph and reports its speedup over the same
// solve at Workers=1. Results are bit-identical for any worker count,
// so this measures pure throughput.
func BenchmarkExactPageRankParallel(b *testing.B) {
	g := benchGraph50k()
	serialDur := serialPageRankDur()
	par := repro.PageRankOptions{Tolerance: 1e-9} // Workers 0 = all cores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.ExactPageRank(g, par); err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedup(b, serialDur)
}

// BenchmarkSerialFrogWalkParallel measures the sharded single-machine
// frog walk on the 50k-vertex graph and reports its speedup over one
// worker.
func BenchmarkSerialFrogWalkParallel(b *testing.B) {
	g := benchGraph50k()
	walkers := g.NumVertices() / 6
	serialDur := serialFrogWalkDur()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.SerialFrogWalkParallel(g, walkers, 4, repro.DefaultTeleport, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedup(b, serialDur)
}

// BenchmarkMonteCarloParallel measures the sharded Monte-Carlo baseline
// (R=1 walker per vertex) on the 50k-vertex graph with speedup over one
// worker, reporting walk throughput as vertex/s (one walk starts at
// every vertex).
func BenchmarkMonteCarloParallel(b *testing.B) {
	g := benchGraph50k()
	serialDur := serialMonteCarloDur()
	par := repro.MonteCarloConfig{Seed: 1}
	var walks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.RunMonteCarloPR(g, par)
		if err != nil {
			b.Fatal(err)
		}
		walks += int64(res.Walks)
	}
	reportSpeedup(b, serialDur)
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(walks)/sec, "vertex/s")
	}
}

// benchLayout50k4 partitions the 50k graph over 4 machines — few enough
// that multi-core CI runners have cores left over for per-machine
// workers, which is what BenchmarkFrogWildEngineWorkers measures.
var benchLayout50k4 = sync.OnceValue(func() *repro.Layout {
	lay, err := repro.NewLayout(benchGraph50k(), 4, nil, 7)
	if err != nil {
		panic(err)
	}
	return lay
})

// engineFrogWild runs the workers-sweep FrogWild configuration: a full
// walker-per-vertex load so apply/scatter dominate engine overhead.
func engineFrogWild(workers int) (*repro.FrogWildResult, error) {
	g := benchGraph50k()
	return repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers: g.NumVertices(), Iterations: 4, PS: 0.7,
		Layout: benchLayout50k4(), Seed: 1, WorkersPerMachine: workers,
	})
}

var serialEngineFrogWildDur = timeOnce(func() error {
	_, err := engineFrogWild(1)
	return err
})

// BenchmarkFrogWildEngineWorkers measures the engine's intra-machine
// sharding on the 50k twitter-like graph: the same bit-identical run at
// increasing WorkersPerMachine, each reporting its speedup over the
// fully serial per-machine engine (workers=1). On a single-core runner
// the ratio stays ≈1; with spare cores it rises.
func BenchmarkFrogWildEngineWorkers(b *testing.B) {
	benchLayout50k4() // build the layout outside the timed baseline
	serial := serialEngineFrogWildDur()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var last *repro.FrogWildResult
			var vertexOps int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := engineFrogWild(workers)
				if err != nil {
					b.Fatal(err)
				}
				last = res
				vertexOps += res.Stats.Net.VertexOps
			}
			reportSpeedup(b, serial)
			reportEngineMetrics(b, vertexOps, last.Stats)
		})
	}
}

// --- Serving-path benchmarks (internal/serve) ---

// benchServe caches one query service over the 50k twitter-like graph:
// a FrogWild snapshot published to a store, served by the HTTP API over
// a real listener. Building it is setup, not the thing measured.
var benchServe = sync.OnceValue(func() *httptest.Server {
	snap, err := repro.NewSnapshot(benchGraph50k(), repro.SnapshotConfig{
		Engine:   repro.ServeEngineFrogWild,
		Machines: 4,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	store := serve.NewStore()
	store.Publish(snap)
	srv := serve.NewServer(store, serve.ServerOptions{})
	return httptest.NewServer(srv.Handler())
})

// benchServeGet issues one GET and drains the body (keep-alive reuse).
// It reports failures with b.Error — not b.Fatal, which must not be
// called from RunParallel worker goroutines — and returns false so the
// worker can stop.
func benchServeGet(b *testing.B, client *http.Client, url string) bool {
	resp, err := client.Get(url)
	if err != nil {
		b.Error(err)
		return false
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		resp.Body.Close()
		b.Error(err)
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Errorf("status %d", resp.StatusCode)
		return false
	}
	return true
}

// BenchmarkServeTopK measures end-to-end /v1/topk throughput against
// the 50k-vertex twitter-like graph, over real HTTP with concurrent
// clients, reporting queries/s. The "hot" case repeats one k (per-k
// body cache path, the expected production shape); "sweep" cycles k
// over 1..100 (selection + marshal per distinct k per epoch, then
// cached).
func BenchmarkServeTopK(b *testing.B) {
	ts := benchServe()
	b.Run("hot-k20", func(b *testing.B) {
		url := ts.URL + "/v1/topk?k=20"
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			client := &http.Client{}
			for pb.Next() {
				if !benchServeGet(b, client, url) {
					return
				}
			}
		})
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "queries/s")
		}
	})
	b.Run("sweep-k1-100", func(b *testing.B) {
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			client := &http.Client{}
			for pb.Next() {
				k := int(next.Add(1)%100) + 1
				if !benchServeGet(b, client, fmt.Sprintf("%s/v1/topk?k=%d", ts.URL, k)) {
					return
				}
			}
		})
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "queries/s")
		}
	})
}

// BenchmarkServeRank measures the uncached point-query endpoint
// (marshal per request, no per-k cache to hide behind).
func BenchmarkServeRank(b *testing.B) {
	ts := benchServe()
	var next atomic.Int64
	n := benchGraph50k().NumVertices()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			v := int(next.Add(1)) % n
			if !benchServeGet(b, client, fmt.Sprintf("%s/v1/rank?vertex=%d", ts.URL, v)) {
				return
			}
		}
	})
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "queries/s")
	}
}

// benchLoadHandler caches the in-process serving handler over the 50k
// graph for the load-generator benchmark (snapshot build is setup).
var benchLoadHandler = sync.OnceValue(func() http.Handler {
	handler, err := repro.NewServerHandler(benchGraph50k(), repro.SnapshotConfig{
		Engine:   repro.ServeEngineFrogWild,
		Machines: 4,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	return handler
})

// BenchmarkLoadGenServe drives the serving handler with the
// deterministic Zipf-skewed mixed workload — the same shape the CI
// perf gate runs via cmd/prload — and reports aggregate queries/s plus
// the p99 of the mix. One b.N iteration is one complete measured run
// (2000 queries after 200 warmup), so -benchtime=1x in CI costs one
// run.
func BenchmarkLoadGenServe(b *testing.B) {
	handler := benchLoadHandler()
	cfg := repro.LoadConfig{
		Seed:        1,
		Queries:     2000,
		Warmup:      200,
		Concurrency: 8,
		Vertices:    benchGraph50k().NumVertices(),
	}
	var last *repro.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := repro.RunLoadTest(context.Background(), cfg, handler)
		if err != nil {
			b.Fatal(err)
		}
		if total := rep.Total(); total.Errors > 0 {
			b.Fatalf("%d load-test queries failed", total.Errors)
		}
		last = rep
	}
	total := last.Total()
	b.ReportMetric(last.QueriesPerSecond(), "queries/s")
	b.ReportMetric(float64(total.Hist.QuantileDuration(0.99))/float64(time.Millisecond), "p99/ms")
}

// BenchmarkSnapshotTopK measures the in-process answer path (index
// prefix copy) without HTTP, the serving layer's floor.
func BenchmarkSnapshotTopK(b *testing.B) {
	snap, err := repro.NewSnapshot(benchGraph50k(), repro.SnapshotConfig{
		Engine:   repro.ServeEngineFrogWild,
		Machines: 4,
		Seed:     7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := snap.TopK(20); len(got) != 20 {
			b.Fatal("short answer")
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "queries/s")
	}
}

// --- Storage-backend benchmarks (PR 5: gstore + snapshot persistence) ---

// benchGraphFiles writes the 50k benchmark graph once in every on-disk
// format the loaders speak, so the open benchmarks measure loads, not
// setup.
var benchGraphFiles = sync.OnceValue(func() map[string]string {
	g := benchGraph50k()
	dir, err := os.MkdirTemp("", "bench-gstore")
	if err != nil {
		panic(err)
	}
	files := map[string]string{
		"edgelist": filepath.Join(dir, "g.txt"),
		"binary":   filepath.Join(dir, "g.bin"),
		"csr":      filepath.Join(dir, "g.csr"),
	}
	if err := repro.SaveGraph(files["edgelist"], g); err != nil {
		panic(err)
	}
	if err := repro.SaveGraphBinary(files["binary"], g); err != nil {
		panic(err)
	}
	if err := repro.SaveGraphCSR(files["csr"], g); err != nil {
		panic(err)
	}
	return files
})

// edgelistRebuildDur times the cold edge-list rebuild of the 50k graph
// once — the baseline the mmap speedup metric is reported against.
var edgelistRebuildDur = timeOnce(func() error {
	_, err := repro.LoadGraph(benchGraphFiles()["edgelist"])
	return err
})

// BenchmarkGraphOpen compares the three ways to get the 50k-vertex
// twitter-like graph (~1.5M edges) into memory: parsing the edge-list
// text, rebuilding from the FWG1 binary edge list, and mmap-opening
// the gstore CSR file (checksum-verified, zero-copy). The mmap
// subbenchmark reports its speedup over the cold edge-list rebuild —
// the acceptance floor is 10x — and opens/s for the artifact
// trajectory.
func BenchmarkGraphOpen(b *testing.B) {
	files := benchGraphFiles()
	open := func(b *testing.B, path string) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			g, err := repro.LoadGraph(path)
			if err != nil {
				b.Fatal(err)
			}
			g.Close()
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "opens/s")
		}
	}
	b.Run("edgelist-rebuild", func(b *testing.B) { open(b, files["edgelist"]) })
	b.Run("binary-rebuild", func(b *testing.B) { open(b, files["binary"]) })
	b.Run("gstore-mmap", func(b *testing.B) {
		rebuild := edgelistRebuildDur() // untimed baseline measurement
		b.ResetTimer()
		open(b, files["csr"])
		perOp := b.Elapsed().Seconds() / float64(b.N)
		if perOp > 0 {
			b.ReportMetric(rebuild.Seconds()/perOp, "speedup/mmap-vs-rebuild")
		}
	})
}

// BenchmarkServeStart measures time-to-first-answer for the serving
// stack on the 50k graph: "cold" builds the FrogWild snapshot from
// scratch before the first /v1/topk answer; "warm" restores the last
// persisted snapshot from disk (the prserve -snapshot-dir path). The
// warm subbenchmark reports its speedup over one cold start, the
// number restarts and scale-out care about.
func BenchmarkServeStart(b *testing.B) {
	g := benchGraph50k()
	cfg := serve.ServiceConfig{
		Build: serve.BuildConfig{Engine: serve.EngineFrogWild, Machines: 4, Seed: 7},
	}
	firstQuery := func(b *testing.B, cfg serve.ServiceConfig) {
		b.Helper()
		srv, _, err := serve.NewService(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/topk?k=20", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}

	dir, err := os.MkdirTemp("", "bench-warm")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	var coldDur time.Duration

	b.Run("cold-firstquery", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			firstQuery(b, cfg)
		}
		coldDur = time.Since(start) / time.Duration(b.N)
		b.ReportMetric(float64(coldDur)/float64(time.Millisecond), "firstquery-ms")
	})
	b.Run("warm-firstquery", func(b *testing.B) {
		// Persist one snapshot, then every iteration warm-starts from
		// it. Guard against the subbenchmark running without the cold
		// one (e.g. -bench filtering) by timing a cold start then.
		warmCfg := cfg
		warmCfg.SnapshotDir = dir
		if coldDur == 0 {
			start := time.Now()
			firstQuery(b, cfg)
			coldDur = time.Since(start)
		}
		if _, err := os.Stat(serve.SnapshotPath(dir)); err != nil {
			srv, _, err := serve.NewService(g, warmCfg)
			if err != nil {
				b.Fatal(err)
			}
			if srv.Snapshot().WarmStart {
				b.Fatal("seed service warm-started unexpectedly")
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			firstQuery(b, warmCfg)
		}
		b.StopTimer()
		perOp := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(perOp)/float64(time.Millisecond), "firstquery-ms")
		if perOp > 0 {
			b.ReportMetric(float64(coldDur)/float64(perOp), "speedup/warm-vs-cold")
		}
	})
}

// BenchmarkIngress measures vertex-cut partitioning (random ingress,
// 16 machines).
func BenchmarkIngress(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.NewLayout(g, 16, nil, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIngress compares the four ingress strategies'
// replication factors (the knob that couples ps to network savings).
func BenchmarkAblationIngress(b *testing.B) {
	g := benchGraph()
	for _, name := range []string{"random", "oblivious", "grid", "hdrf"} {
		b.Run(name, func(b *testing.B) {
			p, err := repro.PartitionerByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var repl float64
			for i := 0; i < b.N; i++ {
				lay, err := repro.NewLayout(g, 16, p, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				repl = lay.ReplicationFactor()
			}
			b.ReportMetric(repl, "replication")
		})
	}
}

// BenchmarkAblationScatterMode compares the paper's two frog-routing
// variants at ps=0.4.
func BenchmarkAblationScatterMode(b *testing.B) {
	g := benchGraph()
	lay := benchLayout()
	for _, mode := range []repro.ScatterMode{repro.ScatterSplit, repro.ScatterBinomial} {
		b.Run(mode.String(), func(b *testing.B) {
			var realized float64
			for i := 0; i < b.N; i++ {
				res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
					Walkers: g.NumVertices() / 6, Iterations: 4, PS: 0.4,
					Layout: lay, Seed: uint64(i), Mode: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				realized = float64(res.TotalFrogs) / float64(g.NumVertices()/6)
			}
			b.ReportMetric(realized, "frogs/requested")
		})
	}
}

// BenchmarkPSSweep measures how the network bill falls with ps.
func BenchmarkPSSweep(b *testing.B) {
	g := benchGraph()
	lay := benchLayout()
	for _, ps := range []float64{1.0, 0.7, 0.4, 0.1} {
		b.Run(fmt.Sprintf("ps=%.1f", ps), func(b *testing.B) {
			var bytes float64
			for i := 0; i < b.N; i++ {
				res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
					Walkers: g.NumVertices() / 6, Iterations: 4, PS: ps,
					Layout: lay, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes = float64(res.Stats.Net.TotalBytes)
			}
			b.ReportMetric(bytes, "netbytes")
		})
	}
}

// BenchmarkGossip measures rumor spreading on the engine.
func BenchmarkGossip(b *testing.B) {
	g := benchGraph()
	lay := benchLayout()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunGossip(g, repro.GossipConfig{
			Origin: 0, Rounds: 10, PS: 0.7, Layout: lay, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersonalizedFrogWild measures the PPR extension.
func BenchmarkPersonalizedFrogWild(b *testing.B) {
	g := benchGraph()
	lay := benchLayout()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunPersonalizedFrogWild(g, repro.PPRConfig{
			Config:  repro.FrogWildConfig{Walkers: 5000, Iterations: 8, PS: 0.7, Layout: lay, Seed: uint64(i)},
			Sources: []repro.VertexID{1, 2, 3},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
