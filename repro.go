// Package repro is a from-scratch Go reproduction of
//
//	FrogWild! – Fast PageRank Approximations on Graph Engines
//	(Mitliagkas, Borokhovich, Dimakis, Caramanis — VLDB 2015)
//
// It provides:
//
//   - FrogWild itself: fast approximation of the top-k PageRank
//     vertices via N discrete random walkers ("frogs") executed on a
//     simulated vertex-cut graph engine with the paper's
//     partial-mirror-synchronization knob ps (RunFrogWild).
//   - The baselines the paper compares against: synchronous
//     "GraphLab PR" power iteration on the same engine (RunGraphLabPR),
//     uniform graph sparsification followed by PageRank
//     (RunSparsifiedPR), and serial Monte-Carlo PageRank
//     (RunMonteCarloPR).
//   - Exact serial PageRank as ground truth (ExactPageRank).
//   - Synthetic power-law graph generators standing in for the paper's
//     Twitter/LiveJournal datasets, graph I/O, and the paper's two
//     accuracy metrics (captured mass and exact identification).
//
// # Quick start
//
//	g, _ := repro.TwitterLikeGraph(100000, 42)
//	res, _ := repro.RunFrogWild(g, repro.FrogWildConfig{
//		Walkers:    g.NumVertices() / 6,
//		Iterations: 4,
//		PS:         0.7,
//		Machines:   16,
//		Seed:       42,
//	})
//	top := repro.TopK(res.Estimate, 20)
//
// Everything is deterministic under a fixed seed, uses only the
// standard library, and runs on a laptop: the "cluster" is simulated
// (one goroutine per machine with metered network traffic and a
// calibrated cost model), which reproduces the paper's network, CPU and
// accuracy comparisons in shape rather than absolute seconds.
package repro

import (
	"context"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/frogwild"
	"repro/internal/gas"
	"repro/internal/glpr"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graph/gio"
	"repro/internal/graph/gstore"
	"repro/internal/graph/pcache"
	"repro/internal/loadgen"
	"repro/internal/montecarlo"
	"repro/internal/pagerank"
	"repro/internal/serve"
	"repro/internal/sparsify"
	"repro/internal/theory"
	"repro/internal/topk"
)

// Graph is an immutable directed graph in CSR form. Construct one with
// the generators or loaders below, or from an edge list with
// GraphFromEdges.
type Graph = graph.Graph

// Edge is a directed edge.
type Edge = graph.Edge

// VertexID identifies a vertex; ids are dense in [0, NumVertices).
type VertexID = graph.VertexID

// GraphStats summarizes a graph's degree structure.
type GraphStats = graph.Stats

// GraphFromEdges builds a graph from an explicit edge list.
func GraphFromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// ComputeGraphStats scans a graph and reports degree statistics.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// PowerLawConfig parameterizes the Zipf configuration-model generator,
// the stand-in for the paper's social-graph datasets.
type PowerLawConfig = gen.PowerLawConfig

// PowerLawGraph generates a directed power-law graph with no dangling
// vertices.
func PowerLawGraph(cfg PowerLawConfig) (*Graph, error) { return gen.PowerLaw(cfg) }

// TwitterLikeGraph generates a power-law graph shaped like a scaled-
// down Twitter follower graph (mean degree ≈ 30, strong skew).
func TwitterLikeGraph(n int, seed uint64) (*Graph, error) {
	return gen.PowerLaw(gen.TwitterLike(n, seed))
}

// LiveJournalLikeGraph generates a power-law graph shaped like a
// scaled-down LiveJournal graph (mean degree ≈ 14, milder skew).
func LiveJournalLikeGraph(n int, seed uint64) (*Graph, error) {
	return gen.PowerLaw(gen.LiveJournalLike(n, seed))
}

// RMATGraph generates a Graph500-style recursive-matrix graph with
// 2^scale vertices and edgeFactor·2^scale edges.
func RMATGraph(scale, edgeFactor int, seed uint64) (*Graph, error) {
	return gen.RMAT(gen.DefaultRMAT(scale, edgeFactor, seed))
}

// ErdosRenyiGraph generates a uniform random directed graph with n
// vertices and m edges (dangling vertices repaired with self-loops).
func ErdosRenyiGraph(n int, m int64, seed uint64) (*Graph, error) {
	return gen.ErdosRenyi(n, m, seed)
}

// LoadGraph reads a graph from disk, auto-detecting the format:
// the mmap-able gstore CSR format (opened zero-copy), the package's
// binary edge-list format, or SNAP-style edge-list text ("src dst"
// per line, '#' comments). Files ending in .gz are decompressed.
// For the edge-list formats, dangling vertices are repaired with
// self-loops so the result is always FrogWild-ready; gstore files
// reload exactly the graph that was saved.
func LoadGraph(path string) (*Graph, error) {
	return gio.Load(path, gio.EdgeListOptions{Dangling: graph.DanglingSelfLoop})
}

// LoadGraphPaged is LoadGraph with a resident-memory budget: the file
// must be an uncompressed gstore CSR file, whose adjacency is then
// served through a bounded page cache of roughly memBytes (the
// bigger-than-RAM path; see ParseByteSize for the CLIs' flag syntax).
// Formats that cannot bound residency are an error under a budget.
func LoadGraphPaged(path string, memBytes int64) (*Graph, error) {
	return gio.LoadWith(path, gio.LoadOptions{
		EdgeList: gio.EdgeListOptions{Dangling: graph.DanglingSelfLoop},
		Mem:      memBytes,
	})
}

// RelabelGraph returns a logically identical copy of g whose CSR rows
// are degree-ordered (hot vertices first) with the external→row
// permutation attached, so a paged open of the saved file packs hot
// adjacency onto few pages. External vertex ids are unchanged
// everywhere. Saving the result writes the FWGSTOR2 layout.
func RelabelGraph(g *Graph) (*Graph, error) { return gstore.Relabel(g) }

// ParseByteSize parses a human byte size ("512MiB", "2G", "1048576");
// it is the parser behind the CLIs' -graph-mem and -target-bytes
// flags. K/M/G suffixes are binary units with or without the iB.
func ParseByteSize(s string) (int64, error) { return pcache.ParseBytes(s) }

// SaveGraph writes a graph as edge-list text (gzipped when the path
// ends in .gz).
func SaveGraph(path string, g *Graph) error { return gio.SaveEdgeList(path, g) }

// SaveGraphBinary writes a graph in the compact binary format
// (gzipped when the path ends in .gz); LoadGraph reads it back.
func SaveGraphBinary(path string, g *Graph) error { return gio.SaveBinary(path, g) }

// SaveGraphCSR writes a graph in the gstore mmap-able CSR format:
// checksummed 8-aligned sections that OpenGraphCSR and LoadGraph map
// straight into memory, making reload time independent of graph size.
// Plain paths are written atomically; .gz paths gzip the same bytes
// (loaded buffered instead of mmap'd).
func SaveGraphCSR(path string, g *Graph) error { return gio.SaveCSR(path, g) }

// OpenGraphCSR opens a gstore CSR file zero-copy: the adjacency
// arrays alias the mmap'd file pages (with a buffered-read fallback
// where mmap is unavailable), section checksums are verified, and
// Close on the returned graph releases the mapping.
func OpenGraphCSR(path string) (*Graph, error) {
	return gstore.Open(path, gstore.OpenOptions{})
}

// CachedGraph is the -graph-cache protocol: if cachePath exists it is
// opened zero-copy and build never runs; on a miss the graph is
// built, saved to cachePath atomically, and reopened through the
// cache. A corrupt cache is an error — delete the file to rebuild.
func CachedGraph(cachePath string, build func() (*Graph, error)) (*Graph, error) {
	return gio.OpenCached(cachePath, build)
}

// CachedGraphChecked is the serving CLIs' -graph-cache protocol in one
// call: an empty cachePath just builds, otherwise the cache is opened
// (or built and saved) via CachedGraph, and — because the cache key is
// only the file path — a hit is guarded against silently masking
// changed generation flags: when the graph comes from a generator
// (genN > 0) rather than an input file, a cached graph whose vertex
// count differs from genN is an error telling the user to delete the
// stale cache.
func CachedGraphChecked(cachePath string, genN int, build func() (*Graph, error)) (*Graph, error) {
	return gio.OpenCachedChecked(cachePath, genN, build)
}

// GraphCacheOptions tunes CachedGraphCheckedWith: a paged-open memory
// budget and build-time degree relabeling.
type GraphCacheOptions = gio.CacheOptions

// CachedGraphCheckedWith is CachedGraphChecked with the
// bigger-than-RAM knobs: opts.Mem opens the cache paged under a
// resident budget, opts.Relabel degree-orders the graph when the
// cache is (re)built. A budget without a cache file is an error.
func CachedGraphCheckedWith(cachePath string, opts GraphCacheOptions, genN int, build func() (*Graph, error)) (*Graph, error) {
	return gio.OpenCachedCheckedWith(cachePath, opts, genN, build)
}

// PageRankOptions configures the exact solver. Its Workers field
// shards the power-iteration inner loop across cores (0 = GOMAXPROCS,
// 1 = single-threaded) with bit-identical results for every setting.
type PageRankOptions = pagerank.Options

// PageRankResult is the exact solver's output.
type PageRankResult = pagerank.Result

// DefaultTeleport is the conventional teleportation probability 0.15.
const DefaultTeleport = pagerank.DefaultTeleport

// ExactPageRank computes the converged PageRank vector by power
// iteration — the ground truth for the approximation metrics. The
// inner loop runs on opts.Workers cores (0 = all of them).
func ExactPageRank(g *Graph, opts PageRankOptions) (*PageRankResult, error) {
	return pagerank.Exact(g, opts)
}

// IteratePageRank runs exactly k serial power iterations (the paper's
// idealized "reduced iterations" heuristic).
func IteratePageRank(g *Graph, k int, teleport float64) (*PageRankResult, error) {
	return pagerank.Iterate(g, k, teleport)
}

// FrogWildConfig configures a FrogWild run; see the frogwild package
// documentation for field semantics.
type FrogWildConfig = frogwild.Config

// FrogWildResult is a FrogWild run's output: per-vertex tallies, the
// π̂N estimate, and engine statistics (network bytes by class,
// simulated time, CPU).
type FrogWildResult = frogwild.Result

// ScatterMode selects FrogWild's frog-routing variant.
type ScatterMode = frogwild.ScatterMode

// FrogWild scatter modes.
const (
	// ScatterSplit conserves frogs exactly (the paper's shipped
	// implementation).
	ScatterSplit = frogwild.ScatterSplit
	// ScatterBinomial draws independent per-edge binomials (the
	// paper's analyzed model).
	ScatterBinomial = frogwild.ScatterBinomial
)

// RunFrogWild executes the FrogWild process on the simulated
// vertex-cut cluster and returns the top-PageRank estimate. The
// config's WorkersPerMachine field shards each simulated machine's
// engine phases across cores (0 = split GOMAXPROCS across machines,
// 1 = serial per machine) with bit-identical tallies for every setting.
func RunFrogWild(g *Graph, cfg FrogWildConfig) (*FrogWildResult, error) {
	return frogwild.Run(g, cfg)
}

// SerialFrogWalk runs the single-machine reference implementation of
// the FrogWild walk process and returns per-vertex tallies.
func SerialFrogWalk(g *Graph, walkers, iterations int, pT float64, seed uint64) ([]int64, error) {
	return frogwild.SerialWalk(g, walkers, iterations, pT, seed)
}

// SerialFrogWalkParallel is SerialFrogWalk sharded across workers
// goroutines (0 = GOMAXPROCS, 1 = single-threaded). Walkers are split
// into fixed chunks with one derived RNG stream each, so the tallies
// are bit-identical for every workers value.
func SerialFrogWalkParallel(g *Graph, walkers, iterations int, pT float64, seed uint64, workers int) ([]int64, error) {
	return frogwild.SerialWalkParallel(g, walkers, iterations, pT, seed, workers)
}

// GraphLabPRConfig configures the GraphLab-PR baseline.
type GraphLabPRConfig = glpr.Config

// GraphLabPRResult is the baseline's output.
type GraphLabPRResult = glpr.Result

// RunGraphLabPR executes synchronous power-iteration PageRank on the
// same simulated engine (the paper's principal baseline). Set
// Iterations for the reduced-iterations variant or leave it zero for
// exact mode with Tolerance. Like RunFrogWild, the config's
// WorkersPerMachine field shards each machine's phases across cores
// with bit-identical ranks for every setting.
func RunGraphLabPR(g *Graph, cfg GraphLabPRConfig) (*GraphLabPRResult, error) {
	return glpr.Run(g, cfg)
}

// SparsifyConfig configures the uniform-sparsification baseline.
type SparsifyConfig = sparsify.Config

// SparsifyResult is the sparsification baseline's output.
type SparsifyResult = sparsify.Result

// RunSparsifiedPR deletes each edge with probability 1-Keep and runs
// GraphLab PR on the thinned graph (the paper's Figure 5 baseline).
func RunSparsifiedPR(g *Graph, cfg SparsifyConfig) (*SparsifyResult, error) {
	return sparsify.Run(g, cfg)
}

// SparsifyGraph returns a uniformly sparsified copy of g (keep
// probability q), with dangling vertices repaired.
func SparsifyGraph(g *Graph, q float64, seed uint64) (*Graph, error) {
	return sparsify.Uniform(g, q, seed)
}

// MonteCarloConfig configures the Monte-Carlo baseline (Avrachenkov et
// al., reference [5] of the paper). Its Workers field shards the walks
// across cores (0 = GOMAXPROCS, 1 = single-threaded) with bit-identical
// results for every setting.
type MonteCarloConfig = montecarlo.Config

// MonteCarloResult is the Monte-Carlo baseline's output.
type MonteCarloResult = montecarlo.Result

// RunMonteCarloPR runs R walkers from every vertex.
func RunMonteCarloPR(g *Graph, cfg MonteCarloConfig) (*MonteCarloResult, error) {
	return montecarlo.Run(g, cfg)
}

// TopEntry pairs a vertex with its score.
type TopEntry = topk.Entry

// TopK returns the k highest-scoring vertices in descending order.
func TopK(scores []float64, k int) []TopEntry { return topk.Top(scores, k) }

// CapturedMass is the paper's Definition 2 metric: the true-PageRank
// mass of the top-k set selected by the estimate.
func CapturedMass(exact, estimate []float64, k int) float64 {
	return topk.CapturedMass(exact, estimate, k)
}

// NormalizedCapturedMass rescales CapturedMass by its optimum µk(π),
// the "Mass captured" accuracy in the paper's figures (1.0 = perfect).
func NormalizedCapturedMass(exact, estimate []float64, k int) float64 {
	return topk.NormalizedCapturedMass(exact, estimate, k)
}

// ExactIdentification is the fraction of the reported top-k that is in
// the true top-k (the paper's second metric).
func ExactIdentification(exact, estimate []float64, k int) float64 {
	return topk.ExactIdentification(exact, estimate, k)
}

// Partitioner assigns graph edges to machines (vertex-cut ingress).
type Partitioner = cluster.Partitioner

// PartitionerByName returns "random", "oblivious" or "grid" ingress.
func PartitionerByName(name string) (Partitioner, error) { return cluster.ByName(name) }

// Layout is a realized placement of a graph on the simulated cluster.
// Build one with NewLayout and share it across runs via the configs'
// Layout field to amortize ingress.
type Layout = cluster.Layout

// NewLayout partitions a graph across machines with the given ingress
// strategy (nil means random).
func NewLayout(g *Graph, machines int, p Partitioner, seed uint64) (*Layout, error) {
	return cluster.NewLayout(g, machines, p, seed)
}

// CostModel converts metered engine work into simulated seconds.
type CostModel = cluster.CostModel

// DefaultCostModel returns the calibrated cost model (≈1 Gb/s links,
// 1 ms barriers).
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }

// RunStats reports what an engine run did and cost; exposed on the
// FrogWild and GraphLab-PR results.
type RunStats = gas.RunStats

// ErrorBoundParams parameterizes the paper's Theorem 1 guarantee.
type ErrorBoundParams = theory.BoundParams

// ErrorBound evaluates Theorem 1: with probability ≥ 1−δ the FrogWild
// estimator's captured mass is within ε of optimal.
func ErrorBound(p ErrorBoundParams) (float64, error) { return theory.Epsilon(p) }

// IntersectionBound evaluates Theorem 2's bound on the probability two
// walkers meet within t steps.
func IntersectionBound(n, t int, piMax, pT float64) float64 {
	return theory.IntersectBound(n, t, piMax, pT)
}

// PPRConfig configures a personalized FrogWild run (top-k personalized
// PageRank, the extension discussed in the paper's Section 2.4).
type PPRConfig = frogwild.PPRConfig

// RunPersonalizedFrogWild executes FrogWild with frogs restarting from
// the Sources set instead of the uniform distribution; the estimate
// approximates the heavy entries of the personalized PageRank vector.
func RunPersonalizedFrogWild(g *Graph, cfg PPRConfig) (*FrogWildResult, error) {
	return frogwild.RunPPR(g, cfg)
}

// ExactPersonalizedPageRank computes the exact PPR vector for the
// uniform distribution over sources (ground truth for
// RunPersonalizedFrogWild).
func ExactPersonalizedPageRank(g *Graph, sources []VertexID, teleport float64) ([]float64, error) {
	return frogwild.ExactPPR(g, sources, teleport, 0, 0)
}

// PPROptions tunes the serving layer's /v1/ppr endpoint: per-source
// walk count, the hard per-request walk budget, the hot-source LRU
// size/TTL, and the batch executor's worker pool. The zero value
// serves with defaults. Set it on ServeConfig's PPR field.
type PPROptions = serve.PPROptions

// PersonalizedTopK estimates the top-k personalized PageRank of the
// source set over a serving snapshot with the same bounded-budget walk
// estimator /v1/ppr serves: truncated-geometric walk lengths, dangling
// mass restarting at the sources, all randomness derived from the
// snapshot's seed and epoch. The boolean reports whether the walk
// budget truncated the per-source walk count. The entries are
// bit-identical to the served /v1/ppr response's for the same
// snapshot, sources, k and options.
func PersonalizedTopK(s *Snapshot, sources []VertexID, k int, opts PPROptions) ([]TopEntry, bool, error) {
	return serve.PPRTopK(s, sources, k, opts)
}

// Erasure selects the Appendix A edge-erasure model variant.
type Erasure = frogwild.Erasure

// Erasure model variants.
const (
	// ErasureAtLeastOne never strands a frog (Example 10, the paper's
	// implemented model).
	ErasureAtLeastOne = frogwild.ErasureAtLeastOne
	// ErasureIndependent may strand frogs at low ps (Example 9).
	ErasureIndependent = frogwild.ErasureIndependent
)

// GossipConfig configures push-protocol rumor spreading, a second
// vertex program demonstrating that any "send to a random neighbor"
// algorithm benefits from the ps knob (paper Section 3.3).
type GossipConfig = gossip.Config

// GossipResult reports a rumor-spreading run.
type GossipResult = gossip.Result

// RunGossip spreads a rumor from Origin with one push per informed
// vertex per round on the simulated cluster.
func RunGossip(g *Graph, cfg GossipConfig) (*GossipResult, error) {
	return gossip.Run(g, cfg)
}

// L1Distance returns Σ|a_i−b_i| (twice the total-variation distance
// for distributions).
func L1Distance(a, b []float64) float64 { return topk.L1Distance(a, b) }

// ChiSquaredContrast returns the paper's Definition 12 contrast
// χ²(a; b).
func ChiSquaredContrast(a, b []float64) float64 { return topk.ChiSquaredContrast(a, b) }

// KendallTauTopK returns Kendall's tau over the union of the two
// top-k sets (+1 = identical order, −1 = reversed).
func KendallTauTopK(exact, estimate []float64, k int) float64 {
	return topk.KendallTauTopK(exact, estimate, k)
}

// PrecisionAtK is ExactIdentification with credit for boundary ties.
func PrecisionAtK(exact, estimate []float64, k int) float64 {
	return topk.PrecisionAtK(exact, estimate, k)
}

// Snapshot is an immutable published answer to the top-k PageRank
// query: per-vertex ranks, a precomputed top index, graph stats, and
// the provenance (engine, seed, epoch) that produced it. Its TopK
// method is bit-identical to TopK on the snapshot's scores.
type Snapshot = serve.Snapshot

// SnapshotConfig says how a snapshot's estimate is computed; the zero
// value selects FrogWild with the paper's defaults.
type SnapshotConfig = serve.BuildConfig

// ServeConfig bundles the snapshot build configuration with the
// background refresh cadence for Serve.
type ServeConfig = serve.ServiceConfig

// ServeEngine names an estimate producer the serving layer can run.
type ServeEngine = serve.Engine

// Engines the serving layer can run.
const (
	// ServeEngineFrogWild serves FrogWild estimates (the intended
	// configuration: fast approximate answers, refreshed out of band).
	ServeEngineFrogWild = serve.EngineFrogWild
	// ServeEngineGLPR serves synchronous power-iteration estimates.
	ServeEngineGLPR = serve.EngineGLPR
	// ServeEngineExact serves converged exact PageRank.
	ServeEngineExact = serve.EngineExact
)

// NewSnapshot computes an estimate of g's PageRank with the configured
// engine and wraps it in an immutable, query-ready snapshot (top index
// precomputed; epoch 0 until a serving store publishes it).
func NewSnapshot(g *Graph, cfg SnapshotConfig) (*Snapshot, error) {
	return serve.Build(g, cfg)
}

// SaveSnapshot persists a serving snapshot (ranks, top index, engine/
// seed/epoch provenance, graph stats) to path atomically in the
// checksummed binary snapshot format. Pair with ServeConfig's
// SnapshotDir to let a restarted server answer queries in
// milliseconds from the last persisted estimate.
func SaveSnapshot(path string, s *Snapshot) error { return serve.SaveSnapshot(path, s) }

// LoadSnapshot reads a persisted snapshot and attaches it to g, which
// must be the graph the snapshot was computed on (vertex and edge
// counts are checked). The result carries the persisted epoch's
// provenance and is flagged WarmStart so a Refresher re-derives a
// fresh estimate in the background.
func LoadSnapshot(path string, g *Graph) (*Snapshot, error) { return serve.LoadSnapshot(path, g) }

// SnapshotFilePath returns the file inside dir where the serving
// layer persists (and warm-starts from) the latest snapshot.
func SnapshotFilePath(dir string) string { return serve.SnapshotPath(dir) }

// Serve computes an initial snapshot of g, then serves the top-k
// PageRank query API on addr until ctx is cancelled (graceful
// shutdown), refreshing the snapshot in the background on the
// configured cadence. See cmd/prserve for the endpoint table.
func Serve(ctx context.Context, addr string, g *Graph, cfg ServeConfig) error {
	return serve.ListenAndServe(ctx, addr, g, cfg)
}

// NewServerHandler computes a snapshot of g and returns the full query
// API as an in-process http.Handler (no listener): the hook the load
// generator, tests and embedders drive directly.
func NewServerHandler(g *Graph, cfg SnapshotConfig) (http.Handler, error) {
	srv, _, err := serve.NewService(g, serve.ServiceConfig{Build: cfg})
	if err != nil {
		return nil, err
	}
	return srv, nil
}

// LoadConfig fixes a deterministic query workload for the load
// generator: Zipf-skewed topk/rank/stats traffic, open or closed loop,
// warmup and concurrency ramp. See internal/loadgen.
type LoadConfig = loadgen.Config

// LoadMix weights the query kinds in a load test; the zero value is
// 60% topk / 30% rank / 10% stats.
type LoadMix = loadgen.Mix

// LoadReport is a load test's outcome: wall time plus per-endpoint
// counts, error counts and latency histograms.
type LoadReport = loadgen.Report

// RunLoadTest drives handler (e.g. the result of NewServerHandler)
// with cfg's deterministic workload and returns the measured report.
// Same seed + config means the same query sequence, always.
func RunLoadTest(ctx context.Context, cfg LoadConfig, handler http.Handler) (*LoadReport, error) {
	return loadgen.Run(ctx, cfg, loadgen.HandlerTarget{Handler: handler})
}

// FrogEstimator selects what FrogWild's per-vertex tally counts.
type FrogEstimator = frogwild.Estimator

// FrogWild estimator variants.
const (
	// EstimatorEndpoint counts each frog at its final position (the
	// paper's Definition 5).
	EstimatorEndpoint = frogwild.EstimatorEndpoint
	// EstimatorVisits counts every visit (Avrachenkov et al.'s
	// complete-path estimator, the paper's reference [5]): ≈1/pT
	// samples per frog at identical network cost.
	EstimatorVisits = frogwild.EstimatorVisits
)
