// Package montecarlo implements the prior-work baseline of Avrachenkov
// et al., "Monte Carlo methods in PageRank computation: When one
// iteration is sufficient" (SIAM J. Numer. Anal. 2007) — reference [5]
// of the FrogWild paper. It starts R walkers from every vertex (the
// paper's headline configuration is R = 1, i.e. n walkers total, versus
// FrogWild's sublinear N ≪ n) and lets each run to its natural
// geometric death, with no cutoff.
//
// Two estimators from that paper are provided:
//
//   - EndPoint: tallies only each walk's final position (what FrogWild
//     also does).
//   - CompletePath: tallies every visited vertex and normalizes by
//     pT/total-visits, which uses each walk more efficiently.
package montecarlo

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Estimator selects the Monte Carlo estimator variant.
type Estimator int

const (
	// EndPoint tallies walk end positions.
	EndPoint Estimator = iota
	// CompletePath tallies all visited vertices.
	CompletePath
)

// String implements fmt.Stringer.
func (e Estimator) String() string {
	switch e {
	case EndPoint:
		return "endpoint"
	case CompletePath:
		return "completepath"
	}
	return fmt.Sprintf("estimator(%d)", int(e))
}

// Config configures a Monte Carlo PageRank run.
type Config struct {
	// WalkersPerVertex is R; Avrachenkov et al. show R = 1 already
	// gives a good global approximation. 0 selects 1.
	WalkersPerVertex int
	// Teleport is pT; 0 selects 0.15.
	Teleport float64
	// MaxSteps truncates pathological walks (the geometric has
	// unbounded support); 0 selects 1000.
	MaxSteps int
	// Estimator selects the variant.
	Estimator Estimator
	// Seed drives the walks.
	Seed uint64
	// Workers is the number of goroutines sharding the walks: 0 selects
	// GOMAXPROCS, 1 runs single-threaded. Start vertices are split into
	// fixed chunks (a function of the graph size only), each chunk walks
	// its own derived rng.Stream, and per-worker integer tallies are
	// merged at the end — so the result is bit-identical for every
	// Workers value.
	Workers int
}

// Result is a Monte Carlo run's output.
type Result struct {
	// Estimate is the PageRank estimate (a distribution).
	Estimate []float64
	// Walks is the number of walks performed.
	Walks int
	// TotalSteps is the total number of edge traversals, the
	// computational cost driver.
	TotalSteps int64
}

// Run performs R walks from every vertex, sharded across cfg.Workers
// goroutines. For a fixed Config the result is a deterministic function
// of the graph and seed, independent of Workers. Note: the sharded
// per-chunk streams consume randomness differently than the single
// stream the pre-parallel implementation used, so tallies for a given
// seed differ from versions predating the Workers knob — both are
// exact samples of the same walk process.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("montecarlo: empty graph")
	}
	r := cfg.WalkersPerVertex
	if r == 0 {
		r = 1
	}
	if r < 0 {
		return nil, fmt.Errorf("montecarlo: negative walkers per vertex %d", r)
	}
	pT := cfg.Teleport
	if pT == 0 {
		pT = 0.15
	}
	if pT <= 0 || pT > 1 {
		return nil, fmt.Errorf("montecarlo: teleport %v out of (0,1]", cfg.Teleport)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1000
	}
	n := g.NumVertices()
	res := &Result{Walks: r * n}

	// Start vertices are sharded into chunks whose boundaries depend
	// only on n, each chunk walking its own derived stream, so the
	// tallies below are the same for any worker count (integer
	// increments commute; each chunk's walk sequence is fixed).
	chunks := parallel.Chunks(n)
	streams := rng.Shards(cfg.Seed, 0x3C4, len(chunks))
	pool := parallel.NewPool(cfg.Workers)
	defer pool.Close()
	workerCounts := make([][]int64, pool.NumWorkers())
	for w := range workerCounts {
		workerCounts[w] = make([]int64, n)
	}
	workerSteps := make([]int64, pool.NumWorkers())
	pool.Run(len(chunks), func(c, worker int) {
		rs := streams[c]
		counts := workerCounts[worker]
		var steps int64
		for start := chunks[c].Lo; start < chunks[c].Hi; start++ {
			for w := 0; w < r; w++ {
				v := graph.VertexID(start)
				if cfg.Estimator == CompletePath {
					counts[v]++
				}
				for step := 0; step < maxSteps; step++ {
					if rs.Bernoulli(pT) {
						break
					}
					outs := g.OutNeighbors(v)
					if len(outs) == 0 {
						break
					}
					v = outs[rs.Intn(len(outs))]
					steps++
					if cfg.Estimator == CompletePath {
						counts[v]++
					}
				}
				if cfg.Estimator == EndPoint {
					counts[v]++
				}
			}
		}
		workerSteps[worker] += steps
	})
	counts := workerCounts[0]
	for w := 1; w < len(workerCounts); w++ {
		for v, c := range workerCounts[w] {
			counts[v] += c
		}
	}
	for _, s := range workerSteps {
		res.TotalSteps += s
	}

	var total int64
	for _, c := range counts {
		total += c
	}
	res.Estimate = make([]float64, n)
	if total > 0 {
		for v, c := range counts {
			res.Estimate[v] = float64(c) / float64(total)
		}
	}
	return res, nil
}
