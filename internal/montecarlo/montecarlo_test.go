package montecarlo

import (
	"math"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/pagerank"
	"repro/internal/topk"
)

func TestEndPointApproximatesPageRank(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(800, 1))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{WalkersPerVertex: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc := topk.NormalizedCapturedMass(exact.Rank, res.Estimate, 50)
	if acc < 0.9 {
		t.Errorf("endpoint MC captured %.3f of top-50 mass", acc)
	}
}

func TestCompletePathMoreEfficient(t *testing.T) {
	// With the same number of walks, the complete-path estimator should
	// not be (much) worse than endpoint — it uses every visit.
	g, err := gen.PowerLaw(gen.TwitterLike(600, 2))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Run(g, Config{WalkersPerVertex: 2, Estimator: EndPoint, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Run(g, Config{WalkersPerVertex: 2, Estimator: CompletePath, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	accEP := topk.NormalizedCapturedMass(exact.Rank, ep.Estimate, 100)
	accCP := topk.NormalizedCapturedMass(exact.Rank, cp.Estimate, 100)
	if accCP < accEP-0.05 {
		t.Errorf("complete-path (%.3f) should be at least comparable to endpoint (%.3f)", accCP, accEP)
	}
}

func TestEstimateIsDistribution(t *testing.T) {
	g := gen.Cycle(50)
	for _, est := range []Estimator{EndPoint, CompletePath} {
		res, err := Run(g, Config{WalkersPerVertex: 3, Estimator: est, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range res.Estimate {
			if p < 0 {
				t.Fatal("negative estimate")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v estimate sums to %v", est, sum)
		}
	}
}

func TestWalkCount(t *testing.T) {
	g := gen.Cycle(10)
	res, err := Run(g, Config{WalkersPerVertex: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Walks != 40 {
		t.Errorf("walks = %d, want 40", res.Walks)
	}
	if res.TotalSteps <= 0 {
		t.Error("no steps taken?")
	}
}

func TestValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := Run(g, Config{Teleport: 2}); err == nil {
		t.Error("bad teleport should error")
	}
	if _, err := Run(g, Config{WalkersPerVertex: -1}); err == nil {
		t.Error("negative walkers should error")
	}
}

func TestRunParallelBitIdentical(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(1200, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []Estimator{EndPoint, CompletePath} {
		ref, err := Run(g, Config{WalkersPerVertex: 3, Estimator: est, Seed: 21, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := Run(g, Config{WalkersPerVertex: 3, Estimator: est, Seed: 21, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", est, workers, err)
			}
			if got.Walks != ref.Walks || got.TotalSteps != ref.TotalSteps {
				t.Errorf("%v workers=%d: walks/steps (%d,%d) != serial (%d,%d)",
					est, workers, got.Walks, got.TotalSteps, ref.Walks, ref.TotalSteps)
			}
			for v := range ref.Estimate {
				if got.Estimate[v] != ref.Estimate[v] {
					t.Fatalf("%v workers=%d: estimate[%d] = %v != serial %v (not bit-identical)",
						est, workers, v, got.Estimate[v], ref.Estimate[v])
				}
			}
		}
	}
}

func TestEstimatorString(t *testing.T) {
	if EndPoint.String() != "endpoint" || CompletePath.String() != "completepath" {
		t.Error("estimator strings wrong")
	}
}
