// Package frogwild implements the paper's primary contribution: the
// FrogWild vertex program, which approximates the top-k PageRank
// vertices by simulating N discrete random walkers ("frogs") on the
// partial-synchronization GAS engine.
//
// The process (Section 2.2 of the paper):
//
//   - N frogs are born on uniformly random vertices.
//   - At each superstep's apply(), every incoming frog dies with
//     probability pT = 0.15 and is tallied at its death vertex; this,
//     with the uniform start, realizes the Geometric(pT) walk length
//     that replaces explicit teleportation (Lemma 16).
//   - The sync step synchronizes each mirror only with probability ps;
//     surviving frogs are divided across the synchronized replicas
//     (weighted by local out-degree, so each frog's edge choice is
//     uniform over the enabled out-edges — the edge-erasure model of
//     Appendix A at machine granularity) and scattered through the
//     replicas' local out-edges.
//   - After t supersteps all frogs halt where they are and are tallied.
//
// The estimator π̂N(i) = c(i)/N (Definition 5) then approximates the
// PageRank vector's heavy entries.
package frogwild

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gas"
	"repro/internal/graph"
	"repro/internal/pagerank"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Erasure selects which of the paper's two edge-erasure models
// (Appendix A) governs frogs whose synchronized replicas have no local
// out-edges.
type Erasure int

const (
	// ErasureAtLeastOne (the default, Example 10) force-enables one
	// replica with local out-edges, so no frog is ever stranded.
	ErasureAtLeastOne Erasure = iota
	// ErasureIndependent (Example 9) erases mirrors independently;
	// frogs on a vertex with no enabled out-edges are lost for that
	// run, as the paper's footnote 1 notes.
	ErasureIndependent
)

// String implements fmt.Stringer.
func (e Erasure) String() string {
	switch e {
	case ErasureAtLeastOne:
		return "at-least-one"
	case ErasureIndependent:
		return "independent"
	}
	return fmt.Sprintf("erasure(%d)", int(e))
}

// Estimator selects what the per-vertex tally c(v) counts.
type Estimator int

const (
	// EstimatorEndpoint (the paper's Definition 5) counts each frog
	// once, at the position where it dies or is halted.
	EstimatorEndpoint Estimator = iota
	// EstimatorVisits counts every visit of every frog (the
	// complete-path estimator of Avrachenkov et al., the paper's
	// reference [5]): the visit distribution of a geometric-length walk
	// is also proportional to π, and each frog contributes ≈ 1/pT
	// samples instead of one, reducing variance at identical network
	// cost.
	EstimatorVisits
)

// String implements fmt.Stringer.
func (e Estimator) String() string {
	switch e {
	case EstimatorEndpoint:
		return "endpoint"
	case EstimatorVisits:
		return "visits"
	}
	return fmt.Sprintf("estimator(%d)", int(e))
}

// ScatterMode selects how surviving frogs are routed through edges.
type ScatterMode int

const (
	// ScatterSplit (the default, and what the paper's implementation
	// ships) conserves frogs exactly: the K survivors are multinomially
	// divided across synchronized replicas proportionally to local
	// out-degree, then multinomially across each replica's local edges.
	// Every frog traverses exactly one enabled edge.
	ScatterSplit ScatterMode = iota
	// ScatterBinomial is the paper's analyzed variant: every enabled
	// edge independently draws Binomial(K, 1/(dout·ps)) frogs. Marginals
	// are exact but the frog count is conserved only in expectation; the
	// estimator normalizes by the realized total.
	ScatterBinomial
)

// String implements fmt.Stringer.
func (m ScatterMode) String() string {
	switch m {
	case ScatterSplit:
		return "split"
	case ScatterBinomial:
		return "binomial"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// state is the per-vertex FrogWild state: the settled-frog tally c(v)
// and the transient count K(v) of frogs currently on the vertex.
type state struct {
	Count int64
	K     int64
}

// program implements gas.Program, gas.Splitter and gas.Finalizer.
type program struct {
	g         *graph.Graph
	init      []int64
	pT        float64
	ps        float64
	mode      ScatterMode
	estimator Estimator
}

// InitState implements gas.Program: initial frogs arrive as state.K at
// superstep 0.
func (p *program) InitState(v graph.VertexID) (state, bool) {
	k := p.init[v]
	return state{K: k}, k > 0
}

// GatherDir implements gas.Program: FrogWild has no gather phase.
func (p *program) GatherDir() gas.Dir { return gas.DirNone }

// GatherLocal implements gas.Program (never invoked).
func (p *program) GatherLocal(graph.VertexID, []graph.VertexID, func(graph.VertexID) state, *gas.Context) float64 {
	return 0
}

// Apply implements gas.Program: collect arriving frogs, kill each with
// probability pT (tallying deaths), and keep survivors for scatter.
func (p *program) Apply(v graph.VertexID, st state, _ float64, msg int64, hasMsg bool, ctx *gas.Context) (state, bool) {
	var arrivals int64
	if ctx.Superstep == 0 {
		arrivals = st.K
	}
	if hasMsg {
		arrivals += msg
	}
	if arrivals == 0 {
		st.K = 0
		return st, false
	}
	deaths := int64(ctx.Rng.Binomial(int(arrivals), p.pT))
	if p.estimator == EstimatorVisits {
		// Complete-path estimator: every arrival is a visit sample.
		st.Count += arrivals
	} else {
		st.Count += deaths
	}
	st.K = arrivals - deaths
	return st, st.K > 0
}

// ScatterDir implements gas.Program.
func (p *program) ScatterDir() gas.Dir { return gas.DirOut }

// Split implements gas.Splitter: divide the K survivors across the
// synchronized replicas proportionally to their local out-degrees. In
// binomial mode every replica instead receives the full count and draws
// independent binomials per edge.
func (p *program) Split(v graph.VertexID, st state, weights []int, r *rng.Stream) []state {
	shares := make([]state, len(weights))
	if p.mode == ScatterBinomial {
		for i := range shares {
			shares[i] = state{K: st.K}
		}
		return shares
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	remaining := st.K
	for i := 0; i < len(weights)-1; i++ {
		if remaining == 0 {
			break
		}
		x := int64(r.Binomial(int(remaining), float64(weights[i])/float64(total)))
		shares[i].K = x
		remaining -= x
		total -= weights[i]
	}
	shares[len(weights)-1].K = remaining
	return shares
}

// ScatterLocal implements gas.Program: route this replica's share of
// frogs through the local out-edges.
func (p *program) ScatterLocal(v graph.VertexID, st state, neighbors []graph.VertexID, emit func(graph.VertexID, int64), ctx *gas.Context) {
	if st.K <= 0 || len(neighbors) == 0 {
		return
	}
	if p.mode == ScatterBinomial {
		// Paper's scatter(): x ~ Bin(K, 1/(dout·ps)) per enabled edge.
		prob := 1 / (float64(p.g.OutDegree(v)) * p.ps)
		if prob > 1 {
			prob = 1
		}
		for _, d := range neighbors {
			if x := ctx.Rng.Binomial(int(st.K), prob); x > 0 {
				emit(d, int64(x))
			}
		}
		return
	}
	if len(neighbors) == 1 {
		emit(neighbors[0], st.K)
		return
	}
	counts := make([]int, len(neighbors))
	ctx.Rng.MultinomialSplit(int(st.K), counts)
	for i, c := range counts {
		if c > 0 {
			emit(neighbors[i], int64(c))
		}
	}
}

// CombineMsg implements gas.Program: frog counts sum.
func (p *program) CombineMsg(a, b int64) int64 { return a + b }

// Sizes implements gas.Program: a frog count is one 8-byte integer in
// every role.
func (p *program) Sizes() gas.Sizes { return gas.Sizes{State: 8, Msg: 8, Acc: 8} }

// Finalize implements gas.Finalizer: frogs still in flight at the
// cutoff are tallied where they landed ("c(i) ← c(i)+K(i) and halt").
// Under the visits estimator the final arrival is simply one more
// visit.
func (p *program) Finalize(v graph.VertexID, st state, pending int64, hasPending bool) state {
	if hasPending {
		st.Count += pending
	}
	st.K = 0
	return st
}

// Config configures a FrogWild run.
type Config struct {
	// Walkers is N, the number of frogs. Required.
	Walkers int
	// Iterations is t, the walk cutoff in supersteps. Required.
	Iterations int
	// PS is the mirror-synchronization probability; 0 selects 1 (full
	// sync).
	PS float64
	// Teleport is pT; 0 selects the conventional 0.15.
	Teleport float64
	// Machines is the cluster size; 0 selects 1.
	Machines int
	// Partitioner selects the ingress strategy; nil means random.
	Partitioner cluster.Partitioner
	// Mode selects the scatter variant; the zero value is ScatterSplit.
	Mode ScatterMode
	// ErasureModel selects the Appendix A erasure model; the zero value
	// is ErasureAtLeastOne (the paper's implemented choice).
	ErasureModel Erasure
	// Estimator selects the tally semantics; the zero value is the
	// paper's endpoint estimator (Definition 5).
	Estimator Estimator
	// Seed drives frog placement, deaths, routing and sync coin flips.
	Seed uint64
	// WorkersPerMachine shards each simulated machine's engine phases
	// across a worker pool: 0 divides GOMAXPROCS across machines, 1 is
	// fully serial per machine. Tallies are bit-identical for every
	// setting (see gas.Options.WorkersPerMachine).
	WorkersPerMachine int
	// Cost overrides the cost model; zero value selects the default.
	Cost cluster.CostModel
	// Layout, when non-nil, reuses a prebuilt layout (Machines and
	// Partitioner are then ignored).
	Layout *cluster.Layout
}

// Result is a FrogWild run's output.
type Result struct {
	// Counts is c(v), the per-vertex settled-frog tally.
	Counts []int64
	// Estimate is π̂N = Counts normalized by the realized total.
	Estimate []float64
	// TotalFrogs is the realized tally sum (equals Walkers in split
	// mode under the default erasure model; a random quantity near it
	// in binomial mode; possibly lower under independent erasures).
	TotalFrogs int64
	// LostFrogs counts walkers stranded by independent erasures
	// (always 0 in split mode under ErasureAtLeastOne).
	LostFrogs int64
	// Stats reports engine metrics for the run.
	Stats *gas.RunStats
	// Layout is the cluster layout used.
	Layout *cluster.Layout
}

// Run executes FrogWild on the distributed engine with uniform frog
// placement (the paper's process).
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	return runWithPlacement(g, cfg, func(n, walkers int, r *rng.Stream) []int64 {
		init := make([]int64, n)
		buckets := make([]int, n)
		r.MultinomialSplit(walkers, buckets)
		for v, b := range buckets {
			init[v] = int64(b)
		}
		return init
	})
}

// runWithPlacement is the shared core of Run and RunPPR: placer
// produces the initial per-vertex frog counts (summing to walkers).
func runWithPlacement(g *graph.Graph, cfg Config, placer func(n, walkers int, r *rng.Stream) []int64) (*Result, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("frogwild: empty graph")
	}
	if cfg.Walkers <= 0 {
		return nil, fmt.Errorf("frogwild: Walkers must be positive, got %d", cfg.Walkers)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("frogwild: Iterations must be positive, got %d", cfg.Iterations)
	}
	ps := cfg.PS
	if ps == 0 {
		ps = 1
	}
	if ps < 0 || ps > 1 {
		return nil, fmt.Errorf("frogwild: ps %v out of [0,1]", cfg.PS)
	}
	pT := cfg.Teleport
	if pT == 0 {
		pT = pagerank.DefaultTeleport
	}
	if pT <= 0 || pT > 1 {
		return nil, fmt.Errorf("frogwild: teleport %v out of (0,1]", cfg.Teleport)
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.OutDegree(graph.VertexID(v)) == 0 {
			return nil, fmt.Errorf("frogwild: vertex %d has out-degree 0; repair dangling vertices first (the paper assumes dout > 0)", v)
		}
	}
	lay := cfg.Layout
	if lay == nil {
		machines := cfg.Machines
		if machines <= 0 {
			machines = 1
		}
		var err error
		lay, err = cluster.NewLayout(g, machines, cfg.Partitioner, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}

	// Place the N frogs; the placement distribution defines the walk's
	// restart distribution (uniform for PageRank, the source set for
	// personalized PageRank).
	init := placer(n, cfg.Walkers, rng.Derive(cfg.Seed, 0xF06))

	prog := &program{g: g, init: init, pT: pT, ps: ps, mode: cfg.Mode, estimator: cfg.Estimator}
	eng, err := gas.New[state, int64](lay, prog, gas.Options{
		PS:                  ps,
		Seed:                cfg.Seed,
		MaxSupersteps:       cfg.Iterations,
		Cost:                cfg.Cost,
		IndependentErasures: cfg.ErasureModel == ErasureIndependent,
		WorkersPerMachine:   cfg.WorkersPerMachine,
	})
	if err != nil {
		return nil, err
	}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}
	states := eng.MasterStates()
	res := &Result{
		Counts: make([]int64, n),
		Stats:  stats,
		Layout: lay,
	}
	for v, st := range states {
		res.Counts[v] = st.Count
		res.TotalFrogs += st.Count
	}
	if cfg.Mode == ScatterSplit && cfg.Estimator == EstimatorEndpoint && res.TotalFrogs < int64(cfg.Walkers) {
		res.LostFrogs = int64(cfg.Walkers) - res.TotalFrogs
	}
	res.Estimate = Estimate(res.Counts, res.TotalFrogs)
	return res, nil
}

// Estimate converts raw tallies into the π̂N distribution (Definition
// 5), normalizing by total.
func Estimate(counts []int64, total int64) []float64 {
	est := make([]float64, len(counts))
	if total <= 0 {
		return est
	}
	for v, c := range counts {
		est[v] = float64(c) / float64(total)
	}
	return est
}

// SerialWalk is the single-machine reference implementation of the
// FrogWild process: N independent truncated-geometric random walks
// (Process 15 in the paper), with no engine, no partitioning and no
// partial synchronization. It returns the per-vertex tally; the sum is
// exactly walkers. Used to cross-validate the distributed
// implementation.
func SerialWalk(g *graph.Graph, walkers, iterations int, pT float64, seed uint64) ([]int64, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("frogwild: empty graph")
	}
	if pT <= 0 || pT > 1 {
		return nil, fmt.Errorf("frogwild: teleport %v out of (0,1]", pT)
	}
	counts := make([]int64, n)
	r := rng.Derive(seed, 0x5E4)
	for i := 0; i < walkers; i++ {
		v := graph.VertexID(r.Intn(n))
		for hop := 0; hop < iterations; hop++ {
			if r.Bernoulli(pT) {
				break // the frog dies (teleportation boundary)
			}
			outs := g.OutNeighbors(v)
			if len(outs) == 0 {
				break
			}
			v = outs[r.Intn(len(outs))]
		}
		counts[v]++
	}
	return counts, nil
}

// SerialWalkParallel is SerialWalk with the walkers sharded across
// workers goroutines (0 = GOMAXPROCS, 1 = one goroutine). Walkers are
// split into fixed chunks whose boundaries depend only on the walker
// count; each chunk draws from its own derived rng.Stream and tallies
// into a per-worker array merged at the end, so the result is
// bit-identical for every workers value. Because the chunked streams
// differ from SerialWalk's single stream, the tallies for a given seed
// differ from SerialWalk's — both are exact samples of the same
// truncated-geometric walk process (Process 15).
func SerialWalkParallel(g *graph.Graph, walkers, iterations int, pT float64, seed uint64, workers int) ([]int64, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("frogwild: empty graph")
	}
	if pT <= 0 || pT > 1 {
		return nil, fmt.Errorf("frogwild: teleport %v out of (0,1]", pT)
	}
	if walkers < 0 {
		return nil, fmt.Errorf("frogwild: negative walker count %d", walkers)
	}
	chunks := parallel.Chunks(walkers)
	streams := rng.Shards(seed, 0x5E4, len(chunks))
	pool := parallel.NewPool(workers)
	defer pool.Close()
	workerCounts := make([][]int64, pool.NumWorkers())
	for w := range workerCounts {
		workerCounts[w] = make([]int64, n)
	}
	pool.Run(len(chunks), func(c, worker int) {
		r := streams[c]
		counts := workerCounts[worker]
		for i := chunks[c].Lo; i < chunks[c].Hi; i++ {
			v := graph.VertexID(r.Intn(n))
			for hop := 0; hop < iterations; hop++ {
				if r.Bernoulli(pT) {
					break
				}
				outs := g.OutNeighbors(v)
				if len(outs) == 0 {
					break
				}
				v = outs[r.Intn(len(outs))]
			}
			counts[v]++
		}
	})
	counts := workerCounts[0]
	for w := 1; w < len(workerCounts); w++ {
		for v, c := range workerCounts[w] {
			counts[v] += c
		}
	}
	return counts, nil
}
