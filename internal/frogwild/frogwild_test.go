package frogwild

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/pagerank"
	"repro/internal/topk"
)

func powerLaw(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: n, MeanOutDeg: 8, DegExponent: 2.0, PrefExponent: 1.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFrogConservationSplitMode(t *testing.T) {
	g := powerLaw(t, 500, 1)
	for _, machines := range []int{1, 4, 16} {
		for _, ps := range []float64{1, 0.4, 0.1} {
			res, err := Run(g, Config{Walkers: 5000, Iterations: 4, PS: ps, Machines: machines, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalFrogs != 5000 {
				t.Errorf("machines=%d ps=%v: %d frogs settled, want 5000 (conservation)",
					machines, ps, res.TotalFrogs)
			}
			var sum float64
			for _, p := range res.Estimate {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("estimate sums to %v", sum)
			}
		}
	}
}

func TestBinomialModeApproxConservation(t *testing.T) {
	g := powerLaw(t, 500, 2)
	res, err := Run(g, Config{Walkers: 20000, Iterations: 4, PS: 0.7, Machines: 8, Seed: 3, Mode: ScatterBinomial})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial scatter conserves only in expectation; the realized
	// total should still be within a few percent for 20k walkers.
	ratio := float64(res.TotalFrogs) / 20000
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("binomial-mode total %d wildly off 20000", res.TotalFrogs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := powerLaw(t, 300, 3)
	lay, err := cluster.NewLayout(g, 6, cluster.Random{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, Config{Walkers: 3000, Iterations: 4, PS: 0.4, Layout: lay, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Config{Walkers: 3000, Iterations: 4, PS: 0.4, Layout: lay, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Counts {
		if a.Counts[v] != b.Counts[v] {
			t.Fatalf("counts diverged at vertex %d: %d vs %d", v, a.Counts[v], b.Counts[v])
		}
	}
	c, err := Run(g, Config{Walkers: 3000, Iterations: 4, PS: 0.4, Layout: lay, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Counts {
		if a.Counts[v] != c.Counts[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tallies")
	}
}

func TestSerialWalkConserves(t *testing.T) {
	g := powerLaw(t, 200, 4)
	counts, err := SerialWalk(g, 7777, 5, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 7777 {
		t.Errorf("serial walk settled %d frogs, want 7777", total)
	}
}

func TestSerialWalkParallelBitIdentical(t *testing.T) {
	g := powerLaw(t, 500, 4)
	const walkers = 9999
	ref, err := SerialWalkParallel(g, walkers, 6, 0.15, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range ref {
		total += c
	}
	if total != walkers {
		t.Errorf("parallel walk settled %d frogs, want %d", total, walkers)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := SerialWalkParallel(g, walkers, 6, 0.15, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("workers=%d: counts[%d] = %d != serial %d (not bit-identical)",
					workers, v, got[v], ref[v])
			}
		}
	}
}

// TestSerialWalkParallelSamplesSameProcess checks the chunked-stream
// walk is a faithful sample of the same process as SerialWalk by
// comparing both estimates against exact PageRank.
func TestSerialWalkParallelSamplesSameProcess(t *testing.T) {
	g := powerLaw(t, 400, 6)
	const walkers = 60000
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SerialWalk(g, walkers, 8, 0.15, 23)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SerialWalkParallel(g, walkers, 8, 0.15, 23, 0)
	if err != nil {
		t.Fatal(err)
	}
	mSerial := topk.NormalizedCapturedMass(exact.Rank, Estimate(serial, walkers), 50)
	mPar := topk.NormalizedCapturedMass(exact.Rank, Estimate(par, walkers), 50)
	if math.Abs(mSerial-mPar) > 0.05 {
		t.Errorf("serial (%.3f) and parallel (%.3f) captured mass differ", mSerial, mPar)
	}
}

// TestMatchesSerialReference cross-validates the distributed engine
// against the serial random-walk process: with ps=1 both sample the
// same truncated-geometric walk distribution, so their estimates must
// capture similar top-k mass and be close in L1 on a fixed graph.
func TestMatchesSerialReference(t *testing.T) {
	g := powerLaw(t, 400, 5)
	const walkers = 60000
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(g, Config{Walkers: walkers, Iterations: 8, PS: 1, Machines: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	serialCounts, err := SerialWalk(g, walkers, 8, 0.15, 11)
	if err != nil {
		t.Fatal(err)
	}
	serialEst := Estimate(serialCounts, walkers)

	mDist := topk.NormalizedCapturedMass(exact.Rank, dist.Estimate, 50)
	mSerial := topk.NormalizedCapturedMass(exact.Rank, serialEst, 50)
	if math.Abs(mDist-mSerial) > 0.05 {
		t.Errorf("distributed (%.3f) and serial (%.3f) captured mass differ", mDist, mSerial)
	}
	var l1 float64
	for v := range dist.Estimate {
		l1 += math.Abs(dist.Estimate[v] - serialEst[v])
	}
	// Two independent samples of the same distribution with 60k draws
	// over ~400 effective states: expected L1 sampling noise is small.
	if l1 > 0.15 {
		t.Errorf("L1 between distributed and serial estimates = %v", l1)
	}
}

// TestCapturesTopKMass is the headline behaviour: FrogWild's estimator
// finds the heavy PageRank vertices.
func TestCapturesTopKMass(t *testing.T) {
	g := powerLaw(t, 2000, 6)
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []float64{1, 0.7, 0.4} {
		res, err := Run(g, Config{Walkers: 40000, Iterations: 5, PS: ps, Machines: 16, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		acc := topk.NormalizedCapturedMass(exact.Rank, res.Estimate, 100)
		if acc < 0.85 {
			t.Errorf("ps=%v captured %.3f of top-100 mass, want ≥ 0.85", ps, acc)
		}
	}
}

func TestMoreWalkersMoreAccuracy(t *testing.T) {
	g := powerLaw(t, 1500, 7)
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 8, cluster.Random{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	few, err := Run(g, Config{Walkers: 500, Iterations: 5, PS: 1, Layout: lay, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(g, Config{Walkers: 100000, Iterations: 5, PS: 1, Layout: lay, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	accFew := topk.NormalizedCapturedMass(exact.Rank, few.Estimate, 100)
	accMany := topk.NormalizedCapturedMass(exact.Rank, many.Estimate, 100)
	if accMany <= accFew {
		t.Errorf("100k walkers (%.3f) should beat 500 walkers (%.3f)", accMany, accFew)
	}
	if accMany < 0.95 {
		t.Errorf("100k walkers capture %.3f, want ≥ 0.95", accMany)
	}
}

func TestPSReducesNetworkKeepsAccuracy(t *testing.T) {
	g := powerLaw(t, 2000, 8)
	lay, err := cluster.NewLayout(g, 16, cluster.Random{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(g, Config{Walkers: 30000, Iterations: 4, PS: 1, Layout: lay, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := Run(g, Config{Walkers: 30000, Iterations: 4, PS: 0.1, Layout: lay, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tenth.Stats.Net.ClassBytes(cluster.TrafficSync) >= full.Stats.Net.ClassBytes(cluster.TrafficSync) {
		t.Error("ps=0.1 should reduce sync traffic")
	}
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	accFull := topk.NormalizedCapturedMass(exact.Rank, full.Estimate, 100)
	accTenth := topk.NormalizedCapturedMass(exact.Rank, tenth.Estimate, 100)
	// The paper's Fig 2: ps=0.1 degrades accuracy only mildly.
	if accTenth < accFull-0.15 {
		t.Errorf("ps=0.1 accuracy %.3f vs ps=1 %.3f: degradation too large", accTenth, accFull)
	}
}

func TestUniformGraphGivesUniformEstimate(t *testing.T) {
	// On the complete graph the invariant distribution is uniform; no
	// vertex should hoard frogs.
	g := gen.Complete(30)
	res, err := Run(g, Config{Walkers: 60000, Iterations: 6, PS: 1, Machines: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 30
	for v, p := range res.Estimate {
		if math.Abs(p-want) > 0.01 {
			t.Errorf("vertex %d estimate %v, want ≈ %v", v, p, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := gen.Cycle(4)
	cases := []Config{
		{Walkers: 0, Iterations: 3},
		{Walkers: 100, Iterations: 0},
		{Walkers: 100, Iterations: 3, PS: 1.5},
		{Walkers: 100, Iterations: 3, PS: -1},
		{Walkers: 100, Iterations: 3, Teleport: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Run(g, cfg); err == nil {
			t.Errorf("case %d should error: %+v", i, cfg)
		}
	}
	if _, err := Run(nil, Config{Walkers: 1, Iterations: 1}); err == nil {
		t.Error("nil graph should error")
	}
}

func TestDanglingRejected(t *testing.T) {
	g, err := graph.NewBuilder(2).AddEdge(0, 1).AllowDangling().Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Config{Walkers: 10, Iterations: 2}); err == nil {
		t.Error("dangling graph must be rejected")
	}
}

func TestEstimateEdgeCases(t *testing.T) {
	est := Estimate([]int64{1, 2, 3}, 0)
	for _, p := range est {
		if p != 0 {
			t.Error("zero total should give zero estimate")
		}
	}
	est = Estimate([]int64{1, 3}, 4)
	if est[0] != 0.25 || est[1] != 0.75 {
		t.Errorf("estimate = %v", est)
	}
}

func TestScatterModeString(t *testing.T) {
	if ScatterSplit.String() != "split" || ScatterBinomial.String() != "binomial" {
		t.Error("mode strings wrong")
	}
}

func TestIndependentErasuresLoseFrogsAtLowPS(t *testing.T) {
	// Example 9 (independent erasures) strands frogs whose vertex has
	// no synchronized replica with local out-edges; Example 10 never
	// does. At ps=0.1 on many machines stranding is common.
	g := powerLaw(t, 400, 31)
	lay, err := cluster.NewLayout(g, 16, cluster.Random{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := Run(g, Config{
		Walkers: 20000, Iterations: 4, PS: 0.1, Layout: lay, Seed: 8,
		ErasureModel: ErasureIndependent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if indep.LostFrogs == 0 {
		t.Error("independent erasures at ps=0.1 should strand some frogs")
	}
	if indep.TotalFrogs+indep.LostFrogs != 20000 {
		t.Errorf("accounting broken: settled %d + lost %d != 20000",
			indep.TotalFrogs, indep.LostFrogs)
	}
	atLeastOne, err := Run(g, Config{
		Walkers: 20000, Iterations: 4, PS: 0.1, Layout: lay, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if atLeastOne.LostFrogs != 0 || atLeastOne.TotalFrogs != 20000 {
		t.Errorf("at-least-one erasure lost frogs: settled %d lost %d",
			atLeastOne.TotalFrogs, atLeastOne.LostFrogs)
	}
}

func TestErasureStrings(t *testing.T) {
	if ErasureAtLeastOne.String() != "at-least-one" || ErasureIndependent.String() != "independent" {
		t.Error("erasure strings wrong")
	}
}

func TestVisitsEstimatorMoreEfficient(t *testing.T) {
	// With few frogs, counting every visit (≈1/pT samples per frog)
	// should capture at least as much top-k mass as endpoint counting,
	// at identical network cost.
	g := powerLaw(t, 2000, 41)
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 8, cluster.Random{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const walkers, iters, trials = 400, 8, 5
	var endpointAcc, visitsAcc float64
	for trial := 0; trial < trials; trial++ {
		seed := uint64(500 + trial)
		ep, err := Run(g, Config{Walkers: walkers, Iterations: iters, PS: 1, Layout: lay, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		vi, err := Run(g, Config{Walkers: walkers, Iterations: iters, PS: 1, Layout: lay, Seed: seed,
			Estimator: EstimatorVisits})
		if err != nil {
			t.Fatal(err)
		}
		endpointAcc += topk.NormalizedCapturedMass(exact.Rank, ep.Estimate, 50)
		visitsAcc += topk.NormalizedCapturedMass(exact.Rank, vi.Estimate, 50)
		if ep.Stats.Net.TotalBytes != vi.Stats.Net.TotalBytes {
			t.Errorf("estimator changed network bytes: %d vs %d",
				ep.Stats.Net.TotalBytes, vi.Stats.Net.TotalBytes)
		}
	}
	endpointAcc /= trials
	visitsAcc /= trials
	if visitsAcc < endpointAcc-0.02 {
		t.Errorf("visits estimator (%.3f) should not trail endpoint (%.3f)", visitsAcc, endpointAcc)
	}
	t.Logf("endpoint %.3f vs visits %.3f with %d frogs", endpointAcc, visitsAcc, walkers)
}

func TestVisitsEstimatorTallySemantics(t *testing.T) {
	// Total visits = Σ over frogs of (hops survived + 1) ≥ N, and each
	// frog contributes at most Iterations+1 visits.
	g := powerLaw(t, 300, 42)
	const walkers, iters = 2000, 4
	res, err := Run(g, Config{Walkers: walkers, Iterations: iters, PS: 1, Machines: 4, Seed: 5,
		Estimator: EstimatorVisits})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFrogs < walkers {
		t.Errorf("visit total %d below frog count %d", res.TotalFrogs, walkers)
	}
	if res.TotalFrogs > int64(walkers)*(iters+1) {
		t.Errorf("visit total %d exceeds max possible %d", res.TotalFrogs, walkers*(iters+1))
	}
	// Expected visits per frog ≈ Σ_{h=0..t} (1-pT)^h ≈ 4.0 for t=4.
	mean := float64(res.TotalFrogs) / walkers
	if mean < 3.0 || mean > 4.5 {
		t.Errorf("mean visits per frog %.2f, want ≈ 3.9", mean)
	}
}

func TestEstimatorString(t *testing.T) {
	if EstimatorEndpoint.String() != "endpoint" || EstimatorVisits.String() != "visits" {
		t.Error("estimator strings wrong")
	}
}
