package frogwild

// Personalized PageRank (PPR) extension. The paper's Section 2.4
// discusses top-k PPR (Avrachenkov et al. [6]) as a related problem;
// the FrogWild machinery solves it with a one-line change: frogs
// restart from the personalization set instead of the uniform
// distribution. Lemma 16's equivalence between explicit teleportation
// and geometric walk lengths is agnostic to the restart distribution,
// so the truncated-geometric process still samples the personalized
// invariant distribution.

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/pagerank"
	"repro/internal/rng"
)

// PPRConfig configures a personalized FrogWild run. All Config fields
// apply; Sources replaces the uniform start/restart distribution.
type PPRConfig struct {
	Config
	// Sources is the personalization set: frogs start (and conceptually
	// teleport back to) these vertices, uniformly. Must be non-empty
	// and within range.
	Sources []graph.VertexID
}

// RunPPR executes personalized FrogWild: the estimate approximates the
// heavy entries of the PPR vector of the source set.
func RunPPR(g *graph.Graph, cfg PPRConfig) (*Result, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("frogwild: empty graph")
	}
	if len(cfg.Sources) == 0 {
		return nil, errors.New("frogwild: PPR needs at least one source vertex")
	}
	for _, s := range cfg.Sources {
		if int(s) >= g.NumVertices() {
			return nil, fmt.Errorf("frogwild: source %d out of range", s)
		}
	}
	placer := func(n, walkers int, r *rng.Stream) []int64 {
		init := make([]int64, n)
		buckets := make([]int, len(cfg.Sources))
		r.MultinomialSplit(walkers, buckets)
		for i, b := range buckets {
			init[cfg.Sources[i]] += int64(b)
		}
		return init
	}
	return runWithPlacement(g, cfg.Config, placer)
}

// ExactPPR computes the exact personalized PageRank vector for the
// uniform distribution over sources by power iteration — ground truth
// for RunPPR. Dangling mass restarts at the sources.
func ExactPPR(g *graph.Graph, sources []graph.VertexID, teleport float64, tol float64, maxIter int) ([]float64, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("frogwild: empty graph")
	}
	if len(sources) == 0 {
		return nil, errors.New("frogwild: PPR needs at least one source vertex")
	}
	if teleport == 0 {
		teleport = pagerank.DefaultTeleport
	}
	if teleport <= 0 || teleport > 1 {
		return nil, fmt.Errorf("frogwild: teleport %v out of (0,1]", teleport)
	}
	if tol == 0 {
		tol = 1e-12
	}
	if maxIter == 0 {
		maxIter = 500
	}
	restart := make([]float64, n)
	share := 1 / float64(len(sources))
	for _, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("frogwild: source %d out of range", s)
		}
		restart[s] += share
	}
	cur := append([]float64(nil), restart...)
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		dangling := 0.0
		for v := 0; v < n; v++ {
			outs := g.OutNeighbors(graph.VertexID(v))
			if len(outs) == 0 {
				dangling += cur[v]
				continue
			}
			w := cur[v] / float64(len(outs))
			for _, d := range outs {
				next[d] += w
			}
		}
		delta := 0.0
		for i := range next {
			next[i] = (1-teleport)*(next[i]+dangling*restart[i]) + teleport*restart[i]
			delta += abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if delta < tol {
			break
		}
	}
	return cur, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
