package frogwild

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/pagerank"
	"repro/internal/topk"
)

func TestExactPPRIsDistribution(t *testing.T) {
	g := powerLaw(t, 500, 21)
	pi, err := ExactPPR(g, []graph.VertexID{0, 1, 2}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pi {
		if p < 0 {
			t.Fatal("negative PPR entry")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PPR sums to %v", sum)
	}
}

func TestExactPPRConcentratesNearSource(t *testing.T) {
	// On a long directed cycle, PPR from vertex 0 decays geometrically
	// with distance: pi(i) = pT (1-pT)^i / normalization.
	const n = 50
	es := make([]graph.Edge, n)
	for v := 0; v < n; v++ {
		es[v] = graph.Edge{Src: uint32(v), Dst: uint32((v + 1) % n)}
	}
	g := graph.FromEdges(n, es)
	pi, err := ExactPPR(g, []graph.VertexID{0}, 0.15, 1e-14, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		ratio := pi[i] / pi[i-1]
		if math.Abs(ratio-0.85) > 1e-6 {
			t.Fatalf("decay ratio at %d = %v, want 0.85", i, ratio)
		}
	}
	if pi[0] <= pi[n-1] {
		t.Error("source should dominate the farthest vertex")
	}
}

func TestExactPPRValidation(t *testing.T) {
	g := powerLaw(t, 50, 22)
	if _, err := ExactPPR(g, nil, 0, 0, 0); err == nil {
		t.Error("empty source set should error")
	}
	if _, err := ExactPPR(g, []graph.VertexID{9999}, 0, 0, 0); err == nil {
		t.Error("out-of-range source should error")
	}
	if _, err := ExactPPR(g, []graph.VertexID{0}, 2, 0, 0); err == nil {
		t.Error("bad teleport should error")
	}
}

func TestRunPPRMatchesExact(t *testing.T) {
	g := powerLaw(t, 800, 23)
	sources := []graph.VertexID{5, 77, 123}
	exact, err := ExactPPR(g, sources, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPPR(g, PPRConfig{
		Config:  Config{Walkers: 40000, Iterations: 10, PS: 1, Machines: 8, Seed: 31},
		Sources: sources,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFrogs != 40000 {
		t.Fatalf("PPR lost frogs: %d", res.TotalFrogs)
	}
	acc := topk.NormalizedCapturedMass(exact, res.Estimate, 20)
	if acc < 0.85 {
		t.Errorf("PPR captured mass %.3f, want ≥ 0.85", acc)
	}
}

func TestRunPPRPartialSync(t *testing.T) {
	g := powerLaw(t, 600, 24)
	sources := []graph.VertexID{1}
	exact, err := ExactPPR(g, sources, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPPR(g, PPRConfig{
		Config:  Config{Walkers: 30000, Iterations: 10, PS: 0.4, Machines: 12, Seed: 5},
		Sources: sources,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := topk.NormalizedCapturedMass(exact, res.Estimate, 20)
	if acc < 0.75 {
		t.Errorf("PPR with ps=0.4 captured %.3f", acc)
	}
}

func TestRunPPRValidation(t *testing.T) {
	g := powerLaw(t, 50, 25)
	if _, err := RunPPR(g, PPRConfig{Config: Config{Walkers: 10, Iterations: 2}}); err == nil {
		t.Error("no sources should error")
	}
	if _, err := RunPPR(g, PPRConfig{
		Config: Config{Walkers: 10, Iterations: 2}, Sources: []graph.VertexID{9999},
	}); err == nil {
		t.Error("out-of-range source should error")
	}
	if _, err := RunPPR(nil, PPRConfig{Sources: []graph.VertexID{0}}); err == nil {
		t.Error("nil graph should error")
	}
}

func TestPPRDiffersFromGlobal(t *testing.T) {
	// The personalized ranking from a low-importance source must
	// differ from the global ranking: vertices near the source gain.
	g := powerLaw(t, 1000, 26)
	// Pick a source with small global rank but existing out-edges.
	src := graph.VertexID(999)
	global, err := ExactPPR(g, allVertices(g), 0, 0, 0) // uniform restart = global PR
	if err != nil {
		t.Fatal(err)
	}
	personal, err := ExactPPR(g, []graph.VertexID{src}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if personal[src] <= global[src] {
		t.Error("source should gain rank under personalization")
	}
}

func allVertices(g *graph.Graph) []graph.VertexID {
	vs := make([]graph.VertexID, g.NumVertices())
	for v := range vs {
		vs[v] = graph.VertexID(v)
	}
	return vs
}

func TestExactPPRUniformSourceEqualsGlobalPR(t *testing.T) {
	// PPR with the uniform restart distribution is exactly global
	// PageRank: cross-check the two solvers against each other.
	g := powerLaw(t, 400, 27)
	ppr, err := ExactPPR(g, allVertices(g), 0, 1e-14, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exactGlobal(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range ppr {
		if math.Abs(ppr[v]-res[v]) > 1e-9 {
			t.Fatalf("PPR(uniform) != PageRank at %d: %v vs %v", v, ppr[v], res[v])
		}
	}
}

func exactGlobal(g *graph.Graph) ([]float64, error) {
	r, err := pagerank.Exact(g, pagerank.Options{Tolerance: 1e-14})
	if err != nil {
		return nil, err
	}
	return r.Rank, nil
}
