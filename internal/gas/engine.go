package gas

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// rng derivation domains, keeping per-purpose streams independent.
const (
	rngDomainApply   = 0xA11
	rngDomainScatter = 0x5CA
)

// scatterPurpose packs the scatter domain, superstep and machine into
// the single purpose label rng.Shards accepts, so each machine's
// scatter phase draws one independent stream per work chunk. Supersteps
// fit 24 bits and machines 16 (cluster.MaxMachines is far below that),
// so the packing is injective for every realizable run.
func scatterPurpose(step, machine int) uint64 {
	return rngDomainScatter<<40 | uint64(step)<<16 | uint64(machine)
}

// perEntryHeaderBytes is the wire overhead metered per message, sync or
// gather entry (a packed vertex id).
const perEntryHeaderBytes = 4

// Options configures an engine run.
type Options struct {
	// PS is the mirror synchronization probability, the paper's ps.
	// 1 reproduces stock PowerGraph behaviour.
	PS float64
	// Seed drives all engine randomness.
	Seed uint64
	// MaxSupersteps bounds the run; required (> 0).
	MaxSupersteps int
	// AlwaysActive runs Apply for every vertex every superstep
	// (fixed-iteration power iteration) instead of message-driven
	// activation.
	AlwaysActive bool
	// StopWhen, if non-nil, is evaluated after each superstep with the
	// superstep index and that superstep's aggregate; returning true
	// ends the run early.
	StopWhen func(superstep int, aggregate float64) bool
	// IndependentErasures selects the paper's Example 9 erasure model
	// for Splitter programs: when no synchronized replica of a vertex
	// has local scatter-direction edges, the state is simply stranded
	// (walkers are lost), instead of force-enabling one replica (the
	// default, Example 10 "At Least One Out-Edge Per Node").
	IndependentErasures bool
	// WorkersPerMachine shards every per-machine engine phase (gather,
	// apply, scatter, finalize) across a worker pool of this size per
	// simulated machine. 0 divides GOMAXPROCS evenly across machines
	// (at least one worker each); 1 runs each machine's loops serially
	// on its own goroutine, the pre-parallel behaviour. Results are
	// bit-identical for every setting: chunk boundaries depend only on
	// per-machine view sizes, per-chunk partial results are reduced in
	// chunk-index order, and scatter randomness is one derived stream
	// per chunk. Negative values are rejected by New.
	WorkersPerMachine int
	// Cost converts metered work into simulated seconds; the zero
	// value selects cluster.DefaultCostModel.
	Cost cluster.CostModel
}

// RunStats reports what a run did and what it cost.
type RunStats struct {
	// Supersteps actually executed.
	Supersteps int
	// Net aggregates all traffic sent during the run.
	Net cluster.NetworkReport
	// SimSeconds is the simulated elapsed time: per-superstep max over
	// machines plus barrier, summed.
	SimSeconds float64
	// SimSecondsPerStep breaks SimSeconds down by superstep.
	SimSecondsPerStep []float64
	// CPUSeconds is total simulated CPU time summed over machines (the
	// paper's Figure 1(d) metric).
	CPUSeconds float64
	// WallSeconds is the real elapsed time of the simulation itself.
	WallSeconds float64
	// AggregateByStep holds each superstep's Context.Aggregate sum.
	AggregateByStep []float64
	// ActiveByStep holds the number of vertices applied per superstep.
	ActiveByStep []int64
	// ReplicationFactor echoes the layout's replication factor.
	ReplicationFactor float64
}

// Engine executes a Program over a cluster Layout.
type Engine[V, M any] struct {
	lay  *cluster.Layout
	prog Program[V, M]
	opts Options

	n        int
	machines int
	sizes    Sizes
	// workers is the resolved per-machine worker-pool size.
	workers int

	splitter  Splitter[V]
	finalizer Finalizer[V, M]

	// Master state per vertex; written only by the master's machine.
	state []V
	// Replica states per machine, indexed by machine-local index. Nil
	// when the program has no gather phase (replica data unused).
	replica [][]V

	active     []bool
	nextActive []bool

	inbox      []M
	hasMsg     []bool
	nextInbox  []M
	nextHasMsg []bool

	// pending counts the vertices that take part in the next superstep
	// (activated or holding a message), maintained incrementally by the
	// routing phase so quiescence detection is O(1) instead of an O(n)
	// scan per superstep.
	pending int64

	// Per-machine gather partials for the current superstep, indexed by
	// machine-local vertex index (dense, so gather chunks write disjoint
	// ranges with no locking). hasPart marks which entries are live this
	// superstep; both are fully overwritten by every gather phase.
	partials [][]float64
	hasPart  [][]bool

	// syncOut[master][target] collects sync/share deliveries produced
	// in apply, consumed by the target machine in scatter.
	syncOut [][][]syncEntry[V]

	// outbox[machine] collects locally-combined scatter messages.
	outbox []map[graph.VertexID]M

	// Meters: per-machine this superstep, plus run totals.
	stepMeters []cluster.MachineMeter
	runMeters  []cluster.MachineMeter

	aggregates []float64

	// Fixed per-machine chunkings of the phase loops: boundaries are a
	// function of view sizes only, never of the worker count — the
	// invariant that keeps runs bit-identical for any WorkersPerMachine.
	gatherChunks [][]parallel.Range
	applyChunks  [][]parallel.Range

	scratch []machineScratch[V, M]
}

type syncEntry[V any] struct {
	v       graph.VertexID
	state   V
	scatter bool
}

// targetedSync is a sync delivery staged in a per-chunk apply buffer
// before the chunk-order merge into syncOut.
type targetedSync[V any] struct {
	target uint16
	entry  syncEntry[V]
}

// scatterItem is one sync delivery on the scatter work list, annotated
// with its source machine for receive metering.
type scatterItem[V any] struct {
	src   uint16
	entry syncEntry[V]
}

// machineScratch holds one machine's worker pool and reusable per-chunk
// buffers. Every per-chunk partial (meter, float aggregate, sync and
// message buffers) lands here and is reduced in chunk-index order on
// the machine's own goroutine after the pool drains.
type machineScratch[V, M any] struct {
	pool    *parallel.Pool
	meters  []cluster.MachineMeter
	aggs    []float64
	applied []int64
	sync    [][]targetedSync[V]
	out     []map[graph.VertexID]M
	work    []scatterItem[V]
	// newPending is the machine's newly activated vertex count from the
	// routing phase, summed into Engine.pending.
	newPending int64
}

// ensure grows the per-chunk buffers to hold at least n chunks,
// preserving already-allocated capacity.
func (sc *machineScratch[V, M]) ensure(n int) {
	for len(sc.meters) < n {
		sc.meters = append(sc.meters, cluster.MachineMeter{})
	}
	for len(sc.aggs) < n {
		sc.aggs = append(sc.aggs, 0)
	}
	for len(sc.applied) < n {
		sc.applied = append(sc.applied, 0)
	}
	for len(sc.sync) < n {
		sc.sync = append(sc.sync, nil)
	}
	for len(sc.out) < n {
		sc.out = append(sc.out, nil)
	}
}

// New validates the configuration and builds an engine. The layout may
// be shared across engines; the engine itself is single-use (call Run
// once).
func New[V, M any](lay *cluster.Layout, prog Program[V, M], opts Options) (*Engine[V, M], error) {
	if lay == nil || prog == nil {
		return nil, errors.New("gas: nil layout or program")
	}
	if opts.PS < 0 || opts.PS > 1 {
		return nil, fmt.Errorf("gas: ps %v out of [0,1]", opts.PS)
	}
	if opts.MaxSupersteps <= 0 {
		return nil, fmt.Errorf("gas: MaxSupersteps must be positive, got %d", opts.MaxSupersteps)
	}
	if opts.WorkersPerMachine < 0 {
		return nil, fmt.Errorf("gas: WorkersPerMachine must be >= 0, got %d", opts.WorkersPerMachine)
	}
	if opts.Cost == (cluster.CostModel{}) {
		opts.Cost = cluster.DefaultCostModel()
	}
	e := &Engine[V, M]{
		lay:      lay,
		prog:     prog,
		opts:     opts,
		n:        lay.Graph().NumVertices(),
		machines: lay.NumMachines(),
		sizes:    prog.Sizes(),
	}
	e.workers = opts.WorkersPerMachine
	if e.workers == 0 {
		// Machines already fan out one goroutine each; split the cores
		// among them.
		e.workers = max(1, runtime.GOMAXPROCS(0)/e.machines)
	}
	if s, ok := prog.(Splitter[V]); ok {
		e.splitter = s
	}
	if f, ok := prog.(Finalizer[V, M]); ok {
		e.finalizer = f
	}
	e.state = make([]V, e.n)
	e.active = make([]bool, e.n)
	e.nextActive = make([]bool, e.n)
	e.inbox = make([]M, e.n)
	e.hasMsg = make([]bool, e.n)
	e.nextInbox = make([]M, e.n)
	e.nextHasMsg = make([]bool, e.n)
	e.outbox = make([]map[graph.VertexID]M, e.machines)
	e.syncOut = make([][][]syncEntry[V], e.machines)
	for m := 0; m < e.machines; m++ {
		e.outbox[m] = make(map[graph.VertexID]M)
		e.syncOut[m] = make([][]syncEntry[V], e.machines)
	}
	e.stepMeters = make([]cluster.MachineMeter, e.machines)
	e.runMeters = make([]cluster.MachineMeter, e.machines)
	e.aggregates = make([]float64, e.machines)
	e.scratch = make([]machineScratch[V, M], e.machines)
	e.applyChunks = make([][]parallel.Range, e.machines)
	for m := 0; m < e.machines; m++ {
		e.applyChunks[m] = parallel.Chunks(len(lay.View(m).Masters()))
	}

	if prog.GatherDir() != DirNone {
		e.replica = make([][]V, e.machines)
		e.partials = make([][]float64, e.machines)
		e.hasPart = make([][]bool, e.machines)
		e.gatherChunks = make([][]parallel.Range, e.machines)
		for m := 0; m < e.machines; m++ {
			present := lay.View(m).NumPresent()
			e.replica[m] = make([]V, present)
			e.partials[m] = make([]float64, present)
			e.hasPart[m] = make([]bool, present)
			e.gatherChunks[m] = parallel.Chunks(present)
		}
	}

	// Initial states and activation. The pending counter needs no
	// seeding: quiescence is only consulted after a superstep, and every
	// superstep's routing phase recounts it from scratch.
	for v := 0; v < e.n; v++ {
		st, act := prog.InitState(graph.VertexID(v))
		e.state[v] = st
		e.active[v] = act
	}
	if e.replica != nil {
		for m := 0; m < e.machines; m++ {
			view := lay.View(m)
			for li, v := range view.Verts() {
				e.replica[m][li] = e.state[v]
			}
		}
	}
	return e, nil
}

// parallel runs fn(machine) concurrently for every machine and waits.
func (e *Engine[V, M]) parallel(fn func(m int)) {
	if e.machines == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.machines)
	for m := 0; m < e.machines; m++ {
		go func(m int) {
			defer wg.Done()
			fn(m)
		}(m)
	}
	wg.Wait()
}

// Run executes supersteps until MaxSupersteps, quiescence (no active
// vertices and no pending messages) or StopWhen fires, then runs the
// finalizer and returns statistics.
func (e *Engine[V, M]) Run() (*RunStats, error) {
	start := time.Now()
	for m := range e.scratch {
		e.scratch[m].pool = parallel.NewPool(e.workers)
	}
	defer func() {
		for m := range e.scratch {
			e.scratch[m].pool.Close()
		}
	}()
	stats := &RunStats{ReplicationFactor: e.lay.ReplicationFactor()}
	for step := 0; step < e.opts.MaxSupersteps; step++ {
		applied := e.superstep(step)
		stats.Supersteps = step + 1

		agg := 0.0
		for m := 0; m < e.machines; m++ {
			agg += e.aggregates[m]
		}
		stats.AggregateByStep = append(stats.AggregateByStep, agg)
		stats.ActiveByStep = append(stats.ActiveByStep, applied)

		stepSeconds := e.opts.Cost.SuperstepSeconds(e.stepMeters)
		stats.SimSecondsPerStep = append(stats.SimSecondsPerStep, stepSeconds)
		stats.SimSeconds += stepSeconds
		for m := 0; m < e.machines; m++ {
			e.runMeters[m].Add(&e.stepMeters[m])
			e.stepMeters[m].Reset()
		}

		if e.opts.StopWhen != nil && e.opts.StopWhen(step, agg) {
			break
		}
		if !e.opts.AlwaysActive && e.quiescent() {
			break
		}
	}
	// Deliver still-pending messages to the finalizer.
	if e.finalizer != nil {
		e.parallel(func(m int) {
			masters := e.lay.View(m).Masters()
			chunks := e.applyChunks[m]
			e.scratch[m].pool.Run(len(chunks), func(c, _ int) {
				for i := chunks[c].Lo; i < chunks[c].Hi; i++ {
					v := masters[i]
					e.state[v] = e.finalizer.Finalize(v, e.state[v], e.inbox[v], e.hasMsg[v])
				}
			})
		})
	}
	for m := 0; m < e.machines; m++ {
		mm := &e.runMeters[m]
		for c := cluster.TrafficGather; c <= cluster.TrafficControl; c++ {
			stats.Net.BytesByClass[c] += mm.SentBytes[c]
		}
		stats.Net.EdgeOps += mm.EdgeOps
		stats.Net.VertexOps += mm.VertexOps
	}
	for _, b := range stats.Net.BytesByClass {
		stats.Net.TotalBytes += b
	}
	stats.CPUSeconds = e.opts.Cost.CPUSeconds(e.runMeters)
	stats.WallSeconds = time.Since(start).Seconds()
	return stats, nil
}

// quiescent reports whether no vertex is active and no message is
// pending. The pending counter is maintained by the routing phase, so
// this is O(1) regardless of graph size.
func (e *Engine[V, M]) quiescent() bool {
	return e.pending == 0
}

// superstep runs one full GAS cycle and returns the number of applied
// vertices.
func (e *Engine[V, M]) superstep(step int) int64 {
	gatherDir := e.prog.GatherDir()
	scatterDir := e.prog.ScatterDir()
	for m := 0; m < e.machines; m++ {
		e.aggregates[m] = 0
	}

	// Phase 1 — gather partials on every machine, sharded over fixed
	// chunks of the machine's local-index space. Chunks write disjoint
	// dense ranges of partials/hasPart, so no merge is needed; chunk
	// meters are reduced in chunk order.
	if gatherDir != DirNone {
		e.parallel(func(m int) {
			view := e.lay.View(m)
			sc := &e.scratch[m]
			chunks := e.gatherChunks[m]
			sc.ensure(len(chunks))
			verts := view.Verts()
			part := e.partials[m]
			hasPart := e.hasPart[m]
			read := func(u graph.VertexID) V {
				li, _ := view.LocalIndex(u)
				return e.replica[m][li]
			}
			sc.pool.Run(len(chunks), func(c, _ int) {
				meter := &sc.meters[c]
				meter.Reset()
				ctx := &Context{Superstep: step, NumVertices: e.n, NumMachines: e.machines, Machine: m}
				for li := chunks[c].Lo; li < chunks[c].Hi; li++ {
					v := graph.VertexID(verts[li])
					hasPart[li] = false
					if !e.isActive(v) {
						continue
					}
					var neighbors []graph.VertexID
					if gatherDir == DirIn {
						neighbors = view.InNeighborsLocal(int32(li))
					} else {
						neighbors = view.OutNeighborsLocal(int32(li))
					}
					if len(neighbors) == 0 {
						continue
					}
					part[li] = e.prog.GatherLocal(v, neighbors, read, ctx)
					hasPart[li] = true
					meter.EdgeOps += int64(len(neighbors))
					if int(e.lay.MasterOf(v)) != m {
						meter.Send(cluster.TrafficGather, int64(e.sizes.Acc)+perEntryHeaderBytes)
					}
				}
			})
			for c := range chunks {
				e.stepMeters[m].Add(&sc.meters[c])
			}
		})
	}

	// Phase 2 — apply at masters, sharded over fixed chunks of the
	// master list; plan sync and scatter shares into per-chunk buffers.
	// Aggregates, meters and sync deliveries are reduced in chunk-index
	// order, keeping floating-point sums and syncOut ordering identical
	// for any worker count.
	e.parallel(func(m int) {
		view := e.lay.View(m)
		sc := &e.scratch[m]
		masters := view.Masters()
		chunks := e.applyChunks[m]
		sc.ensure(len(chunks))
		sc.pool.Run(len(chunks), func(c, _ int) {
			meter := &sc.meters[c]
			meter.Reset()
			sc.aggs[c] = 0
			sc.applied[c] = 0
			buf := sc.sync[c][:0]
			for i := chunks[c].Lo; i < chunks[c].Hi; i++ {
				v := graph.VertexID(masters[i])
				if !e.isActive(v) && !e.hasMsg[v] {
					continue
				}
				sc.applied[c]++
				acc := 0.0
				if gatherDir != DirNone {
					for mm := 0; mm < e.machines; mm++ {
						li, ok := e.lay.View(mm).LocalIndex(v)
						if !ok || !e.hasPart[mm][li] {
							continue
						}
						acc += e.partials[mm][li]
						if mm != m {
							meter.Recv(cluster.TrafficGather, int64(e.sizes.Acc)+perEntryHeaderBytes)
						}
					}
				}
				ctx := &Context{
					Superstep: step, NumVertices: e.n, NumMachines: e.machines, Machine: m,
					Rng: rng.Derive(e.opts.Seed, rngDomainApply, uint64(step), uint64(v)),
				}
				newState, doScatter := e.prog.Apply(v, e.state[v], acc, e.inbox[v], e.hasMsg[v], ctx)
				e.state[v] = newState
				sc.aggs[c] += ctx.aggregate
				meter.VertexOps++
				if e.replica != nil {
					if li, ok := view.LocalIndex(v); ok {
						e.replica[m][li] = newState
					}
				}
				if doScatter {
					buf = e.planSync(m, v, newState, ctx.Rng, meter, buf)
				}
			}
			sc.sync[c] = buf
		})
		for c := range chunks {
			e.stepMeters[m].Add(&sc.meters[c])
			e.aggregates[m] += sc.aggs[c]
			for _, ts := range sc.sync[c] {
				e.syncOut[m][ts.target] = append(e.syncOut[m][ts.target], ts.entry)
			}
		}
	})
	var applied int64
	for m := range e.scratch {
		for c := range e.applyChunks[m] {
			applied += e.scratch[m].applied[c]
		}
	}

	// Phase 3 — deliver syncs, then scatter on synchronized replicas.
	// Each machine flattens its incoming deliveries (source order, then
	// append order — both deterministic) into a work list, chunks it,
	// and gives every chunk its own derived rng stream; per-chunk
	// outboxes merge in chunk order via CombineMsg.
	e.parallel(func(m int) {
		view := e.lay.View(m)
		sc := &e.scratch[m]
		work := sc.work[:0]
		for src := 0; src < e.machines; src++ {
			for _, entry := range e.syncOut[src][m] {
				work = append(work, scatterItem[V]{src: uint16(src), entry: entry})
			}
		}
		sc.work = work
		chunks := parallel.Chunks(len(work))
		sc.ensure(len(chunks))
		streams := rng.Shards(e.opts.Seed, scatterPurpose(step, m), len(chunks))
		// With a single chunk the merge is the identity, so the chunk
		// can combine straight into the machine outbox.
		direct := len(chunks) == 1
		sc.pool.Run(len(chunks), func(c, _ int) {
			meter := &sc.meters[c]
			meter.Reset()
			out := e.outbox[m]
			if !direct {
				if sc.out[c] == nil {
					sc.out[c] = make(map[graph.VertexID]M)
				} else {
					clear(sc.out[c])
				}
				out = sc.out[c]
			}
			emit := func(dst graph.VertexID, msg M) {
				e.combineInto(out, dst, msg)
			}
			for i := chunks[c].Lo; i < chunks[c].Hi; i++ {
				entry := work[i].entry
				if int(work[i].src) != m {
					meter.Recv(cluster.TrafficSync, int64(e.sizes.State)+perEntryHeaderBytes)
				}
				li, ok := view.LocalIndex(entry.v)
				if !ok {
					continue
				}
				if e.replica != nil && e.splitter == nil {
					e.replica[m][li] = entry.state
				}
				if !entry.scatter || scatterDir == DirNone {
					continue
				}
				var neighbors []graph.VertexID
				if scatterDir == DirOut {
					neighbors = view.OutNeighborsLocal(li)
				} else {
					neighbors = view.InNeighborsLocal(li)
				}
				if len(neighbors) == 0 {
					continue
				}
				ctx := &Context{
					Superstep: step, NumVertices: e.n, NumMachines: e.machines, Machine: m,
					Rng: streams[c],
				}
				e.prog.ScatterLocal(entry.v, entry.state, neighbors, emit, ctx)
				meter.EdgeOps += int64(len(neighbors))
			}
		})
		out := e.outbox[m]
		for c := range chunks {
			e.stepMeters[m].Add(&sc.meters[c])
			if direct {
				continue
			}
			for dst, msg := range sc.out[c] {
				e.combineInto(out, dst, msg)
			}
		}
	})

	// Phase 4 — route combined messages to destination masters. Each
	// destination machine drains every outbox for its own vertices, so
	// writes to nextInbox are disjoint across goroutines; each machine
	// counts its newly activated vertices for the pending counter.
	e.parallel(func(m int) {
		meter := &e.stepMeters[m]
		var fresh int64
		for src := 0; src < e.machines; src++ {
			for dst, msg := range e.outbox[src] {
				if int(e.lay.MasterOf(dst)) != m {
					continue
				}
				if src != m {
					meter.Recv(cluster.TrafficSignal, int64(e.sizes.Msg)+perEntryHeaderBytes)
				}
				if e.nextHasMsg[dst] {
					e.nextInbox[dst] = e.prog.CombineMsg(e.nextInbox[dst], msg)
				} else {
					e.nextInbox[dst] = msg
					e.nextHasMsg[dst] = true
					fresh++
				}
				e.nextActive[dst] = true
			}
		}
		e.scratch[m].newPending = fresh
	})
	e.pending = 0
	for m := range e.scratch {
		e.pending += e.scratch[m].newPending
	}
	// Meter sends for signals (per source machine) and charge one
	// control message per machine pair for the barrier.
	for src := 0; src < e.machines; src++ {
		meter := &e.stepMeters[src]
		for dst := range e.outbox[src] {
			if int(e.lay.MasterOf(dst)) != src {
				meter.Send(cluster.TrafficSignal, int64(e.sizes.Msg)+perEntryHeaderBytes)
			}
		}
		meter.Send(cluster.TrafficControl, int64(8*(e.machines-1)))
	}

	// Swap double buffers and clear scratch.
	e.inbox, e.nextInbox = e.nextInbox, e.inbox
	e.hasMsg, e.nextHasMsg = e.nextHasMsg, e.hasMsg
	e.active, e.nextActive = e.nextActive, e.active
	clear(e.nextActive)
	clear(e.nextHasMsg)
	clear(e.nextInbox) // drop consumed messages; stale values must never leak
	for m := 0; m < e.machines; m++ {
		clear(e.outbox[m])
		for t := 0; t < e.machines; t++ {
			e.syncOut[m][t] = e.syncOut[m][t][:0]
		}
	}
	return applied
}

// combineInto upserts msg for dst into an outbox map, merging with any
// earlier message via the program's combiner.
func (e *Engine[V, M]) combineInto(out map[graph.VertexID]M, dst graph.VertexID, msg M) {
	if prev, ok := out[dst]; ok {
		out[dst] = e.prog.CombineMsg(prev, msg)
	} else {
		out[dst] = msg
	}
}

// isActive reports whether v takes part in this superstep.
func (e *Engine[V, M]) isActive(v graph.VertexID) bool {
	return e.opts.AlwaysActive || e.active[v] || e.hasMsg[v]
}

// planSync decides which replicas of v synchronize this superstep,
// meters the sync traffic, and appends per-target sync entries (with
// split shares for Splitter programs) to the caller's chunk buffer,
// returning the grown buffer. It runs at v's master machine m; r is the
// vertex's apply-phase stream, so the mirror coin flips are
// deterministic per (seed, superstep, vertex) regardless of chunking.
func (e *Engine[V, M]) planSync(m int, v graph.VertexID, state V, r *rng.Stream, meter *cluster.MachineMeter, sink []targetedSync[V]) []targetedSync[V] {
	presences := e.lay.Presences(v)
	if len(presences) == 0 {
		return sink
	}
	// presences[0] is the master's machine: always synchronized.
	synced := make([]uint16, 1, len(presences))
	synced[0] = presences[0]
	for _, mirror := range presences[1:] {
		if r.Bernoulli(e.opts.PS) {
			synced = append(synced, mirror)
			meter.Send(cluster.TrafficSync, int64(e.sizes.State)+perEntryHeaderBytes)
		}
	}

	if e.splitter == nil {
		for _, target := range synced {
			sink = append(sink, targetedSync[V]{target: target, entry: syncEntry[V]{v: v, state: state, scatter: true}})
		}
		return sink
	}

	// Splitter path: shares go only to synchronized replicas that own
	// local scatter-direction edges of v. If none qualifies, force-
	// enable one replica that has local edges — the paper's "At Least
	// One Out-Edge Per Node" erasure model (Example 10).
	scatterDir := e.prog.ScatterDir()
	localDeg := func(machine uint16) int {
		view := e.lay.View(int(machine))
		li, ok := view.LocalIndex(v)
		if !ok {
			return 0
		}
		if scatterDir == DirIn {
			return view.LocalInDegree(li)
		}
		return view.LocalOutDegree(li)
	}
	targets := make([]uint16, 0, len(synced))
	weights := make([]int, 0, len(synced))
	for _, t := range synced {
		if d := localDeg(t); d > 0 {
			targets = append(targets, t)
			weights = append(weights, d)
		}
	}
	if len(targets) == 0 {
		if e.opts.IndependentErasures {
			return sink // Example 9: the state strands this superstep
		}
		// Collect all replicas with local edges and force one.
		var candidates []uint16
		for _, t := range presences {
			if localDeg(t) > 0 {
				candidates = append(candidates, t)
			}
		}
		if len(candidates) == 0 {
			return sink // vertex has no scatter-direction edges anywhere
		}
		forced := candidates[r.Intn(len(candidates))]
		targets = append(targets, forced)
		weights = append(weights, localDeg(forced))
		if int(forced) != m {
			meter.Send(cluster.TrafficSync, int64(e.sizes.State)+perEntryHeaderBytes)
		}
	}
	shares := e.splitter.Split(v, state, weights, r)
	if len(shares) != len(targets) {
		panic(fmt.Sprintf("gas: Split returned %d shares for %d targets", len(shares), len(targets)))
	}
	for i, target := range targets {
		sink = append(sink, targetedSync[V]{target: target, entry: syncEntry[V]{v: v, state: shares[i], scatter: true}})
	}
	return sink
}

// MasterStates returns the final master state of every vertex, indexed
// by vertex id. Valid after Run.
func (e *Engine[V, M]) MasterStates() []V { return e.state }
