package gas

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/rng"
)

// tokenProgram floods integer tokens along out-edges: every vertex
// forwards the tokens it receives to all successors. It exercises
// messaging, activation and metering without randomness.
type tokenProgram struct{}

type tokState struct {
	Seen int64
	Hold int64
}

func (tokenProgram) InitState(v graph.VertexID) (tokState, bool) {
	if v == 0 {
		return tokState{Hold: 1}, true
	}
	return tokState{}, false
}
func (tokenProgram) GatherDir() Dir { return DirNone }
func (tokenProgram) GatherLocal(graph.VertexID, []graph.VertexID, func(graph.VertexID) tokState, *Context) float64 {
	return 0
}
func (tokenProgram) Apply(v graph.VertexID, st tokState, _ float64, msg int64, hasMsg bool, ctx *Context) (tokState, bool) {
	var in int64
	if ctx.Superstep == 0 {
		in = st.Hold
	}
	if hasMsg {
		in += msg
	}
	st.Seen += in
	st.Hold = in
	return st, in > 0
}
func (tokenProgram) ScatterDir() Dir { return DirOut }
func (tokenProgram) ScatterLocal(v graph.VertexID, st tokState, neighbors []graph.VertexID, emit func(graph.VertexID, int64), ctx *Context) {
	for _, d := range neighbors {
		emit(d, st.Hold)
	}
}
func (tokenProgram) CombineMsg(a, b int64) int64 { return a + b }
func (tokenProgram) Sizes() Sizes                { return Sizes{State: 8, Msg: 8, Acc: 8} }

func ringLayout(t testing.TB, n, machines int) *cluster.Layout {
	t.Helper()
	lay, err := cluster.NewLayout(gen.Cycle(n), machines, cluster.Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestTokenTravelsRing(t *testing.T) {
	// A single token injected at vertex 0 of a 10-cycle must be at
	// vertex (steps mod 10) pending after `steps` supersteps; each
	// visited vertex saw it once.
	for _, machines := range []int{1, 3, 7} {
		lay := ringLayout(t, 10, machines)
		eng, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: 1, Seed: 9, MaxSupersteps: 4})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Supersteps != 4 {
			t.Fatalf("machines=%d: supersteps = %d", machines, stats.Supersteps)
		}
		states := eng.MasterStates()
		for v := 0; v < 10; v++ {
			want := int64(0)
			if v <= 3 { // applied at steps 0..3
				want = 1
			}
			if states[v].Seen != want {
				t.Errorf("machines=%d vertex %d: seen %d want %d", machines, v, states[v].Seen, want)
			}
		}
	}
}

func TestQuiescenceStopsEarly(t *testing.T) {
	// Star leaves point at hub only; hub points at leaves. Token at a
	// leaf: leaf -> hub -> all leaves -> hub -> ... never quiesces.
	// But on a path-like graph (cycle truncated by max steps) we can
	// check quiescence with a program that stops forwarding.
	lay := ringLayout(t, 5, 2)
	// Program forwards only at superstep 0.
	eng, err := New[tokState, int64](lay, onceProgram{}, Options{PS: 1, Seed: 1, MaxSupersteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps > 3 {
		t.Errorf("engine should quiesce quickly, ran %d supersteps", stats.Supersteps)
	}
}

// onceProgram emits only from vertex 0 at superstep 0; receivers do
// not forward.
type onceProgram struct{ tokenProgram }

func (onceProgram) Apply(v graph.VertexID, st tokState, _ float64, msg int64, hasMsg bool, ctx *Context) (tokState, bool) {
	if ctx.Superstep == 0 && v == 0 {
		st.Hold = 1
		return st, true
	}
	if hasMsg {
		st.Seen += msg
	}
	return st, false
}

func TestStopWhen(t *testing.T) {
	lay := ringLayout(t, 10, 2)
	stopped := 0
	eng, err := New[tokState, int64](lay, tokenProgram{}, Options{
		PS: 1, Seed: 1, MaxSupersteps: 50,
		StopWhen: func(step int, agg float64) bool {
			stopped = step
			return step >= 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 3 || stopped != 2 {
		t.Errorf("supersteps = %d stopped at %d", stats.Supersteps, stopped)
	}
}

func TestOptionValidation(t *testing.T) {
	lay := ringLayout(t, 4, 1)
	if _, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: 1.2, MaxSupersteps: 1}); err == nil {
		t.Error("ps > 1 should error")
	}
	if _, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: -0.1, MaxSupersteps: 1}); err == nil {
		t.Error("ps < 0 should error")
	}
	if _, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: 1}); err == nil {
		t.Error("MaxSupersteps 0 should error")
	}
	if _, err := New[tokState, int64](nil, tokenProgram{}, Options{PS: 1, MaxSupersteps: 1}); err == nil {
		t.Error("nil layout should error")
	}
}

func TestSingleMachineNoNetwork(t *testing.T) {
	lay := ringLayout(t, 20, 1)
	eng, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: 1, Seed: 2, MaxSupersteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Net.ClassBytes(cluster.TrafficSync) +
		stats.Net.ClassBytes(cluster.TrafficSignal) +
		stats.Net.ClassBytes(cluster.TrafficGather); got != 0 {
		t.Errorf("single machine sent %d data bytes, want 0", got)
	}
}

func TestDeterminism(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 300, MeanOutDeg: 6, DegExponent: 2.1, PrefExponent: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 8, cluster.Random{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]tokState, *RunStats) {
		eng, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: 0.5, Seed: 77, MaxSupersteps: 5})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]tokState, len(eng.MasterStates()))
		copy(out, eng.MasterStates())
		return out, stats
	}
	a, sa := run()
	b, sb := run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("state diverged at vertex %d: %+v vs %+v", v, a[v], b[v])
		}
	}
	if sa.Net.TotalBytes != sb.Net.TotalBytes {
		t.Errorf("network bytes diverged: %d vs %d", sa.Net.TotalBytes, sb.Net.TotalBytes)
	}
}

func TestPSReducesSyncTraffic(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 500, MeanOutDeg: 8, DegExponent: 2.0, PrefExponent: 1.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 16, cluster.Random{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	syncBytes := func(ps float64) int64 {
		eng, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: ps, Seed: 4, MaxSupersteps: 6})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats.Net.ClassBytes(cluster.TrafficSync)
	}
	full := syncBytes(1.0)
	tenth := syncBytes(0.1)
	if full == 0 {
		t.Fatal("no sync traffic at ps=1?")
	}
	ratio := float64(tenth) / float64(full)
	if ratio > 0.35 {
		t.Errorf("ps=0.1 sync bytes ratio = %v, want well below 1 (≈0.1)", ratio)
	}
}

func TestAggregate(t *testing.T) {
	lay := ringLayout(t, 10, 2)
	eng, err := New[tokState, int64](lay, aggProgram{}, Options{PS: 1, Seed: 1, MaxSupersteps: 3, AlwaysActive: true})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for step, agg := range stats.AggregateByStep {
		if agg != 10 { // each of the 10 vertices aggregates 1.0
			t.Errorf("step %d aggregate = %v, want 10", step, agg)
		}
	}
	for step, act := range stats.ActiveByStep {
		if act != 10 {
			t.Errorf("step %d active = %d, want 10", step, act)
		}
	}
}

type aggProgram struct{ tokenProgram }

func (aggProgram) Apply(v graph.VertexID, st tokState, _ float64, _ int64, _ bool, ctx *Context) (tokState, bool) {
	ctx.Aggregate(1)
	return st, false
}

func TestSimTimePositive(t *testing.T) {
	lay := ringLayout(t, 50, 4)
	eng, err := New[tokState, int64](lay, tokenProgram{}, Options{PS: 1, Seed: 1, MaxSupersteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimSeconds <= 0 {
		t.Error("simulated time must be positive")
	}
	if len(stats.SimSecondsPerStep) != stats.Supersteps {
		t.Error("per-step times length mismatch")
	}
	sum := 0.0
	for _, s := range stats.SimSecondsPerStep {
		sum += s
	}
	if diff := sum - stats.SimSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Error("per-step times do not sum to total")
	}
	if stats.WallSeconds <= 0 {
		t.Error("wall time must be positive")
	}
}

// splitterProgram tests the Splitter path: state carries a count that
// must be conserved across shares.
type splitterProgram struct{ tokenProgram }

func (splitterProgram) Split(v graph.VertexID, st tokState, weights []int, r *rng.Stream) []tokState {
	shares := make([]tokState, len(weights))
	total := 0
	for _, w := range weights {
		total += w
	}
	remaining := st.Hold
	for i := 0; i < len(weights)-1; i++ {
		x := int64(r.Binomial(int(remaining), float64(weights[i])/float64(total)))
		shares[i].Hold = x
		remaining -= x
		total -= weights[i]
	}
	shares[len(weights)-1].Hold = remaining
	return shares
}

func (splitterProgram) ScatterLocal(v graph.VertexID, st tokState, neighbors []graph.VertexID, emit func(graph.VertexID, int64), ctx *Context) {
	if st.Hold <= 0 {
		return
	}
	counts := make([]int, len(neighbors))
	ctx.Rng.MultinomialSplit(int(st.Hold), counts)
	for i, c := range counts {
		if c > 0 {
			emit(neighbors[i], int64(c))
		}
	}
}

func TestSplitterConservesTokens(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 200, MeanOutDeg: 5, DegExponent: 2.1, PrefExponent: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []float64{1.0, 0.5, 0.1} {
		lay, err := cluster.NewLayout(g, 8, cluster.Random{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New[tokState, int64](lay, splitterProgram{}, Options{PS: ps, Seed: 13, MaxSupersteps: 6})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		// After 6 steps, the single token from vertex 0 is somewhere in
		// flight or held; total "Seen" counts how many vertex-visits
		// occurred: exactly 7 apply deliveries (step 0 + 6 hops) would
		// need inbox draining; instead check token never duplicated:
		// every state.Hold is 0 or 1 and at most one vertex held it per
		// superstep is implied by Seen sums.
		var totalSeen int64
		for _, st := range eng.MasterStates() {
			totalSeen += st.Seen
		}
		if totalSeen != 6 { // steps 0..5 each delivered exactly one token-visit
			t.Errorf("ps=%v: total visits = %d, want 6 (token duplicated or lost)", ps, totalSeen)
		}
	}
}
