package gas

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph/gen"
)

// runTokens floods tokens over a power-law graph with the given
// per-machine worker count and returns the final states plus stats.
func runTokens(t *testing.T, lay *cluster.Layout, workers int) ([]tokState, *RunStats) {
	t.Helper()
	eng, err := New[tokState, int64](lay, tokenProgram{}, Options{
		PS: 1, Seed: 5, MaxSupersteps: 5, WorkersPerMachine: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats.WallSeconds = 0 // the one field legitimately run-dependent
	return eng.MasterStates(), stats
}

// TestWorkersPerMachineBitIdentical pins the engine-level guarantee:
// chunked phase execution returns the same states and the same meters
// for every worker count, including one that does not divide the chunk
// counts.
func TestWorkersPerMachineBitIdentical(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 2000, MeanOutDeg: 6, DegExponent: 2.0, PrefExponent: 1.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 5, cluster.Random{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	refStates, refStats := runTokens(t, lay, 1)
	for _, workers := range []int{2, 4, 7} {
		states, stats := runTokens(t, lay, workers)
		if !reflect.DeepEqual(states, refStates) {
			t.Errorf("workers=%d: master states diverge from workers=1", workers)
		}
		if !reflect.DeepEqual(stats, refStats) {
			t.Errorf("workers=%d: stats diverge from workers=1\n got %+v\nwant %+v", workers, stats, refStats)
		}
	}
}

func TestWorkersPerMachineValidation(t *testing.T) {
	lay := ringLayout(t, 10, 2)
	if _, err := New[tokState, int64](lay, tokenProgram{}, Options{
		PS: 1, Seed: 1, MaxSupersteps: 2, WorkersPerMachine: -1,
	}); err == nil {
		t.Error("negative WorkersPerMachine should be rejected")
	}
	// 0 (auto) and large explicit counts are both valid.
	for _, workers := range []int{0, 64} {
		if _, err := New[tokState, int64](lay, tokenProgram{}, Options{
			PS: 1, Seed: 1, MaxSupersteps: 2, WorkersPerMachine: workers,
		}); err != nil {
			t.Errorf("WorkersPerMachine=%d rejected: %v", workers, err)
		}
	}
}
