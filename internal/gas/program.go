// Package gas implements a synchronous, vertex-cut GAS (gather, apply,
// scatter) graph engine in the style of GraphLab PowerGraph, extended
// with the FrogWild paper's one engine modification: a per-run scalar
// ps ∈ [0,1] such that at every superstep each master synchronizes each
// of its mirrors only with probability ps. Mirrors that are not
// synchronized stay idle for that superstep's scatter phase, which is
// exactly the paper's randomized-synchronization patch and its source
// of network savings.
//
// A superstep proceeds in phases, matching PowerGraph's synchronous
// engine:
//
//  1. Gather: every machine computes a partial accumulator for each
//     active vertex it hosts from its locally-owned gather-direction
//     edges; partials flow mirror→master.
//  2. Apply: the master combines partials and the vertex's combined
//     inbound message and runs Apply, producing the new state.
//  3. Sync: the master synchronizes each mirror with probability ps
//     (the master's own machine is always current). Programs that
//     implement Splitter divide their state across the synchronized
//     replicas instead of copying it — this is how FrogWild's frogs
//     fan out while each frog still traverses exactly one edge.
//  4. Scatter: every synchronized replica runs ScatterLocal over its
//     local scatter-direction edges and may emit messages; messages
//     are combined per destination and delivered to the destination's
//     master at the start of the next superstep, activating it.
//
// Execution is parallel at two levels: one goroutine per simulated
// machine, and within each machine a worker pool
// (Options.WorkersPerMachine) that shards the gather, apply and scatter
// loops over fixed chunks of the machine's local vertex view. Chunk
// boundaries depend only on view sizes, per-chunk partials (meters,
// float aggregates, sync deliveries, combined messages) are reduced in
// chunk-index order, and scatter randomness is one derived stream per
// chunk — so runs are bit-identical for any worker count.
//
// All randomness derives deterministically from the run seed, the
// superstep and the vertex, chunk or machine, so runs are reproducible
// regardless of goroutine scheduling.
package gas

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Dir selects which locally-owned edges a phase operates on.
type Dir int

const (
	// DirNone disables the phase.
	DirNone Dir = iota
	// DirIn selects in-edges (gather over predecessors, as PageRank
	// does).
	DirIn
	// DirOut selects out-edges (scatter to successors, as both PageRank
	// and FrogWild do).
	DirOut
)

// Context carries per-call engine context into program hooks.
type Context struct {
	// Superstep is the current superstep, starting at 0.
	Superstep int
	// NumVertices is the global vertex count.
	NumVertices int
	// NumMachines is the cluster size.
	NumMachines int
	// Machine is the executing machine (gather/scatter hooks) or the
	// master machine (apply).
	Machine int
	// Rng is a deterministic stream scoped to this (superstep, vertex)
	// or (superstep, machine, vertex) as appropriate.
	Rng *rng.Stream

	aggregate float64
}

// Aggregate adds x to the engine's global per-superstep aggregator
// (summed across vertices and machines); used e.g. for PageRank's
// convergence residual. Only meaningful from Apply.
func (c *Context) Aggregate(x float64) { c.aggregate += x }

// Sizes declares the serialized byte widths the engine meters for a
// program's data types.
type Sizes struct {
	// State is the vertex-state bytes copied master→mirror on sync.
	State int
	// Msg is the message payload bytes (the per-entry vertex-id header
	// is added by the engine).
	Msg int
	// Acc is the gather accumulator bytes sent mirror→master.
	Acc int
}

// Program is a vertex program executed by the engine. V is the vertex
// state type; M is the message type emitted by scatter.
//
// CombineMsg must be commutative and associative, and exact (e.g.
// integer addition) if bit-reproducible runs are required; the engine
// combines messages in arrival order.
type Program[V, M any] interface {
	// InitState returns vertex v's initial state and whether v starts
	// active. It is called once per vertex before superstep 0.
	InitState(v graph.VertexID) (V, bool)

	// GatherDir selects the gather phase's edge direction; DirNone
	// skips the phase entirely.
	GatherDir() Dir

	// GatherLocal computes this machine's partial accumulator for
	// vertex v. neighbors holds the gather-direction endpoints of the
	// machine's locally-owned edges of v (sources for DirIn,
	// destinations for DirOut); read returns the machine-local replica
	// state of any vertex present on this machine.
	GatherLocal(v graph.VertexID, neighbors []graph.VertexID, read func(graph.VertexID) V, ctx *Context) float64

	// Apply runs at v's master with the summed accumulator and the
	// combined inbound message (hasMsg reports whether any message
	// arrived). It returns the new state and whether the sync+scatter
	// phases should run for v this superstep.
	Apply(v graph.VertexID, state V, acc float64, msg M, hasMsg bool, ctx *Context) (V, bool)

	// ScatterDir selects the scatter phase's edge direction; DirNone
	// skips it (sync still runs, keeping replicas fresh for gather).
	ScatterDir() Dir

	// ScatterLocal runs on each synchronized replica of v. neighbors
	// holds the scatter-direction endpoints of this machine's local
	// edges of v; emit sends a message to a vertex, activating it next
	// superstep. state is the replica's state — for Splitter programs,
	// this replica's share.
	ScatterLocal(v graph.VertexID, state V, neighbors []graph.VertexID, emit func(dst graph.VertexID, m M), ctx *Context)

	// CombineMsg merges two messages destined for the same vertex.
	CombineMsg(a, b M) M

	// Sizes returns the byte widths used for network metering.
	Sizes() Sizes
}

// Splitter is an optional Program extension: instead of copying the
// master state to every synchronized replica, the engine asks the
// program to divide the state into one share per synchronized replica
// that has local scatter-direction edges. weights holds each such
// replica's local edge count; the returned slice must have
// len(weights) entries.
//
// FrogWild uses this to route each of K frogs through exactly one
// (enabled) out-edge: shares are multinomial with probabilities
// proportional to weights, which makes each frog's edge choice uniform
// over all enabled out-edges — the paper's edge-erasure model
// (Appendix A) at machine granularity.
type Splitter[V any] interface {
	Split(v graph.VertexID, state V, weights []int, r *rng.Stream) []V
}

// Finalizer is an optional Program extension invoked once per vertex
// after the last superstep, at the master, with any still-undelivered
// combined message (frogs in flight at the cutoff, in FrogWild's
// case). The returned state replaces the master state.
type Finalizer[V, M any] interface {
	Finalize(v graph.VertexID, state V, pending M, hasPending bool) V
}
