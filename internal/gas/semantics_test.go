package gas

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// gatherProgram sums neighbor values over in-edges so replica
// staleness is observable: each vertex's state counts how much its
// in-neighbors' replicas claimed at gather time.
type gatherProgram struct{}

type gatherState struct {
	Value float64
	Seen  float64
}

func (gatherProgram) InitState(v graph.VertexID) (gatherState, bool) {
	return gatherState{Value: 1}, true
}
func (gatherProgram) GatherDir() Dir { return DirIn }
func (gatherProgram) GatherLocal(v graph.VertexID, neighbors []graph.VertexID, read func(graph.VertexID) gatherState, ctx *Context) float64 {
	sum := 0.0
	for _, u := range neighbors {
		sum += read(u).Value
	}
	return sum
}
func (gatherProgram) Apply(v graph.VertexID, st gatherState, acc float64, _ int64, _ bool, ctx *Context) (gatherState, bool) {
	st.Seen = acc
	st.Value = st.Value * 2 // changes every superstep; mirrors see it only on sync
	return st, true
}
func (gatherProgram) ScatterDir() Dir { return DirNone }
func (gatherProgram) ScatterLocal(graph.VertexID, gatherState, []graph.VertexID, func(graph.VertexID, int64), *Context) {
}
func (gatherProgram) CombineMsg(a, b int64) int64 { return a + b }
func (gatherProgram) Sizes() Sizes                { return Sizes{State: 16, Msg: 8, Acc: 8} }

// TestGatherFullSyncSeesFreshValues: with ps=1 every replica is synced
// every superstep, so at superstep s each gather sees the values
// doubled s times: Seen = inDegree * 2^s.
func TestGatherFullSyncSeesFreshValues(t *testing.T) {
	g := gen.Cycle(12)
	lay, err := cluster.NewLayout(g, 4, cluster.Random{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New[gatherState, int64](lay, gatherProgram{}, Options{
		PS: 1, Seed: 1, MaxSupersteps: 3, AlwaysActive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// After 3 supersteps, the last gather (superstep 2) read values that
	// had been doubled twice: 1 * 2^2 = 4 per in-neighbor; every cycle
	// vertex has exactly one in-neighbor.
	for v, st := range eng.MasterStates() {
		if st.Seen != 4 {
			t.Fatalf("vertex %d saw %v at last gather, want 4 (fresh replicas)", v, st.Seen)
		}
	}
}

// TestGatherZeroSyncSeesStaleValues: with ps=0 mirrors never sync, so
// gathers over edges hosted away from the neighbor's master machine
// keep reading the initial value 1. On a multi-machine layout at least
// one vertex must observe staleness.
func TestGatherZeroSyncSeesStaleValues(t *testing.T) {
	g := gen.Cycle(12)
	lay, err := cluster.NewLayout(g, 4, cluster.Random{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New[gatherState, int64](lay, gatherProgram{}, Options{
		PS: 0, Seed: 1, MaxSupersteps: 3, AlwaysActive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, st := range eng.MasterStates() {
		if st.Seen < 4 {
			stale++
		}
	}
	// The master's own machine replica stays fresh (master co-located),
	// so only edges on foreign machines go stale; with 4 machines and
	// hashed placement most edges are foreign.
	if stale == 0 {
		t.Fatal("ps=0 should leave some gathers reading stale replicas")
	}
}

// reverseProgram scatters over IN-edges (DirIn scatter): the token at a
// vertex moves to a predecessor each superstep. Exercises the engine's
// reverse-direction scatter path.
type reverseProgram struct{ tokenProgram }

func (reverseProgram) ScatterDir() Dir { return DirIn }

func TestScatterDirIn(t *testing.T) {
	// On the directed cycle 0→1→…→9→0, scattering over in-edges moves
	// the token backwards: after 3 supersteps it sits (pending) at
	// vertex (0-3) mod 10 = 7.
	g := gen.Cycle(10)
	lay, err := cluster.NewLayout(g, 3, cluster.Random{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New[tokState, int64](lay, reverseProgram{}, Options{PS: 1, Seed: 2, MaxSupersteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	states := eng.MasterStates()
	for v := 0; v < 10; v++ {
		want := int64(0)
		if v == 0 || v == 9 || v == 8 { // visited at steps 0,1,2
			want = 1
		}
		if states[v].Seen != want {
			t.Fatalf("vertex %d seen %d want %d", v, states[v].Seen, want)
		}
	}
}

// TestSplitterConservationProperty: a splitter program that carries a
// token count must conserve it across arbitrary machine counts, ps
// values and superstep counts.
func TestSplitterConservationProperty(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 150, MeanOutDeg: 4, DegExponent: 2.2, PrefExponent: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(machRaw, psRaw, stepRaw uint8, seed uint16) bool {
		machines := int(machRaw%24) + 1
		ps := float64(psRaw%11) / 10
		steps := int(stepRaw%6) + 1
		lay, err := cluster.NewLayout(g, machines, cluster.Random{}, uint64(seed))
		if err != nil {
			return false
		}
		eng, err := New[tokState, int64](lay, countingSplitter{}, Options{
			PS: ps, Seed: uint64(seed), MaxSupersteps: steps,
		})
		if err != nil {
			return false
		}
		if _, err := eng.Run(); err != nil {
			return false
		}
		// Tokens: 5 at vertex 0 initially; after the run every token is
		// either held (Hold) or was finalized into Seen.
		var total int64
		for _, st := range eng.MasterStates() {
			total += st.Seen
		}
		return total == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// countingSplitter forwards 5 tokens forever, finalizing them into
// Seen at the end.
type countingSplitter struct{ splitterProgram }

func (countingSplitter) InitState(v graph.VertexID) (tokState, bool) {
	if v == 0 {
		return tokState{Hold: 5}, true
	}
	return tokState{}, false
}

func (countingSplitter) Apply(v graph.VertexID, st tokState, _ float64, msg int64, hasMsg bool, ctx *Context) (tokState, bool) {
	var in int64
	if ctx.Superstep == 0 {
		in = st.Hold
	}
	if hasMsg {
		in += msg
	}
	st.Hold = in
	return st, in > 0
}

func (countingSplitter) Finalize(v graph.VertexID, st tokState, pending int64, hasPending bool) tokState {
	if hasPending {
		st.Seen = pending // tokens in flight land here
	}
	return st
}

// TestEngineReuseForbidden documents single-use semantics: a second Run
// continues from the final state rather than restarting, so results
// differ. (The API contract says construct a fresh engine per run.)
func TestFinalizerReceivesPending(t *testing.T) {
	g := gen.Cycle(6)
	lay, err := cluster.NewLayout(g, 2, cluster.Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New[tokState, int64](lay, countingSplitter{}, Options{PS: 1, Seed: 1, MaxSupersteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// After 2 supersteps on the cycle, all 5 tokens are pending at
	// vertex 2.
	states := eng.MasterStates()
	if states[2].Seen != 5 {
		t.Fatalf("pending tokens not finalized at vertex 2: %+v", states)
	}
}

// TestControlTrafficCharged: every superstep charges barrier control
// bytes even when nothing else happens.
func TestControlTrafficCharged(t *testing.T) {
	g := gen.Cycle(4)
	lay, err := cluster.NewLayout(g, 3, cluster.Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New[tokState, int64](lay, onceProgram{}, Options{PS: 1, Seed: 1, MaxSupersteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Net.ClassBytes(cluster.TrafficControl) <= 0 {
		t.Error("no control traffic metered")
	}
}
