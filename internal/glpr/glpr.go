// Package glpr implements the baseline the paper compares against:
// "GraphLab PR", synchronous power-iteration PageRank as a GAS vertex
// program on the vertex-cut engine. Every superstep gathers
// rank/out-degree over in-edges, applies the PageRank update at the
// master, synchronizes mirrors (full sync, ps = 1, as stock PowerGraph
// does) and executes scatter over out-edges.
//
// Two modes reproduce the paper's baselines:
//
//   - Fixed iterations (the paper's "GraphLab PR 1 iters" / "2 iters"
//     reduced-accuracy heuristic): run exactly Iterations supersteps
//     with every vertex active.
//   - Exact (the paper's "GraphLab PR exact"): iterate until the L1
//     residual drops below Tolerance.
package glpr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/gas"
	"repro/internal/graph"
	"repro/internal/pagerank"
)

// state is the per-vertex PageRank state.
type state struct {
	Rank  float64
	Delta float64
}

// signal is the (unused) message type; GL PR in synchronous mode drives
// activation through AlwaysActive, like power iteration.
type signal struct{}

// program implements gas.Program for PageRank.
type program struct {
	g        *graph.Graph
	n        int
	teleport float64
}

// InitState implements gas.Program: uniform initial rank, all active.
func (p *program) InitState(v graph.VertexID) (state, bool) {
	return state{Rank: 1 / float64(p.n)}, true
}

// GatherDir implements gas.Program: PageRank gathers over in-edges.
func (p *program) GatherDir() gas.Dir { return gas.DirIn }

// GatherLocal implements gas.Program: partial sum of rank/out-degree
// over the in-neighbors whose edges live on this machine.
func (p *program) GatherLocal(v graph.VertexID, neighbors []graph.VertexID, read func(graph.VertexID) state, ctx *gas.Context) float64 {
	sum := 0.0
	for _, u := range neighbors {
		d := p.g.OutDegree(u)
		if d == 0 {
			continue // dangling in-neighbors contribute via the uniform term only
		}
		sum += read(u).Rank / float64(d)
	}
	return sum
}

// Apply implements gas.Program: the PageRank fixed-point update.
func (p *program) Apply(v graph.VertexID, st state, acc float64, _ signal, _ bool, ctx *gas.Context) (state, bool) {
	newRank := p.teleport/float64(p.n) + (1-p.teleport)*acc
	delta := math.Abs(newRank - st.Rank)
	ctx.Aggregate(delta)
	return state{Rank: newRank, Delta: delta}, true
}

// ScatterDir implements gas.Program.
func (p *program) ScatterDir() gas.Dir { return gas.DirOut }

// ScatterLocal implements gas.Program. PowerGraph's PageRank scatter
// walks the local out-edges (the engine meters that CPU work); in
// synchronous all-active mode it emits no signals.
func (p *program) ScatterLocal(v graph.VertexID, st state, neighbors []graph.VertexID, emit func(graph.VertexID, signal), ctx *gas.Context) {
}

// CombineMsg implements gas.Program.
func (p *program) CombineMsg(a, b signal) signal { return signal{} }

// Sizes implements gas.Program: PowerGraph syncs the vertex data
// (rank + delta, 16 bytes); gather accumulators are one float64.
func (p *program) Sizes() gas.Sizes { return gas.Sizes{State: 16, Msg: 1, Acc: 8} }

// Config configures a GL PR run.
type Config struct {
	// Machines is the cluster size.
	Machines int
	// Partitioner selects the ingress strategy; nil means random.
	Partitioner cluster.Partitioner
	// Teleport is pT; 0 selects the conventional 0.15.
	Teleport float64
	// Iterations, when > 0, runs exactly this many supersteps (the
	// paper's reduced-iterations baseline). When 0, Exact mode runs
	// until Tolerance.
	Iterations int
	// Tolerance is the exact-mode L1 residual threshold; 0 selects
	// 1e-9.
	Tolerance float64
	// MaxIterations caps exact mode; 0 selects 200.
	MaxIterations int
	// Seed drives partitioning and engine randomness.
	Seed uint64
	// WorkersPerMachine shards each simulated machine's engine phases
	// across a worker pool: 0 divides GOMAXPROCS across machines, 1 is
	// fully serial per machine. Ranks are bit-identical for every
	// setting (see gas.Options.WorkersPerMachine).
	WorkersPerMachine int
	// Cost overrides the cost model; zero value selects the default.
	Cost cluster.CostModel
	// Layout, when non-nil, reuses a prebuilt layout (Machines and
	// Partitioner are then ignored).
	Layout *cluster.Layout
}

// Result is a GL PR run's output.
type Result struct {
	// Rank is the (normalized) PageRank estimate.
	Rank []float64
	// Stats reports engine metrics: supersteps, traffic, simulated time.
	Stats *gas.RunStats
	// Layout is the cluster layout used (reusable for further runs).
	Layout *cluster.Layout
}

// Run executes GraphLab-style PageRank on the distributed engine.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("glpr: empty graph")
	}
	teleport := cfg.Teleport
	if teleport == 0 {
		teleport = pagerank.DefaultTeleport
	}
	if teleport < 0 || teleport > 1 {
		return nil, fmt.Errorf("glpr: teleport %v out of [0,1]", teleport)
	}
	lay := cfg.Layout
	if lay == nil {
		machines := cfg.Machines
		if machines <= 0 {
			machines = 1
		}
		var err error
		lay, err = cluster.NewLayout(g, machines, cfg.Partitioner, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	prog := &program{g: g, n: g.NumVertices(), teleport: teleport}

	opts := gas.Options{
		PS:                1, // stock PowerGraph: full synchronization
		Seed:              cfg.Seed,
		AlwaysActive:      true,
		Cost:              cfg.Cost,
		WorkersPerMachine: cfg.WorkersPerMachine,
	}
	if cfg.Iterations > 0 {
		opts.MaxSupersteps = cfg.Iterations
	} else {
		tol := cfg.Tolerance
		if tol == 0 {
			tol = 1e-9
		}
		maxIter := cfg.MaxIterations
		if maxIter == 0 {
			maxIter = 200
		}
		opts.MaxSupersteps = maxIter
		opts.StopWhen = func(step int, aggregate float64) bool {
			return aggregate < tol
		}
	}
	eng, err := gas.New[state, signal](lay, prog, opts)
	if err != nil {
		return nil, err
	}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}
	states := eng.MasterStates()
	rank := make([]float64, len(states))
	sum := 0.0
	for i, s := range states {
		rank[i] = s.Rank
		sum += s.Rank
	}
	// Dangling leakage (graphs with out-degree-zero vertices lose mass
	// in the distributed formulation, as real PowerGraph PR does):
	// renormalize so the estimate is a distribution.
	if sum > 0 {
		for i := range rank {
			rank[i] /= sum
		}
	}
	return &Result{Rank: rank, Stats: stats, Layout: lay}, nil
}
