package glpr

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph/gen"
	"repro/internal/pagerank"
	"repro/internal/topk"
)

func TestMatchesSerialFixedIterations(t *testing.T) {
	// The engine's distributed power iteration must agree with the
	// serial reference rank-for-rank: this is the engine's core
	// correctness check.
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 400, MeanOutDeg: 6, DegExponent: 2.1, PrefExponent: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, machines := range []int{1, 4, 12} {
		for _, iters := range []int{1, 2, 5} {
			dist, err := Run(g, Config{Machines: machines, Iterations: iters, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := pagerank.Iterate(g, iters, 0)
			if err != nil {
				t.Fatal(err)
			}
			for v := range dist.Rank {
				if math.Abs(dist.Rank[v]-serial.Rank[v]) > 1e-9 {
					t.Fatalf("machines=%d iters=%d vertex %d: %v vs serial %v",
						machines, iters, v, dist.Rank[v], serial.Rank[v])
				}
			}
		}
	}
}

func TestExactConverges(t *testing.T) {
	g, err := gen.PowerLaw(gen.LiveJournalLike(500, 4))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Run(g, Config{Machines: 6, Tolerance: 1e-10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	var l1 float64
	for v := range dist.Rank {
		l1 += math.Abs(dist.Rank[v] - exact.Rank[v])
	}
	if l1 > 1e-7 {
		t.Fatalf("exact-mode L1 distance %v from serial exact", l1)
	}
	if dist.Stats.Supersteps >= 200 {
		t.Error("exact mode did not converge before MaxIterations")
	}
	if topk.NormalizedCapturedMass(exact.Rank, dist.Rank, 100) < 0.9999 {
		t.Error("exact mode should capture essentially all top-100 mass")
	}
}

func TestMoreIterationsMoreAccurate(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(800, 5))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	lay, err := cluster.NewLayout(g, 8, cluster.Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, iters := range []int{1, 2, 8} {
		res, err := Run(g, Config{Layout: lay, Iterations: iters, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		acc := topk.NormalizedCapturedMass(exact.Rank, res.Rank, 100)
		if acc < prev-0.02 { // allow tiny non-monotonicity
			t.Fatalf("accuracy degraded with more iterations: %v -> %v at %d", prev, acc, iters)
		}
		prev = acc
	}
	if prev < 0.99 {
		t.Errorf("8 iterations capture %v of top-100 mass, want ≈ 1", prev)
	}
}

func TestNetworkScalesWithIterations(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(600, 6))
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 8, cluster.Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(g, Config{Layout: lay, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(g, Config{Layout: lay, Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Net.TotalBytes <= 0 {
		t.Fatal("no network traffic on 8 machines?")
	}
	ratio := float64(r4.Stats.Net.TotalBytes) / float64(r1.Stats.Net.TotalBytes)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4-iteration traffic should be ≈4x 1-iteration, got %vx", ratio)
	}
}

func TestConfigValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := Run(g, Config{Teleport: 2}); err == nil {
		t.Error("teleport > 1 should error")
	}
}

func TestRankIsDistribution(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(300, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Machines: 4, Iterations: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pagerank.Validate(res.Rank, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutReuse(t *testing.T) {
	g := gen.Cycle(20)
	lay, err := cluster.NewLayout(g, 3, cluster.Random{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Layout: lay, Iterations: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != lay {
		t.Error("layout should be passed through")
	}
}
