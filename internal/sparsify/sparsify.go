// Package sparsify implements the uniform graph-sparsification baseline
// the paper compares against in Section 2.4 / Figure 5: delete each
// edge independently with probability r (keep with probability
// q = 1 - r), then run GraphLab PR for a couple of iterations on the
// thinner graph. Vertices whose out-edges are all deleted get one
// surviving edge re-enabled uniformly at random, mirroring the "At
// Least One Out-Edge Per Node" repair so the walk interpretation stays
// sound.
package sparsify

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gas"
	"repro/internal/glpr"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Uniform returns a sparsified copy of g where each edge is kept
// independently with probability q ∈ (0, 1]. Vertices that lose every
// out-edge get one of their original out-edges back (chosen uniformly),
// so the result never has dangling vertices if g did not.
func Uniform(g *graph.Graph, q float64, seed uint64) (*graph.Graph, error) {
	if g == nil {
		return nil, errors.New("sparsify: nil graph")
	}
	if q <= 0 || q > 1 {
		return nil, fmt.Errorf("sparsify: keep probability %v out of (0,1]", q)
	}
	n := g.NumVertices()
	r := rng.Derive(seed, 0x59A2)
	kept := make([]graph.Edge, 0, int(float64(g.NumEdges())*q)+n)
	for v := 0; v < n; v++ {
		outs := g.OutNeighbors(graph.VertexID(v))
		if len(outs) == 0 {
			continue
		}
		before := len(kept)
		for _, d := range outs {
			if r.Bernoulli(q) {
				kept = append(kept, graph.Edge{Src: graph.VertexID(v), Dst: d})
			}
		}
		if len(kept) == before {
			// Re-enable one out-edge uniformly at random.
			d := outs[r.Intn(len(outs))]
			kept = append(kept, graph.Edge{Src: graph.VertexID(v), Dst: d})
		}
	}
	return graph.FromEdges(n, kept), nil
}

// Config configures the sparsify-then-PageRank baseline.
type Config struct {
	// Keep is q = 1 - r, the probability each edge survives.
	Keep float64
	// Iterations of GL PR to run on the sparsified graph (the paper
	// uses 2; 1 just measures in-degree).
	Iterations int
	// Machines is the cluster size.
	Machines int
	// Partitioner selects ingress; nil means random.
	Partitioner cluster.Partitioner
	// Teleport is pT; 0 selects 0.15.
	Teleport float64
	// Seed drives sparsification, partitioning and the engine.
	Seed uint64
	// WorkersPerMachine shards each simulated machine's engine phases
	// across a worker pool for the GL PR run (see
	// gas.Options.WorkersPerMachine).
	WorkersPerMachine int
	// Cost overrides the cost model.
	Cost cluster.CostModel
}

// Result is the baseline's output.
type Result struct {
	// Rank is the PageRank estimate computed on the sparsified graph.
	Rank []float64
	// Stats covers the GL PR run on the sparsified graph. Note the
	// paper (and this implementation) excludes the sparsification and
	// re-ingress time itself from reported run time, which already
	// favours the baseline.
	Stats *gas.RunStats
	// KeptEdges is the sparsified graph's edge count.
	KeptEdges int64
}

// Run sparsifies g and runs GL PR on the result.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("sparsify: Iterations must be positive, got %d", cfg.Iterations)
	}
	sg, err := Uniform(g, cfg.Keep, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pr, err := glpr.Run(sg, glpr.Config{
		Machines:          cfg.Machines,
		Partitioner:       cfg.Partitioner,
		Teleport:          cfg.Teleport,
		Iterations:        cfg.Iterations,
		Seed:              cfg.Seed,
		WorkersPerMachine: cfg.WorkersPerMachine,
		Cost:              cfg.Cost,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Rank: pr.Rank, Stats: pr.Stats, KeptEdges: sg.NumEdges()}, nil
}
