package sparsify

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/pagerank"
	"repro/internal/topk"
)

func TestUniformKeepsFraction(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 2000, MeanOutDeg: 10, DegExponent: 2.1, PrefExponent: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Uniform(g, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(sg.NumEdges()) / float64(g.NumEdges())
	if frac < 0.45 || frac > 0.60 {
		t.Errorf("kept fraction %v, want ≈ 0.5 (plus repairs)", frac)
	}
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformNoDangling(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 500, MeanOutDeg: 3, DegExponent: 2.3, PrefExponent: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Uniform(g, 0.1, 3) // aggressive: most vertices lose all edges
	if err != nil {
		t.Fatal(err)
	}
	if s := graph.ComputeStats(sg); s.Dangling != 0 {
		t.Errorf("%d dangling vertices after sparsify, repair failed", s.Dangling)
	}
}

func TestUniformQ1Identity(t *testing.T) {
	g := gen.Cycle(20)
	sg, err := Uniform(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumEdges() != g.NumEdges() {
		t.Errorf("q=1 should keep all edges: %d vs %d", sg.NumEdges(), g.NumEdges())
	}
}

func TestUniformSubsetOfOriginal(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 300, MeanOutDeg: 6, DegExponent: 2.0, PrefExponent: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Uniform(g, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	orig := map[uint64]bool{}
	g.Edges(func(e graph.Edge) bool {
		orig[uint64(e.Src)<<32|uint64(e.Dst)] = true
		return true
	})
	sg.Edges(func(e graph.Edge) bool {
		if !orig[uint64(e.Src)<<32|uint64(e.Dst)] {
			t.Fatalf("sparsified graph invented edge %v", e)
		}
		return true
	})
}

func TestUniformErrors(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Uniform(nil, 0.5, 1); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := Uniform(g, 0, 1); err == nil {
		t.Error("q=0 should error")
	}
	if _, err := Uniform(g, 1.5, 1); err == nil {
		t.Error("q>1 should error")
	}
}

func TestRunBaselineAccuracy(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(1500, 5))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Keep: 0.7, Iterations: 2, Machines: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc := topk.NormalizedCapturedMass(exact.Rank, res.Rank, 100)
	// The paper's Fig 5: accuracy stays comparable (>0.9) at q = 0.7.
	if acc < 0.85 {
		t.Errorf("sparsified 2-iteration accuracy %.3f, want ≥ 0.85", acc)
	}
	if res.KeptEdges >= g.NumEdges() {
		t.Error("sparsified graph should be smaller")
	}
	if res.Stats.Supersteps != 2 {
		t.Errorf("ran %d supersteps, want 2", res.Stats.Supersteps)
	}
}

func TestRunValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Run(g, Config{Keep: 0.5, Iterations: 0}); err == nil {
		t.Error("zero iterations should error")
	}
}
