package topk

import (
	"math/rand"
	"reflect"
	"testing"
)

// tieScores builds a vector full of deliberate score ties, including a
// run of equal scores guaranteed to straddle any small selection cut.
func tieScores(n int) []float64 {
	scores := make([]float64, n)
	r := rand.New(rand.NewSource(42))
	for i := range scores {
		// Only 7 distinct values: every selection cut lands inside a
		// tie run, so ordering mistakes cannot hide.
		scores[i] = float64(r.Intn(7)) / 10
	}
	return scores
}

// partition splits [0,n) into `parts` vertex sets round-robin, so
// every part holds vertices from everywhere in the id space.
func partition(n, parts int) [][]uint32 {
	out := make([][]uint32, parts)
	for v := 0; v < n; v++ {
		out[v%parts] = append(out[v%parts], uint32(v))
	}
	return out
}

// TestSubsetMergeEqualsTop is the distributed-selection property the
// sharded serving plane rests on: per-partition Subset results, merged
// with Merge, are bit-identical to a single Top over the whole vector —
// for several partition counts and ks, with heavy ties across the cut.
func TestSubsetMergeEqualsTop(t *testing.T) {
	const n = 500
	scores := tieScores(n)
	for _, parts := range []int{1, 2, 4, 7} {
		sets := partition(n, parts)
		for _, k := range []int{1, 3, 10, 63, n, n + 5} {
			want := Top(scores, k)
			lists := make([][]Entry, parts)
			for i, set := range sets {
				lists[i] = Subset(scores, set, k)
			}
			got := Merge(lists, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parts=%d k=%d: merge diverged from Top\n got %v\nwant %v",
					parts, k, got[:min(5, len(got))], want[:min(5, len(want))])
			}
		}
	}
}

// TestSubsetOfAllVerticesEqualsTop pins Subset's own ordering against
// Top when the subset is the full vertex space.
func TestSubsetOfAllVerticesEqualsTop(t *testing.T) {
	scores := tieScores(200)
	all := make([]uint32, len(scores))
	for v := range all {
		all[v] = uint32(v)
	}
	for _, k := range []int{1, 7, 50, 200} {
		if got, want := Subset(scores, all, k), Top(scores, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: Subset(all) != Top", k)
		}
	}
}

// TestSubsetIgnoresOutOfRange checks robustness against a shard whose
// ownership list mentions vertices beyond the score vector (a shorter
// snapshot after a graph change must not panic the shard).
func TestSubsetIgnoresOutOfRange(t *testing.T) {
	scores := []float64{0.5, 0.3, 0.2}
	got := Subset(scores, []uint32{0, 2, 9}, 5)
	want := []Entry{{Vertex: 0, Score: 0.5}, {Vertex: 2, Score: 0.2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestMergeEdgeCases covers empty and undersized inputs.
func TestMergeEdgeCases(t *testing.T) {
	if got := Merge(nil, 5); len(got) != 0 {
		t.Fatalf("merge of nothing: %v", got)
	}
	if got := Merge([][]Entry{{}, {}}, 5); len(got) != 0 {
		t.Fatalf("merge of empties: %v", got)
	}
	one := [][]Entry{{{Vertex: 3, Score: 1}}}
	if got := Merge(one, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	if got := Merge(one, 10); len(got) != 1 || got[0].Vertex != 3 {
		t.Fatalf("k>len: %v", got)
	}
}

// TestLessMatchesOrdering pins the exported comparator against the
// output order of Top.
func TestLessMatchesOrdering(t *testing.T) {
	scores := tieScores(100)
	top := Top(scores, 100)
	for i := 1; i < len(top); i++ {
		if Less(top[i-1], top[i]) {
			t.Fatalf("Top output not descending under Less at %d", i)
		}
		if !Less(top[i], top[i-1]) {
			t.Fatalf("total order violated: adjacent entries equal at %d", i)
		}
	}
}
