package topk

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestL1Distance(t *testing.T) {
	a := []float64{0.5, 0.5}
	b := []float64{0.25, 0.75}
	if got := L1Distance(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("L1 = %v want 0.5", got)
	}
	if got := L1Distance(a, a); got != 0 {
		t.Errorf("self L1 = %v", got)
	}
}

func TestL1DistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L1Distance([]float64{1}, []float64{1, 2})
}

func TestChiSquaredContrast(t *testing.T) {
	u := []float64{0.5, 0.5}
	p := []float64{0.25, 0.75}
	// χ²(u;p) = (0.25)²/0.25 + (0.25)²/0.75 = 0.25 + 1/12
	want := 0.25 + 1.0/12
	if got := ChiSquaredContrast(u, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("chi2 = %v want %v", got, want)
	}
	if got := ChiSquaredContrast(p, p); got != 0 {
		t.Errorf("self chi2 = %v", got)
	}
	if got := ChiSquaredContrast([]float64{0.5, 0.5}, []float64{1, 0}); !math.IsInf(got, 1) {
		t.Errorf("zero-support chi2 = %v, want +Inf", got)
	}
	if got := ChiSquaredContrast([]float64{1, 0}, []float64{1, 0}); got != 0 {
		t.Errorf("matching zero-support chi2 = %v, want 0", got)
	}
}

func TestChiSquaredLemma13Bound(t *testing.T) {
	// Lemma 13: if min_i pi(i) >= c/n then χ²(uniform; pi) <= (1-c)/c.
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(50) + 2
		c := 0.1 + 0.8*r.Float64()
		pi := make([]float64, n)
		sum := 0.0
		for i := range pi {
			pi[i] = c/float64(n) + r.Float64()
			sum += pi[i]
		}
		// Normalize while keeping the floor: scale the excess only.
		excess := sum - c // Σ(pi - c/n) = sum - c
		for i := range pi {
			pi[i] = c/float64(n) + (pi[i]-c/float64(n))*(1-c)/excess
		}
		u := make([]float64, n)
		for i := range u {
			u[i] = 1 / float64(n)
		}
		bound := (1 - c) / c
		if got := ChiSquaredContrast(u, pi); got > bound+1e-9 {
			t.Fatalf("chi2 %v exceeds Lemma 13 bound %v (c=%v n=%d)", got, bound, c, n)
		}
	}
}

func TestKendallTau(t *testing.T) {
	exact := []float64{0.4, 0.3, 0.2, 0.1}
	if got := KendallTauTopK(exact, exact, 4); got != 1 {
		t.Errorf("self tau = %v", got)
	}
	reversed := []float64{0.1, 0.2, 0.3, 0.4}
	if got := KendallTauTopK(exact, reversed, 4); got != -1 {
		t.Errorf("reversed tau = %v", got)
	}
	if got := KendallTauTopK(exact, reversed, 1); got != 1 {
		t.Errorf("k=1 tau = %v, want vacuous 1", got)
	}
}

func TestKendallTauPartial(t *testing.T) {
	exact := []float64{0.4, 0.3, 0.2, 0.1}
	est := []float64{0.4, 0.2, 0.3, 0.1} // swap ranks 2 and 3
	got := KendallTauTopK(exact, est, 4)
	// 6 pairs, 1 discordant: (5-1)/6 = 2/3.
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("tau = %v want 2/3", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	exact := []float64{0.4, 0.3, 0.2, 0.1}
	if got := PrecisionAtK(exact, exact, 2); got != 1 {
		t.Errorf("self precision = %v", got)
	}
	est := []float64{0.0, 0.5, 0.5, 0.0} // picks {1,2}; threshold is exact[1]=0.3
	if got := PrecisionAtK(exact, est, 2); got != 0.5 {
		t.Errorf("precision = %v want 0.5", got)
	}
	// Ties at the boundary get credit.
	tied := []float64{0.3, 0.3, 0.2, 0.1}
	estT := []float64{0.9, 0.0, 0.0, 0.0}
	if got := PrecisionAtK(tied, estT, 1); got != 1 {
		t.Errorf("tied precision = %v want 1", got)
	}
	if got := PrecisionAtK(exact, est, 0); got != 1 {
		t.Errorf("k=0 precision = %v", got)
	}
}
