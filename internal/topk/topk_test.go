package topk

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestTopBasic(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.3, 0.9, 0.2}
	top := Top(scores, 2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Vertex != 3 || top[1].Vertex != 1 {
		t.Errorf("top = %v", top)
	}
	if top[0].Score != 0.9 || top[1].Score != 0.5 {
		t.Errorf("scores = %v", top)
	}
}

func TestTopKLargerThanN(t *testing.T) {
	scores := []float64{0.2, 0.8}
	top := Top(scores, 10)
	if len(top) != 2 {
		t.Fatalf("len = %d, want 2", len(top))
	}
	if top[0].Vertex != 1 {
		t.Error("order wrong")
	}
}

func TestTopZeroAndNegativeK(t *testing.T) {
	if Top([]float64{1, 2}, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if Top([]float64{1, 2}, -3) != nil {
		t.Error("k<0 should return nil")
	}
}

func TestTopTiesDeterministic(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	top := Top(scores, 2)
	if top[0].Vertex != 0 || top[1].Vertex != 1 {
		t.Errorf("tie-break should prefer small ids, got %v", top)
	}
}

// TestTopTieBreakPinned pins the documented tie-break: on equal
// scores the smaller vertex id wins, including across the selection
// boundary and regardless of input position.
func TestTopTieBreakPinned(t *testing.T) {
	// All-equal scores: the top-k must be exactly ids 0..k-1 in order.
	same := make([]float64, 64)
	for i := range same {
		same[i] = 0.25
	}
	for _, k := range []int{1, 3, 63, 64} {
		top := Top(same, k)
		if len(top) != k {
			t.Fatalf("k=%d: len %d", k, len(top))
		}
		for i, e := range top {
			if e.Vertex != uint32(i) {
				t.Fatalf("k=%d: position %d holds vertex %d, want %d (smaller id must win ties)",
					k, i, e.Vertex, i)
			}
		}
	}
	// A tie straddling the cut: vertices 1, 3, 4 share the boundary
	// score; k=2 must keep {0} and then the smallest tied id, 1.
	scores := []float64{0.9, 0.5, 0.1, 0.5, 0.5}
	top := Top(scores, 2)
	if top[0].Vertex != 0 || top[1].Vertex != 1 {
		t.Errorf("boundary tie: got %v, want vertices [0 1]", top)
	}
	// k=4 keeps all three tied vertices ordered by id.
	top = Top(scores, 4)
	want := []uint32{0, 1, 3, 4}
	for i, e := range top {
		if e.Vertex != want[i] {
			t.Fatalf("k=4: got %v, want vertex order %v", top, want)
		}
	}
}

func TestTopMatchesSortProperty(t *testing.T) {
	r := rng.New(3)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw%20) + 1
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = math.Floor(r.Float64()*10) / 10 // force ties
		}
		got := Top(scores, k)

		type pair struct {
			v uint32
			s float64
		}
		ref := make([]pair, n)
		for i, s := range scores {
			ref[i] = pair{uint32(i), s}
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].s != ref[j].s {
				return ref[i].s > ref[j].s
			}
			return ref[i].v < ref[j].v
		})
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if got[i].Vertex != ref[i].v || got[i].Score != ref[i].s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVertices(t *testing.T) {
	vs := Vertices([]Entry{{7, 0.3}, {2, 0.1}})
	if len(vs) != 2 || vs[0] != 7 || vs[1] != 2 {
		t.Errorf("Vertices = %v", vs)
	}
}

func TestCapturedMassPerfect(t *testing.T) {
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	if m := CapturedMass(pi, pi, 2); math.Abs(m-0.7) > 1e-12 {
		t.Errorf("µ2(pi) = %v, want 0.7", m)
	}
	if m := OptimalMass(pi, 2); math.Abs(m-0.7) > 1e-12 {
		t.Errorf("optimal = %v", m)
	}
}

func TestCapturedMassWrongEstimate(t *testing.T) {
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	est := []float64{0.1, 0.2, 0.3, 0.4} // reversed
	if m := CapturedMass(pi, est, 2); math.Abs(m-0.3) > 1e-12 {
		t.Errorf("captured = %v, want 0.3 (picks vertices 3,2)", m)
	}
	if nm := NormalizedCapturedMass(pi, est, 2); math.Abs(nm-0.3/0.7) > 1e-12 {
		t.Errorf("normalized = %v", nm)
	}
}

func TestNormalizedCapturedMassBounds(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(50) + 2
		k := r.Intn(n) + 1
		pi := make([]float64, n)
		est := make([]float64, n)
		var sum float64
		for i := range pi {
			pi[i] = r.Float64()
			est[i] = r.Float64()
			sum += pi[i]
		}
		for i := range pi {
			pi[i] /= sum
		}
		nm := NormalizedCapturedMass(pi, est, k)
		if nm < 0 || nm > 1+1e-12 {
			t.Fatalf("normalized mass %v out of [0,1]", nm)
		}
		if opt := NormalizedCapturedMass(pi, pi, k); math.Abs(opt-1) > 1e-12 {
			t.Fatalf("self-normalized mass = %v, want 1", opt)
		}
	}
}

func TestExactIdentification(t *testing.T) {
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	if e := ExactIdentification(pi, pi, 2); e != 1 {
		t.Errorf("self identification = %v", e)
	}
	est := []float64{0.0, 0.5, 0.0, 0.5} // top-2(est) = {1,3}; top-2(pi) = {0,1}
	if e := ExactIdentification(pi, est, 2); e != 0.5 {
		t.Errorf("identification = %v, want 0.5", e)
	}
	if e := ExactIdentification(pi, est, 0); e != 1 {
		t.Errorf("k=0 should be vacuously 1, got %v", e)
	}
}

func TestExactIdentificationKLargerThanN(t *testing.T) {
	pi := []float64{0.6, 0.4}
	est := []float64{0.4, 0.6}
	if e := ExactIdentification(pi, est, 5); e != 1 {
		t.Errorf("with k>n all vertices are top-k; identification = %v", e)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{0.1, 0.9, 0.5}
	out := SortedCopy(in)
	if out[0] != 0.9 || out[1] != 0.5 || out[2] != 0.1 {
		t.Errorf("sorted = %v", out)
	}
	if in[0] != 0.1 {
		t.Error("input mutated")
	}
}

func TestCapturedMassMonotoneInK(t *testing.T) {
	r := rng.New(17)
	pi := make([]float64, 100)
	est := make([]float64, 100)
	var sum float64
	for i := range pi {
		pi[i] = r.Float64()
		est[i] = r.Float64()
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	prev := 0.0
	for k := 1; k <= 100; k++ {
		m := CapturedMass(pi, est, k)
		if m < prev-1e-12 {
			t.Fatalf("captured mass decreased at k=%d: %v < %v", k, m, prev)
		}
		prev = m
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Errorf("µn should be 1, got %v", prev)
	}
}

func BenchmarkTop1000of1M(b *testing.B) {
	r := rng.New(1)
	scores := make([]float64, 1000000)
	for i := range scores {
		scores[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Top(scores, 1000)
	}
}
