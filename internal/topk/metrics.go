package topk

import "math"

// This file provides distribution- and ranking-comparison metrics
// beyond the paper's two headline accuracy measures: L1 distance (used
// in Lemma 17's argument), the χ²-contrast of Definition 12 (used by
// the convergence analysis), and Kendall's tau over the top-k lists
// (a standard rank-quality diagnostic).

// L1Distance returns Σ|a_i − b_i|. For probability distributions this
// is twice the total variation distance. It panics on length mismatch.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("topk: L1Distance length mismatch")
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// ChiSquaredContrast returns χ²(a; b) = Σ (a_i − b_i)²/b_i, the
// contrast functional from Definition 12 of the paper. Entries where
// b_i = 0 contribute +Inf unless a_i is also 0. It panics on length
// mismatch.
func ChiSquaredContrast(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("topk: ChiSquaredContrast length mismatch")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		if b[i] == 0 {
			return math.Inf(1)
		}
		sum += d * d / b[i]
	}
	return sum
}

// KendallTauTopK computes Kendall's tau-a rank correlation between the
// orderings that exact and estimate induce on the union of their
// top-k sets: +1 for perfect agreement, −1 for reversal. Vertices
// missing from one list are ranked by that list's scores anyway (the
// scores exist for every vertex). Returns 1 for k < 2.
func KendallTauTopK(exact, estimate []float64, k int) float64 {
	if k < 2 {
		return 1
	}
	union := map[uint32]struct{}{}
	for _, e := range Top(exact, k) {
		union[e.Vertex] = struct{}{}
	}
	for _, e := range Top(estimate, k) {
		union[e.Vertex] = struct{}{}
	}
	verts := make([]uint32, 0, len(union))
	for v := range union {
		verts = append(verts, v)
	}
	if len(verts) < 2 {
		return 1
	}
	var concordant, discordant float64
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			a, b := verts[i], verts[j]
			de := exact[a] - exact[b]
			dv := estimate[a] - estimate[b]
			switch {
			case de*dv > 0:
				concordant++
			case de*dv < 0:
				discordant++
			}
		}
	}
	pairs := float64(len(verts)*(len(verts)-1)) / 2
	return (concordant - discordant) / pairs
}

// Precision at k against a relevance threshold: the fraction of the
// estimate's top-k whose exact score is at least the k-th exact score.
// Unlike ExactIdentification this gives credit for picking a vertex
// tied with the true top-k boundary.
func PrecisionAtK(exact, estimate []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	exTop := Top(exact, k)
	if len(exTop) == 0 {
		return 1
	}
	threshold := exTop[len(exTop)-1].Score
	hits := 0
	est := Top(estimate, k)
	for _, e := range est {
		if exact[e.Vertex] >= threshold {
			hits++
		}
	}
	if len(est) == 0 {
		return 1
	}
	return float64(hits) / float64(len(est))
}
