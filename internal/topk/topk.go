// Package topk selects the heaviest entries of a score vector and
// implements the paper's two accuracy metrics (Section 2.1.1):
//
//   - Captured mass µk (Definition 2): the true PageRank mass of the
//     k-set an estimate would report.
//   - Exact identification: the fraction of the reported top-k that is
//     also in the true top-k.
package topk

import (
	"container/heap"
	"sort"
)

// Entry pairs a vertex with its score.
type Entry struct {
	Vertex uint32
	Score  float64
}

// entryHeap is a min-heap over scores (ties broken by larger vertex id
// so the heap keeps smaller ids, making selection deterministic).
type entryHeap []Entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Vertex > h[j].Vertex
}
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Top returns the k highest-scoring entries in descending score order.
// Ties are broken toward smaller vertex ids, deterministically. If
// k >= len(scores), all vertices are returned.
func Top(scores []float64, k int) []Entry {
	if k <= 0 {
		return nil
	}
	if k > len(scores) {
		k = len(scores)
	}
	h := make(entryHeap, 0, k)
	for v, s := range scores {
		e := Entry{Vertex: uint32(v), Score: s}
		if len(h) < k {
			heap.Push(&h, e)
			continue
		}
		if entryLess(h[0], e) {
			h[0] = e
			heap.Fix(&h, 0)
		}
	}
	out := make([]Entry, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Entry)
	}
	return out
}

// entryLess reports whether a ranks strictly below b (lower score, or
// equal score and larger vertex id).
func entryLess(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Vertex > b.Vertex
}

// Vertices extracts the vertex ids from entries, preserving order.
func Vertices(entries []Entry) []uint32 {
	vs := make([]uint32, len(entries))
	for i, e := range entries {
		vs[i] = e.Vertex
	}
	return vs
}

// CapturedMass computes µk(est) with respect to the true distribution
// pi: the pi-mass of the top-k set chosen by est (Definition 2 of the
// paper). The optimum is CapturedMass(pi, pi, k) = µk(pi).
func CapturedMass(pi, est []float64, k int) float64 {
	mass := 0.0
	for _, e := range Top(est, k) {
		mass += pi[e.Vertex]
	}
	return mass
}

// OptimalMass returns µk(pi), the best possible captured mass.
func OptimalMass(pi []float64, k int) float64 {
	return CapturedMass(pi, pi, k)
}

// NormalizedCapturedMass returns µk(est)/µk(pi) in [0,1]; this is the
// "Mass captured" accuracy the paper plots (1.0 = perfect).
func NormalizedCapturedMass(pi, est []float64, k int) float64 {
	opt := OptimalMass(pi, k)
	if opt == 0 {
		return 1
	}
	return CapturedMass(pi, est, k) / opt
}

// ExactIdentification returns |top-k(est) ∩ top-k(pi)| / k, the paper's
// second metric ("Exact identification").
func ExactIdentification(pi, est []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	truth := make(map[uint32]struct{}, k)
	for _, e := range Top(pi, k) {
		truth[e.Vertex] = struct{}{}
	}
	hits := 0
	for _, e := range Top(est, k) {
		if _, ok := truth[e.Vertex]; ok {
			hits++
		}
	}
	den := k
	if len(pi) < k {
		den = len(pi)
	}
	if den == 0 {
		return 1
	}
	return float64(hits) / float64(den)
}

// SortedCopy returns the scores in descending order (for inspecting
// distribution tails in tests and tools).
func SortedCopy(scores []float64) []float64 {
	cp := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	return cp
}
