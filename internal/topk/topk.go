// Package topk selects the heaviest entries of a score vector and
// implements the paper's two accuracy metrics (Section 2.1.1):
//
//   - Captured mass µk (Definition 2): the true PageRank mass of the
//     k-set an estimate would report.
//   - Exact identification: the fraction of the reported top-k that is
//     also in the true top-k.
package topk

import (
	"sort"
)

// Entry pairs a vertex with its score.
type Entry struct {
	Vertex uint32
	Score  float64
}

// entryHeap is a typed min-heap over the entryLess total order: the
// root is the weakest retained entry, so selection keeps the k
// strongest. Typed sift methods avoid container/heap's boxing through
// interface values on the hot selection path.
type entryHeap []Entry

// siftUp restores heap order after appending at index i.
func (h entryHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores heap order after replacing index i.
func (h entryHeap) siftDown(i int) {
	n := len(h)
	for {
		least := i
		if l := 2*i + 1; l < n && entryLess(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && entryLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Top returns the k highest-scoring entries in descending score order.
// Ties are broken toward smaller vertex ids, deterministically. If
// k >= len(scores), all vertices are returned.
func Top(scores []float64, k int) []Entry {
	if k <= 0 {
		return nil
	}
	if k > len(scores) {
		k = len(scores)
	}
	h := make(entryHeap, 0, k)
	for v, s := range scores {
		e := Entry{Vertex: uint32(v), Score: s}
		if len(h) < k {
			h = append(h, e)
			h.siftUp(len(h) - 1)
			continue
		}
		if entryLess(h[0], e) {
			h[0] = e
			h.siftDown(0)
		}
	}
	// Pop the weakest into the tail until the heap drains: descending
	// output. The ordering is total, so the result is unique no matter
	// how the heap arranged itself internally.
	return h.drain()
}

// entryLess reports whether a ranks strictly below b (lower score, or
// equal score and larger vertex id).
func entryLess(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Vertex > b.Vertex
}

// Less exposes the package's total order (a strictly below b): lower
// score first, ties toward larger vertex id. Selection, merging and
// any external consumer ordering partial results all use this one
// comparison, which is what makes distributed top-k merge exact.
func Less(a, b Entry) bool { return entryLess(a, b) }

// Subset returns the k highest-scoring entries among the given
// vertices only, in the same descending total order as Top. Vertices
// out of range of scores are ignored. It is the shard-side half of
// distributed selection: if the vertex sets partition [0,len(scores)),
// Merge of the per-subset results equals Top of the whole vector.
func Subset(scores []float64, vertices []uint32, k int) []Entry {
	if k <= 0 {
		return nil
	}
	if k > len(vertices) {
		k = len(vertices)
	}
	h := make(entryHeap, 0, k)
	for _, v := range vertices {
		if int(v) >= len(scores) {
			continue
		}
		e := Entry{Vertex: v, Score: scores[v]}
		if len(h) < k {
			h = append(h, e)
			h.siftUp(len(h) - 1)
			continue
		}
		if entryLess(h[0], e) {
			h[0] = e
			h.siftDown(0)
		}
	}
	return h.drain()
}

// drain pops the heap into a descending slice (see Top).
func (h entryHeap) drain() []Entry {
	out := make([]Entry, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		h.siftDown(0)
	}
	return out
}

// Merge combines partial top-k lists (each sorted descending in the
// package's total order, as Top and Subset produce) into the global
// top-k, bit-exact: because the order is total, the merged prefix of
// the concatenated lists is the unique answer — there is no
// tie-breaking freedom for shards to disagree on. Duplicate vertices
// across lists are kept; callers partition the vertex space so they
// cannot occur.
func Merge(lists [][]Entry, k int) []Entry {
	if k <= 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]Entry, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	// Descending: b < a in the total order.
	sort.Slice(all, func(i, j int) bool { return entryLess(all[j], all[i]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k:k]
}

// Vertices extracts the vertex ids from entries, preserving order.
func Vertices(entries []Entry) []uint32 {
	vs := make([]uint32, len(entries))
	for i, e := range entries {
		vs[i] = e.Vertex
	}
	return vs
}

// CapturedMass computes µk(est) with respect to the true distribution
// pi: the pi-mass of the top-k set chosen by est (Definition 2 of the
// paper). The optimum is CapturedMass(pi, pi, k) = µk(pi).
func CapturedMass(pi, est []float64, k int) float64 {
	mass := 0.0
	for _, e := range Top(est, k) {
		mass += pi[e.Vertex]
	}
	return mass
}

// OptimalMass returns µk(pi), the best possible captured mass.
func OptimalMass(pi []float64, k int) float64 {
	return CapturedMass(pi, pi, k)
}

// NormalizedCapturedMass returns µk(est)/µk(pi) in [0,1]; this is the
// "Mass captured" accuracy the paper plots (1.0 = perfect).
func NormalizedCapturedMass(pi, est []float64, k int) float64 {
	opt := OptimalMass(pi, k)
	if opt == 0 {
		return 1
	}
	return CapturedMass(pi, est, k) / opt
}

// ExactIdentification returns |top-k(est) ∩ top-k(pi)| / k, the paper's
// second metric ("Exact identification").
func ExactIdentification(pi, est []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	truth := make(map[uint32]struct{}, k)
	for _, e := range Top(pi, k) {
		truth[e.Vertex] = struct{}{}
	}
	hits := 0
	for _, e := range Top(est, k) {
		if _, ok := truth[e.Vertex]; ok {
			hits++
		}
	}
	den := k
	if len(pi) < k {
		den = len(pi)
	}
	if den == 0 {
		return 1
	}
	return float64(hits) / float64(den)
}

// SortedCopy returns the scores in descending order (for inspecting
// distribution tails in tests and tools).
func SortedCopy(scores []float64) []float64 {
	cp := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	return cp
}
