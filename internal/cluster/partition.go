// Package cluster models a vertex-cut distributed graph cluster in the
// style of GraphLab PowerGraph: edges are partitioned across machines,
// vertices are replicated wherever their edges live, one replica per
// vertex is the master, and all traffic between machines is metered.
//
// The package provides the three ingress (partitioning) strategies
// PowerGraph ships — random hashed edge placement, oblivious greedy
// placement, and 2-D grid placement — plus the Layout structure the GAS
// engine executes against, the network Meter, and the CostModel that
// converts metered bytes and operations into simulated seconds.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// MaxMachines bounds the cluster size; machine ids fit in a uint16.
const MaxMachines = 1 << 12

// Partitioner assigns each edge of a graph to a machine.
type Partitioner interface {
	// Name identifies the strategy in reports.
	Name() string
	// Place returns, for each edge in the graph's canonical CSR order,
	// the machine that owns it. len(result) == g.NumEdges().
	Place(g *graph.Graph, machines int, seed uint64) []uint16
}

// hash64 mixes a 64-bit value (splitmix64 finalizer).
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Random places each edge on a machine chosen by hashing the edge,
// PowerGraph's default "random" ingress.
type Random struct{}

// Name implements Partitioner.
func (Random) Name() string { return "random" }

// Place implements Partitioner.
func (Random) Place(g *graph.Graph, machines int, seed uint64) []uint16 {
	checkMachines(machines)
	out := make([]uint16, g.NumEdges())
	i := 0
	g.Edges(func(e graph.Edge) bool {
		h := hash64(uint64(e.Src)<<32 | uint64(e.Dst)*0x9e3779b97f4a7c15 ^ seed)
		out[i] = uint16(h % uint64(machines))
		i++
		return true
	})
	return out
}

// Oblivious implements PowerGraph's greedy heuristic: each edge is
// placed to minimize new replicas, preferring machines that already
// host both endpoints, then either endpoint, then the least-loaded
// machine. It processes edges in a seeded pseudo-random order (greedy
// quality depends on order; a fixed order would bias against high-id
// sources).
type Oblivious struct{}

// Name implements Partitioner.
func (Oblivious) Name() string { return "oblivious" }

// Place implements Partitioner.
func (Oblivious) Place(g *graph.Graph, machines int, seed uint64) []uint16 {
	checkMachines(machines)
	m64 := uint64(machines)
	n := g.NumVertices()
	edges := g.EdgeSlice()
	order := make([]int, len(edges))
	r := rng.Derive(seed, 0x0B11)
	r.Perm(order)

	// presence[v] is a bitset of machines hosting v (machines <= 64
	// uses one word; larger clusters use the slice path).
	usesBitset := machines <= 64
	var presence []uint64
	var presenceBig [][]uint64
	if usesBitset {
		presence = make([]uint64, n)
	} else {
		presenceBig = make([][]uint64, n)
	}
	words := (machines + 63) / 64
	has := func(v graph.VertexID, m int) bool {
		if usesBitset {
			return presence[v]&(1<<uint(m)) != 0
		}
		b := presenceBig[v]
		return b != nil && b[m/64]&(1<<uint(m%64)) != 0
	}
	set := func(v graph.VertexID, m int) {
		if usesBitset {
			presence[v] |= 1 << uint(m)
			return
		}
		if presenceBig[v] == nil {
			presenceBig[v] = make([]uint64, words)
		}
		presenceBig[v][m/64] |= 1 << uint(m%64)
	}

	load := make([]int64, machines)
	out := make([]uint16, len(edges))
	leastLoaded := func(pred func(m int) bool) int {
		best, bestLoad := -1, int64(math.MaxInt64)
		for m := 0; m < machines; m++ {
			if pred != nil && !pred(m) {
				continue
			}
			if load[m] < bestLoad {
				best, bestLoad = m, load[m]
			}
		}
		return best
	}
	for _, idx := range order {
		e := edges[idx]
		var m int
		switch {
		case anyMachine(machines, func(mm int) bool { return has(e.Src, mm) && has(e.Dst, mm) }):
			m = leastLoaded(func(mm int) bool { return has(e.Src, mm) && has(e.Dst, mm) })
		case anyMachine(machines, func(mm int) bool { return has(e.Src, mm) || has(e.Dst, mm) }):
			m = leastLoaded(func(mm int) bool { return has(e.Src, mm) || has(e.Dst, mm) })
		default:
			m = leastLoaded(nil)
		}
		if m < 0 { // unreachable, but keep the invariant explicit
			m = int(hash64(uint64(idx)^seed) % m64)
		}
		out[idx] = uint16(m)
		set(e.Src, m)
		set(e.Dst, m)
		load[m]++
	}
	return out
}

func anyMachine(machines int, pred func(int) bool) bool {
	for m := 0; m < machines; m++ {
		if pred(m) {
			return true
		}
	}
	return false
}

// Grid implements 2-D grid ingress: machines are arranged in an
// r×c grid with r·c >= machines; an edge (u,v) goes to the cell at
// (row(u), col(v)), folded onto a real machine by modulo when the grid
// has more cells than machines. Each vertex's replicas then lie in one
// row plus one column, bounding the replication factor by r+c-1.
type Grid struct{}

// Name implements Partitioner.
func (Grid) Name() string { return "grid" }

// Place implements Partitioner.
func (Grid) Place(g *graph.Graph, machines int, seed uint64) []uint16 {
	checkMachines(machines)
	rows := int(math.Sqrt(float64(machines)))
	if rows < 1 {
		rows = 1
	}
	cols := (machines + rows - 1) / rows
	out := make([]uint16, g.NumEdges())
	i := 0
	g.Edges(func(e graph.Edge) bool {
		row := int(hash64(uint64(e.Src)^seed) % uint64(rows))
		col := int(hash64(uint64(e.Dst)^(seed+0x51ed)) % uint64(cols))
		cell := row*cols + col
		out[i] = uint16(cell % machines)
		i++
		return true
	})
	return out
}

func checkMachines(machines int) {
	if machines < 1 || machines > MaxMachines {
		panic(fmt.Sprintf("cluster: machine count %d out of [1,%d]", machines, MaxMachines))
	}
}

// ByName returns the partitioner with the given name, defaulting to
// Random for an empty string.
func ByName(name string) (Partitioner, error) {
	switch name {
	case "", "random":
		return Random{}, nil
	case "oblivious":
		return Oblivious{}, nil
	case "grid":
		return Grid{}, nil
	case "hdrf":
		return HDRF{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown partitioner %q", name)
}
