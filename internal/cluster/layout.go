package cluster

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// Layout is the realized placement of a graph on a cluster: the
// edge→machine assignment, the per-vertex replica (presence) sets, the
// master replica of every vertex, and per-machine local sub-graphs in
// CSR form. It is immutable once built and shared by all engine runs.
type Layout struct {
	g           *graph.Graph
	machines    int
	partitioner string

	master []uint16 // master machine per vertex

	// presence lists: machines hosting v are
	// presList[presOff[v]:presOff[v+1]], master first.
	presOff  []int64
	presList []uint16

	views []MachineView
}

// MachineView is one machine's local slice of the graph: the vertices
// present on the machine and the locally-owned edges, in local CSR
// form. Engine goroutines operate on views concurrently; views are
// read-only after construction.
type MachineView struct {
	id int

	// verts lists present vertices in ascending order; localIdx inverts
	// it.
	verts    []uint32
	localIdx map[uint32]int32

	outOff []int64
	outAdj []uint32
	inOff  []int64
	inAdj  []uint32

	masters []uint32 // vertices whose master replica is here
}

// NewLayout partitions g across the given number of machines using the
// partitioner and returns the realized layout. The seed feeds both the
// partitioner and the master-selection hash.
func NewLayout(g *graph.Graph, machines int, p Partitioner, seed uint64) (*Layout, error) {
	if machines < 1 || machines > MaxMachines {
		return nil, fmt.Errorf("cluster: machine count %d out of range", machines)
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("cluster: empty graph")
	}
	if p == nil {
		p = Random{}
	}
	placement := p.Place(g, machines, seed)
	if int64(len(placement)) != g.NumEdges() {
		return nil, fmt.Errorf("cluster: partitioner %s returned %d placements for %d edges",
			p.Name(), len(placement), g.NumEdges())
	}

	n := g.NumVertices()
	lay := &Layout{g: g, machines: machines, partitioner: p.Name()}

	// Pass 1: per-machine edge counts and per-(vertex,machine) presence.
	perMachineEdges := make([]int64, machines)
	presBits := newPresenceSet(n, machines)
	{
		i := 0
		g.Edges(func(e graph.Edge) bool {
			m := int(placement[i])
			if m >= machines {
				panic(fmt.Sprintf("cluster: placement %d out of range", m))
			}
			perMachineEdges[m]++
			presBits.set(e.Src, m)
			presBits.set(e.Dst, m)
			i++
			return true
		})
	}

	// Presence lists and master selection. The master is a hash-chosen
	// member of the presence set, mirroring PowerGraph (the master is
	// always co-located with at least one edge of the vertex).
	lay.presOff = make([]int64, n+1)
	for v := 0; v < n; v++ {
		lay.presOff[v+1] = lay.presOff[v] + int64(presBits.count(graph.VertexID(v)))
	}
	lay.presList = make([]uint16, lay.presOff[n])
	lay.master = make([]uint16, n)
	for v := 0; v < n; v++ {
		span := lay.presList[lay.presOff[v]:lay.presOff[v+1]]
		presBits.collect(graph.VertexID(v), span)
		if len(span) == 0 {
			// Isolated vertex (possible only when dangling vertices are
			// allowed and the vertex has no edges at all): master it by
			// hash on an arbitrary machine with no mirrors.
			continue
		}
		pick := int(hash64(uint64(v)^(seed*0x2545f4914f6cdd1d)) % uint64(len(span)))
		span[0], span[pick] = span[pick], span[0]
		// Keep mirrors in ascending order after the master for
		// deterministic iteration.
		sort.Slice(span[1:], func(i, j int) bool { return span[1+i] < span[1+j] })
		lay.master[v] = span[0]
	}

	// Pass 2: build per-machine local CSRs.
	lay.views = make([]MachineView, machines)
	type mb struct {
		outCnt map[uint32]int64
		inCnt  map[uint32]int64
	}
	builders := make([]mb, machines)
	for m := range builders {
		builders[m] = mb{outCnt: map[uint32]int64{}, inCnt: map[uint32]int64{}}
	}
	{
		i := 0
		g.Edges(func(e graph.Edge) bool {
			b := &builders[placement[i]]
			b.outCnt[e.Src]++
			b.inCnt[e.Dst]++
			i++
			return true
		})
	}
	for m := 0; m < machines; m++ {
		view := &lay.views[m]
		view.id = m
		// Present vertices on m, ascending.
		view.verts = presBits.machineVerts(m)
		view.localIdx = make(map[uint32]int32, len(view.verts))
		view.outOff = make([]int64, len(view.verts)+1)
		view.inOff = make([]int64, len(view.verts)+1)
		for li, v := range view.verts {
			view.localIdx[v] = int32(li)
			view.outOff[li+1] = view.outOff[li] + builders[m].outCnt[v]
			view.inOff[li+1] = view.inOff[li] + builders[m].inCnt[v]
		}
		view.outAdj = make([]uint32, view.outOff[len(view.verts)])
		view.inAdj = make([]uint32, view.inOff[len(view.verts)])
	}
	outPos := make([][]int64, machines)
	inPos := make([][]int64, machines)
	for m := 0; m < machines; m++ {
		outPos[m] = append([]int64(nil), lay.views[m].outOff[:len(lay.views[m].verts)]...)
		inPos[m] = append([]int64(nil), lay.views[m].inOff[:len(lay.views[m].verts)]...)
	}
	{
		i := 0
		g.Edges(func(e graph.Edge) bool {
			m := int(placement[i])
			view := &lay.views[m]
			ls := view.localIdx[e.Src]
			ld := view.localIdx[e.Dst]
			view.outAdj[outPos[m][ls]] = e.Dst
			outPos[m][ls]++
			view.inAdj[inPos[m][ld]] = e.Src
			inPos[m][ld]++
			i++
			return true
		})
	}
	// Master vertex lists per machine.
	for v := 0; v < n; v++ {
		if lay.presOff[v+1] == lay.presOff[v] {
			continue // isolated vertex: no machine hosts it
		}
		m := lay.master[v]
		lay.views[m].masters = append(lay.views[m].masters, uint32(v))
	}
	return lay, nil
}

// presenceSet tracks which machines host each vertex, with a fast
// single-word path for clusters of at most 64 machines.
type presenceSet struct {
	machines int
	words    int
	small    []uint64   // machines <= 64
	big      [][]uint64 // otherwise, lazily allocated per vertex
}

func newPresenceSet(n, machines int) *presenceSet {
	p := &presenceSet{machines: machines, words: (machines + 63) / 64}
	if machines <= 64 {
		p.small = make([]uint64, n)
	} else {
		p.big = make([][]uint64, n)
	}
	return p
}

func (p *presenceSet) set(v graph.VertexID, m int) {
	if p.small != nil {
		p.small[v] |= 1 << uint(m)
		return
	}
	if p.big[v] == nil {
		p.big[v] = make([]uint64, p.words)
	}
	p.big[v][m/64] |= 1 << uint(m%64)
}

func (p *presenceSet) count(v graph.VertexID) int {
	if p.small != nil {
		return popcount(p.small[v])
	}
	if p.big[v] == nil {
		return 0
	}
	c := 0
	for _, w := range p.big[v] {
		c += popcount(w)
	}
	return c
}

// collect fills dst (of length count(v)) with the machines hosting v in
// ascending order.
func (p *presenceSet) collect(v graph.VertexID, dst []uint16) {
	i := 0
	if p.small != nil {
		w := p.small[v]
		for w != 0 {
			m := trailingZeros(w)
			dst[i] = uint16(m)
			i++
			w &= w - 1
		}
		return
	}
	if p.big[v] == nil {
		return
	}
	for wi, w := range p.big[v] {
		for w != 0 {
			m := wi*64 + trailingZeros(w)
			dst[i] = uint16(m)
			i++
			w &= w - 1
		}
	}
}

// machineVerts returns the ascending list of vertices present on m.
func (p *presenceSet) machineVerts(m int) []uint32 {
	var out []uint32
	if p.small != nil {
		bit := uint64(1) << uint(m)
		for v, w := range p.small {
			if w&bit != 0 {
				out = append(out, uint32(v))
			}
		}
		return out
	}
	for v, ws := range p.big {
		if ws != nil && ws[m/64]&(1<<uint(m%64)) != 0 {
			out = append(out, uint32(v))
		}
	}
	return out
}

func popcount(x uint64) int      { return bits.OnesCount64(x) }
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// Graph returns the underlying graph.
func (l *Layout) Graph() *graph.Graph { return l.g }

// NumMachines returns the cluster size.
func (l *Layout) NumMachines() int { return l.machines }

// PartitionerName reports which ingress strategy built this layout.
func (l *Layout) PartitionerName() string { return l.partitioner }

// MasterOf returns the master machine of v.
func (l *Layout) MasterOf(v graph.VertexID) uint16 { return l.master[v] }

// Presences returns the machines hosting v, master first, mirrors in
// ascending order. The slice aliases internal storage.
func (l *Layout) Presences(v graph.VertexID) []uint16 {
	return l.presList[l.presOff[v]:l.presOff[v+1]]
}

// View returns machine m's local view.
func (l *Layout) View(m int) *MachineView { return &l.views[m] }

// ReplicationFactor returns the average number of replicas per vertex
// that is hosted anywhere (PowerGraph's λ).
func (l *Layout) ReplicationFactor() float64 {
	hosted := 0
	for v := 0; v < l.g.NumVertices(); v++ {
		if l.presOff[v+1] > l.presOff[v] {
			hosted++
		}
	}
	if hosted == 0 {
		return 0
	}
	return float64(len(l.presList)) / float64(hosted)
}

// CutStats summarizes partition quality.
type CutStats struct {
	Machines          int
	ReplicationFactor float64
	// EdgeImbalance is max/mean edges per machine (1.0 = perfect).
	EdgeImbalance float64
	// MasterImbalance is max/mean masters per machine.
	MasterImbalance float64
}

// Stats computes partition-quality statistics.
func (l *Layout) Stats() CutStats {
	s := CutStats{Machines: l.machines, ReplicationFactor: l.ReplicationFactor()}
	maxE, totE := int64(0), int64(0)
	maxM, totM := 0, 0
	for m := 0; m < l.machines; m++ {
		e := int64(len(l.views[m].outAdj))
		totE += e
		if e > maxE {
			maxE = e
		}
		k := len(l.views[m].masters)
		totM += k
		if k > maxM {
			maxM = k
		}
	}
	if totE > 0 {
		s.EdgeImbalance = float64(maxE) * float64(l.machines) / float64(totE)
	}
	if totM > 0 {
		s.MasterImbalance = float64(maxM) * float64(l.machines) / float64(totM)
	}
	return s
}

// Validate checks layout invariants: every edge is owned by exactly one
// machine, presence sets match edge ownership, every hosted vertex's
// master is in its presence set, and local CSRs agree with the global
// graph. It is used by property tests.
func (l *Layout) Validate() error {
	n := l.g.NumVertices()
	var localEdges int64
	for m := 0; m < l.machines; m++ {
		v := &l.views[m]
		localEdges += int64(len(v.outAdj))
		if len(v.outAdj) != len(v.inAdj) {
			return fmt.Errorf("cluster: machine %d out/in edge mismatch", m)
		}
		for li, vert := range v.verts {
			if got := v.localIdx[vert]; got != int32(li) {
				return fmt.Errorf("cluster: machine %d local index broken at %d", m, vert)
			}
		}
	}
	if localEdges != l.g.NumEdges() {
		return fmt.Errorf("cluster: %d local edges != %d graph edges", localEdges, l.g.NumEdges())
	}
	for v := 0; v < n; v++ {
		pres := l.Presences(graph.VertexID(v))
		if len(pres) == 0 {
			if l.g.OutDegree(graph.VertexID(v)) > 0 || l.g.InDegree(graph.VertexID(v)) > 0 {
				return fmt.Errorf("cluster: vertex %d has edges but no presence", v)
			}
			continue
		}
		if pres[0] != l.master[v] {
			return fmt.Errorf("cluster: vertex %d master %d not first in presence list", v, l.master[v])
		}
		seen := map[uint16]bool{}
		for _, m := range pres {
			if seen[m] {
				return fmt.Errorf("cluster: vertex %d duplicated presence on %d", v, m)
			}
			seen[m] = true
			if _, ok := l.views[m].localIdx[uint32(v)]; !ok {
				return fmt.Errorf("cluster: vertex %d listed on machine %d but absent from view", v, m)
			}
		}
	}
	// Local out-degrees must sum to global out-degree per vertex.
	sum := make([]int64, n)
	for m := 0; m < l.machines; m++ {
		view := &l.views[m]
		for li, vert := range view.verts {
			sum[vert] += view.outOff[li+1] - view.outOff[li]
		}
	}
	for v := 0; v < n; v++ {
		if sum[v] != int64(l.g.OutDegree(graph.VertexID(v))) {
			return fmt.Errorf("cluster: vertex %d local out-degree sum %d != %d",
				v, sum[v], l.g.OutDegree(graph.VertexID(v)))
		}
	}
	return nil
}

// ID returns the machine's id.
func (mv *MachineView) ID() int { return mv.id }

// Verts returns the present vertices in ascending order. The slice
// aliases internal storage.
func (mv *MachineView) Verts() []uint32 { return mv.verts }

// NumLocalEdges returns the number of edges owned by this machine.
func (mv *MachineView) NumLocalEdges() int64 { return int64(len(mv.outAdj)) }

// LocalIndex returns the machine-local dense index of v and whether v
// is present on this machine.
func (mv *MachineView) LocalIndex(v graph.VertexID) (int32, bool) {
	li, ok := mv.localIdx[v]
	return li, ok
}

// OutNeighborsLocal returns the destinations of the machine's local
// out-edges of the vertex at local index li.
func (mv *MachineView) OutNeighborsLocal(li int32) []uint32 {
	return mv.outAdj[mv.outOff[li]:mv.outOff[li+1]]
}

// InNeighborsLocal returns the sources of the machine's local in-edges
// of the vertex at local index li.
func (mv *MachineView) InNeighborsLocal(li int32) []uint32 {
	return mv.inAdj[mv.inOff[li]:mv.inOff[li+1]]
}

// LocalOutDegree returns the local out-degree of the vertex at local
// index li.
func (mv *MachineView) LocalOutDegree(li int32) int {
	return int(mv.outOff[li+1] - mv.outOff[li])
}

// LocalInDegree returns the local in-degree of the vertex at local
// index li.
func (mv *MachineView) LocalInDegree(li int32) int {
	return int(mv.inOff[li+1] - mv.inOff[li])
}

// Masters returns the vertices mastered on this machine, ascending.
func (mv *MachineView) Masters() []uint32 { return mv.masters }

// NumPresent returns the number of vertices present on this machine.
func (mv *MachineView) NumPresent() int { return len(mv.verts) }
