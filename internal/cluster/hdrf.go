package cluster

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// HDRF implements the High-Degree (are) Replicated First streaming
// vertex-cut partitioner of Petroni et al. (CIKM 2015). When an edge
// must replicate one of its endpoints, HDRF prefers replicating the
// higher-degree one: power-law graphs then concentrate cut vertices on
// the few hubs, yielding lower replication factors than PowerGraph's
// oblivious heuristic on skewed graphs.
//
// Lambda controls the load-balance term (Petroni et al. recommend
// values slightly above 1; the zero value selects 1.1).
type HDRF struct {
	Lambda float64
}

// Name implements Partitioner.
func (HDRF) Name() string { return "hdrf" }

// Place implements Partitioner.
func (h HDRF) Place(g *graph.Graph, machines int, seed uint64) []uint16 {
	checkMachines(machines)
	lambda := h.Lambda
	if lambda == 0 {
		lambda = 1.1
	}
	n := g.NumVertices()
	edges := g.EdgeSlice()
	order := make([]int, len(edges))
	r := rng.Derive(seed, 0x1D2F)
	r.Perm(order)

	// Partial degrees (observed so far in the stream, per HDRF).
	pdeg := make([]int32, n)
	// presence bitsets (<=64 machines fast path, like Oblivious).
	usesBitset := machines <= 64
	var presence []uint64
	var presenceBig [][]uint64
	words := (machines + 63) / 64
	if usesBitset {
		presence = make([]uint64, n)
	} else {
		presenceBig = make([][]uint64, n)
	}
	has := func(v graph.VertexID, m int) bool {
		if usesBitset {
			return presence[v]&(1<<uint(m)) != 0
		}
		b := presenceBig[v]
		return b != nil && b[m/64]&(1<<uint(m%64)) != 0
	}
	set := func(v graph.VertexID, m int) {
		if usesBitset {
			presence[v] |= 1 << uint(m)
			return
		}
		if presenceBig[v] == nil {
			presenceBig[v] = make([]uint64, words)
		}
		presenceBig[v][m/64] |= 1 << uint(m%64)
	}

	load := make([]int64, machines)
	var maxLoad, minLoad int64
	out := make([]uint16, len(edges))

	for _, idx := range order {
		e := edges[idx]
		pdeg[e.Src]++
		pdeg[e.Dst]++
		du, dv := float64(pdeg[e.Src]), float64(pdeg[e.Dst])
		// Normalized degrees θ: the lower-degree endpoint gets the
		// larger θ, steering its replica credit higher so the
		// low-degree vertex is kept intact and the hub is replicated.
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU

		best, bestScore := 0, math.Inf(-1)
		for m := 0; m < machines; m++ {
			rep := 0.0
			if has(e.Src, m) {
				rep += 1 + (1 - thetaU)
			}
			if has(e.Dst, m) {
				rep += 1 + (1 - thetaV)
			}
			denom := float64(maxLoad-minLoad) + 1
			bal := lambda * float64(maxLoad-load[m]) / denom
			if score := rep + bal; score > bestScore {
				best, bestScore = m, score
			}
		}
		out[idx] = uint16(best)
		set(e.Src, best)
		set(e.Dst, best)
		load[best]++
		if load[best] > maxLoad {
			maxLoad = load[best]
		}
		minLoad = load[0]
		for m := 1; m < machines; m++ {
			if load[m] < minLoad {
				minLoad = load[m]
			}
		}
	}
	return out
}
