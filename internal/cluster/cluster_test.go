package cluster

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/rng"
)

func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		N: n, MeanOutDeg: 8, DegExponent: 2.1, PrefExponent: 1.0, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "random", "oblivious", "grid"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestLayoutValidateAllPartitioners(t *testing.T) {
	g := testGraph(t, 800, 1)
	for _, p := range []Partitioner{Random{}, Oblivious{}, Grid{}} {
		for _, machines := range []int{1, 2, 5, 16, 24} {
			lay, err := NewLayout(g, machines, p, 7)
			if err != nil {
				t.Fatalf("%s/%d: %v", p.Name(), machines, err)
			}
			if err := lay.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", p.Name(), machines, err)
			}
		}
	}
}

func TestLayoutSingleMachine(t *testing.T) {
	g := testGraph(t, 200, 2)
	lay, err := NewLayout(g, 1, Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rf := lay.ReplicationFactor(); rf != 1 {
		t.Errorf("replication factor on 1 machine = %v, want 1", rf)
	}
	view := lay.View(0)
	if view.NumLocalEdges() != g.NumEdges() {
		t.Errorf("single machine owns %d edges, want %d", view.NumLocalEdges(), g.NumEdges())
	}
	if len(view.Masters()) != g.NumVertices() {
		t.Errorf("single machine masters %d vertices, want %d", len(view.Masters()), g.NumVertices())
	}
}

func TestReplicationGrowsWithMachines(t *testing.T) {
	g := testGraph(t, 2000, 3)
	prev := 0.0
	for _, machines := range []int{1, 4, 16} {
		lay, err := NewLayout(g, machines, Random{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		rf := lay.ReplicationFactor()
		if rf < prev {
			t.Errorf("replication factor decreased: %v -> %v at %d machines", prev, rf, machines)
		}
		if rf > float64(machines) {
			t.Errorf("replication factor %v exceeds machine count %d", rf, machines)
		}
		prev = rf
	}
	if prev < 1.5 {
		t.Errorf("16-machine replication factor %v suspiciously low for a power-law graph", prev)
	}
}

func TestObliviousBeatsRandomReplication(t *testing.T) {
	g := testGraph(t, 3000, 4)
	layR, err := NewLayout(g, 16, Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	layO, err := NewLayout(g, 16, Oblivious{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if layO.ReplicationFactor() >= layR.ReplicationFactor() {
		t.Errorf("oblivious replication %v should beat random %v",
			layO.ReplicationFactor(), layR.ReplicationFactor())
	}
}

func TestGridBoundsReplication(t *testing.T) {
	g := testGraph(t, 3000, 5)
	lay, err := NewLayout(g, 16, Grid{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4x4 grid: any vertex's replicas live in one row + one column,
	// so at most 4+4-1 = 7 replicas.
	for v := 0; v < g.NumVertices(); v++ {
		if p := len(lay.Presences(uint32(v))); p > 7 {
			t.Fatalf("vertex %d has %d replicas under grid, bound is 7", v, p)
		}
	}
}

func TestMasterIsPresence(t *testing.T) {
	g := testGraph(t, 500, 6)
	lay, err := NewLayout(g, 8, Oblivious{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		pres := lay.Presences(uint32(v))
		if len(pres) == 0 {
			t.Fatalf("vertex %d hosted nowhere", v)
		}
		if pres[0] != lay.MasterOf(uint32(v)) {
			t.Fatalf("vertex %d: master %d not first presence", v, lay.MasterOf(uint32(v)))
		}
	}
}

func TestLayoutDeterministic(t *testing.T) {
	g := testGraph(t, 600, 7)
	a, err := NewLayout(g, 12, Oblivious{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLayout(g, 12, Oblivious{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if a.MasterOf(uint32(v)) != b.MasterOf(uint32(v)) {
			t.Fatal("layouts differ for same seed")
		}
	}
	for m := 0; m < 12; m++ {
		if a.View(m).NumLocalEdges() != b.View(m).NumLocalEdges() {
			t.Fatal("edge placement differs for same seed")
		}
	}
}

func TestLocalViewConsistency(t *testing.T) {
	g := testGraph(t, 400, 8)
	lay, err := NewLayout(g, 6, Random{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every local out-edge must exist in the global graph.
	for m := 0; m < 6; m++ {
		view := lay.View(m)
		for li, v := range view.Verts() {
			if got, ok := view.LocalIndex(v); !ok || got != int32(li) {
				t.Fatalf("local index mismatch on machine %d vertex %d", m, v)
			}
			for _, d := range view.OutNeighborsLocal(int32(li)) {
				found := false
				for _, gd := range g.OutNeighbors(v) {
					if gd == d {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("machine %d has phantom edge %d->%d", m, v, d)
				}
			}
			if view.LocalOutDegree(int32(li)) != len(view.OutNeighborsLocal(int32(li))) {
				t.Fatal("LocalOutDegree mismatch")
			}
			if view.LocalInDegree(int32(li)) != len(view.InNeighborsLocal(int32(li))) {
				t.Fatal("LocalInDegree mismatch")
			}
		}
	}
}

func TestEdgeOwnershipPartition(t *testing.T) {
	// Property: the multiset of local edges across machines equals the
	// graph's edge multiset. Validate() checks counts; here we check
	// identity via hashing.
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(100) + 10
		m := r.Intn(400) + 20
		es := make([]graph.Edge, m)
		for i := range es {
			es[i] = graph.Edge{Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n))}
		}
		g := graph.FromEdges(n, es)
		machines := r.Intn(20) + 1
		lay, err := NewLayout(g, machines, Random{}, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if err := lay.Validate(); err != nil {
			t.Fatal(err)
		}
		var globalSum, localSum uint64
		g.Edges(func(e graph.Edge) bool {
			globalSum += uint64(e.Src)<<32 ^ uint64(e.Dst)*0x9e37
			return true
		})
		for mm := 0; mm < machines; mm++ {
			view := lay.View(mm)
			for li, v := range view.Verts() {
				for _, d := range view.OutNeighborsLocal(int32(li)) {
					localSum += uint64(v)<<32 ^ uint64(d)*0x9e37
				}
			}
		}
		if globalSum != localSum {
			t.Fatal("edge multisets differ between graph and layout")
		}
	}
}

func TestCutStats(t *testing.T) {
	g := testGraph(t, 1000, 9)
	lay, err := NewLayout(g, 10, Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := lay.Stats()
	if s.Machines != 10 {
		t.Errorf("machines = %d", s.Machines)
	}
	if s.ReplicationFactor < 1 {
		t.Errorf("replication = %v", s.ReplicationFactor)
	}
	if s.EdgeImbalance < 1 {
		t.Errorf("edge imbalance = %v, must be >= 1", s.EdgeImbalance)
	}
	if s.MasterImbalance < 1 {
		t.Errorf("master imbalance = %v, must be >= 1", s.MasterImbalance)
	}
	// Random hashed placement should be well balanced.
	if s.EdgeImbalance > 1.5 {
		t.Errorf("random placement imbalance %v too high", s.EdgeImbalance)
	}
}

func TestMeterBasics(t *testing.T) {
	var m MachineMeter
	m.Send(TrafficSync, 100)
	m.Send(TrafficSignal, 50)
	m.Recv(TrafficGather, 30)
	if m.TotalSent() != 150 || m.TotalRecv() != 30 {
		t.Errorf("totals: sent %d recv %d", m.TotalSent(), m.TotalRecv())
	}
	var sum MachineMeter
	sum.Add(&m)
	sum.Add(&m)
	if sum.TotalSent() != 300 {
		t.Errorf("Add: %d", sum.TotalSent())
	}
	m.Reset()
	if m.TotalSent() != 0 {
		t.Error("Reset failed")
	}
}

func TestTrafficClassString(t *testing.T) {
	names := map[TrafficClass]string{
		TrafficGather: "gather", TrafficSync: "sync",
		TrafficSignal: "signal", TrafficControl: "control",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{EdgeOpSeconds: 1e-9, VertexOpSeconds: 1e-8, BytesPerSecond: 1e6, BarrierSeconds: 1e-3}
	meters := make([]MachineMeter, 2)
	meters[0].EdgeOps = 1000
	meters[0].Send(TrafficSync, 1000) // 1ms at 1MB/s
	meters[1].VertexOps = 100
	t0 := cm.MachineSeconds(&meters[0])
	want0 := 1000*1e-9 + 1000/1e6
	if diff := t0 - want0; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("machine 0 seconds = %v want %v", t0, want0)
	}
	step := cm.SuperstepSeconds(meters)
	if step < want0+1e-3 || step > want0+1e-3+1e-9 {
		t.Errorf("superstep = %v", step)
	}
	cpu := cm.CPUSeconds(meters)
	wantCPU := 1000*1e-9 + 100*1e-8
	if diff := cpu - wantCPU; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("cpu = %v want %v", cpu, wantCPU)
	}
}

func TestZeroBandwidthMeansFreeNetwork(t *testing.T) {
	cm := CostModel{EdgeOpSeconds: 1e-9}
	var m MachineMeter
	m.Send(TrafficSync, 1<<30)
	if s := cm.MachineSeconds(&m); s != 0 {
		t.Errorf("zero-bandwidth model should ignore bytes, got %v", s)
	}
}

func BenchmarkLayoutRandom(b *testing.B) {
	g := testGraph(b, 20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLayout(g, 16, Random{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayoutOblivious(b *testing.B) {
	g := testGraph(b, 20000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLayout(g, 16, Oblivious{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHDRFValidAndCompetitive(t *testing.T) {
	g := testGraph(t, 3000, 10)
	layH, err := NewLayout(g, 16, HDRF{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := layH.Validate(); err != nil {
		t.Fatal(err)
	}
	layR, err := NewLayout(g, 16, Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// HDRF's selling point: much lower replication than random hashing
	// on power-law graphs.
	if layH.ReplicationFactor() >= layR.ReplicationFactor() {
		t.Errorf("HDRF replication %v should beat random %v",
			layH.ReplicationFactor(), layR.ReplicationFactor())
	}
	// Load balance must stay reasonable (that's what lambda buys).
	if s := layH.Stats(); s.EdgeImbalance > 2.0 {
		t.Errorf("HDRF edge imbalance %v too high", s.EdgeImbalance)
	}
}

func TestHDRFByName(t *testing.T) {
	p, err := ByName("hdrf")
	if err != nil || p.Name() != "hdrf" {
		t.Fatalf("ByName(hdrf) = %v, %v", p, err)
	}
}

func TestHDRFDeterministic(t *testing.T) {
	g := testGraph(t, 500, 11)
	a := HDRF{}.Place(g, 8, 42)
	b := HDRF{}.Place(g, 8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("HDRF placement not deterministic")
		}
	}
}

func TestLayoutBeyond64Machines(t *testing.T) {
	// Exercises the multi-word presence bitset path (machines > 64).
	g := testGraph(t, 1500, 12)
	for _, p := range []Partitioner{Random{}, Oblivious{}, HDRF{}} {
		lay, err := NewLayout(g, 100, p, 3)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := lay.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if rf := lay.ReplicationFactor(); rf < 1 || rf > 100 {
			t.Fatalf("%s: replication %v out of range", p.Name(), rf)
		}
	}
}

func TestMachineCountBounds(t *testing.T) {
	g := testGraph(t, 50, 13)
	if _, err := NewLayout(g, 0, Random{}, 1); err == nil {
		t.Error("0 machines should error")
	}
	if _, err := NewLayout(g, MaxMachines+1, Random{}, 1); err == nil {
		t.Error("too many machines should error")
	}
}
