package cluster

import "fmt"

// TrafficClass labels metered network traffic by purpose, matching the
// flows in a PowerGraph synchronous GAS cycle.
type TrafficClass int

const (
	// TrafficGather is mirror→master accumulator traffic.
	TrafficGather TrafficClass = iota
	// TrafficSync is master→mirror vertex-state synchronization, the
	// traffic class the paper's ps knob thins out.
	TrafficSync
	// TrafficSignal is scatter-phase messages/signals to destination
	// vertex masters.
	TrafficSignal
	// TrafficControl is barrier and activation control traffic.
	TrafficControl

	numTrafficClasses
)

// String implements fmt.Stringer.
func (t TrafficClass) String() string {
	switch t {
	case TrafficGather:
		return "gather"
	case TrafficSync:
		return "sync"
	case TrafficSignal:
		return "signal"
	case TrafficControl:
		return "control"
	}
	return fmt.Sprintf("class(%d)", int(t))
}

// MachineMeter accumulates one machine's traffic and compute counters.
// A meter is owned by one engine goroutine at a time; no locking.
type MachineMeter struct {
	// SentBytes and RecvBytes are indexed by TrafficClass.
	SentBytes [numTrafficClasses]int64
	RecvBytes [numTrafficClasses]int64
	// EdgeOps counts per-edge work (gather reads, scatter writes);
	// VertexOps counts apply executions.
	EdgeOps   int64
	VertexOps int64
}

// Send meters bytes leaving this machine.
func (m *MachineMeter) Send(c TrafficClass, bytes int64) { m.SentBytes[c] += bytes }

// Recv meters bytes arriving at this machine.
func (m *MachineMeter) Recv(c TrafficClass, bytes int64) { m.RecvBytes[c] += bytes }

// Reset zeroes all counters.
func (m *MachineMeter) Reset() { *m = MachineMeter{} }

// TotalSent sums sent bytes across classes.
func (m *MachineMeter) TotalSent() int64 {
	var t int64
	for _, b := range m.SentBytes {
		t += b
	}
	return t
}

// TotalRecv sums received bytes across classes.
func (m *MachineMeter) TotalRecv() int64 {
	var t int64
	for _, b := range m.RecvBytes {
		t += b
	}
	return t
}

// Add accumulates other into m.
func (m *MachineMeter) Add(other *MachineMeter) {
	for c := 0; c < int(numTrafficClasses); c++ {
		m.SentBytes[c] += other.SentBytes[c]
		m.RecvBytes[c] += other.RecvBytes[c]
	}
	m.EdgeOps += other.EdgeOps
	m.VertexOps += other.VertexOps
}

// NetworkReport aggregates cluster-wide traffic for a run.
type NetworkReport struct {
	// BytesByClass is total bytes sent per traffic class.
	BytesByClass [numTrafficClasses]int64
	TotalBytes   int64
	EdgeOps      int64
	VertexOps    int64
}

// ClassBytes returns the bytes sent under class c.
func (n NetworkReport) ClassBytes(c TrafficClass) int64 { return n.BytesByClass[c] }

// CostModel converts metered work into simulated wall-clock seconds.
// The defaults approximate the paper's AWS m3.xlarge testbed: ~1 Gb/s
// effective per-machine bandwidth, ~1 ms per-superstep barrier, a few
// nanoseconds per edge operation.
type CostModel struct {
	// EdgeOpSeconds is CPU time per edge operation.
	EdgeOpSeconds float64
	// VertexOpSeconds is CPU time per apply.
	VertexOpSeconds float64
	// BytesPerSecond is per-machine network bandwidth.
	BytesPerSecond float64
	// BarrierSeconds is fixed latency per superstep.
	BarrierSeconds float64
}

// DefaultCostModel returns the calibrated default cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		EdgeOpSeconds:   5e-9,
		VertexOpSeconds: 20e-9,
		BytesPerSecond:  125e6, // ≈ 1 Gb/s
		BarrierSeconds:  1e-3,
	}
}

// MachineSeconds returns the simulated time machine meter m spends in
// one superstep: CPU plus serialized network transfer.
func (c CostModel) MachineSeconds(m *MachineMeter) float64 {
	cpu := float64(m.EdgeOps)*c.EdgeOpSeconds + float64(m.VertexOps)*c.VertexOpSeconds
	net := 0.0
	if c.BytesPerSecond > 0 {
		net = float64(m.TotalSent()+m.TotalRecv()) / c.BytesPerSecond
	}
	return cpu + net
}

// SuperstepSeconds returns the simulated duration of a superstep given
// the per-machine meters for that superstep: the slowest machine plus
// the barrier.
func (c CostModel) SuperstepSeconds(meters []MachineMeter) float64 {
	slowest := 0.0
	for i := range meters {
		if s := c.MachineSeconds(&meters[i]); s > slowest {
			slowest = s
		}
	}
	return slowest + c.BarrierSeconds
}

// CPUSeconds returns the total simulated CPU time across machines (the
// paper's Figure 1(d) metric: summed, not elapsed).
func (c CostModel) CPUSeconds(meters []MachineMeter) float64 {
	total := 0.0
	for i := range meters {
		total += float64(meters[i].EdgeOps)*c.EdgeOpSeconds + float64(meters[i].VertexOps)*c.VertexOpSeconds
	}
	return total
}
