package harness

import (
	"fmt"

	"repro/internal/frogwild"
	"repro/internal/glpr"
	"repro/internal/sparsify"
	"repro/internal/topk"
)

// psSweep is the synchronization sweep the paper uses everywhere.
var psSweep = []float64{1.0, 0.7, 0.4, 0.1}

// walkerFactors scale the base walker budget like the paper's
// 400K–1400K sweep around 800K.
var walkerFactors = []float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75}

// fwIters is the paper's default FrogWild iteration count.
const fwIters = 4

// machineSweep mirrors the paper's AWS cluster sizes.
var machineSweep = []int{12, 16, 20, 24}

// glMetrics summarizes one GL PR run.
type glMetrics struct {
	rank       []float64
	totalSim   float64
	perIterSim float64
	netBytes   float64
	cpuSec     float64
	supersteps int
}

func (e *Env) runGLPR(w *Workload, machines, iterations int) (*glMetrics, error) {
	lay, err := e.Layout(w, machines)
	if err != nil {
		return nil, err
	}
	cfg := glpr.Config{Layout: lay, Seed: e.Seed, Cost: e.Cost, WorkersPerMachine: e.EngineWorkers}
	if iterations > 0 {
		cfg.Iterations = iterations
	} else {
		cfg.Tolerance = 1e-8
	}
	res, err := glpr.Run(w.Graph, cfg)
	if err != nil {
		return nil, err
	}
	return &glMetrics{
		rank:       res.Rank,
		totalSim:   res.Stats.SimSeconds,
		perIterSim: res.Stats.SimSeconds / float64(res.Stats.Supersteps),
		netBytes:   float64(res.Stats.Net.TotalBytes),
		cpuSec:     res.Stats.CPUSeconds,
		supersteps: res.Stats.Supersteps,
	}, nil
}

// fwMetrics summarizes one FrogWild run.
type fwMetrics struct {
	estimate   []float64
	totalSim   float64
	perIterSim float64
	netBytes   float64
	cpuSec     float64
}

func (e *Env) runFW(w *Workload, machines, walkers, iterations int, ps float64) (*fwMetrics, error) {
	lay, err := e.Layout(w, machines)
	if err != nil {
		return nil, err
	}
	res, err := frogwild.Run(w.Graph, frogwild.Config{
		Walkers:           walkers,
		Iterations:        iterations,
		PS:                ps,
		Layout:            lay,
		Seed:              e.Seed + uint64(walkers) + uint64(iterations)*7919,
		WorkersPerMachine: e.EngineWorkers,
		Cost:              e.Cost,
	})
	if err != nil {
		return nil, err
	}
	return &fwMetrics{
		estimate:   res.Estimate,
		totalSim:   res.Stats.SimSeconds,
		perIterSim: res.Stats.SimSeconds / float64(res.Stats.Supersteps),
		netBytes:   float64(res.Stats.Net.TotalBytes),
		cpuSec:     res.Stats.CPUSeconds,
	}, nil
}

// Fig1 reproduces Figure 1(a)–(d): per-iteration time, total time,
// network bytes and CPU usage versus cluster size on the Twitter-like
// workload, for GL PR (exact, 2 iters, 1 iter) and FrogWild (ps sweep).
func Fig1(e *Env) ([]*Table, error) {
	w, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	a := &Table{ID: "fig1a", Title: "Time per iteration vs machines (Twitter-like)", XLabel: "machines",
		Columns: []string{"GLPR exact", "FW ps=1", "FW ps=0.7", "FW ps=0.4", "FW ps=0.1"}}
	b := &Table{ID: "fig1b", Title: "Total time vs machines (Twitter-like)", XLabel: "machines",
		Columns: []string{"GLPR exact", "GLPR 2it", "GLPR 1it", "FW ps=1", "FW ps=0.1"}}
	c := &Table{ID: "fig1c", Title: "Network bytes vs machines (Twitter-like)", XLabel: "machines",
		Columns: []string{"GLPR exact", "GLPR 2it", "GLPR 1it", "FW ps=1", "FW ps=0.1"}}
	d := &Table{ID: "fig1d", Title: "CPU seconds vs machines (Twitter-like)", XLabel: "machines",
		Columns: []string{"GLPR exact", "GLPR 2it", "GLPR 1it", "FW ps=1", "FW ps=0.1"}}
	for _, machines := range machineSweep {
		exact, err := e.runGLPR(w, machines, 0)
		if err != nil {
			return nil, err
		}
		gl2, err := e.runGLPR(w, machines, 2)
		if err != nil {
			return nil, err
		}
		gl1, err := e.runGLPR(w, machines, 1)
		if err != nil {
			return nil, err
		}
		fw := make(map[float64]*fwMetrics, len(psSweep))
		for _, ps := range psSweep {
			m, err := e.runFW(w, machines, w.Walkers, fwIters, ps)
			if err != nil {
				return nil, err
			}
			fw[ps] = m
		}
		label := fmt.Sprintf("%d", machines)
		a.AddRow(label, exact.perIterSim, fw[1.0].perIterSim, fw[0.7].perIterSim, fw[0.4].perIterSim, fw[0.1].perIterSim)
		b.AddRow(label, exact.totalSim, gl2.totalSim, gl1.totalSim, fw[1.0].totalSim, fw[0.1].totalSim)
		c.AddRow(label, exact.netBytes, gl2.netBytes, gl1.netBytes, fw[1.0].netBytes, fw[0.1].netBytes)
		d.AddRow(label, exact.cpuSec, gl2.cpuSec, gl1.cpuSec, fw[1.0].cpuSec, fw[0.1].cpuSec)
	}
	for _, t := range []*Table{a, b, c, d} {
		w.describe(t)
		t.AddNote("FrogWild: %d walkers, %d iterations", w.Walkers, fwIters)
	}
	return []*Table{a, b, c, d}, nil
}

// Fig2 reproduces Figure 2(a)/(b): captured-mass and exact-
// identification accuracy versus k on the Twitter-like workload with 16
// machines.
func Fig2(e *Env) ([]*Table, error) {
	w, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	const machines = 16
	ks := []int{30, 100, 300, 1000}
	cols := []string{"GLPR 2it", "GLPR 1it", "FW ps=1", "FW ps=0.7", "FW ps=0.4", "FW ps=0.1"}
	mass := &Table{ID: "fig2a", Title: "Accuracy (mass captured) vs k (Twitter-like, 16 machines)", XLabel: "k", Columns: cols}
	ident := &Table{ID: "fig2b", Title: "Accuracy (exact identification) vs k (Twitter-like, 16 machines)", XLabel: "k", Columns: cols}

	gl2, err := e.runGLPR(w, machines, 2)
	if err != nil {
		return nil, err
	}
	gl1, err := e.runGLPR(w, machines, 1)
	if err != nil {
		return nil, err
	}
	fw := make(map[float64]*fwMetrics, len(psSweep))
	for _, ps := range psSweep {
		m, err := e.runFW(w, machines, w.Walkers, fwIters, ps)
		if err != nil {
			return nil, err
		}
		fw[ps] = m
	}
	for _, k := range ks {
		if k >= w.Graph.NumVertices() {
			continue
		}
		mass.AddRow(fmt.Sprintf("%d", k),
			topk.NormalizedCapturedMass(w.Exact, gl2.rank, k),
			topk.NormalizedCapturedMass(w.Exact, gl1.rank, k),
			topk.NormalizedCapturedMass(w.Exact, fw[1.0].estimate, k),
			topk.NormalizedCapturedMass(w.Exact, fw[0.7].estimate, k),
			topk.NormalizedCapturedMass(w.Exact, fw[0.4].estimate, k),
			topk.NormalizedCapturedMass(w.Exact, fw[0.1].estimate, k))
		ident.AddRow(fmt.Sprintf("%d", k),
			topk.ExactIdentification(w.Exact, gl2.rank, k),
			topk.ExactIdentification(w.Exact, gl1.rank, k),
			topk.ExactIdentification(w.Exact, fw[1.0].estimate, k),
			topk.ExactIdentification(w.Exact, fw[0.7].estimate, k),
			topk.ExactIdentification(w.Exact, fw[0.4].estimate, k),
			topk.ExactIdentification(w.Exact, fw[0.1].estimate, k))
	}
	for _, t := range []*Table{mass, ident} {
		w.describe(t)
		t.AddNote("FrogWild: %d walkers, %d iterations", w.Walkers, fwIters)
	}
	return []*Table{mass, ident}, nil
}

// tradeoff builds the accuracy-vs-time-vs-network table shared by
// Figures 3, 4 and 7: every GL PR and FrogWild configuration as a row
// with its total time, network bytes and k=100 captured mass.
func tradeoff(e *Env, w *Workload, machines int, id, title string) (*Table, error) {
	t := &Table{ID: id, Title: title, XLabel: "configuration",
		Columns: []string{"total time (s)", "network bytes", "mass captured k=100"}}
	for _, iters := range []int{1, 2, 0} {
		m, err := e.runGLPR(w, machines, iters)
		if err != nil {
			return nil, err
		}
		label := "GLPR exact"
		if iters > 0 {
			label = fmt.Sprintf("GLPR %dit", iters)
		}
		t.AddRow(label, m.totalSim, m.netBytes, topk.NormalizedCapturedMass(w.Exact, m.rank, 100))
	}
	for _, iters := range []int{3, 4, 5} {
		for _, ps := range psSweep {
			m, err := e.runFW(w, machines, w.Walkers, iters, ps)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("FW it=%d ps=%.1f", iters, ps),
				m.totalSim, m.netBytes, topk.NormalizedCapturedMass(w.Exact, m.estimate, 100))
		}
	}
	w.describe(t)
	t.AddNote("walkers %d; rows are plot points for accuracy-vs-time and accuracy-vs-network", w.Walkers)
	return t, nil
}

// Fig3 reproduces Figures 3(a)/(b) and 4: the accuracy / total time /
// network trade-off on the Twitter-like workload with 24 machines.
func Fig3(e *Env) ([]*Table, error) {
	w, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	t, err := tradeoff(e, w, 24, "fig3", "Accuracy vs time vs network (Twitter-like, 24 machines; also Figure 4)")
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Fig5 reproduces Figure 5: FrogWild versus uniform sparsification
// (GL PR 2 iterations on the thinned graph) on the Twitter-like
// workload with 12 machines.
func Fig5(e *Env) ([]*Table, error) {
	w, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	const machines = 12
	t := &Table{ID: "fig5", Title: "FrogWild vs uniform sparsification (Twitter-like, 12 machines)",
		XLabel: "configuration", Columns: []string{"total time (s)", "network bytes", "mass captured k=100"}}
	for _, q := range []float64{0.4, 0.7, 1.0} {
		res, err := sparsify.Run(w.Graph, sparsify.Config{
			Keep: q, Iterations: 2, Machines: machines, Seed: e.Seed, Cost: e.Cost,
			WorkersPerMachine: e.EngineWorkers,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("sparsify q=%.1f GLPR 2it", q),
			res.Stats.SimSeconds, float64(res.Stats.Net.TotalBytes),
			topk.NormalizedCapturedMass(w.Exact, res.Rank, 100))
	}
	for _, ps := range []float64{0.4, 0.7, 1.0} {
		m, err := e.runFW(w, machines, w.Walkers, fwIters, ps)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("FW it=%d ps=%.1f", fwIters, ps),
			m.totalSim, m.netBytes, topk.NormalizedCapturedMass(w.Exact, m.estimate, 100))
	}
	w.describe(t)
	t.AddNote("sparsification time excludes the sparsify+re-ingress cost itself, favouring the baseline (as the paper does)")
	return []*Table{t}, nil
}

// Fig6 reproduces Figure 6(a)–(d): LiveJournal accuracy and total time
// versus walker count and versus iteration count, across the ps sweep,
// on 20 machines.
func Fig6(e *Env) ([]*Table, error) {
	w, err := e.LiveJournal()
	if err != nil {
		return nil, err
	}
	const machines = 20
	cols := []string{"FW ps=1", "FW ps=0.7", "FW ps=0.4", "FW ps=0.1"}

	accByN := &Table{ID: "fig6a", Title: "Accuracy vs walkers (LiveJournal-like, 20 machines, 4 iters)", XLabel: "walkers", Columns: cols}
	timeByN := &Table{ID: "fig6c", Title: "Total time vs walkers (LiveJournal-like, 20 machines, 4 iters)", XLabel: "walkers", Columns: cols}
	for _, f := range walkerFactors {
		n := int(f * float64(w.Walkers))
		accRow := make([]float64, 0, len(psSweep))
		timeRow := make([]float64, 0, len(psSweep))
		for _, ps := range psSweep {
			m, err := e.runFW(w, machines, n, fwIters, ps)
			if err != nil {
				return nil, err
			}
			accRow = append(accRow, topk.NormalizedCapturedMass(w.Exact, m.estimate, 100))
			timeRow = append(timeRow, m.totalSim)
		}
		accByN.AddRow(fmt.Sprintf("%d", n), accRow...)
		timeByN.AddRow(fmt.Sprintf("%d", n), timeRow...)
	}

	accByIt := &Table{ID: "fig6b", Title: "Accuracy vs iterations (LiveJournal-like, 20 machines, base walkers)", XLabel: "iterations", Columns: cols}
	timeByIt := &Table{ID: "fig6d", Title: "Total time vs iterations (LiveJournal-like, 20 machines, base walkers)", XLabel: "iterations", Columns: cols}
	for _, iters := range []int{2, 3, 4, 5, 6} {
		accRow := make([]float64, 0, len(psSweep))
		timeRow := make([]float64, 0, len(psSweep))
		for _, ps := range psSweep {
			m, err := e.runFW(w, machines, w.Walkers, iters, ps)
			if err != nil {
				return nil, err
			}
			accRow = append(accRow, topk.NormalizedCapturedMass(w.Exact, m.estimate, 100))
			timeRow = append(timeRow, m.totalSim)
		}
		accByIt.AddRow(fmt.Sprintf("%d", iters), accRow...)
		timeByIt.AddRow(fmt.Sprintf("%d", iters), timeRow...)
	}

	// GL PR reference lines (the paper's left-hand bars).
	for _, spec := range []struct {
		iters int
		name  string
	}{{0, "GLPR exact"}, {2, "GLPR 2it"}, {1, "GLPR 1it"}} {
		m, err := e.runGLPR(w, machines, spec.iters)
		if err != nil {
			return nil, err
		}
		note := fmt.Sprintf("%s reference: accuracy(k=100)=%.4f total time=%.4fs",
			spec.name, topk.NormalizedCapturedMass(w.Exact, m.rank, 100), m.totalSim)
		accByN.AddNote("%s", note)
		timeByN.AddNote("%s", note)
		accByIt.AddNote("%s", note)
		timeByIt.AddNote("%s", note)
	}
	tables := []*Table{accByN, accByIt, timeByN, timeByIt}
	for _, t := range tables {
		w.describe(t)
	}
	return tables, nil
}

// Fig7 reproduces Figure 7(a)/(b): the accuracy / time / network
// trade-off on the LiveJournal-like workload with 20 machines.
func Fig7(e *Env) ([]*Table, error) {
	w, err := e.LiveJournal()
	if err != nil {
		return nil, err
	}
	t, err := tradeoff(e, w, 20, "fig7", "Accuracy vs time vs network (LiveJournal-like, 20 machines)")
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Fig8 reproduces Figure 8: FrogWild network usage versus the number of
// initial walkers (LiveJournal-like, 20 machines, ps=1) — the paper
// reports a linear relationship.
func Fig8(e *Env) ([]*Table, error) {
	w, err := e.LiveJournal()
	if err != nil {
		return nil, err
	}
	const machines = 20
	t := &Table{ID: "fig8", Title: "Network bytes vs walkers (LiveJournal-like, 20 machines, ps=1, 4 iters)",
		XLabel: "walkers", Columns: []string{"network bytes"}}
	for _, f := range walkerFactors {
		n := int(f * float64(w.Walkers))
		m, err := e.runFW(w, machines, n, fwIters, 1.0)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), m.netBytes)
	}
	w.describe(t)
	return []*Table{t}, nil
}

// Figure runs one experiment by number (1..8; 4 aliases 3).
func Figure(e *Env, fig int) ([]*Table, error) {
	switch fig {
	case 1:
		return Fig1(e)
	case 2:
		return Fig2(e)
	case 3, 4:
		return Fig3(e)
	case 5:
		return Fig5(e)
	case 6:
		return Fig6(e)
	case 7:
		return Fig7(e)
	case 8:
		return Fig8(e)
	}
	return nil, fmt.Errorf("harness: unknown figure %d (want 1-8)", fig)
}

// All runs every experiment in paper order.
func All(e *Env) ([]*Table, error) {
	var out []*Table
	for _, fig := range []int{1, 2, 3, 5, 6, 7, 8} {
		ts, err := Figure(e, fig)
		if err != nil {
			return nil, fmt.Errorf("figure %d: %w", fig, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}
