package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func tinyEnv() *Env { return NewEnv(ScaleTiny, 12345) }

func TestParseScale(t *testing.T) {
	for name, want := range map[string]Scale{
		"tiny": ScaleTiny, "": ScaleSmall, "small": ScaleSmall,
		"medium": ScaleMedium, "large": ScaleLarge,
	} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale should error")
	}
	if ScaleTiny.String() != "tiny" || ScaleLarge.String() != "large" {
		t.Error("scale strings wrong")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", XLabel: "k", Columns: []string{"a", "b"}}
	tab.AddRow("10", 0.5, 1234567.0)
	tab.AddRow("20", 0.25, 3e-7)
	tab.AddNote("note %d", 1)
	out := tab.String()
	for _, want := range []string{"== x: demo ==", "k", "a", "b", "0.5000", "1.235e+06", "# note 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tab.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "k,a,b") || !strings.Contains(csv.String(), "10,0.5,") {
		t.Errorf("csv wrong:\n%s", csv.String())
	}
}

func TestTableColumn(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("r1", 1, 2)
	tab.AddRow("r2", 3, 4)
	col, ok := tab.Column("b")
	if !ok || len(col) != 2 || col[0] != 2 || col[1] != 4 {
		t.Errorf("Column(b) = %v, %v", col, ok)
	}
	if _, ok := tab.Column("zzz"); ok {
		t.Error("missing column should return false")
	}
}

func TestWorkloadsBuildOnceAndCache(t *testing.T) {
	e := tinyEnv()
	w1, err := e.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := e.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("workload not cached")
	}
	lj, err := e.LiveJournal()
	if err != nil {
		t.Fatal(err)
	}
	if lj.Graph.NumVertices() >= w1.Graph.NumVertices() {
		t.Error("LJ workload should be smaller than Twitter workload")
	}
	lay1, err := e.Layout(w1, 12)
	if err != nil {
		t.Fatal(err)
	}
	lay2, err := e.Layout(w1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if lay1 != lay2 {
		t.Error("layout not cached")
	}
}

func TestFigureDispatch(t *testing.T) {
	e := tinyEnv()
	if _, err := Figure(e, 0); err == nil {
		t.Error("figure 0 should error")
	}
	if _, err := Figure(e, 9); err == nil {
		t.Error("figure 9 should error")
	}
}

// TestFig8LinearInWalkers checks the paper's Figure 8 shape: network
// bytes grow roughly linearly with the walker count.
func TestFig8LinearInWalkers(t *testing.T) {
	e := tinyEnv()
	tables, err := Fig8(e)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	col, ok := tab.Column("network bytes")
	if !ok || len(col) < 3 {
		t.Fatalf("missing network column: %+v", tab)
	}
	// Factors are 0.5..1.75: last/first walker ratio is 3.5; network
	// ratio should be within [2, 5.5] for "roughly linear".
	ratio := col[len(col)-1] / col[0]
	if ratio < 2 || ratio > 5.5 {
		t.Errorf("network scaling ratio %v not ≈ 3.5 (linear in walkers)", ratio)
	}
	for i := 1; i < len(col); i++ {
		if col[i] < col[i-1] {
			t.Errorf("network bytes not monotone in walkers at row %d", i)
		}
	}
}

// TestFig5ShapeFrogWildFaster checks Figure 5's claim: FrogWild beats
// the sparsification baseline on running time at comparable accuracy.
func TestFig5ShapeFrogWildFaster(t *testing.T) {
	e := tinyEnv()
	tables, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	times, _ := tab.Column("total time (s)")
	acc, _ := tab.Column("mass captured k=100")
	// Rows 0-2 are sparsify, 3-5 FrogWild.
	var worstFW, bestSparse float64
	bestSparse = 1e18
	for i := 3; i < 6; i++ {
		if times[i] > worstFW {
			worstFW = times[i]
		}
	}
	for i := 0; i < 3; i++ {
		if times[i] < bestSparse {
			bestSparse = times[i]
		}
	}
	if worstFW >= bestSparse {
		t.Errorf("FrogWild (worst %.4fs) should beat sparsification (best %.4fs)", worstFW, bestSparse)
	}
	for i := 3; i < 6; i++ {
		if acc[i] < 0.7 {
			t.Errorf("FrogWild accuracy %.3f too low for comparability", acc[i])
		}
	}
}

// TestFig2ShapeAccuracy checks Figure 2's headline: FrogWild at ps=1
// and 0.7 matches or beats GL PR 1 iteration on captured mass. The
// paper runs N=800K walkers against k ≤ 1000 (N/k ≥ 800); at tiny
// scale the walker budget is n/6, so the comparison is only meaningful
// on rows with enough samples per reported vertex — we assert where
// k ≤ N/10 and merely require sane values elsewhere.
func TestFig2ShapeAccuracy(t *testing.T) {
	e := tinyEnv()
	w, err := e.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	mass := tables[0]
	gl1, _ := mass.Column("GLPR 1it")
	fw1, _ := mass.Column("FW ps=1")
	fw07, _ := mass.Column("FW ps=0.7")
	for i := range gl1 {
		var k int
		if _, err := fmt.Sscanf(mass.Rows[i].Label, "%d", &k); err != nil {
			t.Fatal(err)
		}
		if fw1[i] <= 0 || fw1[i] > 1+1e-9 || fw07[i] <= 0 || fw07[i] > 1+1e-9 {
			t.Errorf("row k=%d: accuracy out of (0,1]", k)
		}
		if k > w.Walkers/10 {
			continue // outside the paper's sampling regime at this scale
		}
		if fw1[i] < gl1[i]-0.02 {
			t.Errorf("k=%d: FW ps=1 (%.3f) should match/beat GLPR 1it (%.3f)", k, fw1[i], gl1[i])
		}
		if fw07[i] < gl1[i]-0.05 {
			t.Errorf("k=%d: FW ps=0.7 (%.3f) should be near GLPR 1it (%.3f)", k, fw07[i], gl1[i])
		}
	}
}

func TestTradeoffTablePrints(t *testing.T) {
	e := tinyEnv()
	tables, err := Fig7(e)
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	if !strings.Contains(out, "GLPR exact") || !strings.Contains(out, "FW it=4 ps=0.4") {
		t.Errorf("tradeoff table missing rows:\n%s", out)
	}
}

// TestFig1ShapeNetworkOrdering checks Figure 1(c)'s ordering at every
// machine count: GLPR exact > GLPR 2it > GLPR 1it > FW ps=1 > FW ps=0.1.
func TestFig1ShapeNetworkOrdering(t *testing.T) {
	e := tinyEnv()
	tables, err := Fig1(e)
	if err != nil {
		t.Fatal(err)
	}
	net := tables[2] // fig1c
	cols := []string{"GLPR exact", "GLPR 2it", "GLPR 1it", "FW ps=1", "FW ps=0.1"}
	series := make([][]float64, len(cols))
	for i, c := range cols {
		v, ok := net.Column(c)
		if !ok {
			t.Fatalf("missing column %s", c)
		}
		series[i] = v
	}
	for row := range series[0] {
		for i := 1; i < len(series); i++ {
			if series[i][row] >= series[i-1][row] {
				t.Errorf("row %d: %s (%.0f) should be below %s (%.0f)",
					row, cols[i], series[i][row], cols[i-1], series[i-1][row])
			}
		}
	}
	// FrogWild's network advantage over exact GL PR should be large
	// (the paper reports orders of magnitude).
	if ratio := series[0][0] / series[3][0]; ratio < 20 {
		t.Errorf("GLPR-exact/FW-ps1 network ratio %.1f, want ≫ 1", ratio)
	}
	// Per-iteration time: FrogWild faster than GL PR exact.
	perIter := tables[0]
	gl, _ := perIter.Column("GLPR exact")
	fw, _ := perIter.Column("FW ps=1")
	for row := range gl {
		if fw[row] >= gl[row] {
			t.Errorf("row %d: FW per-iter %.5f not below GLPR %.5f", row, fw[row], gl[row])
		}
	}
}

// TestFig6ShapeAccuracyRisesWithWalkers checks Figure 6(a)'s headline:
// at ps=1 the captured mass increases (weakly) with walker count, and
// time grows with iterations at every ps (6d).
func TestFig6ShapeAccuracyRisesWithWalkers(t *testing.T) {
	e := tinyEnv()
	tables, err := Fig6(e)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := tables[0].Column("FW ps=1") // fig6a
	first, last := acc[0], acc[len(acc)-1]
	if last < first-0.02 {
		t.Errorf("accuracy fell across walker sweep: %.3f -> %.3f", first, last)
	}
	timeByIt := tables[3] // fig6d
	for _, col := range timeByIt.Columns {
		v, _ := timeByIt.Column(col)
		for i := 1; i < len(v); i++ {
			if v[i] <= v[i-1] {
				t.Errorf("%s: time not increasing with iterations at row %d", col, i)
			}
		}
	}
}

func TestAblationsRun(t *testing.T) {
	e := tinyEnv()
	tables, err := Ablations(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("want 3 ablation tables, got %d", len(tables))
	}
	// Ingress ablation: oblivious and hdrf must beat random replication.
	ing := tables[0]
	repl, _ := ing.Column("replication")
	if repl[1] >= repl[0] || repl[3] >= repl[0] {
		t.Errorf("greedy ingress should beat random replication: %v", repl)
	}
	// Erasure ablation: independent erasures lose frogs at ps=0.1.
	er := tables[2]
	lost, _ := er.Column("lost frog fraction")
	if lost[0] != 0 || lost[1] != 0 {
		t.Error("at-least-one must not lose frogs")
	}
	if lost[3] <= 0 {
		t.Error("independent erasures at ps=0.1 must lose frogs")
	}
}
