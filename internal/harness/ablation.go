package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/frogwild"
	"repro/internal/topk"
)

// Ablations runs the design-choice ablations DESIGN.md calls out, none
// of which appear as paper figures but all of which probe decisions the
// paper makes implicitly:
//
//   - ingress strategy (the paper uses GraphLab's default random
//     ingress; replication factor is what couples ps to savings),
//   - scatter mode (the paper implements a deterministic split but
//     analyzes independent binomials),
//   - erasure model (Example 9 vs Example 10 of Appendix A).
func Ablations(e *Env) ([]*Table, error) {
	w, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	const machines = 16
	partTab, err := ablatePartitioners(e, w, machines)
	if err != nil {
		return nil, err
	}
	scatterTab, err := ablateScatter(e, w, machines)
	if err != nil {
		return nil, err
	}
	erasureTab, err := ablateErasure(e, w, machines)
	if err != nil {
		return nil, err
	}
	return []*Table{partTab, scatterTab, erasureTab}, nil
}

func ablatePartitioners(e *Env, w *Workload, machines int) (*Table, error) {
	t := &Table{ID: "ablation-ingress", Title: "Ingress strategy ablation (FrogWild ps=0.7, 4 iters)",
		XLabel:  "partitioner",
		Columns: []string{"replication", "edge imbalance", "network bytes", "mass captured k=100"}}
	for _, name := range []string{"random", "oblivious", "grid", "hdrf"} {
		p, err := cluster.ByName(name)
		if err != nil {
			return nil, err
		}
		lay, err := cluster.NewLayout(w.Graph, machines, p, e.Seed)
		if err != nil {
			return nil, err
		}
		res, err := frogwild.Run(w.Graph, frogwild.Config{
			Walkers: w.Walkers, Iterations: fwIters, PS: 0.7, Layout: lay, Seed: e.Seed, Cost: e.Cost,
			WorkersPerMachine: e.EngineWorkers,
		})
		if err != nil {
			return nil, err
		}
		s := lay.Stats()
		t.AddRow(name, s.ReplicationFactor, s.EdgeImbalance,
			float64(res.Stats.Net.TotalBytes),
			topk.NormalizedCapturedMass(w.Exact, res.Estimate, 100))
	}
	w.describe(t)
	t.AddNote("lower replication ⇒ fewer mirrors to (not) synchronize ⇒ less sync traffic at fixed ps")
	return t, nil
}

func ablateScatter(e *Env, w *Workload, machines int) (*Table, error) {
	t := &Table{ID: "ablation-scatter", Title: "Scatter mode ablation (split vs binomial)",
		XLabel:  "configuration",
		Columns: []string{"realized/requested frogs", "network bytes", "mass captured k=100"}}
	lay, err := e.Layout(w, machines)
	if err != nil {
		return nil, err
	}
	for _, mode := range []frogwild.ScatterMode{frogwild.ScatterSplit, frogwild.ScatterBinomial} {
		for _, ps := range []float64{1.0, 0.4} {
			res, err := frogwild.Run(w.Graph, frogwild.Config{
				Walkers: w.Walkers, Iterations: fwIters, PS: ps, Layout: lay,
				Seed: e.Seed, Cost: e.Cost, Mode: mode,
				WorkersPerMachine: e.EngineWorkers,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s ps=%.1f", mode, ps),
				float64(res.TotalFrogs)/float64(w.Walkers),
				float64(res.Stats.Net.TotalBytes),
				topk.NormalizedCapturedMass(w.Exact, res.Estimate, 100))
		}
	}
	w.describe(t)
	t.AddNote("split conserves frogs exactly; binomial (the analyzed model) only in expectation")
	return t, nil
}

func ablateErasure(e *Env, w *Workload, machines int) (*Table, error) {
	t := &Table{ID: "ablation-erasure", Title: "Erasure model ablation (Appendix A, Examples 9 vs 10)",
		XLabel:  "configuration",
		Columns: []string{"lost frog fraction", "mass captured k=100"}}
	lay, err := e.Layout(w, machines)
	if err != nil {
		return nil, err
	}
	for _, er := range []frogwild.Erasure{frogwild.ErasureAtLeastOne, frogwild.ErasureIndependent} {
		for _, ps := range []float64{0.4, 0.1} {
			res, err := frogwild.Run(w.Graph, frogwild.Config{
				Walkers: w.Walkers, Iterations: fwIters, PS: ps, Layout: lay,
				Seed: e.Seed, Cost: e.Cost, ErasureModel: er,
				WorkersPerMachine: e.EngineWorkers,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s ps=%.1f", er, ps),
				float64(res.LostFrogs)/float64(w.Walkers),
				topk.NormalizedCapturedMass(w.Exact, res.Estimate, 100))
		}
	}
	w.describe(t)
	t.AddNote("the paper implements at-least-one (Example 10) and notes independent erasures (Example 9) can lose walkers")
	return t, nil
}
