package harness

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/pagerank"
)

// Scale selects workload sizes. The paper runs Twitter (41.6M vertices)
// and LiveJournal (4.8M); we run structurally equivalent power-law
// graphs at laptop scale and keep every sweep dimension identical.
type Scale int

const (
	// ScaleTiny is for unit tests and benchmarks: seconds per figure.
	ScaleTiny Scale = iota
	// ScaleSmall is the default for the experiments CLI: a few minutes
	// for the full suite.
	ScaleSmall
	// ScaleMedium stresses the simulator harder (tens of minutes for
	// GL PR exact sweeps).
	ScaleMedium
	// ScaleLarge approaches the simulator's practical limits.
	ScaleLarge
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleLarge:
		return "large"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// ParseScale converts a name into a Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "tiny":
		return ScaleTiny, nil
	case "", "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "large":
		return ScaleLarge, nil
	}
	return 0, fmt.Errorf("harness: unknown scale %q (want tiny|small|medium|large)", name)
}

// sizes returns the twitter-like and livejournal-like vertex counts.
func (s Scale) sizes() (twN, ljN int) {
	switch s {
	case ScaleTiny:
		return 6000, 4000
	case ScaleSmall:
		return 40000, 20000
	case ScaleMedium:
		return 150000, 75000
	default: // ScaleLarge
		return 500000, 250000
	}
}

// walkersFor computes the workload's base walker budget: the paper runs
// 800K walkers on the 4.8M-vertex LiveJournal graph, a 1:6
// walker-to-vertex ratio that keeps N sublinear in n (the algorithm's
// whole point) and keeps combined frog messages unsaturated. We apply
// the same ratio at every scale.
func walkersFor(n int) int {
	w := n / 6
	if w < 500 {
		w = 500
	}
	return w
}

// Workload bundles a graph with its exact PageRank ground truth and the
// paper-equivalent walker budget.
type Workload struct {
	// Name identifies the workload in table notes.
	Name string
	// Graph is the synthetic stand-in for the paper's dataset.
	Graph *graph.Graph
	// Exact is the converged PageRank vector (ground truth for
	// accuracy metrics).
	Exact []float64
	// Walkers is the 800K-equivalent frog budget at this scale.
	Walkers int
}

// Env lazily builds and caches the two workloads plus cluster layouts,
// so multiple figures share graphs, ground truth and partitions.
type Env struct {
	// Scale selects sizes.
	Scale Scale
	// Seed drives generation, partitioning and all runs.
	Seed uint64
	// EngineWorkers is the WorkersPerMachine knob threaded into every
	// engine run (FrogWild, GL PR, sparsify): 0 divides
	// GOMAXPROCS across the simulated machines, 1 runs each machine
	// serially. Tables are bit-identical for every setting.
	EngineWorkers int
	// Cost is the cluster cost model used for simulated time.
	Cost cluster.CostModel

	mu      sync.Mutex
	tw, lj  *Workload
	layouts map[string]*cluster.Layout
}

// NewEnv returns an experiment environment at the given scale.
func NewEnv(scale Scale, seed uint64) *Env {
	return &Env{
		Scale:   scale,
		Seed:    seed,
		Cost:    cluster.DefaultCostModel(),
		layouts: make(map[string]*cluster.Layout),
	}
}

// Twitter returns the Twitter-like workload, building it on first use.
func (e *Env) Twitter() (*Workload, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tw != nil {
		return e.tw, nil
	}
	twN, _ := e.Scale.sizes()
	g, err := gen.PowerLaw(gen.TwitterLike(twN, e.Seed))
	if err != nil {
		return nil, fmt.Errorf("harness: generating twitterlike: %w", err)
	}
	w, err := newWorkload("twitterlike", g, walkersFor(twN))
	if err != nil {
		return nil, err
	}
	e.tw = w
	return w, nil
}

// LiveJournal returns the LiveJournal-like workload, building it on
// first use.
func (e *Env) LiveJournal() (*Workload, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.lj != nil {
		return e.lj, nil
	}
	_, ljN := e.Scale.sizes()
	g, err := gen.PowerLaw(gen.LiveJournalLike(ljN, e.Seed+1))
	if err != nil {
		return nil, fmt.Errorf("harness: generating livejournallike: %w", err)
	}
	w, err := newWorkload("livejournallike", g, walkersFor(ljN))
	if err != nil {
		return nil, err
	}
	e.lj = w
	return w, nil
}

func newWorkload(name string, g *graph.Graph, walkers int) (*Workload, error) {
	exact, err := pagerank.Exact(g, pagerank.Options{Tolerance: 1e-10})
	if err != nil {
		return nil, fmt.Errorf("harness: exact pagerank for %s: %w", name, err)
	}
	return &Workload{Name: name, Graph: g, Exact: exact.Rank, Walkers: walkers}, nil
}

// Layout returns (building and caching on first use) the layout for a
// workload on the given machine count, using random ingress — the
// GraphLab default the paper uses.
func (e *Env) Layout(w *Workload, machines int) (*cluster.Layout, error) {
	key := fmt.Sprintf("%s/%d", w.Name, machines)
	e.mu.Lock()
	defer e.mu.Unlock()
	if lay, ok := e.layouts[key]; ok {
		return lay, nil
	}
	lay, err := cluster.NewLayout(w.Graph, machines, cluster.Random{}, e.Seed)
	if err != nil {
		return nil, err
	}
	e.layouts[key] = lay
	return lay, nil
}

// describe annotates a table with the workload's dimensions.
func (w *Workload) describe(t *Table) {
	t.AddNote("workload %s: %d vertices, %d edges, base walkers %d",
		w.Name, w.Graph.NumVertices(), w.Graph.NumEdges(), w.Walkers)
}
