// Package harness defines the experiments that regenerate every figure
// of the FrogWild paper's evaluation (Section 3) on the simulated
// cluster, and the result tables they emit. Each FigN function mirrors
// one paper figure: same workloads (scaled), same sweeps, same metrics.
package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Row is one labeled line of results.
type Row struct {
	Label  string
	Values []float64
}

// Table is a printable experiment result: one row per x-axis point, one
// column per series, matching the paper's plots.
type Table struct {
	// ID is the experiment id (e.g. "fig1a").
	ID string
	// Title describes the experiment.
	Title string
	// XLabel names the row dimension.
	XLabel string
	// Columns names the series.
	Columns []string
	// Rows holds the results.
	Rows []Row
	// Notes carries free-form annotations (workload sizes, shape
	// observations).
	Notes []string
}

// AddRow appends a labeled row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// AddNote appends an annotation line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// formatCell renders a value compactly: large magnitudes in scientific
// notation, small ones with sensible precision.
func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	// Compute column widths.
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for ri, row := range t.Rows {
		cells[ri] = make([]string, len(headers))
		cells[ri][0] = row.Label
		if len(row.Label) > widths[0] {
			widths[0] = len(row.Label)
		}
		for ci, v := range row.Values {
			s := formatCell(v)
			cells[ri][ci+1] = s
			if ci+1 < len(widths) && len(s) > widths[ci+1] {
				widths[ci+1] = len(s)
			}
		}
	}
	line := func(parts []string) string {
		var b strings.Builder
		for i, p := range parts {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], p)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	for _, row := range cells {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table via Fprint.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", csvEscape(t.XLabel), strings.Join(mapEscape(t.Columns), ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		parts := make([]string, 0, len(row.Values)+1)
		parts = append(parts, csvEscape(row.Label))
		for _, v := range row.Values {
			parts = append(parts, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func mapEscape(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = csvEscape(s)
	}
	return out
}

// Column returns the values of the named column across rows, in row
// order. It returns false if the column does not exist.
func (t *Table) Column(name string) ([]float64, bool) {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, 0, len(t.Rows))
	for _, r := range t.Rows {
		if idx < len(r.Values) {
			out = append(out, r.Values[idx])
		} else {
			out = append(out, math.NaN())
		}
	}
	return out, true
}
