package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/api"
)

// decodeLog parses a JSON-lines request log into entries.
func decodeLog(t *testing.T, buf *bytes.Buffer) []obs.Entry {
	t.Helper()
	var out []obs.Entry
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var e obs.Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("log line %q: %v", sc.Text(), err)
		}
		out = append(out, e)
	}
	return out
}

// TestRequestIDPropagation pins the trace path: a client-supplied
// X-Request-Id is echoed on the response, written to the router's
// request log, forwarded inside every shard RPC frame, and written to
// each shard's log — so one rid greps the whole fan-out. A request
// without the header gets a generated rid with the same guarantees.
func TestRequestIDPropagation(t *testing.T) {
	g := testGraph(t)
	store := serve.NewStore()
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 5))
	servers := newShards(t, g, []*serve.Store{store, store})

	var routerLog, shardLog bytes.Buffer
	var mu sync.Mutex
	lockedShardLog := &lockedWriter{mu: &mu, w: &shardLog}
	for _, s := range servers {
		s.SetRequestLog(obs.NewLogger(lockedShardLog))
	}
	clients := make([]*ShardClient, len(servers))
	for i, s := range servers {
		clients[i] = NewShardClient(i, fmt.Sprintf("pipe-%d", i), PipeDialer(s), time.Second)
	}
	rt := New(clients, Options{RequestLog: obs.NewLogger(&routerLog)})

	const rid = "trace-me-42"
	req := httptest.NewRequest(http.MethodGet, "/v1/topk?k=10", nil)
	req.Header.Set(obs.RequestIDHeader, rid)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.RequestIDHeader); got != rid {
		t.Fatalf("response header rid %q, want %q", got, rid)
	}

	rl := decodeLog(t, &routerLog)
	if len(rl) != 1 || rl[0].RID != rid || rl[0].Component != "router" {
		t.Fatalf("router log = %+v, want one entry with rid %q", rl, rid)
	}
	mu.Lock()
	sl := decodeLog(t, &shardLog)
	mu.Unlock()
	if len(sl) != len(servers) {
		t.Fatalf("shard log has %d entries, want one per shard (%d)", len(sl), len(servers))
	}
	for _, e := range sl {
		if e.RID != rid || e.Component != "shard" || e.Op != "topk" || e.K != 10 {
			t.Fatalf("shard log entry = %+v, want rid %q op topk k 10", e, rid)
		}
	}

	// No header: a rid is generated, echoed, and still reaches the
	// shard logs.
	routerLog.Reset()
	mu.Lock()
	shardLog.Reset()
	mu.Unlock()
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/rank?vertex=7", nil))
	gen := rec.Header().Get(obs.RequestIDHeader)
	if gen == "" {
		t.Fatal("no generated rid on the response")
	}
	rl = decodeLog(t, &routerLog)
	if len(rl) != 1 || rl[0].RID != gen {
		t.Fatalf("router log rid = %+v, want generated %q", rl, gen)
	}
	mu.Lock()
	sl = decodeLog(t, &shardLog)
	mu.Unlock()
	for _, e := range sl {
		if e.RID != gen {
			t.Fatalf("shard log entry rid %q, want generated %q", e.RID, gen)
		}
		if e.Op == "rank" && e.Vertex != "7" {
			t.Fatalf("shard rank log entry = %+v, want vertex 7", e)
		}
	}
}

// lockedWriter serializes writes from the per-shard loggers, which
// share one buffer across goroutine-handled pipe connections.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestRouterStatsAgreeWithMetrics pins the no-drift guarantee on the
// router: /v1/stats and /metrics render the same underlying
// instruments, so their values must match exactly for every counter
// the stats body exposes.
func TestRouterStatsAgreeWithMetrics(t *testing.T) {
	g := testGraph(t)
	store := serve.NewStore()
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 9))
	rt := newRouter(newShards(t, g, []*serve.Store{store, store, store}), Options{})

	for i := 0; i < 7; i++ {
		if code, body := get(t, rt, fmt.Sprintf("/v1/topk?k=%d", 5+i)); code != http.StatusOK {
			t.Fatalf("topk status %d: %s", code, body)
		}
	}
	// The stats request increments the query counter before building
	// its body, so the body already includes itself; /metrics is not a
	// query and scrapes the identical values afterwards.
	code, statsBody := get(t, rt, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var stats api.RouterStatsResponse
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatal(err)
	}
	code, metricsBody := get(t, rt, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	series, err := obs.ParseText([]byte(metricsBody))
	if err != nil {
		t.Fatal(err)
	}

	checks := []struct {
		family string
		want   float64
	}{
		{"router_requests_total", float64(stats.Serving.Queries)},
		{"router_degraded_total", float64(stats.Serving.Degraded)},
		{"router_epoch_fallbacks_total", float64(stats.Serving.EpochFallbacks)},
		{"router_shard_rpc_retries_total", float64(stats.Serving.Retries)},
		{"router_shard_bytes_sent_total", float64(stats.Network.BytesSent)},
		{"router_shard_bytes_recv_total", float64(stats.Network.BytesRecv)},
		{"router_shards", 3},
	}
	for _, c := range checks {
		if got := obs.FamilySum(series, c.family); got != c.want {
			t.Errorf("%s = %v in /metrics, %v in /v1/stats", c.family, got, c.want)
		}
	}
	if stats.Serving.Queries != 8 {
		t.Errorf("queries = %d, want 8 (7 topk + the stats request)", stats.Serving.Queries)
	}
	if got := obs.FamilySum(series, "router_shard_rpc_total"); got <= 0 {
		t.Errorf("router_shard_rpc_total = %v, want > 0", got)
	}
	if got := series[`router_request_seconds_count{endpoint="topk"}`]; got != 7 {
		t.Errorf(`router_request_seconds_count{endpoint="topk"} = %v, want 7`, got)
	}
}

// TestShardStatusReportsSnapshotAge pins the lagging-vs-fresh
// distinction: a shard serving an hour-old snapshot reports its age
// through the status op, so the router's health and stats rows can
// tell a lagging shard (old snapshot) from one that just booted into
// an early epoch (fresh snapshot).
func TestShardStatusReportsSnapshotAge(t *testing.T) {
	g := testGraph(t)
	stale := serve.NewStore()
	snap, err := serve.FromRanks(g, serve.EngineFrogWild, 11, tieRanks(g.NumVertices(), 3), 50)
	if err != nil {
		t.Fatal(err)
	}
	snap.BuiltAt = time.Now().Add(-time.Hour)
	stale.Publish(snap)
	fresh := serve.NewStore()
	publishRanks(t, fresh, g, tieRanks(g.NumVertices(), 3))

	rt := newRouter(newShards(t, g, []*serve.Store{stale, fresh}), Options{})
	code, body := get(t, rt, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d: %s", code, body)
	}
	var stats api.RouterStatsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("%d shard rows, want 2", len(stats.Shards))
	}
	if age := stats.Shards[0].SnapshotAgeSeconds; age < 3500 {
		t.Errorf("stale shard age = %.1fs, want about an hour", age)
	}
	if age := stats.Shards[1].SnapshotAgeSeconds; age <= 0 || age > 60 {
		t.Errorf("fresh shard age = %.1fs, want small and positive", age)
	}
}

// TestMetricsScrapeUnderSwapsAndDeath scrapes /metrics continuously
// while snapshots swap under every shard and one shard's transport
// flaps dead and alive. Run under -race: the scrape path must never
// race the hot path, and every scrape must stay a parseable
// exposition.
func TestMetricsScrapeUnderSwapsAndDeath(t *testing.T) {
	rt, flaky, store, g := deadCluster(t)
	n := g.NumVertices()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seed := int64(0); ; seed++ {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := serve.FromRanks(g, serve.EngineFrogWild, 11, tieRanks(n, 200+seed), 50)
			if err != nil {
				t.Error(err)
				return
			}
			store.Publish(snap)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			flaky.dead.Store(i%2 == 1)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			code, body := get(t, rt, fmt.Sprintf("/v1/topk?k=%d", 5+i%3))
			if code != http.StatusOK && code != http.StatusServiceUnavailable {
				t.Errorf("query status %d: %s", code, body)
			}
		}
	}()
	for i := 0; i < 40; i++ {
		code, body := get(t, rt, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("scrape status %d", code)
		}
		if _, err := obs.ParseText([]byte(body)); err != nil {
			t.Fatalf("scrape %d not parseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	flaky.dead.Store(false)
}
