package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/api"
)

// TestRouterFanoutUnderSnapshotSwaps hammers the router from many
// goroutines while every shard's store keeps publishing new snapshots
// mid-query. Run under -race. Every response must be either a healthy
// exact answer at some single epoch or an explicit degraded/unavailable
// one — never a malformed body or a cross-epoch merge.
func TestRouterFanoutUnderSnapshotSwaps(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	const shards = 4
	stores := make([]*serve.Store, shards)
	for i := range stores {
		stores[i] = serve.NewStore()
		publishRanks(t, stores[i], g, tieRanks(n, 100))
	}
	rt := newRouter(newShards(t, g, stores), Options{Timeout: 2 * time.Second})

	stop := make(chan struct{})
	var publishers sync.WaitGroup
	// One publisher per shard, swapping snapshots as fast as it can:
	// shards constantly straddle refreshes, so queries race the
	// epoch-fallback path and the cur/prev retention ring.
	for i := range stores {
		publishers.Add(1)
		go func(i int) {
			defer publishers.Done()
			for seed := int64(0); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := serve.FromRanks(g, serve.EngineFrogWild, 11, tieRanks(n, 100+seed), 50)
				if err != nil {
					t.Error(err)
					return
				}
				stores[i].Publish(snap)
			}
		}(i)
	}

	var queriers sync.WaitGroup
	for w := 0; w < 8; w++ {
		queriers.Add(1)
		go func(w int) {
			defer queriers.Done()
			for i := 0; i < 40; i++ {
				url := fmt.Sprintf("/v1/topk?k=%d", 5+(i%3)*10)
				if i%4 == 3 {
					url = fmt.Sprintf("/v1/rank?vertex=%d", (w*97+i)%n)
				}
				rec := httptest.NewRecorder()
				rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				switch rec.Code {
				case http.StatusOK:
					// Bodies must always decode; a topk body must carry
					// one concrete epoch.
					var resp api.TopKResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("malformed 200 body: %v", err)
					}
				case http.StatusServiceUnavailable:
					var env api.Error
					if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Code != api.CodeUnavailable {
						t.Errorf("malformed 503 body %q: %v", rec.Body.String(), err)
					}
				case http.StatusNotFound:
					// rank for a vertex a racing shard no longer owns a
					// snapshot row for
				default:
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	queriers.Wait()
	close(stop)
	publishers.Wait()

	// Sanity: with snapshots swapping constantly, at least one query
	// should have crossed an epoch boundary and taken the fallback.
	t.Logf("queries=%d epochFallbacks=%d degraded=%d retries=%d",
		rt.Queries(), rt.EpochFallbacks(), rt.Degraded(), rt.sumRetries())
}
