package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/serve"
	"repro/internal/serve/api"
)

// testGraph is a small power-law graph shared across router tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.TwitterLike(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// tieRanks builds a rank vector full of deliberate ties (few distinct
// values), so every top-k selection cut lands inside a tie run and any
// divergence between sharded and single-node tie-breaking shows up.
func tieRanks(n int, src int64) []float64 {
	r := rand.New(rand.NewSource(src))
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = float64(r.Intn(7)) / float64(10*n)
	}
	return ranks
}

// publishRanks wraps ranks in a snapshot and publishes it to store.
func publishRanks(t testing.TB, store *serve.Store, g *graph.Graph, ranks []float64) *serve.Snapshot {
	t.Helper()
	snap, err := serve.FromRanks(g, serve.EngineFrogWild, 11, ranks, 50)
	if err != nil {
		t.Fatal(err)
	}
	return store.Publish(snap)
}

// newShards builds one ShardServer per shard over the given stores
// (stores[i] backs shard i; pass the same store everywhere for a
// cluster that refreshes atomically).
func newShards(t testing.TB, g *graph.Graph, stores []*serve.Store) []*ShardServer {
	t.Helper()
	shards := len(stores)
	servers := make([]*ShardServer, shards)
	seen := make([]bool, g.NumVertices())
	for i := 0; i < shards; i++ {
		owned, err := OwnedVertices(g, shards, i, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range owned {
			if seen[v] {
				t.Fatalf("vertex %d owned by two shards", v)
			}
			seen[v] = true
		}
		servers[i] = NewShardServer(i, shards, owned, stores[i])
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d owned by no shard", v)
		}
	}
	return servers
}

// newRouter wires pipe-transport clients over the shard servers.
func newRouter(servers []*ShardServer, opts Options) *Router {
	clients := make([]*ShardClient, len(servers))
	for i, srv := range servers {
		clients[i] = NewShardClient(i, fmt.Sprintf("pipe-%d", i), PipeDialer(srv), time.Second)
	}
	return New(clients, opts)
}

// get performs one GET against a handler and returns status + body.
func get(t testing.TB, h http.Handler, url string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

// TestShardedBitIdenticalToSingleNode is the tentpole property: for
// shard counts 1/2/4/7 over an in-memory pipe transport, the router's
// healthy /v1/topk and /v1/rank bodies are byte-identical to a
// single-node server answering from the same snapshot — including tie
// runs straddling every selection cut.
func TestShardedBitIdenticalToSingleNode(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	for _, shards := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			store := serve.NewStore()
			publishRanks(t, store, g, tieRanks(n, 42))
			single := serve.NewServer(store, serve.ServerOptions{})
			stores := make([]*serve.Store, shards)
			for i := range stores {
				stores[i] = store
			}
			rt := newRouter(newShards(t, g, stores), Options{})

			for _, k := range []int{1, 3, 10, 63, 500, n, n + 9} {
				url := fmt.Sprintf("/v1/topk?k=%d", k)
				sc, sb := get(t, single, url)
				rc, rb := get(t, rt, url)
				if sc != http.StatusOK || rc != http.StatusOK {
					t.Fatalf("k=%d: status single=%d router=%d", k, sc, rc)
				}
				if sb != rb {
					t.Fatalf("k=%d: sharded body diverged from single-node\nsingle: %.200s\nrouter: %.200s", k, sb, rb)
				}
			}
			for _, v := range []int{0, 1, 17, n / 2, n - 1} {
				url := fmt.Sprintf("/v1/rank?vertex=%d", v)
				sc, sb := get(t, single, url)
				rc, rb := get(t, rt, url)
				if sc != http.StatusOK || rc != http.StatusOK {
					t.Fatalf("vertex=%d: status single=%d router=%d", v, sc, rc)
				}
				if sb != rb {
					t.Fatalf("vertex=%d: rank body diverged\nsingle: %s\nrouter: %s", v, sb, rb)
				}
			}
			if rt.Degraded() != 0 || rt.EpochFallbacks() != 0 {
				t.Fatalf("healthy cluster took fallbacks: degraded=%d epochFallbacks=%d",
					rt.Degraded(), rt.EpochFallbacks())
			}
		})
	}
}

// TestEpochStraddleFallsBackToCommonEpoch refreshes only some shards,
// then checks the router answers exactly at the oldest live epoch (the
// laggard's), served from the leaders' retained previous snapshots —
// not a cross-epoch Frankenstein merge, and not a degraded response.
func TestEpochStraddleFallsBackToCommonEpoch(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	const shards = 4
	stores := make([]*serve.Store, shards)
	oldRanks := tieRanks(n, 1)
	for i := range stores {
		stores[i] = serve.NewStore()
		publishRanks(t, stores[i], g, oldRanks)
	}
	servers := newShards(t, g, stores)
	rt := newRouter(servers, Options{})

	// Warm every shard's retention ring at epoch 1.
	if code, _ := get(t, rt, "/v1/topk?k=25"); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	// Epoch 2 lands on all shards but the last.
	newRanks := tieRanks(n, 2)
	for i := 0; i < shards-1; i++ {
		publishRanks(t, stores[i], g, newRanks)
	}

	code, body := get(t, rt, "/v1/topk?k=25")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp api.TopKResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 {
		t.Fatalf("straddled cluster answered epoch %d, want the common epoch 1", resp.Epoch)
	}
	if resp.Degraded {
		t.Fatal("epoch fallback must not be marked degraded: it is exact at the older epoch")
	}
	if rt.EpochFallbacks() == 0 {
		t.Fatal("expected an epoch fallback to be counted")
	}

	// The answer must be exact for the old vector: compare against a
	// single-node server still at epoch 1.
	st := serve.NewStore()
	publishRanks(t, st, g, append([]float64(nil), oldRanks...))
	_, want := get(t, serve.NewServer(st, serve.ServerOptions{}), "/v1/topk?k=25")
	if body != want {
		t.Fatalf("epoch-fallback body is not the exact epoch-1 answer\n got %.200s\nwant %.200s", body, want)
	}

	// Once the laggard catches up, the cluster serves epoch 2.
	publishRanks(t, stores[shards-1], g, append([]float64(nil), newRanks...))
	_, body = get(t, rt, "/v1/topk?k=25")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 2 || resp.Degraded {
		t.Fatalf("caught-up cluster: epoch %d degraded=%v", resp.Epoch, resp.Degraded)
	}
}

// flakyDial wraps a DialFunc with a kill switch, simulating a shard
// process dying mid-load.
type flakyDial struct {
	inner DialFunc
	dead  atomic.Bool
}

func (f *flakyDial) dial() (net.Conn, error) {
	if f.dead.Load() {
		return nil, fmt.Errorf("shard down")
	}
	return f.inner()
}

// deadCluster builds a 3-shard pipe cluster where shard 2's transport
// can be killed.
func deadCluster(t *testing.T) (*Router, *flakyDial, *serve.Store, *graph.Graph) {
	g := testGraph(t)
	store := serve.NewStore()
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 3))
	servers := newShards(t, g, []*serve.Store{store, store, store})
	flaky := &flakyDial{inner: PipeDialer(servers[2])}
	clients := []*ShardClient{
		NewShardClient(0, "pipe-0", PipeDialer(servers[0]), time.Second),
		NewShardClient(1, "pipe-1", PipeDialer(servers[1]), time.Second),
		NewShardClient(2, "pipe-2", flaky.dial, time.Second),
	}
	return New(clients, Options{}), flaky, store, g
}

// TestShardDeathDegradesInsteadOfFailing kills one shard after a
// healthy query and checks the router keeps answering: the last
// complete merge comes back marked degraded, while queries with no
// cached fallback get the unavailable envelope.
func TestShardDeathDegradesInsteadOfFailing(t *testing.T) {
	rt, flaky, _, _ := deadCluster(t)

	codeOK, healthy := get(t, rt, "/v1/topk?k=10")
	if codeOK != http.StatusOK {
		t.Fatalf("healthy status %d", codeOK)
	}
	if _, rankBody := get(t, rt, "/v1/rank?vertex=5"); rankBody == "" {
		t.Fatal("empty healthy rank body")
	}

	flaky.dead.Store(true)
	// Drain pooled connections so the death is visible immediately.
	for _, c := range rt.clients {
		c.Close()
	}

	code, body := get(t, rt, "/v1/topk?k=10")
	if code != http.StatusOK {
		t.Fatalf("degraded query status %d: %s", code, body)
	}
	var resp api.TopKResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("response with a dead shard must be marked degraded")
	}
	var want api.TopKResponse
	if err := json.Unmarshal([]byte(healthy), &want); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != want.Epoch || len(resp.Entries) != len(want.Entries) {
		t.Fatalf("degraded answer is not the cached last-good: epoch %d/%d entries %d/%d",
			resp.Epoch, want.Epoch, len(resp.Entries), len(want.Entries))
	}
	if rt.Degraded() == 0 {
		t.Fatal("degraded counter did not move")
	}

	// A k nobody has asked for has no fallback: unavailable envelope.
	code, body = get(t, rt, "/v1/topk?k=11")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("uncached k with dead shard: status %d, want 503", code)
	}
	var env api.Error
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != api.CodeUnavailable {
		t.Fatalf("envelope code %q, want %q", env.Code, api.CodeUnavailable)
	}

	// Rank served from the per-vertex last-good cache, marked degraded.
	code, body = get(t, rt, "/v1/rank?vertex=5")
	if code != http.StatusOK {
		t.Fatalf("degraded rank status %d: %s", code, body)
	}
	var rank api.RankResponse
	if err := json.Unmarshal([]byte(body), &rank); err != nil {
		t.Fatal(err)
	}
	if !rank.Degraded || rank.Vertex != 5 {
		t.Fatalf("degraded rank: %+v", rank)
	}

	// Revival: the next query is exact again and drops the flag.
	flaky.dead.Store(false)
	code, body = get(t, rt, "/v1/topk?k=10")
	if code != http.StatusOK {
		t.Fatalf("revived status %d", code)
	}
	if body != healthy {
		t.Fatalf("revived body differs from the healthy answer")
	}
}

// TestHealthzAggregatesShards pins the router health view: ok with
// per-shard ids and epochs when all shards are live and fresh, 503
// "degraded" when one is dead or lags the freshest epoch.
func TestHealthzAggregatesShards(t *testing.T) {
	rt, flaky, store, g := deadCluster(t)

	code, body := get(t, rt, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy healthz status %d: %s", code, body)
	}
	var h api.HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 1 || len(h.Shards) != 3 {
		t.Fatalf("healthy healthz: %+v", h)
	}
	for i, row := range h.Shards {
		if row.ID != i || !row.OK || row.Epoch != 1 || row.Owned == 0 {
			t.Fatalf("shard row %d: %+v", i, row)
		}
	}

	// Dead shard: degraded, its row carries the error.
	flaky.dead.Store(true)
	for _, c := range rt.clients {
		c.Close()
	}
	code, body = get(t, rt, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead-shard healthz status %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("status %q, want degraded", h.Status)
	}
	if h.Shards[2].OK || h.Shards[2].Error == "" {
		t.Fatalf("dead shard row: %+v", h.Shards[2])
	}
	flaky.dead.Store(false)

	// Lagging shard: all live, but shard 2 misses the refresh until its
	// next status probe observes the shared store... here all shards
	// share one store, so instead verify the freshest view recovers.
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 4))
	code, body = get(t, rt, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("recovered healthz status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 2 {
		t.Fatalf("recovered healthz: %+v", h)
	}
}

// TestHealthzLaggingShardDegraded gives each shard its own store and
// refreshes all but one: the laggard must flip health to degraded even
// though every shard is alive.
func TestHealthzLaggingShardDegraded(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	stores := []*serve.Store{serve.NewStore(), serve.NewStore()}
	for _, st := range stores {
		publishRanks(t, st, g, tieRanks(n, 5))
	}
	rt := newRouter(newShards(t, g, stores), Options{})

	if code, body := get(t, rt, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy status %d: %s", code, body)
	}
	publishRanks(t, stores[0], g, tieRanks(n, 6))
	code, body := get(t, rt, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("lagging healthz status %d, want 503: %s", code, body)
	}
	var h api.HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Epoch != 1 {
		t.Fatalf("lagging healthz: %+v", h)
	}
	if !h.Shards[1].OK || h.Shards[1].Epoch != 1 || h.Shards[0].Epoch != 2 {
		t.Fatalf("lagging rows: %+v", h.Shards)
	}
}

// TestRouterErrorEnvelopes pins the router's status-code/envelope
// pairs to the shared api error vocabulary.
func TestRouterErrorEnvelopes(t *testing.T) {
	g := testGraph(t)
	store := serve.NewStore()
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 7))
	rt := newRouter(newShards(t, g, []*serve.Store{store, store}), Options{})
	empty := newRouter(newShards(t, g, []*serve.Store{serve.NewStore(), serve.NewStore()}), Options{})

	cases := []struct {
		name   string
		rt     *Router
		method string
		url    string
		status int
		code   string
	}{
		{"bad k", rt, http.MethodGet, "/v1/topk?k=zero", http.StatusBadRequest, api.CodeBadRequest},
		{"negative k", rt, http.MethodGet, "/v1/topk?k=-3", http.StatusBadRequest, api.CodeBadRequest},
		{"missing vertex", rt, http.MethodGet, "/v1/rank", http.StatusBadRequest, api.CodeBadRequest},
		{"bad vertex", rt, http.MethodGet, "/v1/rank?vertex=x", http.StatusBadRequest, api.CodeBadRequest},
		{"vertex out of range", rt, http.MethodGet, "/v1/rank?vertex=4000000", http.StatusNotFound, api.CodeNotFound},
		{"post topk", rt, http.MethodPost, "/v1/topk", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{"compare unsupported", rt, http.MethodGet, "/v1/compare?engine=exact", http.StatusNotImplemented, api.CodeUnsupported},
		{"no snapshot topk", empty, http.MethodGet, "/v1/topk", http.StatusServiceUnavailable, api.CodeUnavailable},
		{"no snapshot rank", empty, http.MethodGet, "/v1/rank?vertex=1", http.StatusServiceUnavailable, api.CodeUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			tc.rt.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.url, nil))
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.status, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content type %q", ct)
			}
			var env api.Error
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("envelope decode: %v (body %s)", err, rec.Body.String())
			}
			if env.Code != tc.code || env.Message == "" {
				t.Fatalf("envelope %+v, want code %q", env, tc.code)
			}
		})
	}
}

// TestRouterStats checks the stats body aggregates shard rows, serving
// counters and measured wire traffic.
func TestRouterStats(t *testing.T) {
	g := testGraph(t)
	store := serve.NewStore()
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 8))
	rt := newRouter(newShards(t, g, []*serve.Store{store, store, store}), Options{})

	for i := 0; i < 5; i++ {
		if code, _ := get(t, rt, "/v1/topk?k=10"); code != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	code, body := get(t, rt, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var stats api.RouterStatsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 1 || len(stats.Shards) != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Serving.Queries != 6 { // 5 topk + this stats call
		t.Fatalf("queries %d, want 6", stats.Serving.Queries)
	}
	if stats.Network.BytesSent == 0 || stats.Network.BytesRecv == 0 || stats.Network.BytesPerQuery <= 0 {
		t.Fatalf("network stats not measured: %+v", stats.Network)
	}
	total := stats.Network.BytesSent + stats.Network.BytesRecv
	if got := stats.Network.BytesPerQuery * float64(stats.Network.Queries); got < float64(total)*0.99 || got > float64(total)*1.01 {
		t.Fatalf("bytesPerQuery inconsistent: %v * %d vs %d", stats.Network.BytesPerQuery, stats.Network.Queries, total)
	}

	m := rt.Meter()
	if m.TotalSent() != stats.Network.BytesSent || m.TotalRecv() != stats.Network.BytesRecv {
		t.Fatalf("meter (%d/%d) disagrees with stats (%d/%d)",
			m.TotalSent(), m.TotalRecv(), stats.Network.BytesSent, stats.Network.BytesRecv)
	}
}

// TestServeOverTCP runs shards and router on real TCP listeners and
// checks a round trip, byte metering, and graceful shutdown.
func TestServeOverTCP(t *testing.T) {
	g := testGraph(t)
	store := serve.NewStore()
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 9))
	servers := newShards(t, g, []*serve.Store{store, store})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clients := make([]*ShardClient, len(servers))
	for i, srv := range servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ctx, ln) //nolint:errcheck
		clients[i] = NewShardClient(i, ln.Addr().String(), DialTCP(ln.Addr().String()), time.Second)
	}
	rt := New(clients, Options{})

	single := serve.NewServer(store, serve.ServerOptions{})
	_, want := get(t, single, "/v1/topk?k=30")
	code, got := get(t, rt, "/v1/topk?k=30")
	if code != http.StatusOK || got != want {
		t.Fatalf("TCP round trip: status %d, bodies equal %v", code, got == want)
	}
	ns := rt.NetworkStats()
	if ns.BytesSent == 0 || ns.BytesRecv == 0 {
		t.Fatalf("no bytes metered over TCP: %+v", ns)
	}
}
