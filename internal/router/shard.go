package router

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// OwnedVertices computes the deterministic vertex partition served by
// shard id out of shards total: the vertices whose master replica an
// HDRF vertex-cut layout (seeded with seed) puts on machine id, plus
// the isolated vertices — which no machine hosts, since they have no
// edges — spread round-robin. Every shard of a cluster computes the
// same layout from the same (graph, shards, seed), so the partition is
// agreed without any coordination, and the shard ownership sets are
// disjoint and cover the whole vertex space — the property that makes
// the merged partial top-k exact.
func OwnedVertices(g *graph.Graph, shards, id int, seed uint64) ([]uint32, error) {
	if shards < 1 {
		return nil, errors.New("router: shard count must be >= 1")
	}
	if id < 0 || id >= shards {
		return nil, errors.New("router: shard id out of range")
	}
	lay, err := cluster.NewLayout(g, shards, cluster.HDRF{}, seed)
	if err != nil {
		return nil, err
	}
	owned := append([]uint32(nil), lay.View(id).Masters()...)
	for v := 0; v < g.NumVertices(); v++ {
		if len(lay.Presences(graph.VertexID(v))) == 0 && v%shards == id {
			owned = append(owned, uint32(v))
		}
	}
	sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
	return owned, nil
}

// ShardServer answers partial queries over the vertices it owns, from
// whatever snapshot its Store currently publishes. It retains the
// previous snapshot alongside the current one, so a router whose other
// shards lag a refresh can re-ask this shard at the older epoch and
// still get a consistent answer (the stale-epoch fallback).
type ShardServer struct {
	id     int
	shards int
	owned  []uint32
	store  *serve.Store

	// mu guards the cur/prev retention ring, updated lazily as the
	// store publishes new snapshots.
	mu   sync.Mutex
	cur  *serve.Snapshot
	prev *serve.Snapshot

	queries atomic.Uint64
}

// NewShardServer builds a shard over its owned vertex set (as computed
// by OwnedVertices, sorted ascending) and the store publishing its
// snapshots.
func NewShardServer(id, shards int, owned []uint32, store *serve.Store) *ShardServer {
	return &ShardServer{id: id, shards: shards, owned: owned, store: store}
}

// ID returns the shard's id.
func (s *ShardServer) ID() int { return s.id }

// OwnedCount returns the number of vertices this shard masters.
func (s *ShardServer) OwnedCount() int { return len(s.owned) }

// Queries returns how many RPC requests the shard has answered.
func (s *ShardServer) Queries() uint64 { return s.queries.Load() }

// track refreshes the retention ring against the store and returns the
// current and previous snapshots.
func (s *ShardServer) track() (cur, prev *serve.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.store.Current(); c != s.cur {
		s.prev, s.cur = s.cur, c
	}
	return s.cur, s.prev
}

// snapshotFor resolves the requested epoch: 0 means current, the
// previous epoch is served from the retention ring, anything else is
// gone (nil).
func (s *ShardServer) snapshotFor(epoch uint64) *serve.Snapshot {
	cur, prev := s.track()
	switch {
	case cur == nil:
		return nil
	case epoch == 0 || epoch == cur.Epoch:
		return cur
	case prev != nil && epoch == prev.Epoch:
		return prev
	}
	return nil
}

// owns reports whether vertex v is mastered by this shard.
func (s *ShardServer) owns(v uint32) bool {
	i := sort.Search(len(s.owned), func(i int) bool { return s.owned[i] >= v })
	return i < len(s.owned) && s.owned[i] == v
}

// handle answers one RPC request.
func (s *ShardServer) handle(req request) response {
	if req.V != api.Version {
		return errResponse(s.id, api.CodeVersionMismatch,
			"shard speaks wire version %d, router sent %d", api.Version, req.V)
	}
	s.queries.Add(1)
	switch req.Op {
	case opTopK:
		if req.K <= 0 {
			return errResponse(s.id, api.CodeBadRequest, "k must be positive, got %d", req.K)
		}
		snap := s.snapshotFor(req.Epoch)
		if snap == nil {
			return errResponse(s.id, api.CodeNoSnapshot, "no snapshot for epoch %d", req.Epoch)
		}
		part := topk.Subset(snap.Ranks, s.owned, req.K)
		entries := make([]api.TopKEntry, len(part))
		for i, e := range part {
			entries[i] = api.TopKEntry{Vertex: e.Vertex, Score: e.Score}
		}
		return response{
			V: api.Version, Shard: s.id,
			Epoch: snap.Epoch, Engine: snap.Engine, Seed: snap.Seed,
			Entries: entries,
		}
	case opRank:
		snap := s.snapshotFor(req.Epoch)
		if snap == nil {
			return errResponse(s.id, api.CodeNoSnapshot, "no snapshot for epoch %d", req.Epoch)
		}
		resp := response{
			V: api.Version, Shard: s.id,
			Epoch: snap.Epoch, Engine: snap.Engine, Seed: snap.Seed,
		}
		if s.owns(req.Vertex) && int(req.Vertex) < len(snap.Ranks) {
			resp.Owned = true
			resp.Rank = snap.Ranks[req.Vertex]
		}
		return resp
	case opStatus:
		cur, _ := s.track()
		resp := response{
			V: api.Version, Shard: s.id,
			OwnedCount: len(s.owned), Queries: s.queries.Load(),
		}
		if cur != nil {
			resp.Epoch, resp.Engine, resp.Seed = cur.Epoch, cur.Engine, cur.Seed
		}
		return resp
	}
	return errResponse(s.id, api.CodeBadRequest, "unknown op %q", req.Op)
}

// ServeConn answers frames on one connection until it closes. The
// caller owns the connection's lifetime; a decode failure terminates
// the connection (the peer will redial) rather than risking a
// desynchronized frame stream.
func (s *ShardServer) ServeConn(conn net.Conn) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var req request
		if _, err := readFrame(br, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if _, err := writeFrame(bw, s.handle(req)); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// Serve accepts connections on ln until ctx is cancelled, answering
// each on its own goroutine. It returns nil on a ctx-triggered stop.
func (s *ShardServer) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			s.ServeConn(conn) //nolint:errcheck // per-conn errors end that conn only
		}()
	}
}
