package router

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// OwnedVertices computes the deterministic vertex partition served by
// shard id out of shards total: the vertices whose master replica an
// HDRF vertex-cut layout (seeded with seed) puts on machine id, plus
// the isolated vertices — which no machine hosts, since they have no
// edges — spread round-robin. Every shard of a cluster computes the
// same layout from the same (graph, shards, seed), so the partition is
// agreed without any coordination, and the shard ownership sets are
// disjoint and cover the whole vertex space — the property that makes
// the merged partial top-k exact.
func OwnedVertices(g *graph.Graph, shards, id int, seed uint64) ([]uint32, error) {
	if shards < 1 {
		return nil, errors.New("router: shard count must be >= 1")
	}
	if id < 0 || id >= shards {
		return nil, errors.New("router: shard id out of range")
	}
	lay, err := cluster.NewLayout(g, shards, cluster.HDRF{}, seed)
	if err != nil {
		return nil, err
	}
	owned := append([]uint32(nil), lay.View(id).Masters()...)
	for v := 0; v < g.NumVertices(); v++ {
		if len(lay.Presences(graph.VertexID(v))) == 0 && v%shards == id {
			owned = append(owned, uint32(v))
		}
	}
	sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
	return owned, nil
}

// ShardServer answers partial queries over the vertices it owns, from
// whatever snapshot its Store currently publishes. It retains the
// previous snapshot alongside the current one, so a router whose other
// shards lag a refresh can re-ask this shard at the older epoch and
// still get a consistent answer (the stale-epoch fallback).
type ShardServer struct {
	id     int
	shards int
	owned  []uint32
	store  *serve.Store

	// mu guards the cur/prev retention ring, updated lazily as the
	// store publishes new snapshots.
	mu   sync.Mutex
	cur  *serve.Snapshot
	prev *serve.Snapshot

	// Free-standing obs instruments, live from construction and
	// exposed on a registry via Instrument. opsByName maps RPC op
	// names to their counters.
	queries    obs.Counter
	opsTopK    obs.Counter
	opsRank    obs.Counter
	opsStatus  obs.Counter
	handleLat  obs.Latency
	bytesRead  obs.Counter
	bytesWrite obs.Counter

	reqLog *obs.Logger
}

// NewShardServer builds a shard over its owned vertex set (as computed
// by OwnedVertices, sorted ascending) and the store publishing its
// snapshots.
func NewShardServer(id, shards int, owned []uint32, store *serve.Store) *ShardServer {
	return &ShardServer{id: id, shards: shards, owned: owned, store: store}
}

// ID returns the shard's id.
func (s *ShardServer) ID() int { return s.id }

// OwnedCount returns the number of vertices this shard masters.
func (s *ShardServer) OwnedCount() int { return len(s.owned) }

// Queries returns how many RPC requests the shard has answered.
func (s *ShardServer) Queries() uint64 { return s.queries.Value() }

// SetRequestLog makes the shard emit one JSON line per RPC it handles,
// carrying the router-propagated request id. Call before serving.
func (s *ShardServer) SetRequestLog(l *obs.Logger) { s.reqLog = l }

// Instrument registers the shard's instruments on reg under the
// shard_* names, labeled with the shard id. The status RPC and
// /metrics read the same counters, so the two surfaces agree. Scraping
// the snapshot gauges reads the store directly — never track() — so a
// scrape has no side effect on the cur/prev retention ring.
func (s *ShardServer) Instrument(reg *obs.Registry) {
	shard := obs.Labels{"shard": strconv.Itoa(s.id)}
	withOp := func(op string) obs.Labels {
		return obs.Labels{"shard": strconv.Itoa(s.id), "op": op}
	}
	reg.RegisterCounter("shard_requests_total",
		"RPC requests answered by this shard.", shard, &s.queries)
	reg.RegisterCounter("shard_ops_total",
		"RPC requests by operation.", withOp(opTopK), &s.opsTopK)
	reg.RegisterCounter("shard_ops_total",
		"RPC requests by operation.", withOp(opRank), &s.opsRank)
	reg.RegisterCounter("shard_ops_total",
		"RPC requests by operation.", withOp(opStatus), &s.opsStatus)
	reg.RegisterLatency("shard_handle_seconds",
		"RPC handling latency (decode/encode excluded).", shard, &s.handleLat)
	reg.RegisterCounter("shard_frame_bytes_read_total",
		"Wire bytes read off shard connections (length prefixes included).", shard, &s.bytesRead)
	reg.RegisterCounter("shard_frame_bytes_written_total",
		"Wire bytes written to shard connections (length prefixes included).", shard, &s.bytesWrite)
	reg.GaugeFunc("shard_snapshot_epoch",
		"Epoch of the shard's current snapshot (0 before the first publish).", shard, func() float64 {
			if snap := s.store.Current(); snap != nil {
				return float64(snap.Epoch)
			}
			return 0
		})
	reg.GaugeFunc("shard_snapshot_age_seconds",
		"Seconds since the shard's current snapshot was built (0 before the first publish).", shard, func() float64 {
			if snap := s.store.Current(); snap != nil {
				return time.Since(snap.BuiltAt).Seconds()
			}
			return 0
		})
}

// track refreshes the retention ring against the store and returns the
// current and previous snapshots.
func (s *ShardServer) track() (cur, prev *serve.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.store.Current(); c != s.cur {
		s.prev, s.cur = s.cur, c
	}
	return s.cur, s.prev
}

// snapshotFor resolves the requested epoch: 0 means current, the
// previous epoch is served from the retention ring, anything else is
// gone (nil).
func (s *ShardServer) snapshotFor(epoch uint64) *serve.Snapshot {
	cur, prev := s.track()
	switch {
	case cur == nil:
		return nil
	case epoch == 0 || epoch == cur.Epoch:
		return cur
	case prev != nil && epoch == prev.Epoch:
		return prev
	}
	return nil
}

// owns reports whether vertex v is mastered by this shard.
func (s *ShardServer) owns(v uint32) bool {
	i := sort.Search(len(s.owned), func(i int) bool { return s.owned[i] >= v })
	return i < len(s.owned) && s.owned[i] == v
}

// handle instruments one RPC: op counters, handling latency, and —
// when a request log is set — one JSON line carrying the propagated
// request id.
func (s *ShardServer) handle(req request) response {
	start := time.Now()
	resp := s.answer(req)
	dur := time.Since(start)
	s.handleLat.Observe(dur)
	switch req.Op {
	case opTopK:
		s.opsTopK.Inc()
	case opRank:
		s.opsRank.Inc()
	case opStatus:
		s.opsStatus.Inc()
	}
	if s.reqLog.Enabled() {
		e := obs.Entry{
			Component: "shard",
			RID:       req.Rid,
			Op:        req.Op,
			K:         req.K,
			Epoch:     resp.Epoch,
			Code:      resp.Code,
			Err:       resp.Err,
			DurMS:     dur.Seconds() * 1e3,
		}
		if req.Op == opRank {
			e.Vertex = strconv.FormatUint(uint64(req.Vertex), 10)
		}
		s.reqLog.Log(e)
	}
	return resp
}

// answer computes one RPC response.
func (s *ShardServer) answer(req request) response {
	if req.V != api.Version {
		return errResponse(s.id, api.CodeVersionMismatch,
			"shard speaks wire version %d, router sent %d", api.Version, req.V)
	}
	s.queries.Inc()
	switch req.Op {
	case opTopK:
		if req.K <= 0 {
			return errResponse(s.id, api.CodeBadRequest, "k must be positive, got %d", req.K)
		}
		snap := s.snapshotFor(req.Epoch)
		if snap == nil {
			return errResponse(s.id, api.CodeNoSnapshot, "no snapshot for epoch %d", req.Epoch)
		}
		part := topk.Subset(snap.Ranks, s.owned, req.K)
		entries := make([]api.TopKEntry, len(part))
		for i, e := range part {
			entries[i] = api.TopKEntry{Vertex: e.Vertex, Score: e.Score}
		}
		return response{
			V: api.Version, Shard: s.id,
			Epoch: snap.Epoch, Engine: snap.Engine, Seed: snap.Seed,
			Entries: entries,
		}
	case opRank:
		snap := s.snapshotFor(req.Epoch)
		if snap == nil {
			return errResponse(s.id, api.CodeNoSnapshot, "no snapshot for epoch %d", req.Epoch)
		}
		resp := response{
			V: api.Version, Shard: s.id,
			Epoch: snap.Epoch, Engine: snap.Engine, Seed: snap.Seed,
		}
		if s.owns(req.Vertex) && int(req.Vertex) < len(snap.Ranks) {
			resp.Owned = true
			resp.Rank = snap.Ranks[req.Vertex]
		}
		return resp
	case opStatus:
		cur, _ := s.track()
		resp := response{
			V: api.Version, Shard: s.id,
			OwnedCount: len(s.owned), Queries: s.queries.Value(),
		}
		if cur != nil {
			resp.Epoch, resp.Engine, resp.Seed = cur.Epoch, cur.Engine, cur.Seed
			resp.SnapshotAge = time.Since(cur.BuiltAt).Seconds()
		}
		return resp
	}
	return errResponse(s.id, api.CodeBadRequest, "unknown op %q", req.Op)
}

// ServeConn answers frames on one connection until it closes. The
// caller owns the connection's lifetime; a decode failure terminates
// the connection (the peer will redial) rather than risking a
// desynchronized frame stream.
func (s *ShardServer) ServeConn(conn net.Conn) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var req request
		n, err := readFrame(br, &req)
		s.bytesRead.Add(uint64(n))
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n, err = writeFrame(bw, s.handle(req))
		s.bytesWrite.Add(uint64(n))
		if err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// Serve accepts connections on ln until ctx is cancelled, answering
// each on its own goroutine. It returns nil on a ctx-triggered stop.
func (s *ShardServer) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			s.ServeConn(conn) //nolint:errcheck // per-conn errors end that conn only
		}()
	}
}
