package router

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/api"
)

// TestRouterPPRUnsupported pins the router's /v1/ppr refusal: an
// explicit 501 with the shared envelope at code "unsupported" (not a
// 404, not a generic 5xx), counted on its own instrument that both
// /v1/stats and /metrics report.
func TestRouterPPRUnsupported(t *testing.T) {
	g := testGraph(t)
	store := serve.NewStore()
	publishRanks(t, store, g, tieRanks(g.NumVertices(), 42))
	rt := newRouter(newShards(t, g, []*serve.Store{store, store}), Options{})

	for i := 0; i < 3; i++ {
		code, body := get(t, rt, "/v1/ppr?source=7&k=5")
		if code != http.StatusNotImplemented {
			t.Fatalf("GET /v1/ppr status = %d, want %d (body %s)", code, http.StatusNotImplemented, body)
		}
		var env api.Error
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatalf("decode envelope: %v (body %s)", err, body)
		}
		if env.Code != api.CodeUnsupported {
			t.Fatalf("envelope code = %q, want %q", env.Code, api.CodeUnsupported)
		}
		if env.Message == "" {
			t.Fatal("envelope message empty; the refusal must say why")
		}
	}

	// The refusals are tracked apart from generic totals: the dedicated
	// counter holds exactly the /v1/ppr hits, and the stats body and
	// exposition agree on it.
	if got := rt.pprUnsupported.Value(); got != 3 {
		t.Fatalf("pprUnsupported = %d, want 3", got)
	}
	code, body := get(t, rt, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats status = %d (body %s)", code, body)
	}
	var stats api.RouterStatsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serving.PPRUnsupported != 3 {
		t.Fatalf("stats pprUnsupported = %d, want 3", stats.Serving.PPRUnsupported)
	}
	// 3 ppr + 1 stats: refusals still count as routed queries, they are
	// just additionally attributed.
	if stats.Serving.Queries != 4 {
		t.Fatalf("stats queries = %d, want 4", stats.Serving.Queries)
	}
	_, metrics := get(t, rt, "/metrics")
	if !strings.Contains(metrics, "router_ppr_unsupported_total 3") {
		t.Fatalf("/metrics missing router_ppr_unsupported_total 3:\n%s", metrics)
	}
}
