// Package router is the sharded serving plane: ShardServer owns one
// HDRF partition of the vertex space and answers partial top-k/rank
// queries over a small length-prefixed RPC protocol; Router is the
// stateless HTTP front that fans a query out to every shard, merges
// the partial top-k lists exactly through internal/topk's total order,
// and degrades gracefully — per-shard timeout and retry, a consistent
// older epoch when shards straddle a refresh, and last-good cached
// answers when a shard is down — instead of failing queries.
//
// The transport is pluggable (any net.Conn): tests drive shards over
// net.Pipe for determinism, deployments over TCP. Every byte crossing
// a shard connection is counted, so the paper's inter-machine traffic
// claims are measured on a real wire (Router.Meter exposes the counts
// as an internal/cluster machine meter).
package router

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/serve/api"
)

// RPC operations. One status op serves both health checks and stats
// aggregation: shard liveness, epoch and counters come back in a
// single frame.
const (
	opTopK   = "topk"
	opRank   = "rank"
	opStatus = "status"
)

// maxFrame bounds one frame's payload so a corrupt or hostile length
// prefix cannot drive a giant allocation (same discipline as
// internal/secfile's schema-bounded sections).
const maxFrame = 1 << 26

// request is one RPC query. V carries the shared wire version
// (api.Version); a shard refuses mismatched requests, so a
// mixed-version cluster fails loudly at the first query.
type request struct {
	V  int    `json:"v"`
	Op string `json:"op"`
	// K is the partial top-k size (opTopK).
	K int `json:"k,omitempty"`
	// Vertex is the rank query target (opRank).
	Vertex uint32 `json:"vertex,omitempty"`
	// Epoch pins the snapshot to answer from; 0 means the shard's
	// current. The router sets it when re-issuing a query at an older
	// epoch because the shards straddle a refresh.
	Epoch uint64 `json:"epoch,omitempty"`
	// Rid is the propagated request id: the router forwards the HTTP
	// request's X-Request-Id here so shard-side request logs carry the
	// same id as the router's (additive, so no version bump).
	Rid string `json:"rid,omitempty"`
}

// response is one RPC answer. Code/Err report shard-side failure using
// the shared api error vocabulary; all other fields are op-specific.
type response struct {
	V     int    `json:"v"`
	Shard int    `json:"shard"`
	Code  string `json:"code,omitempty"`
	Err   string `json:"error,omitempty"`
	// Epoch is the snapshot epoch the answer was computed from.
	Epoch  uint64     `json:"epoch,omitempty"`
	Engine api.Engine `json:"engine,omitempty"`
	Seed   uint64     `json:"seed,omitempty"`
	// Entries is the shard's partial top-k over its owned vertices
	// (opTopK), sorted in topk's total order.
	Entries []api.TopKEntry `json:"entries,omitempty"`
	// Owned and Rank answer opRank: Owned says whether this shard
	// masters the vertex (exactly one shard does).
	Owned bool    `json:"owned,omitempty"`
	Rank  float64 `json:"rank,omitempty"`
	// OwnedCount, Queries and SnapshotAge answer opStatus. SnapshotAge
	// is seconds since the shard's current snapshot was built, so the
	// router can tell a lagging shard from a freshly booted one.
	OwnedCount  int     `json:"ownedCount,omitempty"`
	Queries     uint64  `json:"queries,omitempty"`
	SnapshotAge float64 `json:"snapshotAge,omitempty"`
}

// errResponse builds a shard-side failure answer.
func errResponse(shard int, code, format string, args ...any) response {
	return response{V: api.Version, Shard: shard, Code: code, Err: fmt.Sprintf(format, args...)}
}

// writeFrame marshals v and writes one length-prefixed frame,
// returning the total bytes put on the wire (prefix included): the
// number the traffic meters record.
func writeFrame(w io.Writer, v any) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	if len(payload) > maxFrame {
		return 0, fmt.Errorf("router: frame %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
	if _, err := w.Write(prefix[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return len(prefix), err
	}
	return len(prefix) + len(payload), nil
}

// readFrame reads one length-prefixed frame into v, returning the
// total bytes taken off the wire.
func readFrame(r io.Reader, v any) (int, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxFrame {
		return len(prefix), fmt.Errorf("router: frame length %d exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return len(prefix), fmt.Errorf("router: short frame: %w", err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return len(prefix) + int(n), fmt.Errorf("router: frame decode: %w", err)
	}
	return len(prefix) + int(n), nil
}
