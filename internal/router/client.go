package router

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"time"

	"repro/internal/obs"
)

// DialFunc opens one connection to a shard. TCP deployments use
// DialTCP; tests return one end of a net.Pipe whose other end is
// handled by ShardServer.ServeConn.
type DialFunc func() (net.Conn, error)

// DialTCP returns a DialFunc for a live shard address.
func DialTCP(addr string) DialFunc {
	return func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
}

// PipeDialer returns a DialFunc that connects straight to srv through
// an in-memory net.Pipe — the deterministic in-process transport the
// router tests run on.
func PipeDialer(srv *ShardServer) DialFunc {
	return func() (net.Conn, error) {
		c1, c2 := net.Pipe()
		go func() {
			defer c2.Close()
			srv.ServeConn(c2) //nolint:errcheck // per-conn errors end that conn only
		}()
		return c1, nil
	}
}

// maxIdleConns bounds each shard's idle connection pool; excess
// connections close instead of accumulating.
const maxIdleConns = 16

// ShardClient is the router's handle on one shard: a small pool of
// persistent connections, a per-request deadline, one retry on a fresh
// connection after a transport error, and byte counters for every
// frame crossing the wire.
type ShardClient struct {
	id      int
	addr    string
	dial    DialFunc
	timeout time.Duration

	idle chan net.Conn

	// Free-standing obs instruments; Router.New registers them on its
	// registry via Instrument, so the stats body (which reads the same
	// counters) and /metrics agree by construction.
	sent    obs.Counter
	recv    obs.Counter
	calls   obs.Counter
	retries obs.Counter
	errs    obs.Counter
	rpcLat  obs.Latency
}

// NewShardClient builds a client for shard id reachable through dial.
// addr is informational (health and stats bodies). timeout bounds each
// RPC round trip; 0 selects 2s.
func NewShardClient(id int, addr string, dial DialFunc, timeout time.Duration) *ShardClient {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &ShardClient{
		id: id, addr: addr, dial: dial, timeout: timeout,
		idle: make(chan net.Conn, maxIdleConns),
	}
}

// ID returns the shard id this client talks to.
func (c *ShardClient) ID() int { return c.id }

// Addr returns the shard's display address.
func (c *ShardClient) Addr() string { return c.addr }

// BytesSent and BytesRecv return the total wire bytes this client has
// moved (length prefixes included).
func (c *ShardClient) BytesSent() int64 { return int64(c.sent.Value()) }
func (c *ShardClient) BytesRecv() int64 { return int64(c.recv.Value()) }

// Retries returns how many RPCs needed a second attempt.
func (c *ShardClient) Retries() uint64 { return c.retries.Value() }

// Instrument registers the client's instruments on reg under the
// router_shard_* names, labeled with the shard id. Call at most once
// per registry (Router.New does).
func (c *ShardClient) Instrument(reg *obs.Registry) {
	shard := obs.Labels{"shard": strconv.Itoa(c.id)}
	reg.RegisterCounter("router_shard_rpc_total",
		"RPCs issued to this shard (retries not included).", shard, &c.calls)
	reg.RegisterCounter("router_shard_rpc_retries_total",
		"RPCs that needed a second attempt after a transport error.", shard, &c.retries)
	reg.RegisterCounter("router_shard_rpc_errors_total",
		"RPCs that failed both attempts.", shard, &c.errs)
	reg.RegisterLatency("router_shard_rpc_seconds",
		"Per-shard RPC round-trip latency (retries included).", shard, &c.rpcLat)
	reg.RegisterCounter("router_shard_bytes_sent_total",
		"Wire bytes sent to this shard (length prefixes included).", shard, &c.sent)
	reg.RegisterCounter("router_shard_bytes_recv_total",
		"Wire bytes received from this shard (length prefixes included).", shard, &c.recv)
}

// Close drains the idle pool. In-flight calls finish on their own
// connections.
func (c *ShardClient) Close() {
	for {
		select {
		case conn := <-c.idle:
			conn.Close()
		default:
			return
		}
	}
}

// get checks out an idle connection or dials a fresh one.
func (c *ShardClient) get() (net.Conn, error) {
	select {
	case conn := <-c.idle:
		return conn, nil
	default:
		return c.dial()
	}
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full).
func (c *ShardClient) put(conn net.Conn) {
	select {
	case c.idle <- conn:
	default:
		conn.Close()
	}
}

// call performs one RPC: request out, response in, deadline-bounded,
// with one retry on a fresh connection after any transport error (a
// pooled connection may have died while idle, so the first failure is
// ambiguous; the second is real).
func (c *ShardClient) call(req request) (response, error) {
	c.calls.Inc()
	start := time.Now()
	defer func() { c.rpcLat.Observe(time.Since(start)) }()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
		}
		conn, err := c.get()
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.roundTrip(conn, req)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		c.put(conn)
		if resp.Code == "" && resp.V != req.V {
			return response{}, fmt.Errorf("shard %d answered wire version %d, want %d", c.id, resp.V, req.V)
		}
		return resp, nil
	}
	c.errs.Inc()
	return response{}, fmt.Errorf("shard %d (%s): %w", c.id, c.addr, lastErr)
}

// roundTrip runs one request/response exchange on conn under the
// client deadline, metering both directions.
func (c *ShardClient) roundTrip(conn net.Conn, req request) (response, error) {
	if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return response{}, err
	}
	bw := bufio.NewWriter(conn)
	n, err := writeFrame(bw, req)
	if err == nil {
		err = bw.Flush()
	}
	c.sent.Add(uint64(n))
	if err != nil {
		return response{}, err
	}
	var resp response
	n, err = readFrame(bufio.NewReader(conn), &resp)
	c.recv.Add(uint64(n))
	if err != nil {
		return response{}, err
	}
	// Clear the deadline so a pooled connection does not expire idle.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return response{}, err
	}
	return resp, nil
}
