package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// maxCachedK bounds the last-good fallback caches, mirroring the
// single-node server's body cache bound: an adversarial parameter
// sweep cannot grow them without limit.
const (
	maxCachedK    = 4096
	maxCachedRank = 1 << 16
)

// Options tunes a Router.
type Options struct {
	// Timeout bounds each per-shard RPC (0 selects 2s). A query's worst
	// case is 2x this (retry) plus one epoch-fallback round.
	Timeout time.Duration
	// Metrics is the registry /metrics renders from; nil creates a
	// private one. The router's counters and every shard client's
	// instruments are registered on it.
	Metrics *obs.Registry
	// RequestLog, when non-nil, receives one JSON line per routed
	// request, carrying the request id that is also forwarded to the
	// shards.
	RequestLog *obs.Logger
}

// Router is the stateless HTTP front of a shard cluster. It serves the
// same /v1 query API as the single-node server — a healthy sharded
// top-k response is byte-identical to the single-node body for the
// same snapshot epoch — by fanning every query out to all shards and
// merging the partial results exactly via internal/topk's total order.
//
// Failure semantics, in order of preference:
//
//  1. All shards answer at one epoch: exact answer, that epoch.
//  2. Shards straddle a refresh: the query re-runs pinned to the
//     oldest current epoch (every shard retains its previous snapshot,
//     so the laggard's epoch is still answerable cluster-wide). The
//     answer is exact for that older epoch.
//  3. A shard is unreachable (after its timeout and retry) or the
//     pinned epoch is gone: the last complete merged answer for the
//     same query is served, marked "degraded": true, at its (stale)
//     epoch.
//  4. No fallback answer is cached: 503 with the shared error
//     envelope, code "unavailable".
type Router struct {
	clients []*ShardClient
	mux     *http.ServeMux
	timeout time.Duration

	// Counters are obs instruments registered on reg, so the stats
	// body (which reads them directly) and /metrics render the same
	// values.
	queries        obs.Counter
	degraded       obs.Counter
	epochFallbacks obs.Counter
	pprUnsupported obs.Counter
	reg            *obs.Registry
	reqLog         *obs.Logger

	// Last-good caches backing failure mode 3. Bounded; keyed by query
	// parameter.
	mu       sync.Mutex
	lastTopK map[int]api.TopKResponse
	lastRank map[uint32]api.RankResponse

	httpMu   sync.Mutex
	listener net.Listener
}

// New builds a router over the given shard clients.
func New(clients []*ShardClient, opts Options) *Router {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	rt := &Router{
		clients:  clients,
		timeout:  timeout,
		lastTopK: make(map[int]api.TopKResponse),
		lastRank: make(map[uint32]api.RankResponse),
		reg:      opts.Metrics,
		reqLog:   opts.RequestLog,
	}
	if rt.reg == nil {
		rt.reg = obs.NewRegistry()
	}
	rt.reg.RegisterCounter("router_requests_total",
		"Queries routed across the /v1 endpoints (method-allowed GETs).", nil, &rt.queries)
	rt.reg.RegisterCounter("router_degraded_total",
		"Responses served from the last-good cache because the cluster had no fresh exact answer.", nil, &rt.degraded)
	rt.reg.RegisterCounter("router_epoch_fallbacks_total",
		"Queries re-issued pinned to an older epoch because shards straddled a refresh.", nil, &rt.epochFallbacks)
	rt.reg.RegisterCounter("router_ppr_unsupported_total",
		"PPR queries refused with 501 unsupported (the router holds no graph to walk).", nil, &rt.pprUnsupported)
	rt.reg.GaugeFunc("router_shards",
		"Number of shards this router fans out to.", nil, func() float64 {
			return float64(len(clients))
		})
	for _, c := range clients {
		c.Instrument(rt.reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/topk", rt.handle("topk", true, rt.handleTopK))
	mux.HandleFunc("/v1/rank", rt.handle("rank", true, rt.handleRank))
	mux.HandleFunc("/v1/ppr", rt.handle("ppr", true, rt.handlePPR))
	mux.HandleFunc("/v1/compare", rt.handle("compare", true, rt.handleCompare))
	mux.HandleFunc("/v1/stats", rt.handle("stats", true, rt.handleStats))
	mux.HandleFunc("/healthz", rt.handle("healthz", false, rt.handleHealthz))
	mux.Handle("/metrics", rt.reg.Handler())
	rt.mux = mux
	return rt
}

// Metrics returns the registry /metrics renders from, so embedders
// (the in-process load generator) can scrape without HTTP.
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// ServeHTTP implements http.Handler, so the load generator and tests
// can drive the router in-process exactly like the single-node server.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Queries returns the total routed query count.
func (rt *Router) Queries() uint64 { return rt.queries.Value() }

// Degraded returns how many responses were served from the last-good
// cache because the cluster could not produce a fresh exact answer.
func (rt *Router) Degraded() uint64 { return rt.degraded.Value() }

// EpochFallbacks returns how many queries re-ran pinned to an older
// epoch because the shards straddled a refresh.
func (rt *Router) EpochFallbacks() uint64 { return rt.epochFallbacks.Value() }

// Retries returns the total per-shard RPC retries after transport
// errors, summed across all clients.
func (rt *Router) Retries() uint64 { return rt.sumRetries() }

// NetworkStats reports measured wire traffic across all shard
// connections, averaged per routed query.
func (rt *Router) NetworkStats() api.NetworkStats {
	var ns api.NetworkStats
	ns.Queries = rt.queries.Value()
	for _, c := range rt.clients {
		ns.BytesSent += c.BytesSent()
		ns.BytesRecv += c.BytesRecv()
	}
	if ns.Queries > 0 {
		ns.BytesPerQuery = float64(ns.BytesSent+ns.BytesRecv) / float64(ns.Queries)
	}
	return ns
}

// Meter renders the measured traffic as an internal/cluster machine
// meter — the same instrument the simulated engine uses, now fed by
// real wire bytes: query fan-out is scatter-style signal traffic,
// partial results coming back are gather traffic.
func (rt *Router) Meter() cluster.MachineMeter {
	var m cluster.MachineMeter
	for _, c := range rt.clients {
		m.Send(cluster.TrafficSignal, c.BytesSent())
		m.Recv(cluster.TrafficGather, c.BytesRecv())
	}
	return m
}

// ridHandler is an endpoint handler that receives the request id the
// instrumentation wrapper resolved, so it can forward it to the shards.
type ridHandler func(w http.ResponseWriter, r *http.Request, rid string)

// handle wraps one endpoint with instrumentation: a per-endpoint
// latency histogram, request-id resolution (generated when the client
// sent none, echoed on the response, forwarded in shard RPC frames),
// status capture for the request log, and — for gated endpoints —
// GET/HEAD filtering plus the /v1 query counter. healthz is not gated,
// preserving its historical accept-anything behavior.
func (rt *Router) handle(endpoint string, gated bool, h ridHandler) http.HandlerFunc {
	lat := rt.reg.Latency("router_request_seconds",
		"Routed request latency by endpoint (shard fan-out included).", obs.Labels{"endpoint": endpoint})
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := obs.EnsureRequestID(w, r)
		sw := &obs.StatusWriter{ResponseWriter: w}
		if gated && r.Method != http.MethodGet && r.Method != http.MethodHead {
			serve.WriteError(sw, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, 0, "use GET")
		} else {
			if gated {
				rt.queries.Inc()
			}
			h(sw, r, rid)
		}
		dur := time.Since(start)
		lat.Observe(dur)
		if rt.reqLog.Enabled() {
			rt.reqLog.Log(obs.Entry{
				Component: "router",
				RID:       rid,
				Method:    r.Method,
				Path:      r.URL.Path,
				Query:     r.URL.RawQuery,
				Shards:    len(rt.clients),
				Status:    sw.Status(),
				DurMS:     dur.Seconds() * 1e3,
			})
		}
	}
}

// reply writes a marshaled JSON body.
func (rt *Router) reply(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		serve.WriteError(w, http.StatusInternalServerError, api.CodeInternal, 0, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// shardResult pairs one shard's answer with its transport error.
type shardResult struct {
	resp response
	err  error
}

// ok reports a usable answer (transport succeeded, shard raised no
// error code).
func (r shardResult) ok() bool { return r.err == nil && r.resp.Code == "" }

// fanout sends req to every shard concurrently and collects all
// answers, indexed by shard position.
func (rt *Router) fanout(req request) []shardResult {
	results := make([]shardResult, len(rt.clients))
	var wg sync.WaitGroup
	for i, c := range rt.clients {
		wg.Add(1)
		go func(i int, c *ShardClient) {
			defer wg.Done()
			resp, err := c.call(req)
			results[i] = shardResult{resp: resp, err: err}
		}(i, c)
	}
	wg.Wait()
	return results
}

// shardErr summarizes the first failed result for error bodies.
func shardErr(results []shardResult) error {
	for i, r := range results {
		if r.err != nil {
			return r.err
		}
		if r.resp.Code != "" {
			return fmt.Errorf("shard %d: %s: %s", i, r.resp.Code, r.resp.Err)
		}
	}
	return errors.New("no failure")
}

// consistentTopK gathers partial top-k lists at one consistent epoch,
// re-issuing pinned queries when shards straddle a refresh. It returns
// the merged exact response, or an error when any shard cannot
// contribute.
func (rt *Router) consistentTopK(k int, rid string) (api.TopKResponse, error) {
	results := rt.fanout(request{V: api.Version, Op: opTopK, K: k, Rid: rid})
	for _, r := range results {
		if !r.ok() {
			return api.TopKResponse{}, shardErr(results)
		}
	}
	// Epoch agreement: serve the oldest current epoch, so a refresh
	// rolling across the cluster never produces a Frankenstein merge of
	// two estimates.
	target := results[0].resp.Epoch
	mixed := false
	for _, r := range results[1:] {
		if r.resp.Epoch != target {
			mixed = true
			if r.resp.Epoch < target {
				target = r.resp.Epoch
			}
		}
	}
	if mixed {
		rt.epochFallbacks.Inc()
		pinned := request{V: api.Version, Op: opTopK, K: k, Epoch: target, Rid: rid}
		for i := range results {
			if results[i].resp.Epoch == target {
				continue
			}
			r := shardResult{}
			r.resp, r.err = rt.clients[i].call(pinned)
			if !r.ok() || r.resp.Epoch != target {
				results[i] = r
				return api.TopKResponse{}, shardErr(results)
			}
			results[i] = r
		}
	}
	lists := make([][]topk.Entry, len(results))
	for i, r := range results {
		entries := make([]topk.Entry, len(r.resp.Entries))
		for j, e := range r.resp.Entries {
			entries[j] = topk.Entry{Vertex: e.Vertex, Score: e.Score}
		}
		lists[i] = entries
	}
	merged := topk.Merge(lists, k)
	rows := make([]api.TopKEntry, len(merged))
	for i, e := range merged {
		rows[i] = api.TopKEntry{Vertex: e.Vertex, Score: e.Score}
	}
	return api.TopKResponse{
		Epoch:   target,
		Engine:  results[0].resp.Engine,
		Seed:    results[0].resp.Seed,
		K:       len(rows),
		Entries: rows,
	}, nil
}

func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request, rid string) {
	k, err := parsePositiveInt(r.URL.Query().Get("k"), 20)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, 0, "bad k: %v", err)
		return
	}
	resp, err := rt.consistentTopK(k, rid)
	if err == nil {
		if k <= maxCachedK {
			rt.mu.Lock()
			rt.lastTopK[k] = resp
			rt.mu.Unlock()
		}
		rt.reply(w, resp)
		return
	}
	// Degraded path: the last complete merge for this k, at its stale
	// epoch, beats an error while a shard is down.
	rt.mu.Lock()
	cached, ok := rt.lastTopK[k]
	rt.mu.Unlock()
	if !ok {
		serve.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable, 0,
			"shard cluster unavailable and no cached answer for k=%d: %v", k, err)
		return
	}
	rt.degraded.Inc()
	cached.Degraded = true
	rt.reply(w, cached)
}

func (rt *Router) handleRank(w http.ResponseWriter, r *http.Request, rid string) {
	raw := r.URL.Query().Get("vertex")
	if raw == "" {
		serve.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, 0, "missing vertex parameter")
		return
	}
	v64, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, 0, "bad vertex: %v", err)
		return
	}
	v := uint32(v64)
	results := rt.fanout(request{V: api.Version, Op: opRank, Vertex: v, Rid: rid})
	allOK := true
	var maxEpoch uint64
	for _, res := range results {
		if !res.ok() {
			allOK = false
			continue
		}
		if res.resp.Epoch > maxEpoch {
			maxEpoch = res.resp.Epoch
		}
		if res.resp.Owned {
			resp := api.RankResponse{
				Epoch:  res.resp.Epoch,
				Engine: res.resp.Engine,
				Vertex: v,
				Rank:   res.resp.Rank,
			}
			rt.mu.Lock()
			if len(rt.lastRank) < maxCachedRank {
				rt.lastRank[v] = resp
			}
			rt.mu.Unlock()
			rt.reply(w, resp)
			return
		}
	}
	if allOK {
		// Every shard answered and none owns the vertex: it does not
		// exist in the graph.
		serve.WriteError(w, http.StatusNotFound, api.CodeNotFound, maxEpoch,
			"vertex %d not owned by any of %d shards", v, len(results))
		return
	}
	// The owner may be among the failed shards: degraded fallback.
	rt.mu.Lock()
	cached, ok := rt.lastRank[v]
	rt.mu.Unlock()
	if !ok {
		serve.WriteError(w, http.StatusServiceUnavailable, api.CodeUnavailable, maxEpoch,
			"shard cluster unavailable and no cached rank for vertex %d: %v", v, shardErr(results))
		return
	}
	rt.degraded.Inc()
	cached.Degraded = true
	rt.reply(w, cached)
}

// handlePPR refuses personalized PageRank explicitly: walks need the
// graph's adjacency, which the stateless router does not hold, and the
// shard RPC protocol has no walk op yet. The refusal is a deliberate
// 501 with code "unsupported" — not a 404, not folded into generic
// errors — and counted on its own instrument so a client mis-targeting
// PPR at a router shows up in /v1/stats and /metrics.
func (rt *Router) handlePPR(w http.ResponseWriter, r *http.Request, rid string) {
	rt.pprUnsupported.Inc()
	serve.WriteError(w, http.StatusNotImplemented, api.CodeUnsupported, 0,
		"ppr is not available on the router: walks need the graph; query a single-node server")
}

func (rt *Router) handleCompare(w http.ResponseWriter, r *http.Request, rid string) {
	// Compare runs a full reference engine over the graph; the router
	// is stateless by design and holds no graph. Clients run compares
	// against a shard-side single-node server (or offline).
	serve.WriteError(w, http.StatusNotImplemented, api.CodeUnsupported, 0,
		"compare is not available on the router: it holds no graph; run it against a single-node server")
}

// probe fans the status op out and derives the cluster view shared by
// stats and health: per-shard rows, the freshest epoch anywhere, and
// the oldest epoch among live shards (the consistent serving floor).
func (rt *Router) probe(rid string) (rows []api.ShardStatus, maxEpoch, minEpoch uint64, engine api.Engine, seed uint64, healthy bool) {
	results := rt.fanout(request{V: api.Version, Op: opStatus, Rid: rid})
	rows = make([]api.ShardStatus, len(results))
	healthy = true
	first := true
	for i, r := range results {
		row := api.ShardStatus{ID: rt.clients[i].ID(), Addr: rt.clients[i].Addr()}
		if !r.ok() {
			row.OK = false
			row.Error = shardErr(results[i : i+1]).Error()
			healthy = false
		} else {
			row.OK = true
			row.Epoch = r.resp.Epoch
			row.Owned = r.resp.OwnedCount
			row.SnapshotAgeSeconds = r.resp.SnapshotAge
			if r.resp.Epoch > maxEpoch {
				maxEpoch = r.resp.Epoch
			}
			if first || r.resp.Epoch < minEpoch {
				minEpoch = r.resp.Epoch
				first = false
			}
			if engine == "" {
				engine, seed = r.resp.Engine, r.resp.Seed
			}
		}
		rows[i] = row
	}
	// A shard lagging the freshest epoch is degraded: answers are
	// consistent but stale until its refresh lands.
	for _, row := range rows {
		if row.OK && row.Epoch < maxEpoch {
			healthy = false
		}
	}
	return rows, maxEpoch, minEpoch, engine, seed, healthy
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request, rid string) {
	rows, _, minEpoch, engine, seed, _ := rt.probe(rid)
	rt.reply(w, api.RouterStatsResponse{
		Epoch:  minEpoch,
		Engine: engine,
		Seed:   seed,
		Shards: rows,
		Serving: api.RouterStats{
			Queries:        rt.queries.Value(),
			Degraded:       rt.degraded.Value(),
			Retries:        rt.sumRetries(),
			EpochFallbacks: rt.epochFallbacks.Value(),
			PPRUnsupported: rt.pprUnsupported.Value(),
		},
		Network: rt.NetworkStats(),
	})
}

func (rt *Router) sumRetries() uint64 {
	var total uint64
	for _, c := range rt.clients {
		total += c.Retries()
	}
	return total
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request, rid string) {
	rows, _, minEpoch, _, _, healthy := rt.probe(rid)
	status := "ok"
	code := http.StatusOK
	if !healthy {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	body, err := json.Marshal(api.HealthResponse{Status: status, Epoch: minEpoch, Shards: rows})
	if err != nil {
		serve.WriteError(w, http.StatusInternalServerError, api.CodeInternal, 0, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

// Serve listens on addr and serves the router API until ctx is
// cancelled, then shuts down gracefully.
func (rt *Router) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	rt.httpMu.Lock()
	rt.listener = ln
	rt.httpMu.Unlock()
	srv := &http.Server{Handler: rt.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Addr returns the bound listen address once Serve is up ("" before).
func (rt *Router) Addr() string {
	rt.httpMu.Lock()
	defer rt.httpMu.Unlock()
	if rt.listener == nil {
		return ""
	}
	return rt.listener.Addr().String()
}

// parsePositiveInt parses a strictly positive integer, returning def
// for the empty string (the single-node server's exact semantics, so
// both planes reject the same inputs).
func parsePositiveInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("must be positive, got %d", v)
	}
	return v, nil
}
