// Package loadgen is a deterministic load generator for the top-k
// PageRank query service: it drives the /v1/topk, /v1/rank, /v1/ppr
// and /v1/stats endpoints with Zipf-skewed key popularity and measures
// per-endpoint latency distributions with internal/hist.
//
// Determinism is the design center, matching the rest of the repo: the
// entire workload — which endpoint each query hits, which k or vertex
// it asks for, and (open loop) when it arrives — is a pure function of
// (seed, config), precomputed by Schedule before a single request is
// issued. Workers consume schedule entries from a shared cursor and
// record into worker-local histograms that merge exactly (bucket
// addition is commutative), so the schedule, the per-endpoint counts
// and — given a deterministic target — the histogram buckets are
// bit-identical for any worker count. Wall-clock throughput against a
// real server is, of course, still a measurement.
//
// Two loop disciplines are supported:
//
//   - Closed loop (default): Concurrency workers issue queries
//     back-to-back; offered load adapts to service rate. An optional
//     ramp splits the measured phase into stages of rising concurrency.
//   - Open loop: queries arrive on a fixed schedule with exponential
//     inter-arrival gaps at Rate queries/s, independent of completions
//     up to Concurrency requests in flight; recorded latency includes
//     any dispatch lag past the scheduled arrival — sleep overshoot or
//     a saturated in-flight bound — so queueing delay is not hidden
//     (no coordinated omission).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
	"repro/internal/rng"
)

// Endpoint names one query kind in the mix.
type Endpoint string

const (
	// EndpointTopK is GET /v1/topk?k=K.
	EndpointTopK Endpoint = "topk"
	// EndpointRank is GET /v1/rank?vertex=V.
	EndpointRank Endpoint = "rank"
	// EndpointPPR is GET /v1/ppr?source=V&k=K.
	EndpointPPR Endpoint = "ppr"
	// EndpointStats is GET /v1/stats.
	EndpointStats Endpoint = "stats"
)

// Endpoints lists the endpoints in their fixed report order.
var Endpoints = []Endpoint{EndpointTopK, EndpointRank, EndpointPPR, EndpointStats}

// Mix weights the query kinds. Weights are relative (they need not sum
// to 1); the zero value selects the default serving mix of 60% topk,
// 30% rank, 10% stats (no ppr: a PPR query costs thousands of walks,
// so it is opt-in traffic, and schedules predating the endpoint stay
// bit-identical).
type Mix struct {
	TopK  float64
	Rank  float64
	PPR   float64
	Stats float64
}

// withDefaults normalizes the mix, substituting the default when all
// weights are zero.
func (m Mix) withDefaults() (Mix, error) {
	if m.TopK == 0 && m.Rank == 0 && m.PPR == 0 && m.Stats == 0 {
		return Mix{TopK: 0.6, Rank: 0.3, Stats: 0.1}, nil
	}
	if m.TopK < 0 || m.Rank < 0 || m.PPR < 0 || m.Stats < 0 {
		return Mix{}, fmt.Errorf("loadgen: negative mix weight %+v", m)
	}
	total := m.TopK + m.Rank + m.PPR + m.Stats
	return Mix{TopK: m.TopK / total, Rank: m.Rank / total, PPR: m.PPR / total, Stats: m.Stats / total}, nil
}

// Config fixes a workload. Together with the seed it determines the
// schedule bit-for-bit.
type Config struct {
	// Seed keys every random choice in the schedule.
	Seed uint64
	// Queries is the number of measured queries (after warmup).
	Queries int
	// Warmup queries are issued first (same distribution) and excluded
	// from every reported statistic.
	Warmup int
	// Concurrency is the worker count (closed loop) or the maximum
	// in-flight requests (open loop). Open-loop dispatch blocked on
	// the bound charges the wait to the op's recorded latency, so a
	// saturated target shows up in the tail percentiles rather than
	// exhausting sockets. 0 means 1.
	Concurrency int
	// RampStages > 1 splits the measured closed-loop phase into that
	// many equal segments, with concurrency rising linearly from
	// Concurrency/RampStages to Concurrency. Ignored in open loop.
	RampStages int
	// OpenLoop selects arrival-schedule driving at Rate queries/s.
	OpenLoop bool
	// Rate is the open-loop offered load in queries/s (required when
	// OpenLoop is set).
	Rate float64
	// Mix weights the endpoints.
	Mix Mix
	// ZipfS is the key-popularity skew exponent for topk's k and
	// rank's vertex (s > 0; default 1.1, a realistic serving skew).
	ZipfS float64
	// MaxK bounds topk's k parameter (k is Zipf-distributed on
	// [1, MaxK], small k most popular). Default 100.
	MaxK int
	// Vertices is the id space for rank queries and ppr sources (ids
	// are drawn Zipf-skewed from [0, Vertices)). Required when the mix
	// includes rank or ppr traffic.
	Vertices int
}

// withDefaults validates and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Queries <= 0 {
		return c, errors.New("loadgen: Queries must be positive")
	}
	if c.Warmup < 0 {
		return c, errors.New("loadgen: Warmup must be non-negative")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.RampStages <= 0 {
		c.RampStages = 1
	}
	if c.RampStages > c.Queries {
		c.RampStages = c.Queries
	}
	if c.OpenLoop && c.Rate <= 0 {
		return c, errors.New("loadgen: open loop requires Rate > 0")
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.ZipfS <= 0 {
		return c, errors.New("loadgen: ZipfS must be positive")
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	var err error
	if c.Mix, err = c.Mix.withDefaults(); err != nil {
		return c, err
	}
	if (c.Mix.Rank > 0 || c.Mix.PPR > 0) && c.Vertices <= 0 {
		return c, errors.New("loadgen: Vertices required for rank or ppr traffic")
	}
	return c, nil
}

// Validate reports whether the configuration is runnable (the same
// check Schedule and Run apply), so CLIs can separate usage errors
// from run failures.
func (c Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// Op is one scheduled query.
type Op struct {
	// Index is the op's position in the schedule (warmup included).
	Index int
	// Endpoint says which query kind this is.
	Endpoint Endpoint
	// K is the topk parameter (EndpointTopK and EndpointPPR).
	K int
	// Vertex is the rank parameter, or the ppr source (Zipf-skewed
	// either way: hot sources repeat, which is what makes the server's
	// hot-source cache measurable).
	Vertex uint32
	// Arrival is the open-loop offset from the phase start (zero in
	// closed loop, and for warmup ops).
	Arrival time.Duration
	// Warmup marks ops excluded from measurement.
	Warmup bool
}

// URL renders the op's request path and query string.
func (op Op) URL() string {
	switch op.Endpoint {
	case EndpointTopK:
		return fmt.Sprintf("/v1/topk?k=%d", op.K)
	case EndpointRank:
		return fmt.Sprintf("/v1/rank?vertex=%d", op.Vertex)
	case EndpointPPR:
		return fmt.Sprintf("/v1/ppr?source=%d&k=%d", op.Vertex, op.K)
	default:
		return "/v1/stats"
	}
}

// Schedule produces the full deterministic op sequence for cfg: Warmup
// warmup ops followed by Queries measured ops. Same seed and config ⇒
// bit-identical schedule, always.
func Schedule(cfg Config) ([]Op, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Independent streams per concern, so e.g. changing MaxK cannot
	// perturb which endpoints are drawn.
	endpointRng := rng.Derive(cfg.Seed, 'e')
	keyRng := rng.Derive(cfg.Seed, 'k')
	arrivalRng := rng.Derive(cfg.Seed, 'a')
	kZipf := rng.NewZipf(cfg.ZipfS, 1, cfg.MaxK)
	var vZipf *rng.Zipf
	if cfg.Mix.Rank > 0 || cfg.Mix.PPR > 0 {
		vZipf = rng.NewZipf(cfg.ZipfS, 1, cfg.Vertices)
	}

	ops := make([]Op, cfg.Warmup+cfg.Queries)
	var arrival time.Duration
	for i := range ops {
		op := Op{Index: i, Warmup: i < cfg.Warmup}
		u := endpointRng.Float64()
		switch {
		case u < cfg.Mix.TopK:
			op.Endpoint = EndpointTopK
			op.K = kZipf.Sample(keyRng)
		case u < cfg.Mix.TopK+cfg.Mix.Rank:
			op.Endpoint = EndpointRank
			op.Vertex = uint32(vZipf.Sample(keyRng) - 1)
		case u < cfg.Mix.TopK+cfg.Mix.Rank+cfg.Mix.PPR:
			// PPR sits between rank and the stats default, so a mix
			// with PPR = 0 reproduces pre-ppr schedules bit-for-bit.
			op.Endpoint = EndpointPPR
			op.Vertex = uint32(vZipf.Sample(keyRng) - 1)
			op.K = kZipf.Sample(keyRng)
		default:
			op.Endpoint = EndpointStats
		}
		if cfg.OpenLoop && !op.Warmup {
			// Exponential inter-arrival gaps at the configured rate
			// (Poisson arrivals), accumulated from the phase start.
			gap := expGap(arrivalRng, cfg.Rate)
			arrival += gap
			op.Arrival = arrival
		}
		ops[i] = op
	}
	return ops, nil
}

// expGap draws one exponential inter-arrival gap for rate arrivals/s.
func expGap(r *rng.Stream, rate float64) time.Duration {
	// Inversion with U in (0, 1]: -ln(U)/rate.
	u := 1 - r.Float64()
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// Result is a target's answer to one op.
type Result struct {
	// Latency is the service time the target observed (or synthesized,
	// for deterministic test targets).
	Latency time.Duration
	// Status is the HTTP status code (0 when Err is set before any
	// response).
	Status int
	// Err reports transport-level failure.
	Err error
}

// Target executes ops. Implementations must be safe for concurrent
// calls.
type Target interface {
	Do(ctx context.Context, op Op) Result
}

// Stats aggregates one endpoint's measured phase.
type Stats struct {
	// Count is the number of measured queries sent to the endpoint.
	Count uint64 `json:"count"`
	// Errors counts transport failures and non-2xx statuses; their
	// latencies are excluded from the histogram.
	Errors uint64 `json:"errors"`
	// Hist holds the latency distribution of the successful queries.
	Hist *hist.Histogram `json:"-"`
}

// Report is the outcome of one Run.
type Report struct {
	// Config echoes the (defaulted) workload configuration.
	Config Config
	// Wall is the measured-phase wall time.
	Wall time.Duration
	// PerEndpoint holds one entry per endpoint that saw traffic.
	PerEndpoint map[Endpoint]*Stats
}

// Total returns the merged statistics across endpoints. The merged
// histogram is exact (bucket addition), not an approximation.
func (r *Report) Total() Stats {
	total := Stats{Hist: &hist.Histogram{}}
	for _, ep := range Endpoints {
		if st, ok := r.PerEndpoint[ep]; ok {
			total.Count += st.Count
			total.Errors += st.Errors
			total.Hist.Merge(st.Hist)
		}
	}
	return total
}

// QueriesPerSecond returns measured throughput (0 if the phase took no
// measurable time).
func (r *Report) QueriesPerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Total().Count) / r.Wall.Seconds()
}

// workerStats is one worker's lock-free accumulation; merged after the
// run in fixed endpoint order.
type workerStats struct {
	counts [4]uint64
	errs   [4]uint64
	hists  [4]hist.Histogram
}

func endpointSlot(ep Endpoint) int {
	switch ep {
	case EndpointTopK:
		return 0
	case EndpointRank:
		return 1
	case EndpointPPR:
		return 2
	default:
		return 3
	}
}

// record notes one measured result.
func (ws *workerStats) record(op Op, res Result, extra time.Duration) {
	slot := endpointSlot(op.Endpoint)
	ws.counts[slot]++
	if res.Err != nil || res.Status < 200 || res.Status >= 300 {
		ws.errs[slot]++
		return
	}
	ws.hists[slot].Record(res.Latency + extra)
}

// Run executes cfg's schedule against target and reports the measured
// phase. It honors ctx cancellation (returning ctx's error); otherwise
// it always runs the schedule to completion.
func Run(ctx context.Context, cfg Config, target Target) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ops, err := Schedule(cfg)
	if err != nil {
		return nil, err
	}
	warm, measured := ops[:cfg.Warmup], ops[cfg.Warmup:]

	// Warmup: full concurrency, nothing recorded.
	if len(warm) > 0 {
		if err := runClosedSegment(ctx, warm, cfg.Concurrency, target, nil); err != nil {
			return nil, err
		}
	}

	stats := make([]workerStats, cfg.Concurrency)
	start := time.Now()
	if cfg.OpenLoop {
		err = runOpenLoop(ctx, measured, target, stats)
	} else {
		// Ramp: equal segments with concurrency rising to the
		// configured maximum; a single stage is the plain closed loop.
		stages := cfg.RampStages
		per := (len(measured) + stages - 1) / stages
		for s := 0; s < stages && err == nil; s++ {
			lo := s * per
			hi := min(lo+per, len(measured))
			if lo >= hi {
				break
			}
			workers := max(1, cfg.Concurrency*(s+1)/stages)
			err = runClosedSegment(ctx, measured[lo:hi], workers, target, stats)
		}
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)

	rep := &Report{Config: cfg, Wall: wall, PerEndpoint: map[Endpoint]*Stats{}}
	for slot, ep := range Endpoints {
		agg := &Stats{Hist: &hist.Histogram{}}
		for w := range stats {
			agg.Count += stats[w].counts[slot]
			agg.Errors += stats[w].errs[slot]
			agg.Hist.Merge(&stats[w].hists[slot])
		}
		if agg.Count > 0 {
			rep.PerEndpoint[ep] = agg
		}
	}
	return rep, nil
}

// runClosedSegment drains ops with the given worker count, each worker
// pulling the next op from a shared cursor. stats == nil means warmup
// (execute, don't record); otherwise worker w records into stats[w].
func runClosedSegment(ctx context.Context, ops []Op, workers int, target Target, stats []workerStats) error {
	if workers > len(ops) {
		workers = len(ops)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				res := target.Do(ctx, ops[i])
				if stats != nil {
					stats[w].record(ops[i], res, 0)
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// runOpenLoop dispatches each op at its scheduled arrival offset,
// without waiting for earlier ops to finish, up to a cap of len(stats)
// in flight. Each op records into the stats slot of its dispatch index
// modulo len(stats); the recorded latency adds the dispatch lag past
// the scheduled arrival (sleep overshoot and semaphore wait alike) so
// queueing is visible in the tail, never hidden.
func runOpenLoop(ctx context.Context, ops []Op, target Target, stats []workerStats) error {
	start := time.Now()
	var wg sync.WaitGroup
	// In-flight bound: a stalled target must exhaust the semaphore,
	// not file descriptors. Dispatch blocked on a full semaphore still
	// charges the wait to the op via its lag, so saturation surfaces
	// in the tail percentiles instead of being silently absorbed.
	sem := make(chan struct{}, len(stats))
	// Per-slot locks: in-flight ops outnumber slots, so slots are
	// shared (unlike the closed loop's one-slot-per-worker).
	locks := make([]sync.Mutex, len(stats))
	for i := range ops {
		if ctx.Err() != nil {
			break
		}
		op := ops[i]
		if lead := time.Until(start.Add(op.Arrival)); lead > 0 {
			select {
			case <-time.After(lead):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		lag := time.Since(start.Add(op.Arrival))
		if lag < 0 {
			lag = 0
		}
		slot := i % len(stats)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := target.Do(ctx, op)
			locks[slot].Lock()
			stats[slot].record(op, res, lag)
			locks[slot].Unlock()
			<-sem
		}()
	}
	wg.Wait()
	return ctx.Err()
}
