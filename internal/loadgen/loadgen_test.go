package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph/gen"
	"repro/internal/rng"
	"repro/internal/serve"
)

// fakeTarget answers every op with a latency that is a pure function
// of the op itself, so end-to-end runs are fully deterministic and the
// worker-count equivalence of histogram buckets can be asserted
// bit-for-bit.
type fakeTarget struct {
	// fail, when set, marks ops with fail(op) true as HTTP 500.
	fail func(Op) bool
}

func (t fakeTarget) Do(_ context.Context, op Op) Result {
	if t.fail != nil && t.fail(op) {
		return Result{Status: http.StatusInternalServerError, Latency: time.Millisecond}
	}
	// Derive a deterministic latency from the op's identity.
	r := rng.Derive(99, uint64(op.Index), uint64(op.K), uint64(op.Vertex))
	return Result{
		Status:  http.StatusOK,
		Latency: time.Duration(50_000 + r.Uint64n(5_000_000)), // 50µs..5ms
	}
}

func testConfig() Config {
	return Config{
		Seed:        42,
		Queries:     600,
		Warmup:      100,
		Concurrency: 4,
		Vertices:    5000,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a, err := Schedule(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed + config produced different schedules")
	}
	c, err := Schedule(Config{Seed: 43, Queries: 600, Warmup: 100, Vertices: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) != 700 {
		t.Fatalf("schedule length %d, want warmup+queries = 700", len(a))
	}
	for i, op := range a {
		if op.Index != i {
			t.Fatalf("op %d has Index %d", i, op.Index)
		}
		if op.Warmup != (i < 100) {
			t.Fatalf("op %d warmup flag wrong", i)
		}
	}
}

func TestScheduleShape(t *testing.T) {
	cfg := testConfig()
	cfg.Queries = 10000
	cfg.Warmup = 0
	ops, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var counts [4]int
	kOnes := 0
	for _, op := range ops {
		counts[endpointSlot(op.Endpoint)]++
		switch op.Endpoint {
		case EndpointTopK:
			if op.K < 1 || op.K > 100 {
				t.Fatalf("k=%d outside [1,100]", op.K)
			}
			if op.K == 1 {
				kOnes++
			}
		case EndpointRank:
			if int(op.Vertex) >= cfg.Vertices {
				t.Fatalf("vertex %d outside id space", op.Vertex)
			}
		}
	}
	// Default mix 60/30/10 within generous tolerance.
	if counts[0] < 5500 || counts[0] > 6500 {
		t.Errorf("topk count %d far from 6000", counts[0])
	}
	if counts[1] < 2500 || counts[1] > 3500 {
		t.Errorf("rank count %d far from 3000", counts[1])
	}
	if counts[2] != 0 {
		t.Errorf("ppr count %d; default mix must not schedule ppr", counts[2])
	}
	if counts[3] < 700 || counts[3] > 1300 {
		t.Errorf("stats count %d far from 1000", counts[3])
	}
	// Zipf skew: k=1 must dominate the topk draw (≈1/H weight, far
	// above uniform 1%).
	if kOnes*10 < counts[0] {
		t.Errorf("k=1 drawn %d/%d times; Zipf skew missing", kOnes, counts[0])
	}
}

func TestScheduleOpenLoopArrivals(t *testing.T) {
	cfg := testConfig()
	cfg.OpenLoop = true
	cfg.Rate = 5000
	ops, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for _, op := range ops {
		if op.Warmup {
			if op.Arrival != 0 {
				t.Fatal("warmup op has an arrival offset")
			}
			continue
		}
		if op.Arrival <= prev {
			t.Fatalf("arrivals not strictly increasing at op %d", op.Index)
		}
		prev = op.Arrival
	}
	// Mean inter-arrival should be near 1/rate: 600 measured queries
	// at 5000/s span ≈120ms.
	if prev < 60*time.Millisecond || prev > 240*time.Millisecond {
		t.Errorf("total span %v far from expected 120ms", prev)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                            // no queries
		{Queries: 10, Warmup: -1},     // negative warmup
		{Queries: 10, OpenLoop: true}, // open loop without rate
		{Queries: 10, ZipfS: -2, Vertices: 10},
		{Queries: 10}, // rank traffic without Vertices
		{Queries: 10, Mix: Mix{TopK: -1, Rank: 1}},             // negative weight
		{Queries: 10, Mix: Mix{TopK: 1, Rank: 1}, Vertices: 0}, // rank without id space
	}
	for i, cfg := range bad {
		if _, err := Schedule(cfg); err == nil {
			t.Errorf("config %d unexpectedly valid: %+v", i, cfg)
		}
		if _, err := Run(context.Background(), cfg, fakeTarget{}); err == nil {
			t.Errorf("Run accepted invalid config %d", i)
		}
	}
	// Stats-only mix needs no vertex space.
	if _, err := Schedule(Config{Queries: 10, Mix: Mix{Stats: 1}}); err != nil {
		t.Errorf("stats-only mix rejected: %v", err)
	}
}

// TestRunWorkerCountEquivalence is the satellite contract (mirroring
// the repo's workers 1/2/4/7 convention): with a deterministic target,
// the per-endpoint counts, error counts and histogram buckets are
// bit-identical for every worker count and for repeated runs.
func TestRunWorkerCountEquivalence(t *testing.T) {
	base := testConfig()
	run := func(conc, ramp int) *Report {
		cfg := base
		cfg.Concurrency = conc
		cfg.RampStages = ramp
		rep, err := Run(context.Background(), cfg, fakeTarget{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ref := run(1, 1)
	refTotal := ref.Total()
	if refTotal.Count != uint64(base.Queries) {
		t.Fatalf("measured %d queries, want %d", refTotal.Count, base.Queries)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		for _, ramp := range []int{1, 3} {
			got := run(workers, ramp)
			for _, ep := range Endpoints {
				a, b := ref.PerEndpoint[ep], got.PerEndpoint[ep]
				if (a == nil) != (b == nil) {
					t.Fatalf("workers=%d ramp=%d: endpoint %s presence differs", workers, ramp, ep)
				}
				if a == nil {
					continue
				}
				if a.Count != b.Count || a.Errors != b.Errors {
					t.Errorf("workers=%d ramp=%d %s: counts %d/%d vs %d/%d",
						workers, ramp, ep, a.Count, a.Errors, b.Count, b.Errors)
				}
				if !reflect.DeepEqual(a.Hist.Counts(), b.Hist.Counts()) {
					t.Errorf("workers=%d ramp=%d %s: histogram buckets diverge", workers, ramp, ep)
				}
				if a.Hist.Sum() != b.Hist.Sum() {
					t.Errorf("workers=%d ramp=%d %s: histogram sums diverge", workers, ramp, ep)
				}
			}
		}
	}
}

func TestErrorsCountedNotRecorded(t *testing.T) {
	cfg := testConfig()
	cfg.Warmup = 0
	rep, err := Run(context.Background(), cfg, fakeTarget{
		fail: func(op Op) bool { return op.Endpoint == EndpointRank },
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.PerEndpoint[EndpointRank]
	if st == nil || st.Errors != st.Count || st.Errors == 0 {
		t.Fatalf("rank errors not counted: %+v", st)
	}
	if st.Hist.Count() != 0 {
		t.Errorf("failed queries leaked %d samples into the histogram", st.Hist.Count())
	}
	if ok := rep.PerEndpoint[EndpointTopK]; ok == nil || ok.Errors != 0 || ok.Hist.Count() != uint64(ok.Count) {
		t.Errorf("topk stats wrong: %+v", ok)
	}
}

func TestRunOpenLoop(t *testing.T) {
	cfg := Config{
		Seed: 7, Queries: 200, Warmup: 20, Concurrency: 4,
		OpenLoop: true, Rate: 20000, Vertices: 1000,
	}
	rep, err := Run(context.Background(), cfg, fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Total()
	if total.Count != 200 {
		t.Fatalf("open loop measured %d queries, want 200", total.Count)
	}
	if total.Errors != 0 {
		t.Fatalf("open loop errors: %d", total.Errors)
	}
	if rep.QueriesPerSecond() <= 0 {
		t.Error("no throughput reported")
	}
	// The schedule spans ≈10ms at 20k/s; wall time must at least cover it.
	if rep.Wall <= 0 {
		t.Error("no wall time")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testConfig(), fakeTarget{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

// TestRunAgainstServeHandler drives a real serve.Server in-process on
// a small power-law graph: every query must succeed, which pins the
// op→URL rendering against the actual API (bad k or vertex ranges
// would surface as 4xx errors here).
func TestRunAgainstServeHandler(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(2000, 3))
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := serve.NewService(g, serve.ServiceConfig{
		Build: serve.BuildConfig{Engine: serve.EngineFrogWild, Machines: 4, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed: 11, Queries: 400, Warmup: 50, Concurrency: 4,
		Vertices: g.NumVertices(), MaxK: 50,
	}
	rep, err := Run(context.Background(), cfg, HandlerTarget{Handler: srv})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Total()
	if total.Count != 400 {
		t.Fatalf("measured %d queries, want 400", total.Count)
	}
	if total.Errors != 0 {
		t.Fatalf("%d queries failed against the live handler", total.Errors)
	}
	if total.Hist.Count() != 400 || total.Hist.Max() <= 0 {
		t.Fatalf("latency histogram empty: %s", total.Hist.String())
	}
	// The warmup must have primed the per-k cache; the server saw
	// warmup+measured queries in total.
	if srv.Queries() != 450 {
		t.Errorf("server counted %d queries, want 450", srv.Queries())
	}
	doc := rep.BenchDoc("prload", map[string]string{"target": "in-process"})
	if len(doc.Benchmarks) < 2 || doc.Benchmarks[0].Name != "prload/all" {
		t.Fatalf("bench doc shape wrong: %+v", doc.Benchmarks)
	}
	if doc.Benchmarks[0].Metrics["queries/s"] <= 0 {
		t.Error("bench doc missing throughput")
	}
	if doc.Env["target"] != "in-process" {
		t.Error("bench doc env not merged")
	}
}

// TestRunAgainstServeHandler404 pins the error-path accounting against
// the real handler: vertex ids outside the graph must come back as
// errors, not histogram samples.
func TestRunAgainstServeHandler404(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := serve.NewService(g, serve.ServiceConfig{
		Build: serve.BuildConfig{Engine: serve.EngineGLPR, Iterations: 2, Machines: 2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed: 5, Queries: 200, Concurrency: 2,
		Mix:      Mix{Rank: 1},
		Vertices: g.NumVertices() * 10, // most ids miss
	}
	rep, err := Run(context.Background(), cfg, HandlerTarget{Handler: srv})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.PerEndpoint[EndpointRank]
	if st == nil || st.Errors == 0 {
		t.Fatalf("out-of-range vertices produced no errors: %+v", st)
	}
	if st.Hist.Count() != uint64(st.Count-st.Errors) {
		t.Errorf("histogram count %d != successes %d", st.Hist.Count(), st.Count-st.Errors)
	}
}

func TestHTTPTargetBadURL(t *testing.T) {
	res := HTTPTarget{BaseURL: "http://127.0.0.1:0"}.Do(context.Background(), Op{Endpoint: EndpointStats})
	if res.Err == nil {
		t.Fatal("dial to port 0 succeeded?")
	}
}

// TestSchedulePPRMix checks the ppr endpoint weight: ppr ops are drawn
// at roughly the configured share with Zipf-skewed sources and bounded
// k, and — the compatibility pin — a mix with PPR = 0 reproduces the
// pre-ppr schedule bit-for-bit (the draw sits between rank and the
// stats default, so old baselines stay comparable).
func TestSchedulePPRMix(t *testing.T) {
	cfg := testConfig()
	cfg.Queries = 10000
	cfg.Warmup = 0
	cfg.Mix = Mix{TopK: 0.45, Rank: 0.25, PPR: 0.2, Stats: 0.1}
	ops, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pprs := 0
	sourceOnes := 0
	for _, op := range ops {
		if op.Endpoint != EndpointPPR {
			continue
		}
		pprs++
		if int(op.Vertex) >= cfg.Vertices {
			t.Fatalf("ppr source %d outside id space", op.Vertex)
		}
		if op.K < 1 || op.K > cfg.MaxK && cfg.MaxK > 0 {
			t.Fatalf("ppr k=%d out of range", op.K)
		}
		if op.Vertex == 0 {
			sourceOnes++
		}
		if want := fmt.Sprintf("/v1/ppr?source=%d&k=%d", op.Vertex, op.K); op.URL() != want {
			t.Fatalf("ppr URL %q, want %q", op.URL(), want)
		}
	}
	if pprs < 1500 || pprs > 2500 {
		t.Errorf("ppr count %d far from 2000", pprs)
	}
	// Zipf skew: the hottest source must dominate, far above uniform.
	if sourceOnes*20 < pprs {
		t.Errorf("source 0 drawn %d/%d times; Zipf skew missing", sourceOnes, pprs)
	}

	// Compatibility: explicit weights matching the default mix with
	// PPR = 0 produce the identical schedule.
	legacy := testConfig()
	legacy.Queries = 10000
	legacy.Warmup = 0
	a, err := Schedule(legacy)
	if err != nil {
		t.Fatal(err)
	}
	withZero := legacy
	withZero.Mix = Mix{TopK: 0.6, Rank: 0.3, PPR: 0, Stats: 0.1}
	b, err := Schedule(withZero)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PPR=0 mix perturbed the schedule; pre-ppr baselines broken")
	}
}
