package loadgen

import (
	"context"
	"io"
	"net/http"
	"strings"
	"time"
)

// HandlerTarget drives an http.Handler in-process (no sockets, no
// serialization over a wire): each op becomes a GET served directly by
// Handler.ServeHTTP into a discarding response sink. This measures the
// pure serving path — snapshot lookup, selection, JSON marshal —
// which is what the CI perf gate wants to regress-test, independent of
// the runner's loopback stack.
type HandlerTarget struct {
	Handler http.Handler
}

// Do implements Target.
func (t HandlerTarget) Do(ctx context.Context, op Op) Result {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, op.URL(), nil)
	if err != nil {
		return Result{Err: err}
	}
	sink := &responseSink{status: http.StatusOK}
	start := time.Now()
	t.Handler.ServeHTTP(sink, req)
	return Result{Latency: time.Since(start), Status: sink.status}
}

// responseSink is a minimal http.ResponseWriter that discards the body
// and remembers the status, so the handler's marshal work is fully
// exercised without buffering responses.
type responseSink struct {
	header http.Header
	status int
}

func (s *responseSink) Header() http.Header {
	if s.header == nil {
		s.header = make(http.Header)
	}
	return s.header
}

func (s *responseSink) Write(p []byte) (int, error) { return len(p), nil }

func (s *responseSink) WriteHeader(status int) { s.status = status }

// HTTPTarget drives a live server over real HTTP, measuring full
// round-trip latency including the network stack. Bodies are drained
// so keep-alive connections are reused.
type HTTPTarget struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Client defaults to a dedicated client with keep-alives.
	Client *http.Client
}

// Do implements Target.
func (t HTTPTarget) Do(ctx context.Context, op Op) Result {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimSuffix(t.BaseURL, "/") + op.URL()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Result{Err: err}
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return Result{Latency: time.Since(start), Err: err}
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return Result{Latency: time.Since(start), Status: resp.StatusCode, Err: err}
}
