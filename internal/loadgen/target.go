package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/serve/api"
)

// maxErrorBody bounds how much of a failed response is buffered for
// envelope decoding; success bodies are never buffered.
const maxErrorBody = 4 << 10

// decodeEnvelope turns a failed response body into a structured error:
// the server's shared JSON envelope when it parses (so reports carry
// the machine-readable code and epoch), a generic status error
// otherwise.
func decodeEnvelope(status int, body []byte) error {
	var env api.Error
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		return &env
	}
	return fmt.Errorf("status %d", status)
}

// HandlerTarget drives an http.Handler in-process (no sockets, no
// serialization over a wire): each op becomes a GET served directly by
// Handler.ServeHTTP into a discarding response sink. This measures the
// pure serving path — snapshot lookup, selection, JSON marshal —
// which is what the CI perf gate wants to regress-test, independent of
// the runner's loopback stack.
type HandlerTarget struct {
	Handler http.Handler
}

// Do implements Target.
func (t HandlerTarget) Do(ctx context.Context, op Op) Result {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, op.URL(), nil)
	if err != nil {
		return Result{Err: err}
	}
	sink := &responseSink{status: http.StatusOK}
	start := time.Now()
	t.Handler.ServeHTTP(sink, req)
	res := Result{Latency: time.Since(start), Status: sink.status}
	if sink.status >= 400 {
		res.Err = decodeEnvelope(sink.status, sink.errBody.Bytes())
	}
	return res
}

// responseSink is a minimal http.ResponseWriter that discards success
// bodies (so the handler's marshal work is fully exercised without
// buffering responses) but keeps the first bytes of failure bodies,
// so the shared error envelope can be surfaced.
type responseSink struct {
	header  http.Header
	status  int
	errBody bytes.Buffer
}

func (s *responseSink) Header() http.Header {
	if s.header == nil {
		s.header = make(http.Header)
	}
	return s.header
}

func (s *responseSink) Write(p []byte) (int, error) {
	if s.status >= 400 && s.errBody.Len() < maxErrorBody {
		keep := p
		if room := maxErrorBody - s.errBody.Len(); len(keep) > room {
			keep = keep[:room]
		}
		s.errBody.Write(keep)
	}
	return len(p), nil
}

func (s *responseSink) WriteHeader(status int) { s.status = status }

// HTTPTarget drives a live server over real HTTP, measuring full
// round-trip latency including the network stack. Bodies are drained
// so keep-alive connections are reused; failure bodies are decoded
// into the shared error envelope.
type HTTPTarget struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Client defaults to a dedicated client with keep-alives.
	Client *http.Client
}

// Do implements Target.
func (t HTTPTarget) Do(ctx context.Context, op Op) Result {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimSuffix(t.BaseURL, "/") + op.URL()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Result{Err: err}
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return Result{Latency: time.Since(start), Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return Result{Latency: time.Since(start), Status: resp.StatusCode,
			Err: decodeEnvelope(resp.StatusCode, body)}
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return Result{Latency: time.Since(start), Status: resp.StatusCode, Err: err}
}
