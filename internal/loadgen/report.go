package loadgen

import (
	"runtime"
	"time"

	"repro/internal/benchfmt"
)

// BenchEntry is one entry in the shared benchfmt schema, so prload
// reports drop straight into the BENCH_* artifact trajectory and
// `benchreport compare` can diff them against any baseline in that
// schema.
type BenchEntry = benchfmt.Benchmark

// BenchDoc is the shared benchfmt report document.
type BenchDoc = benchfmt.Report

// ms converts a nanosecond quantity to milliseconds for reporting.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// entry renders one endpoint's stats as a benchmark entry. Throughput
// uses the whole measured phase's wall time (endpoints run
// interleaved, not sequentially).
func (r *Report) entry(name string, st Stats) BenchEntry {
	m := map[string]float64{
		"queries/s": 0,
		"errors":    float64(st.Errors),
		"p50/ms":    ms(st.Hist.QuantileDuration(0.50)),
		"p90/ms":    ms(st.Hist.QuantileDuration(0.90)),
		"p95/ms":    ms(st.Hist.QuantileDuration(0.95)),
		"p99/ms":    ms(st.Hist.QuantileDuration(0.99)),
		"max/ms":    ms(time.Duration(st.Hist.Max())),
	}
	if r.Wall > 0 {
		m["queries/s"] = float64(st.Count) / r.Wall.Seconds()
	}
	return BenchEntry{Name: name, Iterations: int64(st.Count), Metrics: m}
}

// BenchDoc renders the report in the benchreport schema under the
// given name prefix: one aggregate entry "<prefix>/all" plus one per
// endpoint that saw traffic, with queries/s, latency percentiles in
// milliseconds and the error count as metrics. env entries are merged
// over the standard goos/goarch/cpu header.
func (r *Report) BenchDoc(prefix string, env map[string]string) *BenchDoc {
	doc := &BenchDoc{Env: map[string]string{
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"go":     runtime.Version(),
	}}
	for k, v := range env {
		doc.Env[k] = v
	}
	doc.Benchmarks = append(doc.Benchmarks, r.entry(prefix+"/all", r.Total()))
	for _, ep := range Endpoints {
		if st, ok := r.PerEndpoint[ep]; ok {
			doc.Benchmarks = append(doc.Benchmarks, r.entry(prefix+"/"+string(ep), *st))
		}
	}
	return doc
}
