package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Entry is one structured request-log line. Every field is optional;
// producers fill what their layer knows. The rid field is the thread
// that stitches one query's lines together across processes: the
// router's HTTP entry, each shard's RPC entry and the shard's own
// serving entries all carry the same rid.
type Entry struct {
	// Time is stamped by the Logger (RFC3339Nano, UTC) when empty.
	Time string `json:"ts,omitempty"`
	// Component names the emitting layer: "serve", "router", "shard".
	Component string `json:"component,omitempty"`
	// RID is the propagated request id.
	RID string `json:"rid,omitempty"`
	// Method/Path/Query describe an HTTP request (Query is the raw
	// query string, so k= and vertex= parameters are preserved).
	Method string `json:"method,omitempty"`
	Path   string `json:"path,omitempty"`
	Query  string `json:"query,omitempty"`
	// Op/K/Vertex describe a shard RPC request.
	Op     string `json:"op,omitempty"`
	K      int    `json:"k,omitempty"`
	Vertex string `json:"vertex,omitempty"`
	// Epoch is the snapshot epoch the answer came from (0 unknown).
	Epoch uint64 `json:"epoch,omitempty"`
	// Shards is the router's fan-out width.
	Shards int `json:"shards,omitempty"`
	// Status is the HTTP status; Code a shard-side api error code.
	Status int    `json:"status,omitempty"`
	Code   string `json:"code,omitempty"`
	// DurMS is the handling duration in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Err carries a failure detail.
	Err string `json:"err,omitempty"`
}

// Logger writes request Entries as JSON lines to one writer. A nil
// *Logger is valid and discards everything, so call sites need no
// enabled-checks around the cheap path — but building an Entry is not
// free, so hot paths should still guard with Enabled.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a logger writing JSON lines to w (nil w — or a nil
// *Logger — disables logging).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Enabled reports whether Log will write anything.
func (l *Logger) Enabled() bool { return l != nil }

// Log writes one entry as a JSON line, stamping Time if unset. Safe
// for concurrent use; a marshal or write failure is dropped (request
// logging must never fail a request).
func (l *Logger) Log(e Entry) {
	if l == nil {
		return
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}
