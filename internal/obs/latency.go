package obs

import (
	"sync"
	"time"

	"repro/internal/hist"
)

// Latency records duration samples into an internal/hist log-linear
// histogram behind a mutex. The lock is held only for the integer
// bucket increment, so the recorder stays cheap under concurrency;
// scrapers take a deep Snapshot and render off-lock.
type Latency struct {
	mu sync.Mutex
	h  hist.Histogram
}

// Observe records one duration sample.
func (l *Latency) Observe(d time.Duration) {
	l.mu.Lock()
	l.h.Record(d)
	l.mu.Unlock()
}

// Snapshot returns a consistent deep copy of the underlying histogram.
func (l *Latency) Snapshot() *hist.Histogram {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Snapshot()
}

// Count returns the number of recorded samples.
func (l *Latency) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Count()
}
