// Package obs is the serving stack's observability core: named
// counters, gauges and latency recorders collected in a Registry that
// renders the Prometheus text exposition format, plus structured
// JSON-lines request logging and request-id propagation helpers.
//
// Design constraints, in order:
//
//   - Dependency-free: instruments are thin wrappers over sync/atomic
//     and internal/hist, so every process in the stack (server, router,
//     shard worker, load generator) can afford to be instrumented.
//   - Hot-path cheap: recording into a Counter is one atomic add;
//     recording a latency is one short mutex hold over an integer-only
//     bucket increment. All rendering cost is paid at scrape time.
//   - One source of truth: instruments are free-standing values created
//     by their owners and *registered* into a Registry afterwards, so
//     JSON stats bodies and /metrics render the very same instrument —
//     the two surfaces cannot drift.
//
// Instruments are safe for concurrent use. A Registry is safe to
// register into and scrape concurrently.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches Prometheus label pairs to an instrument. Instruments
// with the same name and different labels form one metric family.
type Labels map[string]string

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates how a registered series renders.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	labels string // rendered `k="v",...` (no braces), sorted by key
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	latency *Latency
}

// Registry holds registered instruments and renders them as Prometheus
// text exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
	// helpByName pins one HELP/TYPE per family: a second registration
	// under the same name must agree on kind (help may differ; the
	// first registration's help wins at render time).
	kindByName map[string]metricKind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:      make(map[string]*series),
		kindByName: make(map[string]metricKind),
	}
}

// renderLabels serializes labels in sorted key order, Prometheus
// escaped, without surrounding braces ("" for no labels).
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition format's label value escapes.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp applies the exposition format's HELP text escapes.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// register adds s under its (name, labels) key. Registering the same
// series twice, or mixing kinds within one family, is a programming
// error and panics: silent merging would make two instruments look
// like one and defeat the no-drift guarantee.
func (r *Registry) register(s *series) {
	key := s.name + "{" + s.labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric series %s", key))
	}
	if kind, ok := r.kindByName[s.name]; ok && kind != s.kind {
		panic(fmt.Sprintf("obs: metric family %s registered as both %s and %s", s.name, kind, s.kind))
	}
	r.kindByName[s.name] = s.kind
	r.byKey[key] = s
	r.series = append(r.series, s)
}

// Counter creates a counter and registers it.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, labels, c)
	return c
}

// RegisterCounter registers an existing counter (created by the
// instrument's owner before a registry existed) and returns it.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) *Counter {
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge creates a gauge and registers it.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, labels, g)
	return g
}

// RegisterGauge registers an existing gauge and returns it.
func (r *Registry) RegisterGauge(name, help string, labels Labels, g *Gauge) *Gauge {
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge evaluated at scrape time — the right
// shape for values derived from live state (snapshot age, epoch)
// rather than accumulated events. fn must be safe for concurrent use
// and must not call back into the registry.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// Latency creates a latency recorder and registers it as a histogram
// family.
func (r *Registry) Latency(name, help string, labels Labels) *Latency {
	l := &Latency{}
	r.RegisterLatency(name, help, labels, l)
	return l
}

// RegisterLatency registers an existing latency recorder and returns
// it.
func (r *Registry) RegisterLatency(name, help string, labels Labels, l *Latency) *Latency {
	r.register(&series{name: name, labels: renderLabels(labels), help: help, kind: kindHistogram, latency: l})
	return l
}

// snapshotSeries returns a stable-ordered copy of the registered
// series: families sorted by name, series within a family by label
// string. Scrapes render from this copy so registration during a
// scrape cannot corrupt iteration.
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	out := append([]*series(nil), r.series...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
