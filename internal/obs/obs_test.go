package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files from current output")

// goldenRegistry builds a registry with one of everything, using fixed
// values, so the rendered exposition is fully deterministic.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("serve_requests_total", "Total queries across the /v1 endpoints.", nil)
	c.Add(42)
	reg.Counter("serve_topk_cache_hits_total", "Top-k queries answered from the per-k body cache.", nil).Add(7)
	g := reg.Gauge("snapshot_epoch", "Epoch of the published snapshot.", nil)
	g.Set(3)
	reg.GaugeFunc("snapshot_age_seconds", "Seconds since the snapshot was built.", nil, func() float64 { return 1.5 })
	// Labeled family with escaping hazards in a value.
	reg.Counter("shard_ops_total", "RPC ops handled, by op.", Labels{"shard": "0", "op": "topk"}).Add(5)
	reg.Counter("shard_ops_total", "RPC ops handled, by op.", Labels{"shard": "0", "op": `we"ird\nl`}).Inc()
	lat := reg.Latency("serve_request_seconds", "Request handling latency.", Labels{"endpoint": "topk"})
	for _, d := range []time.Duration{
		30 * time.Microsecond, 30 * time.Microsecond, 800 * time.Microsecond,
		3 * time.Millisecond, 40 * time.Millisecond, 2 * time.Second, 30 * time.Second,
	} {
		lat.Observe(d)
	}
	// An empty latency family renders all-zero buckets, not garbage.
	reg.Latency("serve_request_seconds", "Request handling latency.", Labels{"endpoint": "rank"})
	return reg
}

// TestPrometheusGolden pins the full exposition byte-for-byte: stable
// family and series ordering, HELP/TYPE lines, label escaping, and
// histogram bucket/sum/count rendering.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to generate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden; rerun with -update-golden if intended\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestExpositionWellFormed checks structural invariants the golden
// file cannot express: every sample line parses, every family has
// exactly one HELP and one TYPE line, immediately adjacent.
func TestExpositionWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no samples parsed")
	}
	helps := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 3 && fields[0] == "# HELP" {
			helps[fields[2]]++
		}
		if len(fields) >= 3 && fields[1] == "HELP" {
			helps[fields[2]]++
		}
	}
	for name, n := range helps {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines", name, n)
		}
	}
	// Histogram accounting: +Inf bucket == _count, buckets cumulative.
	if series[`serve_request_seconds_bucket{endpoint="topk",le="+Inf"}`] != series[`serve_request_seconds_count{endpoint="topk"}`] {
		t.Error("+Inf bucket disagrees with _count")
	}
	if got := series[`serve_request_seconds_count{endpoint="topk"}`]; got != 7 {
		t.Errorf("histogram count = %v, want 7", got)
	}
	// 30s sample lies above the last bound: cumulative at le=10 is 6.
	if got := series[`serve_request_seconds_bucket{endpoint="topk",le="10"}`]; got != 6 {
		t.Errorf("le=10 cumulative = %v, want 6", got)
	}
	if got := series[`serve_request_seconds_bucket{endpoint="topk",le="0.0001"}`]; got != 2 {
		t.Errorf("le=0.0001 cumulative = %v, want 2 (two 30µs samples)", got)
	}
	if got := FamilySum(series, "shard_ops_total"); got != 6 {
		t.Errorf("FamilySum(shard_ops_total) = %v, want 6", got)
	}
	// FamilySum must not fold histogram suffix series into the base name.
	if got := FamilySum(series, "serve_request_seconds"); got != 0 {
		t.Errorf("FamilySum(serve_request_seconds) = %v, want 0 (suffixes are separate families)", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x", Labels{"a": "1"})
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate series", func() { reg.Counter("x_total", "x", Labels{"a": "1"}) })
	mustPanic("kind mismatch within family", func() { reg.Gauge("x_total", "x", Labels{"a": "2"}) })
	// Distinct labels under the same name are fine.
	reg.Counter("x_total", "x", Labels{"a": "2"})
}

// TestConcurrentScrape hammers instruments from many goroutines while
// scraping continuously; run under -race this pins the registry's
// concurrency contract.
func TestConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c", nil)
	g := reg.Gauge("g", "g", nil)
	l := reg.Latency("l_seconds", "l", nil)
	reg.GaugeFunc("f", "f", nil, func() float64 { return float64(c.Value()) })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Set(float64(i))
				l.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if _, err := ParseText(rec.Body.Bytes()); err != nil {
				t.Error(err)
				return
			}
			// Registration during scrape must also be safe.
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			reg.Counter("late_total", "registered mid-scrape", Labels{"i": time.Duration(i).String()})
		}
	}()
	// Wait for the workers (first 4) and the late registrar; then stop
	// the scraper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if l.Count() != 8000 {
		t.Fatalf("latency count = %d, want 8000", l.Count())
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Fatalf("ids not unique: %q %q", a, b)
	}
	if CleanRequestID(a) != a {
		t.Fatalf("generated id %q does not survive sanitizing", a)
	}
	for in, want := range map[string]string{
		"abc-123":                "abc-123",
		"has space":              "hasspace",
		"quo\"te\\back":          "quoteback",
		"ctrl\n\tchars":          "ctrlchars",
		strings.Repeat("x", 200): strings.Repeat("x", 64),
	} {
		if got := CleanRequestID(in); got != want {
			t.Errorf("CleanRequestID(%q) = %q, want %q", in, got, want)
		}
	}
	// EnsureRequestID: keeps a usable client id, generates otherwise,
	// and always echoes on the response.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "client-id-7")
	if got := EnsureRequestID(rec, req); got != "client-id-7" {
		t.Fatalf("EnsureRequestID kept %q, want client-id-7", got)
	}
	if rec.Header().Get(RequestIDHeader) != "client-id-7" {
		t.Fatal("response header not stamped")
	}
	rec = httptest.NewRecorder()
	if got := EnsureRequestID(rec, httptest.NewRequest("GET", "/", nil)); got == "" || rec.Header().Get(RequestIDHeader) != got {
		t.Fatalf("generated id %q not echoed", got)
	}
}

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	if !l.Enabled() {
		t.Fatal("logger with writer not enabled")
	}
	l.Log(Entry{Component: "serve", RID: "r-1", Method: "GET", Path: "/v1/topk", Query: "k=20", Status: 200, Epoch: 3, DurMS: 1.25})
	l.Log(Entry{Component: "shard", RID: "r-1", Op: "topk", K: 20, Code: "no_snapshot", DurMS: 0.1})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q not valid JSON: %v", line, err)
		}
		if e.RID != "r-1" || e.Time == "" {
			t.Fatalf("line %q missing rid or timestamp", line)
		}
	}
	// Nil logger: no-ops, never panics.
	var nilLogger *Logger
	if nilLogger.Enabled() {
		t.Fatal("nil logger claims enabled")
	}
	nilLogger.Log(Entry{Component: "x"})
	if NewLogger(nil).Enabled() {
		t.Fatal("NewLogger(nil) claims enabled")
	}
}
