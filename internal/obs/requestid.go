package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header a request id travels in. The
// router generates one when the client did not send it, echoes it on
// the response, and forwards it inside shard RPC frames, so one slow
// query is traceable across processes by grepping all logs for the id.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds accepted client-supplied ids so a hostile
// header cannot bloat logs or RPC frames.
const maxRequestIDLen = 64

var (
	ridOnce    sync.Once
	ridPrefix  string
	ridCounter atomic.Uint64
)

// NewRequestID returns a process-unique request id: an 8-byte random
// process prefix (drawn once) plus a counter, e.g. "f3a2b1c4d5e6a7b8-2a".
// One cheap atomic add per id — no per-request entropy draw on the hot
// path.
func NewRequestID() string {
	ridOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			// No entropy: fall back to the address of the once guard,
			// still distinct across processes in practice.
			ridPrefix = fmt.Sprintf("%x", &ridOnce)
			return
		}
		ridPrefix = hex.EncodeToString(b[:])
	})
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
}

// CleanRequestID sanitizes a client-supplied id: control characters
// and quotes are dropped (they would corrupt JSON-line logs and
// headers) and the result is clamped to a bounded length. Returns ""
// when nothing usable remains.
func CleanRequestID(s string) string {
	if len(s) > maxRequestIDLen {
		s = s[:maxRequestIDLen]
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '\\' || c >= 0x7f {
			continue
		}
		out = append(out, c)
	}
	return string(out)
}

// EnsureRequestID returns the request's sanitized id, generating one
// when the header is absent or unusable, and stamps it onto the
// response so the client can correlate.
func EnsureRequestID(w http.ResponseWriter, r *http.Request) string {
	rid := CleanRequestID(r.Header.Get(RequestIDHeader))
	if rid == "" {
		rid = NewRequestID()
	}
	w.Header().Set(RequestIDHeader, rid)
	return rid
}
