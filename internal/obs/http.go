package obs

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// StatusWriter wraps an http.ResponseWriter to capture the status code
// for metrics and request logs. Status reports 200 when the handler
// never called WriteHeader explicitly (net/http's implicit default).
type StatusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the first explicit status and forwards it.
func (w *StatusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Status returns the response status (200 if never set explicitly).
func (w *StatusWriter) Status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// ListenAndServe serves h on addr until ctx is cancelled, then shuts
// down gracefully (in-flight requests get up to 5 seconds). It powers
// the side listeners — prshard's -metrics-addr and both CLIs'
// -pprof-addr — where a full server lifecycle would be overkill.
func ListenAndServe(ctx context.Context, addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, ln, h)
}

// ServeListener is ListenAndServe over an already-bound listener, for
// callers that need the bound address (e.g. ":0" side listeners).
func ServeListener(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
