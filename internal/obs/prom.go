package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hist"
)

// LatencyBuckets are the upper bounds, in seconds, of the cumulative
// buckets every Latency renders on /metrics. They span 25µs to 10s —
// the whole range from a cached in-process top-k hit to a degraded
// cross-shard worst case. The underlying hist buckets are far finer
// (<1.6% relative error); rendering coarsens onto these bounds, and a
// sample whose hist bucket straddles a bound is counted under the next
// bound (the hist bucket's upper edge decides), so cumulative counts
// are conservative within the hist quantization.
var LatencyBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered instrument in the text
// exposition format: families sorted by name (HELP/TYPE once per
// family, the first-registered help wins), series within a family
// sorted by label string. The ordering is deterministic for a fixed
// registration set, so output is golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, s := range r.snapshotSeries() {
		if s.name != lastFamily {
			fmt.Fprintf(bw, "# HELP %s %s\n", s.name, escapeHelp(s.help))
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind)
			lastFamily = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", seriesRef(s.name, s.labels), s.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", seriesRef(s.name, s.labels), formatFloat(s.gauge.Value()))
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", seriesRef(s.name, s.labels), formatFloat(s.gaugeFn()))
		case kindHistogram:
			writeHistogram(bw, s.name, s.labels, s.latency.Snapshot())
		}
	}
	return bw.Flush()
}

// seriesRef renders `name` or `name{labels}`.
func seriesRef(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withLabel splices one more label pair onto a rendered label string.
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabelValue(v) + `"`
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogram renders one latency series as a Prometheus histogram:
// cumulative buckets over LatencyBuckets (in seconds), an +Inf bucket,
// and the exact _sum/_count.
func writeHistogram(w io.Writer, name, labels string, h *hist.Histogram) {
	counts := make([]uint64, len(LatencyBuckets))
	h.Buckets(func(upper int64, count uint64) {
		// First rendered bound that contains the hist bucket entirely.
		i := sort.Search(len(LatencyBuckets), func(i int) bool {
			return float64(upper) <= LatencyBuckets[i]*1e9
		})
		if i < len(counts) {
			counts[i] += count
		}
	})
	var cum uint64
	for i, c := range counts {
		cum += c
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, withLabel(labels, "le", formatFloat(LatencyBuckets[i])), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, withLabel(labels, "le", "+Inf"), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(float64(h.Sum())/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.Count())
}

// braced keeps the _sum/_count lines label-consistent with the bucket
// lines (no braces when the series has no labels).
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Handler returns an http.Handler serving the registry's exposition —
// the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// A write error here means the scraper went away mid-scrape;
		// there is nobody left to report it to.
		_ = r.WritePrometheus(w)
	})
}

// ParseText parses a text exposition body into a map from rendered
// series reference (name plus label set, exactly as written) to value.
// It is the consumer half of WritePrometheus — prload's scrape
// embedding and the stats-agreement tests are built on it. Comment and
// blank lines are skipped; a malformed sample line is an error.
func ParseText(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the field after the last space; labels may
		// contain spaces inside quoted values, so split from the right.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("obs: malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in %q: %v", line, err)
		}
		out[strings.TrimSpace(line[:cut])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FamilySum sums every parsed series belonging to the named family
// (exact-name match before the label braces). Histogram families sum
// their _bucket/_sum/_count series only under those suffixed names,
// never under the base name.
func FamilySum(series map[string]float64, name string) float64 {
	var sum float64
	for ref, v := range series {
		base := ref
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base == name {
			sum += v
		}
	}
	return sum
}
