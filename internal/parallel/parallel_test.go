package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	for req, want := range map[int]int{1: 1, 3: 3, -2: 1, 16: 16} {
		if got := Workers(req); got != want {
			t.Errorf("Workers(%d) = %d, want %d", req, got, want)
		}
	}
}

func TestChunksCoverDisjointly(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 50000, 1 << 20} {
		chunks := Chunks(n)
		if len(chunks) != NumChunks(n) {
			t.Fatalf("n=%d: %d chunks, NumChunks says %d", n, len(chunks), NumChunks(n))
		}
		pos := 0
		for c, r := range chunks {
			if r.Lo != pos {
				t.Fatalf("n=%d chunk %d: Lo=%d, want %d (gap or overlap)", n, c, r.Lo, pos)
			}
			if r.Hi < r.Lo {
				t.Fatalf("n=%d chunk %d: inverted range %+v", n, c, r)
			}
			pos = r.Hi
		}
		if pos != n {
			t.Fatalf("n=%d: chunks end at %d", n, pos)
		}
	}
}

func TestChunksIndependentOfWorkerCount(t *testing.T) {
	// The boundary policy must not consult any concurrency knob; calling
	// it twice (or on machines with different core counts) must agree.
	// Chunks takes only n, so it suffices to check it is a pure function.
	a, b := Chunks(12345), Chunks(12345)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs between calls: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPoolRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]atomic.Int32
		p.Run(n, func(task, worker int) {
			if worker < 0 || worker >= p.NumWorkers() {
				t.Errorf("worker id %d out of [0,%d)", worker, p.NumWorkers())
			}
			hits[task].Add(1)
		})
		for task := range hits {
			if got := hits[task].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, task, got)
			}
		}
		p.Close()
	}
}

func TestPoolReusableAcrossRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.Run(37, func(task, worker int) { total.Add(1) })
	}
	if got := total.Load(); got != 50*37 {
		t.Fatalf("total tasks = %d, want %d", got, 50*37)
	}
}

func TestPoolZeroAndOneTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.Run(0, func(task, worker int) { t.Error("fn called for n=0") })
	ran := false
	p.Run(1, func(task, worker int) {
		if worker != 0 {
			t.Errorf("single task ran on worker %d, want inline worker 0", worker)
		}
		ran = true
	})
	if !ran {
		t.Error("single task did not run")
	}
}

func TestPoolTaskSum(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	p.Run(100, func(task, worker int) { total.Add(int64(task)) })
	if got := total.Load(); got != 99*100/2 {
		t.Fatalf("sum of tasks = %d, want %d", got, 99*100/2)
	}
}
