// Package parallel provides the shared-memory multicore execution
// layer used by the exact and serial reproduction paths: a reusable
// worker pool plus a deterministic chunking policy.
//
// Determinism is the design constraint. Every consumer of this package
// promises bit-identical results for any worker count, which forces
// two rules:
//
//   - Chunk boundaries are a function of the problem size only, never
//     of the worker count (Chunks). A per-chunk computation — a
//     partial floating-point sum, or a walk sequence driven by a
//     per-chunk rng.Stream — is therefore the same no matter how many
//     workers execute the chunks or in what order.
//   - Cross-chunk reduction happens after the pool drains, in chunk
//     index order, on the caller's goroutine. Floating-point partial
//     sums are combined in a fixed order; integer tallies may be
//     merged in any order because integer addition is associative.
//
// Under these rules Workers is purely a throughput knob: 1 reproduces
// single-threaded execution exactly, and N ≥ 2 reproduces the same
// bits faster.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Workers configuration knob to an actual worker
// count: 0 selects runtime.GOMAXPROCS(0) (use every core), and values
// below 1 are clamped to 1 (fully serial).
func Workers(requested int) int {
	if requested == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return max(requested, 1)
}

// Range is a half-open interval [Lo, Hi) of task or vertex indices.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

const (
	// minChunkSize is the smallest unit of work worth scheduling (and,
	// for the random-walk paths, worth deriving an rng.Stream for).
	minChunkSize = 64
	// maxChunkCount bounds scheduling overhead and the size of
	// per-chunk partial-result arrays while still giving dynamic
	// load balancing plenty of slack over any realistic core count.
	maxChunkCount = 256
)

// NumChunks returns how many chunks Chunks splits n items into. The
// count depends only on n — never on the worker count — which is what
// keeps chunked computation bit-identical for any Workers setting.
func NumChunks(n int) int {
	if n <= minChunkSize {
		return 1
	}
	return min((n+minChunkSize-1)/minChunkSize, maxChunkCount)
}

// Chunks splits [0, n) into NumChunks(n) contiguous near-equal ranges.
// Boundaries are a pure function of n, so chunk c always covers the
// same indices regardless of how many workers process the chunks.
func Chunks(n int) []Range {
	k := NumChunks(n)
	out := make([]Range, k)
	for c := 0; c < k; c++ {
		out[c] = Range{Lo: c * n / k, Hi: (c + 1) * n / k}
	}
	return out
}

// job is one Run call: tasks [0, n) claimed via an atomic counter.
type job struct {
	next atomic.Int64
	n    int
	fn   func(task, worker int)
	wg   sync.WaitGroup
}

// Pool is a reusable fixed-size worker pool. Construct one with
// NewPool, issue any number of Run calls, then Close it. A Pool with
// one worker never spawns a goroutine: Run executes inline, which is
// exactly the pre-parallel serial behaviour.
//
// A Pool is intended for repeated fan-out from a single coordinating
// goroutine (e.g. one Run per power-iteration phase); Run must not be
// called concurrently with itself or with Close.
type Pool struct {
	workers int
	jobs    chan *job
}

// NewPool returns a pool with Workers(requested) workers. Workers
// beyond the first are persistent goroutines that live until Close;
// the goroutine calling Run always participates as worker 0.
func NewPool(requested int) *Pool {
	w := Workers(requested)
	p := &Pool{workers: w}
	if w > 1 {
		p.jobs = make(chan *job, w-1)
		for id := 1; id < w; id++ {
			go p.work(id)
		}
	}
	return p
}

// NumWorkers returns the resolved worker count. Callers allocating
// per-worker scratch (tally arrays, partial sums) size it with this.
func (p *Pool) NumWorkers() int { return p.workers }

// Run executes fn(task, worker) for every task in [0, n), distributing
// tasks across the pool dynamically, and returns once all n calls have
// completed. worker identifies which of the NumWorkers() workers ran
// the task, for indexing per-worker scratch; task-to-worker assignment
// is NOT deterministic, so anything order- or assignment-sensitive
// must be keyed by task (chunk), not by worker.
func (p *Pool) Run(n int, fn func(task, worker int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for t := 0; t < n; t++ {
			fn(t, 0)
		}
		return
	}
	j := &job{n: n, fn: fn}
	j.wg.Add(p.workers - 1)
	for id := 1; id < p.workers; id++ {
		p.jobs <- j
	}
	p.drain(j, 0)
	j.wg.Wait()
}

// Close shuts down the pool's worker goroutines. The pool must not be
// used afterwards, and Close must be called at most once. Close on a
// single-worker pool is a no-op.
func (p *Pool) Close() {
	if p.jobs != nil {
		close(p.jobs)
	}
}

func (p *Pool) work(id int) {
	for j := range p.jobs {
		p.drain(j, id)
		j.wg.Done()
	}
}

func (p *Pool) drain(j *job, worker int) {
	for {
		t := int(j.next.Add(1)) - 1
		if t >= j.n {
			return
		}
		j.fn(t, worker)
	}
}
