package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestNewDifferentSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, 1, 2, 3)
	b := Derive(7, 1, 2, 4)
	c := Derive(7, 1, 2, 3)
	if a.Uint64() != c.Uint64() {
		t.Fatal("Derive with identical labels not deterministic")
	}
	matches := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("derived streams with different labels matched %d/100", matches)
	}
}

func TestDeriveLabelOrderMatters(t *testing.T) {
	a := Derive(7, 1, 2)
	b := Derive(7, 2, 1)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("label order should produce different streams")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(9)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(123)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(77)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) mean = %v", p, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	const trials = 200000
	for _, p := range []float64{0.15, 0.5, 0.9} {
		sum := 0
		for i := 0; i < trials; i++ {
			sum += r.Geometric(p)
		}
		got := float64(sum) / trials
		want := (1 - p) / p
		if math.Abs(got-want) > 0.05*want+0.01 {
			t.Errorf("Geometric(%v) mean = %v, want %v", p, got, want)
		}
	}
}

func TestGeometricP1(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) should panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(8)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(21)
	const trials = 60000
	cases := []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.05}, {1000, 0.7}, {5, 0.9}, {1, 0.5}}
	for _, c := range cases {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			x := float64(r.Binomial(c.n, c.p))
			if x < 0 || x > float64(c.n) {
				t.Fatalf("Binomial(%d,%v) out of range: %v", c.n, c.p, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		variance := sumSq/trials - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.05 {
			t.Errorf("Binomial(%d,%v) mean = %v want %v", c.n, c.p, mean, wantMean)
		}
		if wantVar > 0 && math.Abs(variance-wantVar) > 0.1*wantVar+0.1 {
			t.Errorf("Binomial(%d,%v) var = %v want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialRangeProperty(t *testing.T) {
	r := New(99)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 2000)
		p := float64(pRaw) / 65535
		x := r.Binomial(n, p)
		return x >= 0 && x <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultinomialSplitConserves(t *testing.T) {
	r := New(31)
	f := func(totalRaw uint16, kRaw uint8) bool {
		total := int(totalRaw % 5000)
		k := int(kRaw%20) + 1
		out := make([]int, k)
		r.MultinomialSplit(total, out)
		sum := 0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultinomialSplitUniform(t *testing.T) {
	r := New(55)
	const k, total, trials = 4, 100, 20000
	sums := make([]float64, k)
	out := make([]int, k)
	for i := 0; i < trials; i++ {
		r.MultinomialSplit(total, out)
		for j, v := range out {
			sums[j] += float64(v)
		}
	}
	want := float64(total) / k
	for j, s := range sums {
		got := s / trials
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("bucket %d mean = %v want %v", j, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(2)
	for _, n := range []int{0, 1, 2, 10, 100} {
		dst := make([]int, n)
		r.Perm(dst)
		seen := make(map[int]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, dst)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUint32Preserves(t *testing.T) {
	r := New(4)
	xs := []uint32{1, 2, 3, 4, 5, 6, 7}
	ShuffleUint32(r, xs)
	sum := uint32(0)
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestZipfRange(t *testing.T) {
	r := New(66)
	z := NewZipf(2.0, 1, 1000)
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v < 1 || v > 1000 {
			t.Fatalf("Zipf sample %d out of [1,1000]", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With exponent 2, P(1) ≈ 0.6 of the bounded mass; check 1 is by far
	// the most frequent value.
	r := New(14)
	z := NewZipf(2.0, 1, 10000)
	const trials = 50000
	ones := 0
	for i := 0; i < trials; i++ {
		if z.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / trials
	if frac < 0.5 || frac > 0.72 {
		t.Fatalf("Zipf(2) P(1) = %v, want ≈ 0.61", frac)
	}
}

func TestZipfExponentNearOne(t *testing.T) {
	r := New(15)
	z := NewZipf(1.0, 1, 100)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		counts[z.Sample(r)]++
	}
	// For s=1 over [1,100], P(1)/P(10) should be ≈ 10.
	ratio := float64(counts[1]) / float64(counts[10]+1)
	if ratio < 6 || ratio > 16 {
		t.Fatalf("Zipf(1) P(1)/P(10) = %v, want ≈ 10", ratio)
	}
}

func TestAliasTableDistribution(t *testing.T) {
	r := New(71)
	weights := []float64{1, 2, 3, 4}
	tab := NewAliasTable(weights)
	const trials = 100000
	counts := make([]float64, len(weights))
	for i := 0; i < trials; i++ {
		counts[tab.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10 * trials
		if math.Abs(counts[i]-want) > 6*math.Sqrt(want) {
			t.Errorf("alias bucket %d: got %v want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasTableSingle(t *testing.T) {
	r := New(72)
	tab := NewAliasTable([]float64{3.5})
	for i := 0; i < 10; i++ {
		if tab.Sample(r) != 0 {
			t.Fatal("single-outcome table must return 0")
		}
	}
}

func TestAliasTableZeroWeightNeverSampled(t *testing.T) {
	r := New(73)
	tab := NewAliasTable([]float64{0, 1, 0, 2})
	for i := 0; i < 10000; i++ {
		s := tab.Sample(r)
		if s == 0 || s == 2 {
			t.Fatalf("sampled zero-weight outcome %d", s)
		}
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(5, 2)
	if w[0] != 1 {
		t.Errorf("w[0] = %v", w[0])
	}
	if math.Abs(w[1]-0.25) > 1e-12 {
		t.Errorf("w[1] = %v want 0.25", w[1])
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not decreasing at %d", i)
		}
	}
}

func TestShardsIndependentAndDeterministic(t *testing.T) {
	a := Shards(42, 0x3C4, 8)
	b := Shards(42, 0x3C4, 8)
	if len(a) != 8 {
		t.Fatalf("got %d shards", len(a))
	}
	for i := range a {
		// Same (seed, purpose, shard) → identical sequence.
		for j := 0; j < 16; j++ {
			if x, y := a[i].Uint64(), b[i].Uint64(); x != y {
				t.Fatalf("shard %d draw %d: %x vs %x", i, j, x, y)
			}
		}
	}
	// Distinct shards (and a distinct purpose) must not produce the
	// same first draw — a cheap non-correlation sanity check.
	seen := map[uint64]int{}
	for i, s := range Shards(42, 0x3C4, 64) {
		x := s.Uint64()
		if prev, dup := seen[x]; dup {
			t.Fatalf("shards %d and %d share first draw %x", prev, i, x)
		}
		seen[x] = i
	}
	if Shards(42, 0x3C4, 1)[0].Uint64() == Shards(42, 0x5E4, 1)[0].Uint64() {
		t.Error("different purposes produced identical first draw")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialLargeN(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(100000, 0.001)
	}
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(2.0, 1, 1<<20)
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}
