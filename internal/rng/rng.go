// Package rng provides deterministic pseudo-random number generation and
// the discrete samplers used throughout the FrogWild reproduction:
// uniform, geometric, binomial, Zipf and multinomial splitting.
//
// Determinism is a first-class requirement: the distributed engine must
// produce bit-identical results for a given seed regardless of goroutine
// scheduling. Every consumer therefore derives an independent Stream from
// (seed, machine, superstep, purpose) rather than sharing a generator.
//
// The generator is xoshiro256** seeded through splitmix64, the standard
// construction recommended by the xoshiro authors. It is not safe for
// concurrent use; derive one Stream per goroutine instead.
package rng

import "math"

// Stream is a deterministic pseudo-random number generator
// (xoshiro256**). The zero value is not usable; construct streams with
// New or Derive.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used to expand seeds into full generator states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	st.s0 = splitmix64(&sm)
	st.s1 = splitmix64(&sm)
	st.s2 = splitmix64(&sm)
	st.s3 = splitmix64(&sm)
	return &st
}

// Derive returns an independent Stream keyed by the given labels. It is
// the canonical way to obtain a per-(machine, superstep, purpose) stream
// that does not correlate with any other stream derived from the same
// seed with different labels.
func Derive(seed uint64, labels ...uint64) *Stream {
	// Mix each label through splitmix64 so that adjacent label values
	// yield uncorrelated states.
	sm := seed ^ 0x6a09e667f3bcc909
	acc := splitmix64(&sm)
	for _, l := range labels {
		sm ^= l * 0x9e3779b97f4a7c15
		acc ^= splitmix64(&sm)
	}
	return New(acc)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics
// if n == 0. Uses Lemire's nearly-divisionless bounded method.
func (r *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's method: multiply-shift with rejection of the biased zone.
	x := r.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with
// success probability p, counted as the number of failures before the
// first success (support {0, 1, 2, ...}). This is the distribution of
// the number of random-walk steps a frog performs before teleporting,
// with p = pT. It panics if p <= 0 or p > 1.
func (r *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U) / log(1-p)) with U in (0,1].
	u := 1 - r.Float64() // in (0, 1]
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Binomial returns a sample from Binomial(n, p). For small n·p it uses
// exact inversion by sequential search; for large n it uses per-trial
// simulation split via the first-success geometric trick, keeping the
// sampler exact (no normal approximation) while staying O(n·p) expected
// time.
func (r *Stream) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with n < 0")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit symmetry to keep p <= 1/2, which bounds the expected
	// number of geometric skips below n/2 + 1.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Count successes by jumping between them with geometric gaps:
	// the index of the next success after position i is
	// i + 1 + Geometric(p). Expected work is O(n·p + 1).
	count := 0
	i := -1
	for {
		gap := r.Geometric(p)
		// Guard against overflow of i + 1 + gap.
		if gap >= n-i {
			break
		}
		i += 1 + gap
		if i >= n {
			break
		}
		count++
	}
	return count
}

// Perm fills dst with a uniformly random permutation of [0, len(dst)).
func (r *Stream) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Shuffle randomly permutes the first n integers of xs in place using
// Fisher–Yates.
func ShuffleUint32(r *Stream, xs []uint32) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// MultinomialSplit distributes total items across len(out) buckets
// uniformly at random (each item independently picks a bucket), writing
// the per-bucket counts into out. It conserves the total exactly. The
// expected cost is O(len(out)) via sequential conditional binomials
// rather than O(total).
func (r *Stream) MultinomialSplit(total int, out []int) {
	k := len(out)
	if k == 0 {
		if total != 0 {
			panic("rng: MultinomialSplit with no buckets")
		}
		return
	}
	remaining := total
	for i := 0; i < k-1; i++ {
		if remaining == 0 {
			out[i] = 0
			continue
		}
		// Conditional distribution of bucket i given the remainder is
		// Binomial(remaining, 1/(k-i)).
		x := r.Binomial(remaining, 1/float64(k-i))
		out[i] = x
		remaining -= x
	}
	out[k-1] = remaining
}

// Shards returns k independent Streams, one per work shard, derived
// from (seed, purpose, shard index). This is the canonical construction
// for the shared-memory parallel paths: shard boundaries are fixed by
// the problem size (see package parallel), each shard consumes only its
// own stream, and therefore the combined result is bit-identical no
// matter how many workers execute the shards or in what order.
func Shards(seed, purpose uint64, k int) []*Stream {
	streams := make([]*Stream, k)
	for i := range streams {
		streams[i] = Derive(seed, purpose, uint64(i))
	}
	return streams
}
