package rng

import "math"

// Zipf samples from a bounded Zipf (power-law) distribution over
// {min, ..., max} with P(X = x) ∝ x^(-s). It uses rejection-inversion
// (Hörmann & Derflinger), which is O(1) per sample for s > 1 and
// degrades gracefully for s in (0, 1].
//
// It is used by the graph generators to draw out-degrees with the heavy
// tail that real web/social graphs exhibit; the paper's Proposition 7
// assumes the PageRank values follow a power law with θ ≈ 2.2, which
// such degree distributions induce.
type Zipf struct {
	s        float64
	min, max float64
	// precomputed constants for rejection-inversion
	hx0, hxm, oneMinusS float64
}

// NewZipf returns a Zipf sampler over {min..max} with exponent s > 0.
// It panics on invalid arguments.
func NewZipf(s float64, min, max int) *Zipf {
	if s <= 0 || min < 1 || max < min {
		panic("rng: NewZipf requires s > 0 and 1 <= min <= max")
	}
	z := &Zipf{s: s, min: float64(min), max: float64(max), oneMinusS: 1 - s}
	z.hx0 = z.h(z.min-0.5) - math.Exp(-s*math.Log(z.min))
	z.hxm = z.h(z.max + 0.5)
	return z
}

// h is the antiderivative used by rejection-inversion:
// h(x) = x^(1-s)/(1-s) for s != 1, log(x) for s == 1.
func (z *Zipf) h(x float64) float64 {
	if z.oneMinusS == 0 {
		return math.Log(x)
	}
	return math.Exp(z.oneMinusS*math.Log(x)) / z.oneMinusS
}

// hInv inverts h.
func (z *Zipf) hInv(x float64) float64 {
	if z.oneMinusS == 0 {
		return math.Exp(x)
	}
	return math.Exp(math.Log(z.oneMinusS*x) / z.oneMinusS)
}

// Sample draws one value from the distribution.
func (z *Zipf) Sample(r *Stream) int {
	for {
		u := z.hx0 + r.Float64()*(z.hxm-z.hx0)
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < z.min {
			k = z.min
		}
		if k > z.max {
			k = z.max
		}
		if u >= z.h(k+0.5)-math.Exp(-z.s*math.Log(k)) {
			return int(k)
		}
	}
}

// PowerLawWeights returns unnormalized Zipf weights w[i] = (i+1)^(-s)
// for i in [0, n). Useful for constructing skewed preference vectors.
func PowerLawWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Exp(-s * math.Log(float64(i+1)))
	}
	return w
}

// AliasTable supports O(1) sampling from an arbitrary discrete
// distribution via the Walker alias method. The graph generators use it
// to pick edge destinations proportionally to popularity weights.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds an alias table from the given non-negative
// weights. It panics if weights is empty or sums to zero.
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAliasTable with empty weights")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewAliasTable with negative or NaN weight")
		}
		sum += w
	}
	if sum == 0 {
		panic("rng: NewAliasTable with zero total weight")
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1 // numerical leftovers
	}
	return t
}

// Sample draws one index from the table's distribution.
func (t *AliasTable) Sample(r *Stream) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Len returns the number of outcomes in the table.
func (t *AliasTable) Len() int { return len(t.prob) }
