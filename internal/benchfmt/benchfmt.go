// Package benchfmt defines the JSON report schema shared by
// cmd/benchreport (which parses `go test -bench` output into it and
// compares two reports) and internal/loadgen (whose prload reports use
// the same shape so load-test results and benchmark results live in
// one BENCH_* artifact trajectory). One definition, so the CI perf
// gate's producer and consumer cannot drift apart silently.
package benchfmt

// Benchmark is one benchmark's (or one load-test entry's) result.
type Benchmark struct {
	// Name is the benchmark name including the -cpu suffix (e.g.
	// "BenchmarkFrogWildRun-8") or a load-test entry name (e.g.
	// "prload/topk").
	Name string `json:"name"`
	// Iterations is the measured b.N, or a load test's query count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every measurement ("ns/op",
	// "vertex/s", "queries/s", "p99/ms", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full JSON document.
type Report struct {
	// Env holds run-environment entries (goos, goarch, pkg, cpu for
	// bench runs; target/engine/graph/seed for load runs).
	Env map[string]string `json:"env"`
	// Benchmarks lists the results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Failed reports whether the bench run printed FAIL.
	Failed bool `json:"failed"`
}
