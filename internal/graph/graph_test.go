package graph

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder(4).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3).AddEdge(3, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := diamond(t)
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 1 {
		t.Errorf("out degrees wrong: %d %d", g.OutDegree(0), g.OutDegree(3))
	}
	if g.InDegree(3) != 2 || g.InDegree(0) != 1 {
		t.Errorf("in degrees wrong: %d %d", g.InDegree(3), g.InDegree(0))
	}
	out0 := append([]VertexID(nil), g.OutNeighbors(0)...)
	sort.Slice(out0, func(i, j int) bool { return out0[i] < out0[j] })
	if len(out0) != 2 || out0[0] != 1 || out0[1] != 2 {
		t.Errorf("OutNeighbors(0) = %v", out0)
	}
	in3 := append([]VertexID(nil), g.InNeighbors(3)...)
	sort.Slice(in3, func(i, j int) bool { return in3[i] < in3[j] })
	if len(in3) != 2 || in3[0] != 1 || in3[1] != 2 {
		t.Errorf("InNeighbors(3) = %v", in3)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := diamond(t)
	count := 0
	g.Edges(func(e Edge) bool { count++; return true })
	if count != 5 {
		t.Errorf("Edges visited %d, want 5", count)
	}
	count = 0
	g.Edges(func(e Edge) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func TestValidate(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDanglingError(t *testing.T) {
	_, err := NewBuilder(3).AddEdge(0, 1).AddEdge(0, 2).Build()
	if !errors.Is(err, ErrDangling) {
		t.Fatalf("want ErrDangling, got %v", err)
	}
}

func TestAllowDangling(t *testing.T) {
	g, err := NewBuilder(3).AddEdge(0, 1).AllowDangling().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(1) != 0 || g.OutDegree(2) != 0 {
		t.Error("dangling vertices should remain dangling")
	}
}

func TestDanglingSelfLoop(t *testing.T) {
	g, err := NewBuilder(3).AddEdge(0, 1).Dangling(DanglingSelfLoop).Build()
	if err != nil {
		t.Fatal(err)
	}
	for v := VertexID(0); v < 3; v++ {
		if g.OutDegree(v) == 0 {
			t.Errorf("vertex %d still dangling", v)
		}
	}
	if g.OutNeighbors(2)[0] != 2 {
		t.Error("dangling repair should add a self-loop")
	}
}

func TestDanglingBackEdges(t *testing.T) {
	// 0->2, 1->2; 2 is dangling with two predecessors.
	g, err := NewBuilder(3).AddEdge(0, 2).AddEdge(1, 2).Dangling(DanglingBackEdges).Build()
	if err != nil {
		t.Fatal(err)
	}
	out := append([]VertexID(nil), g.OutNeighbors(2)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) != 2 || out[0] != 0 || out[1] != 1 {
		t.Errorf("back edges = %v, want [0 1]", out)
	}
	// 0 and 1 are still dangling after 2's repair? No: 0 and 1 have
	// out-edges to 2 from the start.
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 1 {
		t.Error("original edges lost")
	}
}

func TestDanglingBackEdgesIsolated(t *testing.T) {
	// Vertex 2 has no in-edges at all: must get a self-loop.
	g, err := NewBuilder(3).AddEdge(0, 1).AddEdge(1, 0).Dangling(DanglingBackEdges).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(2) != 1 || g.OutNeighbors(2)[0] != 2 {
		t.Errorf("isolated dangling vertex should self-loop, got %v", g.OutNeighbors(2))
	}
}

func TestDedup(t *testing.T) {
	g, err := NewBuilder(2).
		AddEdge(0, 1).AddEdge(0, 1).AddEdge(1, 0).AddEdge(0, 1).
		Dedup().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d after dedup, want 2", g.NumEdges())
	}
}

func TestNoSelfLoops(t *testing.T) {
	g, err := NewBuilder(2).
		AddEdge(0, 0).AddEdge(0, 1).AddEdge(1, 0).
		NoSelfLoops().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph should have no vertices/edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.NumVertices != 0 {
		t.Error("stats on empty graph")
	}
}

func TestComputeStats(t *testing.T) {
	g := diamond(t)
	s := ComputeStats(g)
	if s.NumVertices != 4 || s.NumEdges != 5 {
		t.Errorf("stats basic: %+v", s)
	}
	if s.MinOutDeg != 1 || s.MaxOutDeg != 2 || s.MaxInDeg != 2 {
		t.Errorf("stats degrees: %+v", s)
	}
	if s.Dangling != 0 {
		t.Errorf("dangling = %d", s.Dangling)
	}
	if s.MeanDeg != 1.25 {
		t.Errorf("mean = %v", s.MeanDeg)
	}
}

func TestGiniRegularVsSkewed(t *testing.T) {
	// Ring: all degrees equal, Gini ~ 0.
	b := NewBuilder(100)
	for v := 0; v < 100; v++ {
		b.AddEdge(VertexID(v), VertexID((v+1)%100))
	}
	ring := b.MustBuild()
	gRing := ComputeStats(ring).GiniOut
	if gRing > 0.01 {
		t.Errorf("ring Gini = %v, want ~0", gRing)
	}
	// Star with hub self-loops elsewhere: very skewed.
	b2 := NewBuilder(100).Dangling(DanglingSelfLoop)
	for v := 1; v < 100; v++ {
		b2.AddEdge(0, VertexID(v))
	}
	star := b2.MustBuild()
	gStar := ComputeStats(star).GiniOut
	if gStar < 0.4 {
		t.Errorf("star Gini = %v, want high", gStar)
	}
}

// Property: for random edge lists, the CSR encodes exactly the input
// multiset of edges and Validate passes.
func TestCSRRoundTripProperty(t *testing.T) {
	r := rng.New(2024)
	f := func(nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%50) + 1
		m := int(mRaw % 500)
		in := make([]Edge, m)
		for i := range in {
			in[i] = Edge{VertexID(r.Intn(n)), VertexID(r.Intn(n))}
		}
		g := FromEdges(n, in)
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		out := g.EdgeSlice()
		if len(out) != len(in) {
			return false
		}
		key := func(e Edge) uint64 { return uint64(e.Src)<<32 | uint64(e.Dst) }
		cnt := map[uint64]int{}
		for _, e := range in {
			cnt[key(e)]++
		}
		for _, e := range out {
			cnt[key(e)]--
		}
		for _, c := range cnt {
			if c != 0 {
				return false
			}
		}
		// Degree sums must equal edge count in both directions.
		var od, id int64
		for v := 0; v < n; v++ {
			od += int64(g.OutDegree(VertexID(v)))
			id += int64(g.InDegree(VertexID(v)))
		}
		return od == int64(m) && id == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: in/out adjacency are transposes of each other.
func TestTransposeProperty(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(40) + 2
		m := r.Intn(300)
		es := make([]Edge, m)
		for i := range es {
			es[i] = Edge{VertexID(r.Intn(n)), VertexID(r.Intn(n))}
		}
		g := FromEdges(n, es)
		for v := 0; v < n; v++ {
			for _, d := range g.OutNeighbors(VertexID(v)) {
				found := 0
				for _, s := range g.InNeighbors(d) {
					if s == VertexID(v) {
						found++
					}
				}
				if found == 0 {
					t.Fatalf("edge (%d,%d) missing from in-adjacency", v, d)
				}
			}
		}
	}
}

func BenchmarkBuild1M(b *testing.B) {
	r := rng.New(1)
	const n = 100000
	es := make([]Edge, 1000000)
	for i := range es {
		es[i] = Edge{VertexID(r.Intn(n)), VertexID(r.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromEdges(n, es)
	}
}
