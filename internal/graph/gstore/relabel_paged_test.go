package gstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/pcache"
)

// logicalEqual compares graphs through the public accessors — the
// external view a relabeled or paged graph must preserve exactly.
func logicalEqual(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			want.NumVertices(), want.NumEdges(), got.NumVertices(), got.NumEdges())
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := graph.VertexID(v)
		if !reflect.DeepEqual(
			append([]graph.VertexID{}, want.OutNeighbors(id)...),
			append([]graph.VertexID{}, got.OutNeighbors(id)...)) {
			t.Fatalf("out-neighbors of %d differ", v)
		}
		if !reflect.DeepEqual(
			append([]graph.VertexID{}, want.InNeighbors(id)...),
			append([]graph.VertexID{}, got.InNeighbors(id)...)) {
			t.Fatalf("in-neighbors of %d differ", v)
		}
	}
}

func TestRelabelLogicallyIdentical(t *testing.T) {
	g := testGraph(t, 500)
	rg, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	logicalEqual(t, g, rg)
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rows must be degree-sorted: walking rows in order, total degree
	// never increases.
	c := rg.CSRView()
	if c.Perm == nil {
		t.Fatal("relabeled graph has no permutation")
	}
	rowDeg := make([]int64, rg.NumVertices())
	for v, row := range c.Perm {
		rowDeg[row] = (c.OutOff[row+1] - c.OutOff[row]) + (c.InOff[row+1] - c.InOff[row])
		if want := int64(g.OutDegree(graph.VertexID(v)) + g.InDegree(graph.VertexID(v))); rowDeg[row] != want {
			t.Fatalf("row %d degree %d, want %d", row, rowDeg[row], want)
		}
	}
	for r := 1; r < len(rowDeg); r++ {
		if rowDeg[r] > rowDeg[r-1] {
			t.Fatalf("row degrees not descending at %d: %d > %d", r, rowDeg[r], rowDeg[r-1])
		}
	}
}

func TestRelabeledRoundTripAllPaths(t *testing.T) {
	g := testGraph(t, 500)
	rg, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	data := encode(t, rg)
	if string(data[:8]) != Magic2 {
		t.Fatalf("relabeled graph wrote magic %q, want %q", data[:8], Magic2)
	}
	if !IsMagic(data) {
		t.Fatal("IsMagic rejects FWGSTOR2")
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := Save(path, rg); err != nil {
		t.Fatal(err)
	}

	t.Run("open", func(t *testing.T) {
		got, err := Open(path, OpenOptions{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		defer got.Close()
		logicalEqual(t, g, got)
		if got.CSRView().Perm == nil {
			t.Fatal("permutation lost in round trip")
		}
	})
	t.Run("stream", func(t *testing.T) {
		got, err := Read(bytes.NewReader(data), OpenOptions{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		logicalEqual(t, g, got)
	})
	t.Run("decode", func(t *testing.T) {
		got, err := Decode(append([]byte{}, data...), nil, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		logicalEqual(t, g, got)
	})
}

func TestPagedOpenMatchesResident(t *testing.T) {
	g := testGraph(t, 800)
	dir := t.TempDir()
	for _, tc := range []struct {
		name    string
		prepare func() *graph.Graph
	}{
		{"plain", func() *graph.Graph { return g }},
		{"relabeled", func() *graph.Graph {
			rg, err := Relabel(g)
			if err != nil {
				t.Fatal(err)
			}
			return rg
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".csr")
			if err := Save(path, tc.prepare()); err != nil {
				t.Fatal(err)
			}
			// A tiny budget forces constant eviction; the served view
			// must not change.
			got, err := Open(path, OpenOptions{Mem: 1, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			if !got.Paged() {
				t.Fatal("Mem>0 open did not return a paged graph")
			}
			logicalEqual(t, g, got)

			stats, ok := got.PageCacheStats()
			if !ok {
				t.Fatal("paged graph reports no page-cache stats")
			}
			if stats.PageSize != pcache.PageSize {
				t.Fatalf("page size %d, want %d", stats.PageSize, pcache.PageSize)
			}
			if stats.Misses == 0 {
				t.Fatal("full sweep recorded no page misses")
			}
			if stats.ResidentPages > stats.BudgetPages {
				t.Fatalf("resident %d pages over budget %d at rest", stats.ResidentPages, stats.BudgetPages)
			}
			if err := got.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPagedConcurrentReaders(t *testing.T) {
	g := testGraph(t, 600)
	path := filepath.Join(t.TempDir(), "g.csr")
	rg, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, rg); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path, OpenOptions{Mem: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := got.NewAdjReader()
			defer r.Release()
			for i := 0; i < 300; i++ {
				v := graph.VertexID((w*131 + i*17) % g.NumVertices())
				want := g.OutNeighbors(v)
				gotRow := r.OutNeighbors(v)
				if !reflect.DeepEqual(append([]graph.VertexID{}, want...), append([]graph.VertexID{}, gotRow...)) {
					errs <- "row mismatch"
					return
				}
				if len(want) > 0 {
					if x := r.OutAt(v, len(want)-1); x != want[len(want)-1] {
						errs <- "OutAt mismatch"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestPagedGraphCannotBeSerialized(t *testing.T) {
	g := testGraph(t, 100)
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path, OpenOptions{Mem: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if err := Write(new(bytes.Buffer), got); err == nil {
		t.Fatal("Write serialized a paged graph")
	}
}

func TestPagedOpenCatchesCorruption(t *testing.T) {
	rg, err := Relabel(testGraph(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := Save(path, rg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the perm section (the last one).
	c := rg.CSRView()
	secs := schema2.Layout([]uint64{
		uint64(len(c.OutOff)) * 8, uint64(len(c.OutAdj)) * 4,
		uint64(len(c.InOff)) * 8, uint64(len(c.InAdj)) * 4,
		uint64(len(c.Perm)) * 4,
	})
	data[secs[4].Off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, OpenOptions{Mem: 1}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("paged open of corrupt file: %v, want ErrChecksum", err)
	}
	if _, err := Open(path, OpenOptions{}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("resident open of corrupt file: %v, want ErrChecksum", err)
	}
}
