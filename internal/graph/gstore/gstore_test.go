package gstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/secfile"
)

// sectionLayout computes the canonical FWGSTOR1 section geometry for n
// vertices and m edges, for tests that corrupt specific sections.
func sectionLayout(n, m uint64) []secfile.Section {
	return schema.Layout([]uint64{(n + 1) * 8, m * 4, (n + 1) * 8, m * 4})
}

// testGraph builds a small power-law graph with a spread of degrees.
func testGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: n, MeanOutDeg: 6, DegExponent: 2.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// csrEqual compares graphs by their raw arrays — bit-identical
// adjacency, not just isomorphic.
func csrEqual(a, b *graph.Graph) bool {
	x, y := a.CSRView(), b.CSRView()
	return x.NumVertices == y.NumVertices &&
		reflect.DeepEqual(append([]int64{}, x.OutOff...), append([]int64{}, y.OutOff...)) &&
		reflect.DeepEqual(append([]graph.VertexID{}, x.OutAdj...), append([]graph.VertexID{}, y.OutAdj...)) &&
		reflect.DeepEqual(append([]int64{}, x.InOff...), append([]int64{}, y.InOff...)) &&
		reflect.DeepEqual(append([]graph.VertexID{}, x.InAdj...), append([]graph.VertexID{}, y.InAdj...))
}

func encode(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripAllPaths(t *testing.T) {
	g := testGraph(t, 500)
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}

	modes := []struct {
		name string
		mode OpenMode
	}{{"auto", ModeAuto}, {"mmap", ModeMmap}, {"buffered", ModeBuffered}}
	for _, m := range modes {
		if m.mode == ModeMmap && !secfile.MmapSupported {
			continue
		}
		t.Run(m.name, func(t *testing.T) {
			got, err := Open(path, OpenOptions{Mode: m.mode, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			if !csrEqual(g, got) {
				t.Fatal("loaded graph differs from written graph")
			}
			if gs, ws := graph.ComputeStats(got), graph.ComputeStats(g); gs != ws {
				t.Fatalf("stats diverge: %+v vs %+v", gs, ws)
			}
			if err := got.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}

	t.Run("stream", func(t *testing.T) {
		got, err := Read(bytes.NewReader(encode(t, g)), OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !csrEqual(g, got) {
			t.Fatal("stream-decoded graph differs")
		}
	})
}

func TestRoundTripEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.FromEdges(0, nil)},
		{"no-edges", graph.FromEdges(3, nil)},
		{"self-loops", graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 0}, {Src: 1, Dst: 1}, {Src: 1, Dst: 0}})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decode(encodeAligned(t, tc.g), nil, OpenOptions{Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			if !csrEqual(tc.g, got) {
				t.Fatal("round trip diverged")
			}
		})
	}
}

// encodeAligned encodes into an 8-aligned buffer, the shape Decode
// sees from Open/Read.
func encodeAligned(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	raw := encode(t, g)
	buf := secfile.AlignedBytes(len(raw))
	copy(buf, raw)
	return buf
}

func TestZeroCopyAliasing(t *testing.T) {
	if !secfile.MmapSupported {
		t.Skip("no mmap on this platform")
	}
	g := testGraph(t, 200)
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path, OpenOptions{Mode: ModeMmap})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	// A second independent mapping of the same file must expose the
	// same values through the graph API (the slices are views of file
	// pages, not copies; this also exercises reads across the mapping).
	if !csrEqual(g, got) {
		t.Fatal("mmap view differs")
	}
	for v := 0; v < got.NumVertices(); v++ {
		if got.OutDegree(graph.VertexID(v)) != g.OutDegree(graph.VertexID(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestChecksumCatchesBitFlips(t *testing.T) {
	g := testGraph(t, 300)
	raw := encode(t, g)
	// Flip one bit inside each section (past the header) and verify
	// the default open path reports a checksum error. Section content
	// corruption must be caught even though Validate is off for
	// gstore files (that is the whole point of the checksums).
	for _, off := range []int{headerSize + 3, len(raw) / 2, len(raw) - 2} {
		cp := secfile.AlignedBytes(len(raw))
		copy(cp, raw)
		cp[off] ^= 0x10
		if _, err := Decode(cp, nil, OpenOptions{}); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", off, err)
		}
	}
}

func TestCorruptHeaders(t *testing.T) {
	g := testGraph(t, 100)
	raw := encode(t, g)
	mutate := func(f func(b []byte)) []byte {
		cp := secfile.AlignedBytes(len(raw))
		copy(cp, raw)
		f(cp)
		return cp
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), ErrFormat},
		{"bad version", mutate(func(b []byte) { b[8] = 99 }), ErrFormat},
		{"foreign endian", mutate(func(b []byte) { b[12] ^= 1 }), ErrEndian},
		{"huge n", mutate(func(b []byte) { b[16] = 0xff; b[22] = 0xff }), ErrFormat},
		{"section off tampered", mutate(func(b []byte) { b[tableOffset] ^= 0x40 }), ErrFormat},
		{"section len tampered", mutate(func(b []byte) { b[tableOffset+8] ^= 0x40 }), ErrFormat},
		{"short", secfile.AlignedBytes(headerSize - 1), ErrFormat},
		{"truncated body", mutate(func(b []byte) {})[:headerSize+8], ErrFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data, nil, OpenOptions{}); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeReleasesBackingOnError(t *testing.T) {
	g := testGraph(t, 50)
	raw := encodeAligned(t, g)
	raw[0] = 'X'
	closed := false
	_, err := Decode(raw, closerFunc(func() error { closed = true; return nil }), OpenOptions{})
	if err == nil {
		t.Fatal("want error")
	}
	if !closed {
		t.Fatal("backing leaked on decode failure")
	}
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

func TestNoVerifySkipsChecksums(t *testing.T) {
	g := testGraph(t, 100)
	raw := encodeAligned(t, g)
	// Corrupt an adjacency byte: NoVerify must not notice (offsets
	// stay structurally valid), proving the checksum pass is what
	// catches content corruption.
	secs := sectionLayout(uint64(g.NumVertices()), uint64(g.NumEdges()))
	raw[secs[1].Off] ^= 0x01
	if _, err := Decode(raw, nil, OpenOptions{NoVerify: true}); err != nil {
		t.Fatalf("NoVerify decode: %v", err)
	}
	if _, err := Decode(raw, nil, OpenOptions{}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("verify decode: %v, want ErrChecksum", err)
	}
}

func TestValidateCatchesCraftedAdjacency(t *testing.T) {
	// A file can carry valid checksums over bad content if it was
	// crafted (not corrupted): write a graph, tamper with an adjacency
	// value, and recompute the section checksum. Only opts.Validate
	// catches this.
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	c := g.CSRView()
	evil := append([]graph.VertexID{}, c.OutAdj...)
	evil[0] = 99 // out of range
	forged, err := graph.FromCSR(graph.CSR{
		NumVertices: c.NumVertices, OutOff: c.OutOff, OutAdj: evil,
		InOff: c.InOff, InAdj: c.InAdj,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw := encodeAligned(t, forged)
	if _, err := Decode(raw, nil, OpenOptions{}); err != nil {
		t.Fatalf("checksums are valid on a forged file, decode should pass: %v", err)
	}
	if _, err := Decode(raw, nil, OpenOptions{Validate: true}); err == nil {
		t.Fatal("Validate missed out-of-range adjacency")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.csr"), OpenOptions{}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestReadTruncatedStream(t *testing.T) {
	g := testGraph(t, 200)
	raw := encode(t, g)
	for _, cut := range []int{0, 4, headerSize - 1, headerSize + 1, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut]), OpenOptions{}); !errors.Is(err, ErrFormat) {
			t.Fatalf("cut at %d: err = %v, want ErrFormat", cut, err)
		}
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	if err := Save(path, testGraph(t, 50)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different graph; a reader opening concurrently
	// sees one version or the other, never a torn file. Here we just
	// pin that the rename replaced the content and left no temp files.
	g2 := testGraph(t, 80)
	if err := Save(path, g2); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if !csrEqual(g2, got) {
		t.Fatal("second save not visible")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}
