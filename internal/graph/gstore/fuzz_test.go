package gstore

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzDecode throws arbitrary bytes at every loader entry point. The
// contract under test: corrupt, truncated, or crafted input returns an
// error — it never panics and never triggers an allocation
// proportional to a hostile header's claims rather than to the input.
// The seed corpus (testdata/fuzz/FuzzDecode plus the f.Add entries
// below) covers valid files, truncations, header tampering and
// section bit-flips.
func FuzzDecode(f *testing.F) {
	small := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	var buf bytes.Buffer
	if err := Write(&buf, small); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	for _, cut := range []int{4, headerSize - 1, headerSize, headerSize + 9, len(valid) - 3} {
		f.Add(append([]byte{}, valid[:cut]...))
	}
	for _, off := range []int{0, 8, 12, 17, 25, tableOffset + 1, tableOffset + 9, headerSize + 2, len(valid) - 1} {
		cp := append([]byte{}, valid...)
		cp[off] ^= 0xff
		f.Add(cp)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode requires nothing of data's alignment (it copies
		// misaligned sections), so feed the raw fuzz buffer directly.
		for _, opts := range []OpenOptions{
			{},
			{NoVerify: true},
			{NoVerify: true, Validate: true},
		} {
			if g, err := Decode(data, nil, opts); err == nil {
				// Whatever decodes must be safely traversable.
				for v := 0; v < g.NumVertices(); v++ {
					_ = g.OutNeighbors(graph.VertexID(v))
					_ = g.InNeighbors(graph.VertexID(v))
				}
			}
		}
		// The stream reader must uphold the same contract.
		if g, err := Read(bytes.NewReader(data), OpenOptions{}); err == nil {
			_ = g.NumVertices()
		}
	})
}
