package gstore

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden format files")

// hostLittleEndian reports whether this host writes little-endian
// sections; the checked-in golden files were produced on one.
func hostLittleEndian() bool {
	return binary.NativeEndian.Uint16([]byte{0x01, 0x00}) == 1
}

// goldenGraph is a fixed graph with a spread of degrees, repeated
// targets, and zero-out-degree vertices; its FWGSTOR1 encoding is
// pinned byte-for-byte by TestGoldenBytes.
func goldenGraph() *graph.Graph {
	const n = 97
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < i%5; j++ {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID(i),
				Dst: graph.VertexID((i*31 + j*17 + 7) % n),
			})
		}
	}
	return graph.FromEdges(n, edges)
}

// TestGoldenBytes pins the FWGSTOR1 encoding in both directions: the
// writer must reproduce the checked-in golden file bit-identically for
// the same input, and the golden file (produced by the PR 5 writer)
// must decode to the same graph. Any refactor of the encode/decode
// plumbing must keep this file format-stable.
func TestGoldenBytes(t *testing.T) {
	if !hostLittleEndian() {
		t.Skip("golden files carry little-endian native sections")
	}
	g := goldenGraph()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "fwgstor1-v1.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("writer output diverged from the golden file (%d vs %d bytes): the FWGSTOR1 encoding must stay bit-identical",
			buf.Len(), len(want))
	}
	got, err := Decode(append([]byte{}, want...), nil, OpenOptions{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !csrEqual(g, got) {
		t.Fatal("golden file decodes to a different graph")
	}
}
