// Package gstore defines the repository's persistent graph storage
// format: a versioned binary CSR layout ("FWGSTOR1") designed to be
// mapped straight into memory. The four adjacency arrays are written
// as 8-byte-aligned sections behind a fixed header, each protected by
// a CRC-64 checksum, so Open can hand the kernel's page cache to the
// Graph without copying: the adjacency slices alias the mmap'd file
// pages, no parse or counting sort ever runs, and graphs bigger than
// RAM stay usable (the kernel pages sections in on demand). The
// default open's one size-dependent cost is a sequential checksum
// pass over the file — far cheaper than a rebuild; NoVerify skips it
// for trusted files, making the open O(offsets). A buffered read path
// decodes the same bytes on platforms (or transports, e.g. gzip
// streams) where mmap is unavailable.
//
// The byte-level discipline — header prelude, checksummed section
// table, atomic save, mmap-vs-buffered open, bounded stream read — is
// the shared internal/secfile codec; this package is the FWGSTOR1
// schema over it:
//
//	offset  size  field
//	0       8     magic "FWGSTOR1"
//	8       4     format version (1)
//	12      1     array byte order: 0 little-endian, 1 big-endian
//	13      3     reserved (zero)
//	16      8     n, vertex count
//	24      8     m, edge count
//	32      96    section table: 4 × (offset u64, length u64, crc64 u64)
//	              in order outOff, outAdj, inOff, inAdj
//	128     ...   sections, each 8-byte aligned
//
// outOff/inOff are (n+1) int64 prefix sums; outAdj/inAdj are m uint32
// vertex ids. Checksums are CRC-64/ECMA over each section's raw bytes.
package gstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
	"repro/internal/secfile"
)

// Magic identifies a plain gstore file; MagicPrefix is what gio's
// auto-detection sniffs (it covers both versions).
const Magic = "FWGSTOR1"

// Magic2 identifies a relabeled gstore file: the same four CSR
// sections plus a fifth holding the external→internal row permutation
// (see Relabel). Plain graphs keep writing FWGSTOR1 byte-identically.
const Magic2 = "FWGSTOR2"

// MagicPrefix is the 7 bytes the two versions share.
const MagicPrefix = "FWGSTOR"

// Version is the current format version (per magic).
const Version = 1

const (
	headerSize  = 128
	tableOffset = 32
	numSections = 4

	// FWGSTOR2 appends one table entry for the perm section; its
	// header grows by exactly that entry.
	headerSize2  = headerSize + secfile.EntrySize
	numSections2 = numSections + 1

	// maxVertices/maxEdges bound the header's claimed sizes before any
	// allocation or slicing happens, so a hostile header cannot make a
	// loader attempt an absurd allocation.
	maxVertices = 1 << 31
	maxEdges    = 1 << 40
)

// Errors the loaders return. All corruption detected by decoding wraps
// ErrFormat; checksum and byte-order failures are further
// distinguishable. Every failure also wraps the corresponding
// internal/secfile identity.
var (
	ErrFormat   = errors.New("gstore: not a gstore CSR graph file")
	ErrChecksum = errors.New("gstore: section checksum mismatch")
	ErrEndian   = errors.New("gstore: file written with foreign byte order")
)

// schema plugs the FWGSTOR1 layout into the shared codec: everything
// below the field layout (table pinning, checksums, atomic save, mmap
// open, bounded stream read) lives in internal/secfile.
var schema = &secfile.Schema{
	Magic:        Magic,
	Version:      Version,
	HeaderSize:   headerSize,
	TableOff:     tableOffset,
	NumSections:  numSections,
	SectionSizes: sectionSizes,
	ErrFormat:    ErrFormat,
	ErrChecksum:  ErrChecksum,
	ErrEndian:    ErrEndian,
}

// schema2 is the FWGSTOR2 layout: FWGSTOR1 plus a perm section of n
// uint32 row indices.
var schema2 = &secfile.Schema{
	Magic:        Magic2,
	Version:      Version,
	HeaderSize:   headerSize2,
	TableOff:     tableOffset,
	NumSections:  numSections2,
	SectionSizes: sectionSizes2,
	ErrFormat:    ErrFormat,
	ErrChecksum:  ErrChecksum,
	ErrEndian:    ErrEndian,
}

func gstoreFields(hdr []byte) []secfile.Field {
	n, m := headerCounts(hdr)
	return []secfile.Field{
		{Name: "vertices", Value: fmt.Sprint(n)},
		{Name: "edges", Value: fmt.Sprint(m)},
	}
}

func init() {
	secfile.Register(secfile.Info{
		Name:         "gstore CSR graph",
		Schema:       schema,
		SectionNames: []string{"outOff", "outAdj", "inOff", "inAdj"},
		Fields:       gstoreFields,
		// A paged open keeps the offset arrays resident and serves the
		// adjacency from the page cache.
		ResidentPaged: []bool{true, false, true, false},
	})
	secfile.Register(secfile.Info{
		Name:          "gstore CSR graph (degree-relabeled)",
		Schema:        schema2,
		SectionNames:  []string{"outOff", "outAdj", "inOff", "inAdj", "perm"},
		Fields:        gstoreFields,
		ResidentPaged: []bool{true, false, true, false, true},
	})
}

// headerCounts reads the n/m scalar fields.
func headerCounts(hdr []byte) (n, m uint64) {
	return binary.LittleEndian.Uint64(hdr[16:24]), binary.LittleEndian.Uint64(hdr[24:32])
}

// sectionSizes derives the four sections' byte lengths from the
// header's vertex and edge counts, bounding both before anything is
// allocated.
func sectionSizes(hdr []byte) ([]uint64, error) {
	n, m := headerCounts(hdr)
	if n > maxVertices || m > maxEdges {
		return nil, fmt.Errorf("implausible sizes n=%d m=%d", n, m)
	}
	return []uint64{(n + 1) * 8, m * 4, (n + 1) * 8, m * 4}, nil
}

// sectionSizes2 adds the perm section: n uint32 row indices.
func sectionSizes2(hdr []byte) ([]uint64, error) {
	sizes, err := sectionSizes(hdr)
	if err != nil {
		return nil, err
	}
	n, _ := headerCounts(hdr)
	return append(sizes, n*4), nil
}

// IsMagic reports whether head (the first bytes of a file or stream)
// starts a gstore file of either version.
func IsMagic(head []byte) bool { return schema.IsMagic(head) || schema2.IsMagic(head) }

// schemaFor picks the version schema for head's magic, defaulting to
// v1 so non-gstore bytes fail with its (unchanged) error text.
func schemaFor(head []byte) *secfile.Schema {
	if schema2.IsMagic(head) {
		return schema2
	}
	return schema
}

// OpenMode selects how Open gets the file's bytes.
type OpenMode = secfile.OpenMode

const (
	// ModeAuto maps the file when the platform supports it and falls
	// back to a buffered read.
	ModeAuto = secfile.ModeAuto
	// ModeMmap requires the zero-copy mapping; Open fails where mmap
	// is unavailable.
	ModeMmap = secfile.ModeMmap
	// ModeBuffered always reads the file into memory.
	ModeBuffered = secfile.ModeBuffered
)

// OpenOptions tunes Open and Read.
type OpenOptions struct {
	// Mode selects mmap vs buffered read (Open only, ignored when Mem
	// is set).
	Mode OpenMode
	// NoVerify skips the per-section checksum verification. The
	// default (verify) reads every page once at open; skipping it
	// makes open O(offsets) at the cost of deferring corruption
	// detection to first use.
	NoVerify bool
	// Validate additionally runs the full O(E) graph.Validate pass
	// after decoding. Off by default: the checksums already pin the
	// bytes to what the writer produced, and the writer only ever
	// serializes well-formed graphs.
	Validate bool
	// Mem, when > 0, opens the file paged (Open only): the offset
	// arrays (and perm, for FWGSTOR2) stay resident, while the
	// adjacency is served from a page cache whose resident set is
	// bounded by about Mem bytes — the bigger-than-RAM path. See
	// paged.go.
	Mem int64
}

func (o OpenOptions) codec() secfile.OpenOptions {
	return secfile.OpenOptions{Mode: o.Mode, NoVerify: o.NoVerify}
}

// Write serializes g to w in the gstore format: FWGSTOR1 for plain
// graphs (byte-identical to previous releases), FWGSTOR2 when the
// graph carries a row permutation (see Relabel). Paged graphs cannot
// be serialized — their adjacency is not resident.
func Write(w io.Writer, g *graph.Graph) error {
	if g.Paged() {
		return errors.New("gstore: cannot serialize a paged graph (adjacency is not resident; open the source file instead)")
	}
	c := g.CSRView()
	sc, parts := schema, [][]byte{
		secfile.Bytes(c.OutOff), secfile.Bytes(c.OutAdj),
		secfile.Bytes(c.InOff), secfile.Bytes(c.InAdj),
	}
	if c.Perm != nil {
		sc = schema2
		parts = append(parts, secfile.Bytes(c.Perm))
	}
	hdr := sc.NewHeader()
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(c.NumVertices))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(c.OutAdj)))
	return sc.Write(w, hdr, parts)
}

// Save writes g to path atomically: the bytes land in a temp file in
// the same directory which is fsync'd and renamed over path, so
// readers never see a half-written graph and a crash never corrupts
// an existing cache.
func Save(path string, g *graph.Graph) error {
	return secfile.SaveAtomic(path, func(w io.Writer) error { return Write(w, g) })
}

// fromFile builds a Graph over a parsed section file. The graph's
// arrays alias f.Data (zero-copy) whenever alignment allows; f owns
// the backing storage and is released by the graph's Close (or here,
// on error).
func fromFile(f *secfile.File, opts OpenOptions) (*graph.Graph, error) {
	n, m := headerCounts(f.Header())
	c := graph.CSR{
		NumVertices: int(n),
		OutOff:      secfile.View[int64](f.Data, f.Secs[0].Off, int(n)+1),
		OutAdj:      secfile.View[graph.VertexID](f.Data, f.Secs[1].Off, int(m)),
		InOff:       secfile.View[int64](f.Data, f.Secs[2].Off, int(n)+1),
		InAdj:       secfile.View[graph.VertexID](f.Data, f.Secs[3].Off, int(m)),
	}
	if len(f.Secs) == numSections2 {
		c.Perm = secfile.View[graph.VertexID](f.Data, f.Secs[4].Off, int(n))
	}
	g, err := graph.FromCSR(c, f) // FromCSR closes f on error
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if opts.Validate {
		if err := g.Validate(); err != nil {
			g.Close()
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	return g, nil
}

// Decode builds a Graph over data, which must hold a complete gstore
// file. The returned graph's arrays alias data (zero-copy) whenever
// alignment allows; backing, when non-nil, owns data's memory and is
// released by the graph's Close. Decode never panics on corrupt input:
// every section is bounds-checked against the canonical layout before
// it is touched, checksums are verified (unless opts.NoVerify), and
// the offset arrays are structurally validated by graph.FromCSR.
func Decode(data []byte, backing io.Closer, opts OpenOptions) (*graph.Graph, error) {
	f, err := schemaFor(data).Decode(data, backing, opts.codec())
	if err != nil {
		return nil, err
	}
	return fromFile(f, opts)
}

// Open opens a gstore file of either version, zero-copy via mmap when
// the platform allows (the adjacency slices alias the file pages;
// Close unmaps them), falling back to a buffered read under ModeAuto.
// With opts.Mem set it opens paged instead: see OpenOptions.Mem.
func Open(path string, opts OpenOptions) (*graph.Graph, error) {
	if opts.Mem > 0 {
		return openPaged(path, opts)
	}
	head, err := readHead(path)
	if err != nil {
		return nil, err
	}
	f, err := schemaFor(head).Open(path, opts.codec())
	if err != nil {
		return nil, err
	}
	return fromFile(f, opts)
}

// readHead reads the first 8 bytes of path for version dispatch.
func readHead(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, 8)
	if n, err := io.ReadFull(f, head); err != nil {
		return nil, fmt.Errorf("%w: %w: %s is %d bytes", ErrFormat, secfile.ErrFormat, path, n)
	}
	return head, nil
}

// Read decodes a gstore stream (the buffered path gio uses for
// gzip-compressed gstore files). The header is read first so the exact
// remaining size is known; the buffer then grows geometrically toward
// it, so a hostile header claiming a huge graph fails at the stream's
// real end instead of forcing one giant allocation up front.
func Read(r io.Reader, opts OpenOptions) (*graph.Graph, error) {
	head := make([]byte, 8)
	if n, err := io.ReadFull(r, head); err != nil {
		head = head[:n] // let the v1 schema produce its usual error
	}
	f, err := schemaFor(head).Read(io.MultiReader(bytes.NewReader(head), r), opts.codec())
	if err != nil {
		return nil, err
	}
	return fromFile(f, opts)
}
