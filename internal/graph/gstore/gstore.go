// Package gstore defines the repository's persistent graph storage
// format: a versioned binary CSR layout ("FWGSTOR1") designed to be
// mapped straight into memory. The four adjacency arrays are written
// as 8-byte-aligned sections behind a fixed header, each protected by
// a CRC-64 checksum, so Open can hand the kernel's page cache to the
// Graph without copying: the adjacency slices alias the mmap'd file
// pages, no parse or counting sort ever runs, and graphs bigger than
// RAM stay usable (the kernel pages sections in on demand). The
// default open's one size-dependent cost is a sequential checksum
// pass over the file — far cheaper than a rebuild; NoVerify skips it
// for trusted files, making the open O(offsets). A buffered read path
// decodes the same bytes on platforms (or transports, e.g. gzip
// streams) where mmap is unavailable.
//
// File layout (header scalars little-endian, array sections in the
// writer's native byte order, recorded in the header):
//
//	offset  size  field
//	0       8     magic "FWGSTOR1"
//	8       4     format version (1)
//	12      1     array byte order: 0 little-endian, 1 big-endian
//	13      3     reserved (zero)
//	16      8     n, vertex count
//	24      8     m, edge count
//	32      96    section table: 4 × (offset u64, length u64, crc64 u64)
//	              in order outOff, outAdj, inOff, inAdj
//	128     ...   sections, each 8-byte aligned
//
// outOff/inOff are (n+1) int64 prefix sums; outAdj/inAdj are m uint32
// vertex ids. Checksums are CRC-64/ECMA over each section's raw bytes.
package gstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/graph"
)

// Magic identifies a gstore file; it is what gio's auto-detection
// sniffs.
const Magic = "FWGSTOR1"

// Version is the current format version.
const Version = 1

const (
	headerSize  = 128
	tableOffset = 32
	numSections = 4

	// maxVertices/maxEdges bound the header's claimed sizes before any
	// allocation or slicing happens, so a hostile header cannot make a
	// loader attempt an absurd allocation.
	maxVertices = 1 << 31
	maxEdges    = 1 << 40
)

// Errors the loaders return. All corruption detected by decoding wraps
// ErrFormat; checksum and byte-order failures are further
// distinguishable.
var (
	ErrFormat   = errors.New("gstore: not a gstore CSR graph file")
	ErrChecksum = errors.New("gstore: section checksum mismatch")
	ErrEndian   = errors.New("gstore: file written with foreign byte order")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// nativeEndian is the byte-order tag this process writes and accepts:
// 0 little, 1 big.
var nativeEndian = func() byte {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) == 1 {
		return 0
	}
	return 1
}()

// IsMagic reports whether head (the first bytes of a file or stream)
// starts a gstore file.
func IsMagic(head []byte) bool {
	return len(head) >= len(Magic) && string(head[:len(Magic)]) == Magic
}

// OpenMode selects how Open gets the file's bytes.
type OpenMode int

const (
	// ModeAuto maps the file when the platform supports it and falls
	// back to a buffered read.
	ModeAuto OpenMode = iota
	// ModeMmap requires the zero-copy mapping; Open fails where mmap
	// is unavailable.
	ModeMmap
	// ModeBuffered always reads the file into memory.
	ModeBuffered
)

// OpenOptions tunes Open and Read.
type OpenOptions struct {
	// Mode selects mmap vs buffered read (Open only).
	Mode OpenMode
	// NoVerify skips the per-section checksum verification. The
	// default (verify) reads every page once at open; skipping it
	// makes open O(offsets) at the cost of deferring corruption
	// detection to first use.
	NoVerify bool
	// Validate additionally runs the full O(E) graph.Validate pass
	// after decoding. Off by default: the checksums already pin the
	// bytes to what the writer produced, and the writer only ever
	// serializes well-formed graphs.
	Validate bool
}

// sectionSpec describes one section's expected geometry for a given
// header: its element width and byte length.
type section struct {
	off, length, crc uint64
}

// layout computes the canonical section geometry for n vertices and m
// edges: offsets are assigned in file order with 8-byte alignment.
func layout(n, m uint64) [numSections]section {
	var secs [numSections]section
	sizes := [numSections]uint64{(n + 1) * 8, m * 4, (n + 1) * 8, m * 4}
	off := uint64(headerSize)
	for i, sz := range sizes {
		secs[i] = section{off: off, length: sz}
		off = align8(off + sz)
	}
	return secs
}

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// fileSize returns the total encoded size for n vertices and m edges.
func fileSize(n, m uint64) uint64 {
	secs := layout(n, m)
	last := secs[numSections-1]
	return align8(last.off + last.length)
}

// int64Bytes views an []int64 as raw bytes (native order).
func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// vidBytes views a []VertexID (uint32) as raw bytes (native order).
func vidBytes(s []graph.VertexID) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// Write serializes g to w in the gstore format.
func Write(w io.Writer, g *graph.Graph) error {
	c := g.CSRView()
	n, m := uint64(c.NumVertices), uint64(len(c.OutAdj))
	secs := layout(n, m)
	parts := [numSections][]byte{
		int64Bytes(c.OutOff), vidBytes(c.OutAdj),
		int64Bytes(c.InOff), vidBytes(c.InAdj),
	}

	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	hdr[12] = nativeEndian
	binary.LittleEndian.PutUint64(hdr[16:24], n)
	binary.LittleEndian.PutUint64(hdr[24:32], m)
	for i, part := range parts {
		secs[i].crc = crc64.Checksum(part, crcTable)
		ent := hdr[tableOffset+24*i:]
		binary.LittleEndian.PutUint64(ent[0:8], secs[i].off)
		binary.LittleEndian.PutUint64(ent[8:16], secs[i].length)
		binary.LittleEndian.PutUint64(ent[16:24], secs[i].crc)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var pad [8]byte
	pos := uint64(headerSize)
	for i, part := range parts {
		if secs[i].off > pos {
			if _, err := w.Write(pad[:secs[i].off-pos]); err != nil {
				return err
			}
			pos = secs[i].off
		}
		if _, err := w.Write(part); err != nil {
			return err
		}
		pos += uint64(len(part))
	}
	if end := fileSize(n, m); end > pos {
		if _, err := w.Write(pad[:end-pos]); err != nil {
			return err
		}
	}
	return nil
}

// Save writes g to path atomically: the bytes land in a temp file in
// the same directory which is renamed over path, so readers never see
// a half-written graph and a crash never corrupts an existing cache.
func Save(path string, g *graph.Graph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if err := Write(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	// Flush the data before the rename: a journaled rename over
	// unflushed blocks could otherwise survive a crash as a truncated
	// destination, destroying a previous good file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir best-effort fsyncs a directory so a just-completed rename
// itself survives a crash (not all platforms/filesystems support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// header is the decoded fixed part of a gstore file.
type header struct {
	n, m uint64
	secs [numSections]section
}

// parseHeader validates the fixed header and section table against the
// canonical layout, without touching section bytes. total, when >= 0,
// is the number of bytes actually available (file or buffer size).
func parseHeader(hdr []byte, total int64) (header, error) {
	var h header
	if len(hdr) < headerSize {
		return h, fmt.Errorf("%w: short header (%d bytes)", ErrFormat, len(hdr))
	}
	if !IsMagic(hdr) {
		return h, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return h, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	if hdr[12] != nativeEndian {
		return h, ErrEndian
	}
	h.n = binary.LittleEndian.Uint64(hdr[16:24])
	h.m = binary.LittleEndian.Uint64(hdr[24:32])
	if h.n > maxVertices || h.m > maxEdges {
		return h, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrFormat, h.n, h.m)
	}
	want := layout(h.n, h.m)
	for i := range h.secs {
		ent := hdr[tableOffset+24*i:]
		h.secs[i] = section{
			off:    binary.LittleEndian.Uint64(ent[0:8]),
			length: binary.LittleEndian.Uint64(ent[8:16]),
			crc:    binary.LittleEndian.Uint64(ent[16:24]),
		}
		// The table must describe exactly the canonical layout; this
		// pins alignment, ordering and non-overlap in one comparison
		// and leaves a crafted table nowhere to point.
		if h.secs[i].off != want[i].off || h.secs[i].length != want[i].length {
			return h, fmt.Errorf("%w: section %d geometry %d+%d, want %d+%d",
				ErrFormat, i, h.secs[i].off, h.secs[i].length, want[i].off, want[i].length)
		}
	}
	if total >= 0 && fileSize(h.n, h.m) > uint64(total) {
		return h, fmt.Errorf("%w: truncated (%d bytes, need %d)", ErrFormat, total, fileSize(h.n, h.m))
	}
	return h, nil
}

// int64View aliases count int64s at data[off:] when the pointer is
// 8-aligned (mmap bases and the aligned read buffers always are) and
// copies otherwise, so decoding never performs a misaligned load.
func int64View(data []byte, off uint64, count int) []int64 {
	if count == 0 {
		return []int64{}
	}
	p := unsafe.Pointer(&data[off])
	if uintptr(p)%8 == 0 {
		return unsafe.Slice((*int64)(p), count)
	}
	out := make([]int64, count)
	copy(int64Bytes(out), data[off:off+uint64(count)*8])
	return out
}

// vidView is int64View for uint32 vertex ids (4-byte alignment).
func vidView(data []byte, off uint64, count int) []graph.VertexID {
	if count == 0 {
		return []graph.VertexID{}
	}
	p := unsafe.Pointer(&data[off])
	if uintptr(p)%4 == 0 {
		return unsafe.Slice((*graph.VertexID)(p), count)
	}
	out := make([]graph.VertexID, count)
	copy(vidBytes(out), data[off:off+uint64(count)*4])
	return out
}

// Decode builds a Graph over data, which must hold a complete gstore
// file. The returned graph's arrays alias data (zero-copy) whenever
// alignment allows; backing, when non-nil, owns data's memory and is
// released by the graph's Close. Decode never panics on corrupt input:
// every section is bounds-checked against the canonical layout before
// it is touched, checksums are verified (unless opts.NoVerify), and
// the offset arrays are structurally validated by graph.FromCSR.
func Decode(data []byte, backing io.Closer, opts OpenOptions) (*graph.Graph, error) {
	closeBacking := func() {
		if backing != nil {
			backing.Close()
		}
	}
	h, err := parseHeader(data, int64(len(data)))
	if err != nil {
		closeBacking()
		return nil, err
	}
	if !opts.NoVerify {
		for i, s := range h.secs {
			if got := crc64.Checksum(data[s.off:s.off+s.length], crcTable); got != s.crc {
				closeBacking()
				return nil, fmt.Errorf("%w: section %d", ErrChecksum, i)
			}
		}
	}
	c := graph.CSR{
		NumVertices: int(h.n),
		OutOff:      int64View(data, h.secs[0].off, int(h.n)+1),
		OutAdj:      vidView(data, h.secs[1].off, int(h.m)),
		InOff:       int64View(data, h.secs[2].off, int(h.n)+1),
		InAdj:       vidView(data, h.secs[3].off, int(h.m)),
	}
	g, err := graph.FromCSR(c, backing) // FromCSR closes backing on error
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if opts.Validate {
		if err := g.Validate(); err != nil {
			g.Close()
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	return g, nil
}

// mmapBacking releases a mapping when the graph is closed.
type mmapBacking struct{ unmap func() error }

func (b *mmapBacking) Close() error { return b.unmap() }

// Open opens a gstore file, zero-copy via mmap when the platform
// allows (the adjacency slices alias the file pages; Close unmaps
// them), falling back to a buffered read under ModeAuto.
func Open(path string, opts OpenOptions) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		f.Close()
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrFormat, path, size)
	}

	if opts.Mode != ModeBuffered && mmapSupported {
		data, unmap, merr := mmapFile(f, int(size))
		if merr == nil {
			f.Close() // the mapping outlives the descriptor
			return Decode(data, &mmapBacking{unmap: unmap}, opts)
		}
		if opts.Mode == ModeMmap {
			f.Close()
			return nil, fmt.Errorf("gstore: mmap %s: %w", path, merr)
		}
	} else if opts.Mode == ModeMmap {
		f.Close()
		return nil, fmt.Errorf("gstore: mmap %s: %w", path, errors.ErrUnsupported)
	}

	defer f.Close()
	buf := alignedBytes(int(size))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return Decode(buf, nil, opts)
}

// Read decodes a gstore stream (the buffered path gio uses for
// gzip-compressed gstore files). The header is read first so the exact
// remaining size is known; the buffer then grows geometrically toward
// it, so a hostile header claiming a huge graph fails at the stream's
// real end instead of forcing one giant allocation up front.
func Read(r io.Reader, opts OpenOptions) (*graph.Graph, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	h, err := parseHeader(hdr, -1)
	if err != nil {
		return nil, err
	}
	total := fileSize(h.n, h.m)
	buf := alignedBytes(headerSize)
	copy(buf, hdr)
	for have := uint64(headerSize); have < total; {
		next := have * 2
		if next < 1<<24 {
			next = 1 << 24
		}
		if next > total {
			next = total
		}
		grown := alignedBytes(int(next))
		copy(grown, buf[:have])
		if _, err := io.ReadFull(r, grown[have:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at byte %d of %d: %v", ErrFormat, have, total, err)
		}
		buf = grown
		have = next
	}
	return Decode(buf, nil, opts)
}

// alignedBytes returns an n-byte slice whose base address is 8-byte
// aligned (it views a []uint64), so Decode can alias int64 sections
// without copying even on the buffered path.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}
