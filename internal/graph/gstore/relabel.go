package gstore

// Degree-ordered vertex relabeling. Request-time random walks are
// Zipf-favored: most steps land on high-degree vertices. A plain CSR
// scatters those hot rows across the whole adjacency section, so under
// a paged open (OpenOptions.Mem) every step risks touching a cold
// page. Relabel reorders the CSR rows by total degree, descending, so
// the hot rows pack into the first pages of each adjacency section and
// a small page budget covers most steps.
//
// The permutation is internal only: adjacency values stay external
// vertex ids, and every Graph accessor maps external id → row through
// the stored perm. External ids in requests, responses, and persisted
// snapshots are unchanged — a relabeled graph is logically identical
// (same neighbor sets, in the same per-vertex order) to its source.

import (
	"sort"

	"repro/internal/graph"
)

// Relabel returns a heap-backed copy of g whose CSR rows are ordered
// by total (out+in) degree descending, ties broken by ascending
// external id, with the external→row permutation attached. Saving the
// result writes FWGSTOR2. Relabel reads g through the public API, so
// any resident or paged graph works as the source; the result is
// logically identical to g.
func Relabel(g *graph.Graph) (*graph.Graph, error) {
	n := g.NumVertices()
	m := g.NumEdges()

	// order[r] is the external id whose adjacency lands in row r.
	order := make([]graph.VertexID, n)
	for v := range order {
		order[v] = graph.VertexID(v)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		da := g.OutDegree(a) + g.InDegree(a)
		db := g.OutDegree(b) + g.InDegree(b)
		if da != db {
			return da > db
		}
		return a < b
	})
	perm := make([]graph.VertexID, n)
	for r, v := range order {
		perm[v] = graph.VertexID(r)
	}

	c := graph.CSR{
		NumVertices: n,
		OutOff:      make([]int64, n+1),
		OutAdj:      make([]graph.VertexID, m),
		InOff:       make([]int64, n+1),
		InAdj:       make([]graph.VertexID, m),
		Perm:        perm,
	}
	r := g.NewAdjReader()
	defer r.Release()
	for row, v := range order {
		outs := r.OutNeighbors(v)
		copy(c.OutAdj[c.OutOff[row]:], outs)
		c.OutOff[row+1] = c.OutOff[row] + int64(len(outs))
	}
	for row, v := range order {
		ins := r.InNeighbors(v)
		copy(c.InAdj[c.InOff[row]:], ins)
		c.InOff[row+1] = c.InOff[row] + int64(len(ins))
	}
	return graph.FromCSR(c, nil)
}
