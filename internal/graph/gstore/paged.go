package gstore

// The paged open: graphs bigger than RAM. A normal Open maps the whole
// file and lets the kernel page it — fine until walk-shaped random
// access over a graph several times RAM turns every step into a major
// fault the kernel cannot be told a budget for. openPaged instead
// keeps only the offset arrays (and perm) resident and serves the two
// adjacency sections through internal/graph/pcache: a bounded buffer
// pool with pin counts and CLOCK eviction, sized by OpenOptions.Mem.

import (
	"fmt"
	"io"
	"os"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/graph/pcache"
	"repro/internal/secfile"
)

// openPaged opens path with a bounded adjacency cache (see
// OpenOptions.Mem). Checksums are verified by streaming the file once
// (unless NoVerify) — O(1) memory, nothing retained.
func openPaged(path string, opts OpenOptions) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*graph.Graph, error) {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	head := make([]byte, 8)
	if n, err := io.ReadFull(f, head); err != nil {
		return fail(fmt.Errorf("%w: %w: %s is %d bytes", ErrFormat, secfile.ErrFormat, path, n))
	}
	sc := schemaFor(head)
	hdr := make([]byte, sc.HeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return fail(fmt.Errorf("%w: %w: short header: %v", ErrFormat, secfile.ErrFormat, err))
	}
	secs, err := sc.Parse(hdr, st.Size())
	if err != nil {
		return fail(err)
	}
	if !opts.NoVerify {
		if err := sc.VerifySectionsReaderAt(f, secs); err != nil {
			return fail(err)
		}
	}

	n, m := headerCounts(hdr)
	// Offsets (and perm) stay resident: they are the per-step lookup
	// tables, O(n) bytes vs the adjacency's O(m).
	readSection := func(i int) ([]byte, error) {
		buf := secfile.AlignedBytes(int(secs[i].Len))
		if secs[i].Len == 0 {
			return buf, nil
		}
		if _, err := f.ReadAt(buf, int64(secs[i].Off)); err != nil {
			return nil, fmt.Errorf("%w: %w: reading section %d: %v", ErrFormat, secfile.ErrFormat, i, err)
		}
		return buf, nil
	}
	outOffB, err := readSection(0)
	if err != nil {
		return fail(err)
	}
	inOffB, err := readSection(2)
	if err != nil {
		return fail(err)
	}
	var perm []graph.VertexID
	if sc == schema2 {
		permB, err := readSection(4)
		if err != nil {
			return fail(err)
		}
		perm = secfile.View[graph.VertexID](permB, 0, int(n))
	}

	pager := &filePager{
		pool:    pcache.New(f, st.Size(), opts.Mem),
		f:       f,
		outBase: int64(secs[1].Off),
		inBase:  int64(secs[3].Off),
	}
	g, err := graph.FromPagedCSR(graph.PagedCSR{
		NumVertices: int(n),
		NumEdges:    int64(m),
		OutOff:      secfile.View[int64](outOffB, 0, int(n)+1),
		InOff:       secfile.View[int64](inOffB, 0, int(n)+1),
		Perm:        perm,
		Pager:       pager,
	}) // FromPagedCSR closes the pager (and so the file) on error
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if opts.Validate {
		if err := g.Validate(); err != nil {
			g.Close()
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	return g, nil
}

// filePager serves the two adjacency sections out of one pcache.Pool
// over the whole file; cursors address elements relative to each
// section's base byte offset.
type filePager struct {
	pool    *pcache.Pool
	f       *os.File
	outBase int64
	inBase  int64
}

func (p *filePager) NewCursor() graph.AdjCursor {
	return &fileCursor{p: p, cur: p.pool.NewCursor()}
}

func (p *filePager) Stats() graph.PageCacheStats {
	s := p.pool.Stats()
	return graph.PageCacheStats{
		PageSize:      pcache.PageSize,
		BudgetBytes:   s.BudgetBytes,
		BudgetPages:   s.BudgetPages,
		ResidentPages: s.ResidentPages,
		PinnedPages:   s.PinnedPages,
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
	}
}

func (p *filePager) Close() error { return p.f.Close() }

// fileCursor adapts a pool cursor to the graph.AdjCursor element view.
// Section bases are 8-aligned and PageSize is a multiple of 8, so a
// 4-byte element is always 4-aligned within its page and never
// straddles a page boundary; likewise the (8-aligned) file size makes
// even a short last page a multiple of 8 long.
type fileCursor struct {
	p   *filePager
	cur *pcache.Cursor
}

func (c *fileCursor) view(page int64) []byte {
	b, err := c.cur.View(page)
	if err != nil {
		// Parity with an mmap'd graph losing its file (SIGBUS): the
		// storage under an open graph went away mid-read.
		panic(err)
	}
	return b
}

func (c *fileCursor) elem(off int64) graph.VertexID {
	page := off / pcache.PageSize
	b := c.view(page)
	return *(*graph.VertexID)(unsafe.Pointer(&b[off-page*pcache.PageSize]))
}

func (c *fileCursor) rangeInto(base, lo, hi int64, dst []graph.VertexID) []graph.VertexID {
	end := base + hi*4
	for off := base + lo*4; off < end; {
		page := off / pcache.PageSize
		b := c.view(page)
		rel := off - page*pcache.PageSize
		avail := int64(len(b)) - rel
		if want := end - off; want < avail {
			avail = want
		}
		dst = append(dst, unsafe.Slice((*graph.VertexID)(unsafe.Pointer(&b[rel])), avail/4)...)
		off += avail
	}
	return dst
}

func (c *fileCursor) Out(i int64) graph.VertexID { return c.elem(c.p.outBase + i*4) }

func (c *fileCursor) OutRange(lo, hi int64, dst []graph.VertexID) []graph.VertexID {
	return c.rangeInto(c.p.outBase, lo, hi, dst)
}

func (c *fileCursor) InRange(lo, hi int64, dst []graph.VertexID) []graph.VertexID {
	return c.rangeInto(c.p.inBase, lo, hi, dst)
}

func (c *fileCursor) OutPage(i int64) int64 {
	return (c.p.outBase + i*4) / pcache.PageSize
}

func (c *fileCursor) Release() { c.cur.Release() }
