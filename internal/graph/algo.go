package graph

// This file provides graph algorithms used by diagnostics, tests and
// extensions: transposition, induced subgraphs, reachability and
// strongly connected components (Tarjan's algorithm, iterative).

// Transpose returns the graph with every edge reversed, bit-identical
// to rebuilding from the reversed edge list but without materializing
// any []Edge. The transpose's offsets are the receiver's swapped
// (rows stay under the same permutation, if any), and its in-adjacency
// is the receiver's out-adjacency row by row (the reversed edge list
// is enumerated in the receiver's src-major order, so each vertex's
// gT-predecessors appear exactly in its g-successor order). Only the
// transpose's out-adjacency needs work: one counting-scatter pass over
// the receiver's edges, which groups each vertex's reversed sources in
// ascending order as the edge-list rebuild would. The pass goes
// through an AdjReader, so it streams paged receivers through the page
// cache; the result is always heap-backed and fully resident, so it
// outlives a Close of a file-backed receiver.
func (g *Graph) Transpose() *Graph {
	n := g.n
	t := &Graph{
		n:      n,
		m:      g.m,
		outOff: append([]int64(nil), g.inOff...),
		outAdj: make([]VertexID, g.m),
		inOff:  append([]int64(nil), g.outOff...),
		inAdj:  make([]VertexID, g.m),
		perm:   append([]VertexID(nil), g.perm...),
	}
	pos := make([]int64, n)
	copy(pos, t.outOff[:n])
	r := g.NewAdjReader()
	defer r.Release()
	for u := 0; u < n; u++ {
		row := r.OutNeighbors(VertexID(u))
		copy(t.inAdj[t.inOff[t.rowOf(VertexID(u))]:], row)
		for _, d := range row {
			rd := t.rowOf(d)
			t.outAdj[pos[rd]] = VertexID(u)
			pos[rd]++
		}
	}
	return t
}

// InducedSubgraph returns the subgraph induced by keep (vertices with
// keep[v] true), plus the mapping from new ids to original ids. Edges
// with either endpoint outside the kept set are dropped.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []VertexID) {
	if len(keep) != g.n {
		panic("graph: keep mask length mismatch")
	}
	remap := make([]int32, g.n)
	var orig []VertexID
	for v := 0; v < g.n; v++ {
		if keep[v] {
			remap[v] = int32(len(orig))
			orig = append(orig, VertexID(v))
		} else {
			remap[v] = -1
		}
	}
	var edges []Edge
	g.Edges(func(e Edge) bool {
		s, d := remap[e.Src], remap[e.Dst]
		if s >= 0 && d >= 0 {
			edges = append(edges, Edge{Src: VertexID(s), Dst: VertexID(d)})
		}
		return true
	})
	return fromEdges(len(orig), edges), orig
}

// Reachable returns the set of vertices reachable from start
// (including start) by BFS over out-edges.
func (g *Graph) Reachable(start VertexID) []bool {
	seen := make([]bool, g.n)
	if int(start) >= g.n {
		return seen
	}
	queue := []VertexID{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.OutNeighbors(v) {
			if !seen[d] {
				seen[d] = true
				queue = append(queue, d)
			}
		}
	}
	return seen
}

// BFSDistances returns hop distances from start over out-edges; -1
// marks unreachable vertices.
func (g *Graph) BFSDistances(start VertexID) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if int(start) >= g.n {
		return dist
	}
	dist[start] = 0
	queue := []VertexID{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.OutNeighbors(v) {
			if dist[d] < 0 {
				dist[d] = dist[v] + 1
				queue = append(queue, d)
			}
		}
	}
	return dist
}

// SCC computes strongly connected components with an iterative
// Tarjan's algorithm. It returns the component id of every vertex
// (ids are dense, in reverse topological order of the condensation:
// a component's id is >= those of components it can reach) and the
// number of components.
func (g *Graph) SCC() (comp []int32, numComponents int) {
	const unvisited = -1
	n := g.n
	comp = make([]int32, n)
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		counter int32
		stack   []VertexID // Tarjan stack
	)
	type frame struct {
		v  VertexID
		ei int // next out-neighbor index to examine
	}
	var call []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: VertexID(root)})
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, VertexID(root))
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			outs := g.OutNeighbors(f.v)
			advanced := false
			for f.ei < len(outs) {
				w := outs[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := &call[len(call)-1]
				if lowlink[v] < lowlink[parent.v] {
					lowlink[parent.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// v roots a component: pop it.
				id := int32(numComponents)
				numComponents++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					if w == v {
						break
					}
				}
			}
		}
	}
	return comp, numComponents
}

// LargestSCCMask returns a keep-mask selecting the largest strongly
// connected component (useful for mixing-time experiments, which need
// an irreducible chain even without teleportation).
func (g *Graph) LargestSCCMask() []bool {
	comp, num := g.SCC()
	if num == 0 {
		return make([]bool, g.n)
	}
	sizes := make([]int, num)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	keep := make([]bool, g.n)
	for v, c := range comp {
		keep[v] = c == int32(best)
	}
	return keep
}
