package graph

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func TestFromCSRRoundTrip(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	c := g.CSRView()
	g2, err := FromCSR(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.CSRView(), g2.CSRView()) {
		t.Fatal("FromCSR(CSRView()) is not the identity")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCSRRejectsBadOffsets(t *testing.T) {
	base := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}}).CSRView()
	cases := []struct {
		name   string
		mutate func(c *CSR)
	}{
		{"negative n", func(c *CSR) { c.NumVertices = -1 }},
		{"short outOff", func(c *CSR) { c.OutOff = c.OutOff[:2] }},
		{"short inOff", func(c *CSR) { c.InOff = c.InOff[:1] }},
		{"nonzero start", func(c *CSR) { c.OutOff = append([]int64(nil), c.OutOff...); c.OutOff[0] = 1 }},
		{"non-monotone", func(c *CSR) { c.OutOff = append([]int64(nil), c.OutOff...); c.OutOff[1] = 99 }},
		{"total mismatch", func(c *CSR) { c.OutAdj = c.OutAdj[:1] }},
		{"in total mismatch", func(c *CSR) { c.InAdj = append(c.InAdj, 0); c.OutAdj = append(c.OutAdj, 0) }},
		{"count mismatch", func(c *CSR) {
			c.InAdj = append([]VertexID(nil), c.InAdj...)
			c.InAdj = append(c.InAdj, 0)
			c.InOff = append([]int64(nil), c.InOff...)
			c.InOff[3] = 4
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			if _, err := FromCSR(c, nil); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// closeCounter records Close calls, standing in for an munmap.
type closeCounter struct{ n int }

func (c *closeCounter) Close() error { c.n++; return nil }

func TestCloseReleasesBackingOnce(t *testing.T) {
	c := FromEdges(2, []Edge{{0, 1}, {1, 0}}).CSRView()
	cc := &closeCounter{}
	g, err := FromCSR(c, cc)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if cc.n != 1 {
		t.Fatalf("backing closed %d times, want 1", cc.n)
	}
	// Heap-backed graphs: Close is a no-op.
	if err := FromEdges(2, []Edge{{0, 1}, {1, 0}}).Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCSRErrorReleasesBacking(t *testing.T) {
	cc := &closeCounter{}
	if _, err := FromCSR(CSR{NumVertices: -1}, cc); err == nil {
		t.Fatal("want error")
	}
	if cc.n != 1 {
		t.Fatalf("backing closed %d times on constructor failure, want 1", cc.n)
	}
}

func TestFromCSRErrClose(t *testing.T) {
	c := FromEdges(2, []Edge{{0, 1}, {1, 0}}).CSRView()
	wantErr := errors.New("munmap failed")
	g, err := FromCSR(c, closeFunc(func() error { return wantErr }))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want %v", err, wantErr)
	}
}

type closeFunc func() error

func (f closeFunc) Close() error { return f() }

// csrEqual compares array contents (nil and empty are the same).
func csrEqual(a, b CSR) bool {
	if a.NumVertices != b.NumVertices ||
		len(a.OutOff) != len(b.OutOff) || len(a.InOff) != len(b.InOff) ||
		len(a.OutAdj) != len(b.OutAdj) || len(a.InAdj) != len(b.InAdj) {
		return false
	}
	for i := range a.OutOff {
		if a.OutOff[i] != b.OutOff[i] || a.InOff[i] != b.InOff[i] {
			return false
		}
	}
	for i := range a.OutAdj {
		if a.OutAdj[i] != b.OutAdj[i] || a.InAdj[i] != b.InAdj[i] {
			return false
		}
	}
	return true
}

// transposeReference is the pre-refactor implementation: materialize
// the reversed edge list and rebuild by counting sort. The direct CSR
// transpose must match it array-for-array, not just as a multiset.
func transposeReference(g *Graph) *Graph {
	edges := make([]Edge, 0, g.NumEdges())
	g.Edges(func(e Edge) bool {
		edges = append(edges, Edge{Src: e.Dst, Dst: e.Src})
		return true
	})
	return fromEdges(g.n, edges)
}

func TestTransposeMatchesEdgeRebuild(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		n := r.Intn(50) + 1
		m := r.Intn(400)
		es := make([]Edge, m)
		for i := range es {
			es[i] = Edge{VertexID(r.Intn(n)), VertexID(r.Intn(n))}
		}
		g := FromEdges(n, es)
		got, want := g.Transpose(), transposeReference(g)
		if !csrEqual(got.CSRView(), want.CSRView()) {
			t.Fatalf("trial %d: CSR transpose diverges from edge-rebuild transpose", trial)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestTransposeIndependentStorage(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}, {1, 0}})
	tr := g.Transpose()
	// The transpose must own its arrays: closing a (hypothetically
	// file-backed) source must not invalidate it, so no aliasing.
	if &g.inAdj[0] == &tr.outAdj[0] {
		t.Fatal("transpose aliases source storage")
	}
	if tr.backing != nil {
		t.Fatal("transpose inherited backing")
	}
}
