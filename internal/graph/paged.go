package graph

// This file extends the storage seam (storage.go) out of core: a Graph
// whose offset arrays (and optional row permutation) are resident but
// whose adjacency lives behind an AdjPager — a bounded page cache over
// the on-disk sections (see internal/graph/gstore's paged open and
// internal/graph/pcache). The public Graph API is still identical; the
// hot paths additionally get AdjReader, a per-goroutine handle that is
// allocation-free on resident graphs and cursor-backed on paged ones.

import (
	"errors"
	"fmt"
)

// PageCacheStats is a point-in-time view of a paged graph's cache: the
// page geometry, the configured budget, the current resident/pinned
// gauges, and the access counters. The serving layer renders these in
// /metrics and /v1/stats.
type PageCacheStats struct {
	PageSize      int
	BudgetBytes   int64
	BudgetPages   int
	ResidentPages int
	PinnedPages   int
	Hits          uint64
	Misses        uint64
	Evictions     uint64
}

// An AdjCursor is one goroutine's handle on paged adjacency. Indices
// are positions into the logical outAdj/inAdj arrays (what the offset
// arrays address). Cursors keep their current page pinned between
// calls, are not safe for concurrent use, and must be Released.
//
// I/O failures surface as panics: a paged read that fails mid-walk has
// the same character as a SIGBUS on an mmap'd graph — the storage
// under an open graph went away — and threading an error return
// through every adjacency access would tax the resident fast path for
// a case no caller can meaningfully handle.
type AdjCursor interface {
	// Out returns logical outAdj[i].
	Out(i int64) VertexID
	// OutRange appends logical outAdj[lo:hi] to dst and returns it.
	OutRange(lo, hi int64, dst []VertexID) []VertexID
	// InRange appends logical inAdj[lo:hi] to dst and returns it.
	InRange(lo, hi int64, dst []VertexID) []VertexID
	// OutPage returns the cache page holding logical outAdj[i] — the
	// sort key page-aware schedulers batch on.
	OutPage(i int64) int64
	// Release unpins the cursor's current page.
	Release()
}

// An AdjPager serves a graph's adjacency out of core: cursors for
// access, stats for observability, Close to release the pool and the
// underlying file. It is the backing owner of a paged Graph (Close on
// the graph closes it).
type AdjPager interface {
	NewCursor() AdjCursor
	Stats() PageCacheStats
	Close() error
}

// PagedCSR describes a graph whose offsets (and optional permutation)
// are resident while the adjacency stays behind a pager.
type PagedCSR struct {
	NumVertices int
	NumEdges    int64
	OutOff      []int64
	InOff       []int64
	// Perm, when non-nil, is the external→internal row permutation
	// (see CSR.Perm).
	Perm  []VertexID
	Pager AdjPager
}

// FromPagedCSR wraps resident offsets plus a pager in a Graph. The
// offset invariants and the permutation's bijectivity are checked (the
// adjacency contents cannot be — they are the point of paging; the
// checksummed formats verify them at open). The pager is closed on
// error; on success the graph's Close closes it.
func FromPagedCSR(c PagedCSR) (*Graph, error) {
	fail := func(err error) (*Graph, error) {
		if c.Pager != nil {
			c.Pager.Close()
		}
		return nil, err
	}
	if c.Pager == nil {
		return fail(errors.New("graph: paged CSR needs a pager"))
	}
	n := c.NumVertices
	if n < 0 {
		return fail(errors.New("graph: negative vertex count"))
	}
	if len(c.OutOff) != n+1 || len(c.InOff) != n+1 {
		return fail(fmt.Errorf("graph: offset lengths %d/%d for n=%d", len(c.OutOff), len(c.InOff), n))
	}
	if c.OutOff[0] != 0 || c.InOff[0] != 0 {
		return fail(errors.New("graph: offsets must start at 0"))
	}
	for v := 0; v < n; v++ {
		if c.OutOff[v+1] < c.OutOff[v] || c.InOff[v+1] < c.InOff[v] {
			return fail(fmt.Errorf("graph: non-monotone offsets at vertex %d", v))
		}
	}
	if c.OutOff[n] != c.NumEdges || c.InOff[n] != c.NumEdges {
		return fail(fmt.Errorf("graph: offset totals %d/%d for m=%d", c.OutOff[n], c.InOff[n], c.NumEdges))
	}
	if err := checkPerm(n, c.Perm); err != nil {
		return fail(err)
	}
	return &Graph{
		n:       n,
		m:       c.NumEdges,
		outOff:  c.OutOff,
		inOff:   c.InOff,
		perm:    c.Perm,
		pager:   c.Pager,
		backing: c.Pager,
	}, nil
}

// checkPerm verifies perm is a bijection on [0,n) (nil is the
// identity and always fine).
func checkPerm(n int, perm []VertexID) error {
	if perm == nil {
		return nil
	}
	if len(perm) != n {
		return fmt.Errorf("graph: permutation length %d for n=%d", len(perm), n)
	}
	seen := make([]bool, n)
	for v, r := range perm {
		if int(r) >= n {
			return fmt.Errorf("graph: permutation maps %d to %d, out of range for n=%d", v, r, n)
		}
		if seen[r] {
			return fmt.Errorf("graph: permutation is not a bijection (row %d hit twice)", r)
		}
		seen[r] = true
	}
	return nil
}

// Paged reports whether the graph's adjacency lives behind a pager
// (reads go through the page cache instead of resident arrays).
func (g *Graph) Paged() bool { return g.pager != nil }

// PageCacheStats returns the page cache's counters for paged graphs;
// ok is false (and the stats zero) for resident graphs.
func (g *Graph) PageCacheStats() (PageCacheStats, bool) {
	if g.pager == nil {
		return PageCacheStats{}, false
	}
	return g.pager.Stats(), true
}

// rowOf maps an external vertex id to its internal CSR row.
func (g *Graph) rowOf(v VertexID) VertexID {
	if g.perm != nil {
		return g.perm[v]
	}
	return v
}

// AdjReader is a per-goroutine adjacency handle: on resident graphs
// its reads are the zero-copy slices OutNeighbors returns; on paged
// graphs it holds one cursor and one reusable row buffer, so a walk
// costs no allocation per step. Not safe for concurrent use; Release
// when done (a no-op on resident graphs).
type AdjReader struct {
	g      *Graph
	cur    AdjCursor
	outBuf []VertexID
	inBuf  []VertexID
}

// NewAdjReader returns a reader over g.
func (g *Graph) NewAdjReader() *AdjReader {
	r := &AdjReader{g: g}
	if g.pager != nil {
		r.cur = g.pager.NewCursor()
	}
	return r
}

// OutNeighbors returns the successors of v. On paged graphs the slice
// is the reader's scratch buffer, valid until the next call.
func (r *AdjReader) OutNeighbors(v VertexID) []VertexID {
	g := r.g
	row := g.rowOf(v)
	lo, hi := g.outOff[row], g.outOff[row+1]
	if r.cur == nil {
		return g.outAdj[lo:hi]
	}
	r.outBuf = r.cur.OutRange(lo, hi, r.outBuf[:0])
	return r.outBuf
}

// InNeighbors returns the predecessors of v, with the same aliasing
// rules as OutNeighbors.
func (r *AdjReader) InNeighbors(v VertexID) []VertexID {
	g := r.g
	row := g.rowOf(v)
	lo, hi := g.inOff[row], g.inOff[row+1]
	if r.cur == nil {
		return g.inAdj[lo:hi]
	}
	r.inBuf = r.cur.InRange(lo, hi, r.inBuf[:0])
	return r.inBuf
}

// OutDegree returns v's out-degree (always resident: offsets are never
// paged).
func (r *AdjReader) OutDegree(v VertexID) int {
	row := r.g.rowOf(v)
	return int(r.g.outOff[row+1] - r.g.outOff[row])
}

// OutAt returns the i'th successor of v (one element, one page touch
// on paged graphs — the step primitive random walks want).
func (r *AdjReader) OutAt(v VertexID, i int) VertexID {
	g := r.g
	lo := g.outOff[g.rowOf(v)]
	if r.cur == nil {
		return g.outAdj[lo+int64(i)]
	}
	return r.cur.Out(lo + int64(i))
}

// OutPageAt returns the cache page holding the i'th successor of v (0
// on resident graphs). Page-aware schedulers sort pending accesses by
// it so random access becomes near-sequential sweeps.
func (r *AdjReader) OutPageAt(v VertexID, i int) int64 {
	if r.cur == nil {
		return 0
	}
	return r.cur.OutPage(r.g.outOff[r.g.rowOf(v)] + int64(i))
}

// Release returns the reader's cursor pin (no-op on resident graphs).
// The reader stays usable; the next paged read re-pins.
func (r *AdjReader) Release() {
	if r.cur != nil {
		r.cur.Release()
	}
}
