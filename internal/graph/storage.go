package graph

// This file is the storage seam of the graph package: a Graph's four
// CSR arrays live behind it, today either heap-allocated (the Builder
// and generators) or aliased into an mmap'd gstore file (see
// internal/graph/gstore). The public Graph API is identical either
// way; only construction and release differ.

import (
	"errors"
	"fmt"
	"io"
)

// CSR is the raw compressed-sparse-row representation backing a Graph,
// in both directions. OutOff/InOff have NumVertices+1 entries;
// successors of v are OutAdj[OutOff[v]:OutOff[v+1]] and predecessors
// are InAdj[InOff[v]:InOff[v+1]].
type CSR struct {
	NumVertices int
	OutOff      []int64
	OutAdj      []VertexID
	InOff       []int64
	InAdj       []VertexID
	// Perm, when non-nil, maps an external vertex id to its internal
	// CSR row: successors of external v are
	// OutAdj[OutOff[Perm[v]]:OutOff[Perm[v]+1]], and adjacency values
	// are external ids. Degree-ordered relabeling (gstore.Relabel)
	// produces permuted CSRs; nil means rows equal external ids.
	Perm []VertexID
}

// NumEdges returns the directed edge count the arrays encode.
func (c CSR) NumEdges() int64 { return int64(len(c.OutAdj)) }

// checkOffsets verifies the structural invariants FromCSR relies on to
// slice adjacency safely: correct lengths, offsets starting at zero,
// monotone, and totals matching the adjacency lengths. It is O(n) and
// deliberately does not look at the adjacency values themselves — that
// O(E) pass is Graph.Validate, opt-in at load time.
func (c CSR) checkOffsets() error {
	n := c.NumVertices
	if n < 0 {
		return errors.New("graph: negative vertex count")
	}
	if len(c.OutOff) != n+1 || len(c.InOff) != n+1 {
		return fmt.Errorf("graph: offset lengths %d/%d for n=%d", len(c.OutOff), len(c.InOff), n)
	}
	if c.OutOff[0] != 0 || c.InOff[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	for v := 0; v < n; v++ {
		if c.OutOff[v+1] < c.OutOff[v] || c.InOff[v+1] < c.InOff[v] {
			return fmt.Errorf("graph: non-monotone offsets at vertex %d", v)
		}
	}
	if c.OutOff[n] != int64(len(c.OutAdj)) {
		return fmt.Errorf("graph: out offsets total %d but %d out-neighbors", c.OutOff[n], len(c.OutAdj))
	}
	if c.InOff[n] != int64(len(c.InAdj)) {
		return fmt.Errorf("graph: in offsets total %d but %d in-neighbors", c.InOff[n], len(c.InAdj))
	}
	if len(c.OutAdj) != len(c.InAdj) {
		return errors.New("graph: out/in edge count mismatch")
	}
	return checkPerm(n, c.Perm)
}

// FromCSR wraps pre-built CSR arrays in a Graph without copying. The
// arrays may alias external storage (an mmap'd file); backing, when
// non-nil, owns that memory and is released by the graph's Close.
//
// The O(n) offset invariants are always checked so neighbor slicing
// can never panic; adjacency contents are NOT checked here. Callers
// loading from untrusted bytes should follow up with Graph.Validate —
// checksummed formats may skip it.
func FromCSR(c CSR, backing io.Closer) (*Graph, error) {
	if err := c.checkOffsets(); err != nil {
		if backing != nil {
			backing.Close()
		}
		return nil, err
	}
	return &Graph{
		n:       c.NumVertices,
		m:       int64(len(c.OutAdj)),
		outOff:  c.OutOff,
		outAdj:  c.OutAdj,
		inOff:   c.InOff,
		inAdj:   c.InAdj,
		perm:    c.Perm,
		backing: backing,
	}, nil
}

// CSRView returns the graph's raw arrays. The slices alias internal
// storage and must not be modified; they are valid until Close. Paged
// graphs have no resident adjacency to view; CSRView panics for them
// (callers that must handle paged graphs go through AdjReader).
func (g *Graph) CSRView() CSR {
	if g.pager != nil {
		panic("graph: CSRView on a paged graph (adjacency is not resident)")
	}
	return CSR{
		NumVertices: g.n,
		OutOff:      g.outOff,
		OutAdj:      g.outAdj,
		InOff:       g.inOff,
		InAdj:       g.inAdj,
		Perm:        g.perm,
	}
}

// Close releases the graph's backing storage — the munmap for
// file-backed graphs. Heap-backed graphs are a no-op (the garbage
// collector owns their arrays). Using the graph, or any slice obtained
// from it, after Close is invalid for file-backed graphs. Close is
// idempotent.
func (g *Graph) Close() error {
	b := g.backing
	if b == nil {
		return nil
	}
	g.backing = nil
	return b.Close()
}
