// Package graph provides an immutable directed graph in compressed
// sparse row (CSR) form, with both out- and in-adjacency, plus the
// builder and statistics utilities used across the FrogWild
// reproduction.
//
// Vertices are dense uint32 identifiers in [0, NumVertices). The paper
// (Section 2.1) assumes every vertex has at least one successor
// (dout(j) > 0); the Builder offers explicit policies for repairing
// dangling vertices so that assumption can be enforced at load time.
package graph

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices
// uses IDs 0..n-1.
type VertexID = uint32

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst VertexID
}

// Graph is an immutable directed graph stored as CSR in both
// directions. Construct one with a Builder, the gen/gio packages, or
// FromCSR for pre-built (possibly file-backed) arrays.
type Graph struct {
	n int
	m int64 // directed edge count (adjacency may not be resident)

	// Out-adjacency: successors of row r are outAdj[outOff[r]:outOff[r+1]].
	// Rows equal external vertex ids unless perm is set.
	outOff []int64
	outAdj []VertexID

	// In-adjacency: predecessors of row r are inAdj[inOff[r]:inOff[r+1]].
	inOff []int64
	inAdj []VertexID

	// perm, when non-nil, maps an external vertex id to its internal
	// CSR row (a bijection on [0,n)). Adjacency VALUES are always
	// external ids, so the permutation is invisible outside this
	// package — it only reorders rows for page locality. See paged.go.
	perm []VertexID

	// pager, when non-nil, serves outAdj/inAdj out of a bounded page
	// cache instead of resident arrays (which are then nil). See
	// paged.go.
	pager AdjPager

	// backing owns the memory the arrays alias when it is not the Go
	// heap (an mmap'd gstore file, or the pager for paged graphs); nil
	// for heap-backed graphs. See storage.go.
	backing io.Closer
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.m }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	r := g.rowOf(v)
	return int(g.outOff[r+1] - g.outOff[r])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int {
	r := g.rowOf(v)
	return int(g.inOff[r+1] - g.inOff[r])
}

// OutNeighbors returns the successors of v. The returned slice aliases
// internal storage and must not be modified. On paged graphs it is a
// fresh copy (use an AdjReader on hot paths to amortize the cursor and
// the allocation).
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	r := g.rowOf(v)
	lo, hi := g.outOff[r], g.outOff[r+1]
	if g.pager == nil {
		return g.outAdj[lo:hi]
	}
	cur := g.pager.NewCursor()
	defer cur.Release()
	return cur.OutRange(lo, hi, make([]VertexID, 0, hi-lo))
}

// InNeighbors returns the predecessors of v, with the same aliasing
// rules as OutNeighbors.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	r := g.rowOf(v)
	lo, hi := g.inOff[r], g.inOff[r+1]
	if g.pager == nil {
		return g.inAdj[lo:hi]
	}
	cur := g.pager.NewCursor()
	defer cur.Release()
	return cur.InRange(lo, hi, make([]VertexID, 0, hi-lo))
}

// Edges calls fn for every edge in src order. It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(e Edge) bool) {
	r := g.NewAdjReader()
	defer r.Release()
	for v := 0; v < g.n; v++ {
		for _, d := range r.OutNeighbors(VertexID(v)) {
			if !fn(Edge{VertexID(v), d}) {
				return
			}
		}
	}
}

// EdgeSlice materializes all edges. Intended for tests and small graphs.
func (g *Graph) EdgeSlice() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	g.Edges(func(e Edge) bool {
		es = append(es, e)
		return true
	})
	return es
}

// DanglingPolicy selects how the Builder repairs vertices with
// out-degree zero, which the FrogWild process cannot handle (a frog on a
// dangling vertex would have nowhere to jump).
type DanglingPolicy int

const (
	// DanglingKeep leaves dangling vertices untouched; Build returns an
	// error if any exist unless the caller opts in with AllowDangling.
	DanglingKeep DanglingPolicy = iota
	// DanglingSelfLoop adds a self-loop to each dangling vertex.
	DanglingSelfLoop
	// DanglingBackEdges adds reverse edges from each dangling vertex to
	// its predecessors (a common web-graph repair: a sink page "links
	// back" to its referrers). Vertices with no predecessors either get
	// a self-loop.
	DanglingBackEdges
)

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n        int
	edges    []Edge
	dedup    bool
	noLoops  bool
	dangling DanglingPolicy
	allowD   bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// Dedup makes Build remove duplicate edges.
func (b *Builder) Dedup() *Builder { b.dedup = true; return b }

// NoSelfLoops makes Build drop self-loop edges (except ones added by a
// dangling policy).
func (b *Builder) NoSelfLoops() *Builder { b.noLoops = true; return b }

// Dangling sets the dangling-vertex repair policy.
func (b *Builder) Dangling(p DanglingPolicy) *Builder { b.dangling = p; return b }

// AllowDangling permits Build to succeed with dangling vertices under
// DanglingKeep. The exact PageRank solver handles dangling mass; the
// distributed random-walk engine does not.
func (b *Builder) AllowDangling() *Builder { b.allowD = true; return b }

// AddEdge appends a directed edge. It panics if an endpoint is out of
// range.
func (b *Builder) AddEdge(src, dst VertexID) *Builder {
	if int(src) >= b.n || int(dst) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", src, dst, b.n))
	}
	b.edges = append(b.edges, Edge{src, dst})
	return b
}

// AddEdges appends a batch of edges.
func (b *Builder) AddEdges(es []Edge) *Builder {
	for _, e := range es {
		b.AddEdge(e.Src, e.Dst)
	}
	return b
}

// NumBufferedEdges reports how many edges have been added so far.
func (b *Builder) NumBufferedEdges() int { return len(b.edges) }

// ErrDangling is returned by Build when dangling vertices exist under
// DanglingKeep without AllowDangling.
var ErrDangling = errors.New("graph: dangling vertices present (out-degree zero)")

// Build produces the immutable Graph. The Builder must not be reused
// afterwards.
func (b *Builder) Build() (*Graph, error) {
	edges := b.edges
	if b.noLoops {
		kept := edges[:0]
		for _, e := range edges {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	if b.dedup {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			return edges[i].Dst < edges[j].Dst
		})
		kept := edges[:0]
		var prev Edge
		for i, e := range edges {
			if i == 0 || e != prev {
				kept = append(kept, e)
			}
			prev = e
		}
		edges = kept
	}

	// Dangling repair needs degrees; compute out-degree first.
	outDeg := make([]int64, b.n)
	for _, e := range edges {
		outDeg[e.Src]++
	}
	switch b.dangling {
	case DanglingKeep:
		if !b.allowD {
			for v := 0; v < b.n; v++ {
				if outDeg[v] == 0 {
					return nil, fmt.Errorf("%w: e.g. vertex %d", ErrDangling, v)
				}
			}
		}
	case DanglingSelfLoop:
		for v := 0; v < b.n; v++ {
			if outDeg[v] == 0 {
				edges = append(edges, Edge{VertexID(v), VertexID(v)})
				outDeg[v]++
			}
		}
	case DanglingBackEdges:
		inDeg := make([]int32, b.n)
		for _, e := range edges {
			inDeg[e.Dst]++
		}
		preds := make(map[VertexID][]VertexID)
		for v := 0; v < b.n; v++ {
			if outDeg[v] == 0 {
				preds[VertexID(v)] = nil
			}
		}
		if len(preds) > 0 {
			for _, e := range edges {
				if _, ok := preds[e.Dst]; ok {
					preds[e.Dst] = append(preds[e.Dst], e.Src)
				}
			}
			for v, ps := range preds {
				if len(ps) == 0 {
					edges = append(edges, Edge{v, v})
					outDeg[v]++
					continue
				}
				for _, p := range ps {
					edges = append(edges, Edge{v, p})
				}
				outDeg[v] += int64(len(ps))
			}
		}
	}

	return fromEdges(b.n, edges), nil
}

// MustBuild is Build that panics on error. Intended for tests and
// generators that guarantee no dangling vertices.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// fromEdges constructs CSR adjacency in both directions by counting
// sort, O(n + m).
func fromEdges(n int, edges []Edge) *Graph {
	g := &Graph{
		n:      n,
		m:      int64(len(edges)),
		outOff: make([]int64, n+1),
		inOff:  make([]int64, n+1),
		outAdj: make([]VertexID, len(edges)),
		inAdj:  make([]VertexID, len(edges)),
	}
	for _, e := range edges {
		g.outOff[e.Src+1]++
		g.inOff[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	outPos := make([]int64, n)
	inPos := make([]int64, n)
	copy(outPos, g.outOff[:n])
	copy(inPos, g.inOff[:n])
	for _, e := range edges {
		g.outAdj[outPos[e.Src]] = e.Dst
		outPos[e.Src]++
		g.inAdj[inPos[e.Dst]] = e.Src
		inPos[e.Dst]++
	}
	return g
}

// FromEdges builds a graph directly from an edge list with no policies
// applied. Endpoints out of range cause a panic.
func FromEdges(n int, edges []Edge) *Graph {
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.Src, e.Dst, n))
		}
	}
	cp := make([]Edge, len(edges))
	copy(cp, edges)
	return fromEdges(n, cp)
}

// Stats summarizes a graph's degree structure.
type Stats struct {
	NumVertices int
	NumEdges    int64
	MinOutDeg   int
	MaxOutDeg   int
	MaxInDeg    int
	MeanDeg     float64
	// GiniOut measures out-degree skew in [0,1]; power-law graphs score
	// high (> 0.5), regular graphs score 0.
	GiniOut  float64
	Dangling int // vertices with out-degree zero
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{NumVertices: g.n, NumEdges: g.NumEdges(), MinOutDeg: math.MaxInt}
	if g.n == 0 {
		s.MinOutDeg = 0
		return s
	}
	degs := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		d := g.OutDegree(VertexID(v))
		degs[v] = d
		if d < s.MinOutDeg {
			s.MinOutDeg = d
		}
		if d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d == 0 {
			s.Dangling++
		}
		if id := g.InDegree(VertexID(v)); id > s.MaxInDeg {
			s.MaxInDeg = id
		}
	}
	s.MeanDeg = float64(g.NumEdges()) / float64(g.n)
	// Gini coefficient over the sorted degree sequence.
	sort.Ints(degs)
	var cum, weighted float64
	for i, d := range degs {
		cum += float64(d)
		weighted += float64(d) * float64(i+1)
	}
	if cum > 0 {
		n := float64(g.n)
		s.GiniOut = (2*weighted)/(n*cum) - (n+1)/n
	}
	return s
}

// Validate checks internal CSR invariants; it is used by property tests
// and the binary loader. It returns nil if the graph is well-formed.
// On paged graphs the adjacency checks stream through the page cache.
func (g *Graph) Validate() error {
	if len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return errors.New("graph: offset array length mismatch")
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	for v := 0; v < g.n; v++ {
		if g.outOff[v+1] < g.outOff[v] || g.inOff[v+1] < g.inOff[v] {
			return fmt.Errorf("graph: non-monotone offsets at vertex %d", v)
		}
	}
	if g.outOff[g.n] != g.m || g.inOff[g.n] != g.m {
		return errors.New("graph: offset totals do not match the edge count")
	}
	if g.pager == nil {
		if g.outOff[g.n] != int64(len(g.outAdj)) || g.inOff[g.n] != int64(len(g.inAdj)) {
			return errors.New("graph: offset totals do not match adjacency lengths")
		}
		if len(g.outAdj) != len(g.inAdj) {
			return errors.New("graph: out/in edge count mismatch")
		}
	}
	if err := checkPerm(g.n, g.perm); err != nil {
		return err
	}
	// Range-check neighbors and confirm the edge multiset agrees
	// between directions. One reader pass covers resident and paged
	// graphs alike; ids seen here are external either way.
	r := g.NewAdjReader()
	defer r.Release()
	var outSum, inSum uint64
	for v := 0; v < g.n; v++ {
		for _, d := range r.OutNeighbors(VertexID(v)) {
			if int(d) >= g.n {
				return fmt.Errorf("graph: out-neighbor %d out of range", d)
			}
			outSum += edgeHash(VertexID(v), d)
		}
		for _, s := range r.InNeighbors(VertexID(v)) {
			if int(s) >= g.n {
				return fmt.Errorf("graph: in-neighbor %d out of range", s)
			}
			inSum += edgeHash(s, VertexID(v))
		}
	}
	if outSum != inSum {
		return errors.New("graph: out/in adjacency encode different edge multisets")
	}
	return nil
}

func edgeHash(s, d VertexID) uint64 {
	x := uint64(s)<<32 | uint64(d)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
