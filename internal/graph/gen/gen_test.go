package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestPowerLawBasic(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{N: 2000, MeanOutDeg: 10, DegExponent: 2.1, PrefExponent: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Errorf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.Dangling != 0 {
		t.Errorf("dangling = %d, want 0", s.Dangling)
	}
	if s.MeanDeg < 5 || s.MeanDeg > 20 {
		t.Errorf("mean degree = %v, want ≈ 10", s.MeanDeg)
	}
	if s.MinOutDeg < 1 {
		t.Errorf("min out degree = %d", s.MinOutDeg)
	}
}

func TestPowerLawSkew(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{N: 5000, MeanOutDeg: 10, DegExponent: 2.0, PrefExponent: 1.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// In-degree must be heavy-tailed: the most popular vertex should
	// receive far more than the mean.
	if float64(s.MaxInDeg) < 10*s.MeanDeg {
		t.Errorf("max in-degree %d not heavy-tailed (mean %v)", s.MaxInDeg, s.MeanDeg)
	}
	if s.GiniOut < 0.2 {
		t.Errorf("out-degree Gini = %v, want skewed", s.GiniOut)
	}
}

func TestPowerLawNoSelfLoopsNoDup(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{N: 500, MeanOutDeg: 8, DegExponent: 2.2, PrefExponent: 1.0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		seen := map[uint32]bool{}
		for _, d := range g.OutNeighbors(uint32(v)) {
			if int(d) == v {
				t.Fatalf("self loop at %d", v)
			}
			if seen[d] {
				t.Fatalf("duplicate edge %d->%d", v, d)
			}
			seen[d] = true
		}
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a, _ := PowerLaw(TwitterLike(1000, 42))
	b, _ := PowerLaw(TwitterLike(1000, 42))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	ea, eb := a.EdgeSlice(), b.EdgeSlice()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c, _ := PowerLaw(TwitterLike(1000, 43))
	if c.NumEdges() == a.NumEdges() {
		same := true
		ec := c.EdgeSlice()
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestPowerLawErrors(t *testing.T) {
	if _, err := PowerLaw(PowerLawConfig{N: 1}); err == nil {
		t.Error("N=1 should error")
	}
	if _, err := PowerLaw(PowerLawConfig{N: 10, MeanOutDeg: 0.5, DegExponent: 2}); err == nil {
		t.Error("MeanOutDeg<1 should error")
	}
	if _, err := PowerLaw(PowerLawConfig{N: 10, MeanOutDeg: 2, DegExponent: 1.0}); err == nil {
		t.Error("DegExponent<=1 should error")
	}
}

func TestPresets(t *testing.T) {
	tw := TwitterLike(10000, 1)
	lj := LiveJournalLike(10000, 1)
	if tw.MeanOutDeg <= lj.MeanOutDeg {
		t.Error("twitter preset should be denser than livejournal")
	}
	g, err := PowerLaw(lj)
	if err != nil {
		t.Fatal(err)
	}
	if graph.ComputeStats(g).Dangling != 0 {
		t.Error("preset graph has dangling vertices")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(1000, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.Dangling != 0 {
		t.Errorf("dangling = %d", s.Dangling)
	}
	// 5000 requested + up to n self-loop repairs.
	if s.NumEdges < 5000 || s.NumEdges > 6000 {
		t.Errorf("edges = %d", s.NumEdges)
	}
	// ER should NOT be skewed.
	if s.GiniOut > 0.35 {
		t.Errorf("ER Gini = %v, too skewed", s.GiniOut)
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(DefaultRMAT(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Errorf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.Dangling != 0 {
		t.Errorf("dangling = %d", s.Dangling)
	}
	// R-MAT concentrates edges on low-id vertices: skew expected.
	if s.GiniOut < 0.3 {
		t.Errorf("RMAT Gini = %v, want skewed", s.GiniOut)
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0}); err == nil {
		t.Error("scale 0 should error")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 4, A: 0.5, B: 0.3, C: 0.3}); err == nil {
		t.Error("probabilities > 1 should error")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(10)
	if g.NumEdges() != 10 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if g.OutDegree(uint32(v)) != 1 || g.InDegree(uint32(v)) != 1 {
			t.Fatalf("cycle degree wrong at %d", v)
		}
		if g.OutNeighbors(uint32(v))[0] != uint32((v+1)%10) {
			t.Fatalf("cycle edge wrong at %d", v)
		}
	}
}

func TestStar(t *testing.T) {
	g := Star(11)
	if g.OutDegree(0) != 10 || g.InDegree(0) != 10 {
		t.Error("hub degrees wrong")
	}
	for v := 1; v < 11; v++ {
		if g.OutDegree(uint32(v)) != 1 {
			t.Fatalf("leaf %d out-degree %d", v, g.OutDegree(uint32(v)))
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.NumEdges() != 30 {
		t.Errorf("edges = %d, want 30", g.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if g.OutDegree(uint32(v)) != 5 || g.InDegree(uint32(v)) != 5 {
			t.Fatal("complete graph degrees wrong")
		}
	}
}

func TestPowerLawDegreeTail(t *testing.T) {
	// The complementary CDF of out-degree should be convexly decaying:
	// count(deg >= 4x) << count(deg >= x) by much more than 1/4 (power
	// law), unlike an exponential tail. Loose sanity check.
	g, err := PowerLaw(PowerLawConfig{N: 20000, MeanOutDeg: 10, DegExponent: 2.0, PrefExponent: 1.0, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	count := func(thresh int) int {
		c := 0
		for v := 0; v < g.NumVertices(); v++ {
			if g.OutDegree(uint32(v)) >= thresh {
				c++
			}
		}
		return c
	}
	c10, c40 := count(10), count(40)
	if c10 == 0 {
		t.Skip("degenerate sample")
	}
	ratio := float64(c40) / float64(c10)
	// For Zipf exponent 2 the CCDF ratio at 4x is ≈ 4^-1 = 0.25 before
	// scaling; just require a real tail exists and decays.
	if c40 == 0 {
		t.Errorf("no heavy tail: c40 = 0 (c10 = %d)", c10)
	}
	if ratio > 0.6 {
		t.Errorf("tail not decaying: ratio = %v", ratio)
	}
}
