// Package gen provides synthetic directed-graph generators used in place
// of the paper's Twitter and LiveJournal datasets.
//
// The central generator is the Zipf configuration model with a
// preferential (power-law) destination distribution: out-degrees are
// drawn from a bounded Zipf law and destinations are drawn from a Zipf
// popularity vector over vertices. This reproduces the two structural
// properties FrogWild's evaluation depends on: heavy-tailed in/out
// degrees (which drive vertex-cut replication factors) and a PageRank
// vector whose tail follows a power law (Proposition 7 in the paper,
// after Becchetti & Castillo).
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// PowerLawConfig parameterizes the Zipf configuration model.
type PowerLawConfig struct {
	N            int     // number of vertices
	MeanOutDeg   float64 // target mean out-degree
	DegExponent  float64 // Zipf exponent for out-degrees (≈ 2.0–2.3 for social graphs)
	PrefExponent float64 // Zipf exponent for destination popularity (≈ 0.8–1.2)
	MaxDegree    int     // out-degree cap; 0 means N-1
	Seed         uint64
}

// PowerLaw generates a directed power-law graph. Every vertex receives
// at least one out-edge, so the result never has dangling vertices
// (matching the paper's dout > 0 assumption). Self-loops are avoided
// by redrawing; parallel edges are deduplicated per source.
func PowerLaw(cfg PowerLawConfig) (*graph.Graph, error) {
	if cfg.N <= 1 {
		return nil, fmt.Errorf("gen: PowerLaw needs N > 1, got %d", cfg.N)
	}
	if cfg.MeanOutDeg < 1 {
		return nil, fmt.Errorf("gen: MeanOutDeg must be >= 1, got %v", cfg.MeanOutDeg)
	}
	if cfg.DegExponent <= 1 {
		return nil, fmt.Errorf("gen: DegExponent must be > 1, got %v", cfg.DegExponent)
	}
	maxDeg := cfg.MaxDegree
	if maxDeg <= 0 || maxDeg > cfg.N-1 {
		maxDeg = cfg.N - 1
	}
	r := rng.Derive(cfg.Seed, 0xD06)

	// Draw raw Zipf degrees, then scale to hit the target mean. The
	// bounded Zipf mean is computed empirically from the draw itself,
	// which keeps the code free of special-function evaluations.
	degs := make([]int, cfg.N)
	zipf := rng.NewZipf(cfg.DegExponent, 1, maxDeg)
	var total float64
	for i := range degs {
		degs[i] = zipf.Sample(r)
		total += float64(degs[i])
	}
	scale := cfg.MeanOutDeg * float64(cfg.N) / total
	var m int64
	for i := range degs {
		d := int(float64(degs[i])*scale + 0.5)
		if d < 1 {
			d = 1
		}
		if d > maxDeg {
			d = maxDeg
		}
		degs[i] = d
		m += int64(d)
	}

	// Destination popularity: Zipf weights over a random permutation of
	// vertices, so popular destinations are not correlated with vertex id.
	prefExp := cfg.PrefExponent
	if prefExp <= 0 {
		prefExp = 1.0
	}
	weights := rng.PowerLawWeights(cfg.N, prefExp)
	perm := make([]int, cfg.N)
	r.Perm(perm)
	permuted := make([]float64, cfg.N)
	for i, p := range perm {
		permuted[p] = weights[i]
	}
	table := rng.NewAliasTable(permuted)

	edges := make([]graph.Edge, 0, m)
	seen := make(map[uint32]struct{}, 64)
	for v := 0; v < cfg.N; v++ {
		clear(seen)
		want := degs[v]
		attempts := 0
		for len(seen) < want {
			d := uint32(table.Sample(r))
			attempts++
			if attempts > 20*want+100 {
				// Extremely skewed preference vectors can make unique
				// destinations scarce; fall back to uniform picks.
				d = uint32(r.Intn(cfg.N))
			}
			if int(d) == v {
				continue
			}
			if _, dup := seen[d]; dup {
				continue
			}
			seen[d] = struct{}{}
			edges = append(edges, graph.Edge{Src: uint32(v), Dst: d})
		}
	}
	return graph.FromEdges(cfg.N, edges), nil
}

// TwitterLike returns a PowerLawConfig sized like a scaled-down Twitter
// follower graph (the paper's 41.6M-vertex, 1.4B-edge graph has mean
// degree ≈ 33.6 and strongly skewed in-degrees). scale selects the
// vertex count.
func TwitterLike(n int, seed uint64) PowerLawConfig {
	return PowerLawConfig{
		N:            n,
		MeanOutDeg:   30,
		DegExponent:  2.0,
		PrefExponent: 1.1,
		MaxDegree:    n / 10,
		Seed:         seed,
	}
}

// LiveJournalLike returns a PowerLawConfig sized like a scaled-down
// LiveJournal graph (4.8M vertices, 69M edges, mean degree ≈ 14.3,
// milder skew than Twitter).
func LiveJournalLike(n int, seed uint64) PowerLawConfig {
	return PowerLawConfig{
		N:            n,
		MeanOutDeg:   14,
		DegExponent:  2.2,
		PrefExponent: 0.9,
		MaxDegree:    n / 20,
		Seed:         seed,
	}
}

// ErdosRenyi generates a directed G(n, m) graph with m edges chosen
// uniformly at random (self-loops excluded, parallel edges allowed),
// then repairs dangling vertices with self-loops.
func ErdosRenyi(n int, m int64, seed uint64) (*graph.Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n > 1")
	}
	r := rng.Derive(seed, 0xE12)
	b := graph.NewBuilder(n).Dangling(graph.DanglingSelfLoop)
	for i := int64(0); i < m; i++ {
		s := uint32(r.Intn(n))
		d := uint32(r.Intn(n))
		for d == s {
			d = uint32(r.Intn(n))
		}
		b.AddEdge(s, d)
	}
	return b.Build()
}

// RMATConfig parameterizes the recursive-matrix (Kronecker) generator of
// Chakrabarti et al., the standard synthetic web-graph model (Graph500
// uses a=0.57, b=c=0.19, d=0.05).
type RMATConfig struct {
	Scale      int // n = 2^Scale vertices
	EdgeFactor int // m = EdgeFactor * n edges
	A, B, C    float64
	Seed       uint64
	NoDedup    bool // keep parallel edges (faster, Graph500-style)
}

// DefaultRMAT returns the Graph500 parameterization at the given scale.
func DefaultRMAT(scale, edgeFactor int, seed uint64) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, Seed: seed}
}

// RMAT generates an R-MAT graph. Dangling vertices are repaired with
// self-loops so the result satisfies dout > 0 everywhere.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of [1,30]", cfg.Scale)
	}
	if cfg.A <= 0 || cfg.B < 0 || cfg.C < 0 || cfg.A+cfg.B+cfg.C >= 1 {
		return nil, fmt.Errorf("gen: RMAT probabilities invalid (a=%v b=%v c=%v)", cfg.A, cfg.B, cfg.C)
	}
	n := 1 << cfg.Scale
	m := int64(cfg.EdgeFactor) * int64(n)
	r := rng.Derive(cfg.Seed, 0x12A7)
	b := graph.NewBuilder(n).Dangling(graph.DanglingSelfLoop).NoSelfLoops()
	if !cfg.NoDedup {
		b.Dedup()
	}
	for i := int64(0); i < m; i++ {
		var src, dst int
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			u := r.Float64()
			switch {
			case u < cfg.A:
				// top-left quadrant: no bits set
			case u < cfg.A+cfg.B:
				dst |= 1 << bit
			case u < cfg.A+cfg.B+cfg.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		b.AddEdge(uint32(src), uint32(dst))
	}
	return b.Build()
}

// Cycle returns the directed n-cycle 0→1→…→n-1→0; useful as a
// worst-case mixing-time test graph.
func Cycle(n int) *graph.Graph {
	es := make([]graph.Edge, n)
	for v := 0; v < n; v++ {
		es[v] = graph.Edge{Src: uint32(v), Dst: uint32((v + 1) % n)}
	}
	return graph.FromEdges(n, es)
}

// Star returns a graph where vertex 0 points to all others and all
// others point back to 0; vertex 0 dominates the PageRank vector.
func Star(n int) *graph.Graph {
	es := make([]graph.Edge, 0, 2*(n-1))
	for v := 1; v < n; v++ {
		es = append(es, graph.Edge{Src: 0, Dst: uint32(v)}, graph.Edge{Src: uint32(v), Dst: 0})
	}
	return graph.FromEdges(n, es)
}

// Complete returns the complete directed graph on n vertices (no
// self-loops); its PageRank vector is exactly uniform.
func Complete(n int) *graph.Graph {
	es := make([]graph.Edge, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				es = append(es, graph.Edge{Src: uint32(s), Dst: uint32(d)})
			}
		}
	}
	return graph.FromEdges(n, es)
}
