package gio

import (
	"io"

	"repro/internal/graph"
	"repro/internal/graph/gstore"
)

// A Format is one magic-identified graph file format Load can
// auto-detect. Formats register themselves (the built-in gstore CSR
// and FWG1 binary formats below; future formats from their own
// packages), so adding an on-disk format never means editing Load's
// dispatch again.
type Format struct {
	// Name is the format's human-readable name.
	Name string
	// Magic is the leading byte sequence that identifies the format.
	Magic string
	// Open loads from a file on disk. Optional: formats that can map
	// the file (gstore) set it; Load prefers it over Read for plain
	// (non-gzip) paths.
	Open func(path string, opts LoadOptions) (*graph.Graph, error)
	// Read loads from a byte stream (gzip files, pipes) positioned at
	// the magic. Required.
	Read func(r io.Reader, opts LoadOptions) (*graph.Graph, error)
}

// formats is the registry, in registration order; lookup prefers the
// longest matching magic so a short magic can never shadow a longer
// one sharing its prefix.
var formats []Format

// RegisterFormat adds a format to Load's auto-detection.
func RegisterFormat(f Format) { formats = append(formats, f) }

// lookupFormat finds the registered format whose magic prefixes head.
func lookupFormat(head []byte) (Format, bool) {
	best := -1
	for i, f := range formats {
		if len(head) >= len(f.Magic) && string(head[:len(f.Magic)]) == f.Magic {
			if best < 0 || len(f.Magic) > len(formats[best].Magic) {
				best = i
			}
		}
	}
	if best < 0 {
		return Format{}, false
	}
	return formats[best], true
}

func init() {
	RegisterFormat(Format{
		Name: "gstore CSR",
		// The 7-byte shared prefix covers both FWGSTOR1 and the
		// relabeled FWGSTOR2; gstore dispatches the version itself.
		Magic: gstore.MagicPrefix,
		Open: func(path string, opts LoadOptions) (*graph.Graph, error) {
			return gstore.Open(path, gstoreOptions(opts))
		},
		Read: func(r io.Reader, opts LoadOptions) (*graph.Graph, error) {
			return gstore.Read(r, gstoreOptions(opts))
		},
	})
	RegisterFormat(Format{
		Name:  "FWG1 binary edge list",
		Magic: binaryMagic,
		Read: func(r io.Reader, opts LoadOptions) (*graph.Graph, error) {
			// The FWG1 format has no checksums, so the post-load
			// validation pass runs unless explicitly disabled.
			return readBinary(r, opts.Validate != ValidateOff)
		},
	})
}

// gstoreOptions maps Load's policy knobs onto the gstore schema's.
func gstoreOptions(opts LoadOptions) gstore.OpenOptions {
	return gstore.OpenOptions{Mode: opts.Mmap, Validate: opts.Validate == ValidateOn, Mem: opts.Mem}
}
