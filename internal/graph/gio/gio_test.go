package gio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment line
% another comment
0 1
1 2
2 0

0 2
`
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 4 {
		t.Errorf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListRemap(t *testing.T) {
	// Sparse original ids must be densified in first-seen order.
	in := "1000 7\n7 999999\n999999 1000\n"
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", g.NumVertices())
	}
	// 1000->0, 7->1, 999999->2
	if g.OutNeighbors(0)[0] != 1 || g.OutNeighbors(1)[0] != 2 || g.OutNeighbors(2)[0] != 0 {
		t.Error("remapping order wrong")
	}
}

func TestReadEdgeListTabs(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0\t1\n1\t0\n"), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("m = %d", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n"), EdgeListOptions{}); err == nil {
		t.Error("single-field line should error")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n"), EdgeListOptions{}); err == nil {
		t.Error("non-numeric should error")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 -1\n"), EdgeListOptions{}); err == nil {
		t.Error("negative id should error")
	}
}

func TestReadEdgeListDangling(t *testing.T) {
	in := "0 1\n" // vertex 1 dangling
	if _, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{}); err == nil {
		t.Error("dangling should error under default policy")
	}
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{Dangling: graph.DanglingSelfLoop})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(1) != 1 {
		t.Error("self-loop repair failed")
	}
	g2, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{AllowDangling: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.OutDegree(1) != 0 {
		t.Error("AllowDangling should keep the dangling vertex")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 300, MeanOutDeg: 5, DegExponent: 2.1, PrefExponent: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 500, MeanOutDeg: 6, DegExponent: 2.0, PrefExponent: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed sizes")
	}
	a, b := g.EdgeSlice(), g2.EdgeSlice()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(bytes.NewReader([]byte("NOPE12345678")))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := gen.Cycle(10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	_, err := ReadBinary(bytes.NewReader(data[:len(data)-4]))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat for truncation, got %v", err)
	}
}

func TestFileRoundTripGzip(t *testing.T) {
	dir := t.TempDir()
	g := gen.Cycle(50)

	elPath := filepath.Join(dir, "g.txt.gz")
	if err := SaveEdgeList(elPath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(elPath, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 50 {
		t.Errorf("gz edge list round trip: m = %d", g2.NumEdges())
	}

	binPath := filepath.Join(dir, "g.bin.gz")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	g3, err := LoadBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != 50 {
		t.Errorf("gz binary round trip: m = %d", g3.NumEdges())
	}
}

func TestLoadAutoDetect(t *testing.T) {
	dir := t.TempDir()
	g := gen.Star(10)

	binPath := filepath.Join(dir, "a.graph")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	gb, err := Load(binPath, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gb.NumEdges() != g.NumEdges() {
		t.Error("auto-detected binary load wrong")
	}

	txtPath := filepath.Join(dir, "a.txt")
	if err := SaveEdgeList(txtPath, g); err != nil {
		t.Fatal(err)
	}
	gt, err := Load(txtPath, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gt.NumEdges() != g.NumEdges() {
		t.Error("auto-detected text load wrong")
	}
}

// TestBinarySaveLoadRoundTripAutoDetect pins the contract the facade's
// LoadGraph relies on: SaveBinary output round-trips edge-exactly
// through the auto-detecting Load path (magic-byte sniff), with and
// without gzip, without touching the edge-list parser.
func TestBinarySaveLoadRoundTripAutoDetect(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 400, MeanOutDeg: 7, DegExponent: 2.2, PrefExponent: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"g.bin", "g.bin.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveBinary(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := Load(path, EdgeListOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: sizes changed: %d/%d vs %d/%d",
				name, g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		a, b := g.EdgeSlice(), g2.EdgeSlice()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestLoadShortTextFile: files shorter than the 4-byte magic must fall
// through to the edge-list parser, not error out of the sniff.
func TestLoadShortTextFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.txt")
	if err := os.WriteFile(path, []byte("0 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path, EdgeListOptions{Dangling: graph.DanglingSelfLoop})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 {
		t.Errorf("n = %d, want 2", g.NumVertices())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path/graph.txt", EdgeListOptions{}); err == nil {
		t.Error("missing file should error")
	}
}
