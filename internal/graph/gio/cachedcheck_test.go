package gio

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestOpenCachedChecked pins the CLIs' shared -graph-cache protocol:
// no cache path builds directly, a generator-backed cache hit with a
// stale vertex count is a loud error naming the cache, and file-backed
// loads (genN = 0) skip the guard.
func TestOpenCachedChecked(t *testing.T) {
	mk := func(n int) func() (*graph.Graph, error) {
		return func() (*graph.Graph, error) {
			return graph.FromEdges(n, []graph.Edge{{Src: 0, Dst: 1}}), nil
		}
	}

	// Empty cache path: build runs every time, no files involved.
	g, err := OpenCachedChecked("", 3, mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", g.NumVertices())
	}

	// Miss then hit through the cache, count matching.
	cache := filepath.Join(t.TempDir(), "g.csr")
	for range 2 {
		g, err := OpenCachedChecked(cache, 5, mk(5))
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != 5 {
			t.Fatalf("n = %d, want 5", g.NumVertices())
		}
		g.Close()
	}

	// A hit that no longer matches the generator's -n is the stale
	// guard's case: an error pointing at the cache file, not a silent
	// wrong-sized graph.
	if _, err := OpenCachedChecked(cache, 7, mk(7)); err == nil {
		t.Fatal("stale cache accepted")
	} else if !strings.Contains(err.Error(), cache) || !strings.Contains(err.Error(), "delete the cache") {
		t.Fatalf("unhelpful stale-cache error: %v", err)
	}

	// genN = 0 (graph loaded from a file, not generated): the guard is
	// off and the cached graph is served as-is.
	g2, err := OpenCachedChecked(cache, 0, mk(7))
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if g2.NumVertices() != 5 {
		t.Fatalf("n = %d, want the cached 5", g2.NumVertices())
	}
}
