// Package gio reads and writes graphs in three formats:
//
//   - SNAP-style edge-list text: one "src dst" pair per line, '#'
//     comments allowed, the format of the paper's LiveJournal and
//     Twitter datasets. Vertex ids are remapped densely in first-seen
//     order unless they are already dense.
//   - A compact binary edge-list format ("FWG1") for fast reloads;
//     loading rebuilds the CSR arrays.
//   - The gstore mmap-able CSR format ("FWGSTOR1", see
//     internal/graph/gstore): checksummed sections that Load opens
//     zero-copy, so open time is independent of graph size.
//
// Load auto-detects all three by magic. Files ending in ".gz" are
// compressed/decompressed transparently (a gzipped gstore file is
// decoded from the stream instead of mmap'd).
package gio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/graph/gstore"
	"repro/internal/secfile"
)

// openReader opens path for reading, wrapping in gzip when the name
// ends in ".gz".
func openReader(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }
func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// openWriter creates path for writing, wrapping in gzip when the name
// ends in ".gz". Call the returned closer to flush.
func openWriter(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }
func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// EdgeListOptions controls text edge-list parsing.
type EdgeListOptions struct {
	// Dangling is the repair policy applied after loading.
	Dangling graph.DanglingPolicy
	// AllowDangling permits dangling vertices under DanglingKeep.
	AllowDangling bool
	// Dedup removes duplicate edges.
	Dedup bool
	// NoSelfLoops drops self loops.
	NoSelfLoops bool
}

// ReadEdgeList parses a SNAP-style edge-list stream. Vertex ids are
// remapped to dense [0, n) in first-appearance order.
func ReadEdgeList(r io.Reader, opts EdgeListOptions) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	idmap := make(map[uint64]uint32)
	var edges []graph.Edge
	lineNo := 0
	lookup := func(raw uint64) uint32 {
		if id, ok := idmap[raw]; ok {
			return id
		}
		id := uint32(len(idmap))
		idmap[raw] = id
		return id
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gio: line %d: want 'src dst', got %q", lineNo, line)
		}
		s, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad src: %v", lineNo, err)
		}
		d, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad dst: %v", lineNo, err)
		}
		edges = append(edges, graph.Edge{Src: lookup(s), Dst: lookup(d)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(len(idmap)).Dangling(opts.Dangling)
	if opts.AllowDangling {
		b.AllowDangling()
	}
	if opts.Dedup {
		b.Dedup()
	}
	if opts.NoSelfLoops {
		b.NoSelfLoops()
	}
	b.AddEdges(edges)
	return b.Build()
}

// LoadEdgeList reads an edge-list file (optionally .gz).
func LoadEdgeList(path string, opts EdgeListOptions) (*graph.Graph, error) {
	rc, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return ReadEdgeList(rc, opts)
}

// WriteEdgeList writes the graph as "src dst" lines.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var scratch [24]byte
	var outerErr error
	g.Edges(func(e graph.Edge) bool {
		buf := strconv.AppendUint(scratch[:0], uint64(e.Src), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			outerErr = err
			return false
		}
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	return bw.Flush()
}

// SaveEdgeList writes an edge-list file (optionally .gz).
func SaveEdgeList(path string, g *graph.Graph) error {
	wc, err := openWriter(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(wc, g); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// binaryMagic identifies the binary graph format, version 1.
const binaryMagic = "FWG1"

// WriteBinary serializes the graph in the compact binary format:
// magic, n (u64), m (u64), then m (src,dst) u32 pairs in CSR order.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	var outerErr error
	g.Edges(func(e graph.Edge) bool {
		binary.LittleEndian.PutUint32(rec[0:4], e.Src)
		binary.LittleEndian.PutUint32(rec[4:8], e.Dst)
		if _, err := bw.Write(rec[:]); err != nil {
			outerErr = err
			return false
		}
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	return bw.Flush()
}

// ErrBadFormat indicates a corrupt or foreign binary graph file.
var ErrBadFormat = errors.New("gio: not a FWG1 binary graph")

// ReadBinary deserializes a graph written by WriteBinary, including
// the O(E) structural validation (the format has no checksums, so the
// rebuilt CSR is the only integrity check). Use LoadWith with
// ValidateOff to skip it.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	return readBinary(bufio.NewReaderSize(r, 1<<20), true)
}

// readBinary is ReadBinary over an existing buffered reader with the
// validation pass optional.
func readBinary(br io.Reader, validate bool) (*graph.Graph, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, ErrBadFormat
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	if n > 1<<31 || m > 1<<40 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrBadFormat, n, m)
	}
	// Grow the edge slice as records arrive instead of trusting the
	// header's m for one up-front allocation: a truncated or hostile
	// file then fails with a format error once the stream ends, having
	// allocated memory proportional to the actual data.
	edges := make([]graph.Edge, 0, min(m, 1<<20))
	var rec [8]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at edge %d", ErrBadFormat, i)
		}
		s := binary.LittleEndian.Uint32(rec[0:4])
		d := binary.LittleEndian.Uint32(rec[4:8])
		if uint64(s) >= n || uint64(d) >= n {
			return nil, fmt.Errorf("%w: edge %d out of range", ErrBadFormat, i)
		}
		edges = append(edges, graph.Edge{Src: s, Dst: d})
	}
	g := graph.FromEdges(int(n), edges)
	if validate {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return g, nil
}

// SaveBinary writes the binary format to path (optionally .gz).
func SaveBinary(path string, g *graph.Graph) error {
	wc, err := openWriter(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(wc, g); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// LoadBinary reads the binary format from path (optionally .gz).
func LoadBinary(path string) (*graph.Graph, error) {
	rc, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return ReadBinary(rc)
}

// ValidateMode says whether loaders run the O(E) Graph.Validate pass
// after building the graph.
type ValidateMode int

const (
	// ValidateAuto validates formats with no integrity protection of
	// their own (the FWG1 binary edge list) and skips the pass where
	// it is redundant: gstore files carry per-section checksums, and
	// edge-list text is built by the Builder, which only produces
	// well-formed graphs.
	ValidateAuto ValidateMode = iota
	// ValidateOn always runs the pass — the right choice for files
	// from untrusted sources, including crafted gstore files whose
	// checksums match their (hostile) content.
	ValidateOn
	// ValidateOff never runs it.
	ValidateOff
)

// LoadOptions controls LoadWith across all three formats.
type LoadOptions struct {
	// EdgeList applies when the file turns out to be edge-list text.
	EdgeList EdgeListOptions
	// Validate selects the post-load O(E) validation policy.
	Validate ValidateMode
	// Mmap selects how gstore files are opened (auto = mmap with
	// buffered-read fallback). Ignored for the other formats and for
	// gzipped gstore streams, which are always buffered.
	Mmap gstore.OpenMode
	// Mem, when > 0, opens gstore files paged with roughly this many
	// bytes of adjacency resident (the bigger-than-RAM path; see
	// gstore.OpenOptions.Mem). Formats that cannot bound residency —
	// edge lists, FWG1 binary, gzipped streams — are an error under a
	// budget rather than a silent full load.
	Mem int64
}

// Load loads a graph from path with default options, auto-detecting
// the format by magic: gstore CSR (opened zero-copy via mmap when
// possible), FWG1 binary, or edge-list text.
func Load(path string, opts EdgeListOptions) (*graph.Graph, error) {
	return LoadWith(path, LoadOptions{EdgeList: opts})
}

// LoadWith is Load with explicit validation and mmap policy. Formats
// are dispatched through the magic registry (see RegisterFormat);
// files matching no registered magic parse as edge-list text.
func LoadWith(path string, opts LoadOptions) (*graph.Graph, error) {
	rc, err := openReader(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(rc, 1<<20)
	head, _ := br.Peek(8)
	if f, ok := lookupFormat(head); ok {
		if f.Open != nil && !strings.HasSuffix(path, ".gz") {
			// Reopen through the format's file path (the mmap or page
			// cache needs the file, not this buffered stream).
			rc.Close()
			return f.Open(path, opts)
		}
		defer rc.Close()
		if opts.Mem > 0 {
			return nil, fmt.Errorf("gio: %s: -graph-mem budget needs an uncompressed gstore file; %s streams load fully resident", path, f.Name)
		}
		return f.Read(br, opts)
	}
	defer rc.Close()
	if opts.Mem > 0 {
		return nil, fmt.Errorf("gio: %s: -graph-mem budget needs an uncompressed gstore file; edge-list text loads fully resident", path)
	}
	g, err := ReadEdgeList(br, opts.EdgeList)
	if err != nil {
		return nil, err
	}
	if opts.Validate == ValidateOn {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SaveCSR writes g in the gstore mmap-able CSR format. Plain paths are
// written atomically (temp file + rename); ".gz" paths are gzip
// streams, which Load decodes buffered instead of mmap'ing.
func SaveCSR(path string, g *graph.Graph) error {
	if !strings.HasSuffix(path, ".gz") {
		return gstore.Save(path, g)
	}
	wc, err := openWriter(path)
	if err != nil {
		return err
	}
	if err := gstore.Write(wc, g); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// CacheOptions tunes the -graph-cache protocol.
type CacheOptions struct {
	// Mem, when > 0, opens the cache paged with roughly this many
	// bytes of adjacency resident (gstore.OpenOptions.Mem).
	Mem int64
	// Relabel applies degree-ordered relabeling (gstore.Relabel) when
	// the cache is built, so the saved file packs hot rows onto hot
	// pages. A cache that already exists is opened as-is — delete it
	// to re-save with relabeling.
	Relabel bool
}

// openMode names how the cache will be opened — paged with a budget,
// mmap, or buffered — so cache failures say which path broke
// (a paged-open failure and a cache-miss rebuild failure look alike
// without it).
func (o CacheOptions) openMode() string {
	switch {
	case o.Mem > 0:
		return fmt.Sprintf("paged, budget %d bytes", o.Mem)
	case secfile.MmapSupported:
		return "mmap"
	default:
		return "buffered"
	}
}

// OpenCached is the graph-cache protocol the CLIs' -graph-cache flag
// speaks: if cache exists it is opened zero-copy (mmap) and build is
// never called; on a miss the graph is built, saved to cache
// atomically, and reopened through the cache so the caller gets the
// file-backed arrays it will get on every subsequent start. A corrupt
// cache is an error, not a silent rebuild — delete the file to force a
// rebuild.
func OpenCached(cache string, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	return OpenCachedWith(cache, CacheOptions{}, build)
}

// OpenCachedWith is OpenCached with paging and relabeling knobs; see
// CacheOptions.
func OpenCachedWith(cache string, opts CacheOptions, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	mode := opts.openMode()
	open := func() (*graph.Graph, error) {
		return gstore.Open(cache, gstore.OpenOptions{Mem: opts.Mem})
	}
	g, err := open()
	if err == nil {
		return g, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("gio: graph cache %s (%s open): %w", cache, mode, err)
	}
	built, err := build()
	if err != nil {
		return nil, err
	}
	if opts.Relabel {
		relabeled, err := gstore.Relabel(built)
		if err != nil {
			built.Close()
			return nil, fmt.Errorf("gio: relabeling graph for cache %s: %w", cache, err)
		}
		built.Close()
		built = relabeled
	}
	if err := gstore.Save(cache, built); err != nil {
		built.Close()
		return nil, fmt.Errorf("gio: writing graph cache %s: %w", cache, err)
	}
	// Release the built graph's storage (a no-op for heap-backed
	// graphs, an munmap if build itself loaded a file): the caller
	// gets the cache-backed arrays instead.
	if err := built.Close(); err != nil {
		return nil, fmt.Errorf("gio: releasing built graph: %w", err)
	}
	g, err = open()
	if err != nil {
		return nil, fmt.Errorf("gio: reopening graph cache %s (%s open): %w", cache, mode, err)
	}
	return g, nil
}

// OpenCachedChecked is the CLIs' full -graph-cache protocol: an empty
// cache path just builds, otherwise OpenCached runs, and — because the
// cache key is only the file path — a hit is guarded against silently
// masking changed generation flags: when the graph comes from a
// generator (genN > 0) rather than an input file, a cached graph whose
// vertex count differs from genN is an error telling the user to
// delete the stale cache.
func OpenCachedChecked(cache string, genN int, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	return OpenCachedCheckedWith(cache, CacheOptions{}, genN, build)
}

// OpenCachedCheckedWith is OpenCachedChecked with paging and
// relabeling knobs. A memory budget without a cache file is an error:
// paging needs a gstore file to page from.
func OpenCachedCheckedWith(cache string, opts CacheOptions, genN int, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	if cache == "" {
		if opts.Mem > 0 {
			return nil, errors.New("gio: a -graph-mem budget needs a gstore file to page from: set -graph-cache (or point -graph at a .csr file)")
		}
		g, err := build()
		if err != nil {
			return nil, err
		}
		if opts.Relabel {
			relabeled, err := gstore.Relabel(g)
			if err != nil {
				g.Close()
				return nil, fmt.Errorf("gio: relabeling graph: %w", err)
			}
			g.Close()
			g = relabeled
		}
		return g, nil
	}
	g, err := OpenCachedWith(cache, opts, build)
	if err != nil {
		return nil, err
	}
	if genN > 0 && g.NumVertices() != genN {
		n := g.NumVertices()
		g.Close()
		return nil, fmt.Errorf("graph cache %s holds %d vertices but -n is %d; delete the cache to regenerate",
			cache, n, genN)
	}
	return g, nil
}
