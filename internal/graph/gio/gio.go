// Package gio reads and writes graphs in two formats:
//
//   - SNAP-style edge-list text: one "src dst" pair per line, '#'
//     comments allowed, the format of the paper's LiveJournal and
//     Twitter datasets. Vertex ids are remapped densely in first-seen
//     order unless they are already dense.
//   - A compact binary CSR format ("FWG1") for fast reloads.
//
// Files ending in ".gz" are compressed/decompressed transparently.
package gio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// openReader opens path for reading, wrapping in gzip when the name
// ends in ".gz".
func openReader(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }
func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// openWriter creates path for writing, wrapping in gzip when the name
// ends in ".gz". Call the returned closer to flush.
func openWriter(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }
func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// EdgeListOptions controls text edge-list parsing.
type EdgeListOptions struct {
	// Dangling is the repair policy applied after loading.
	Dangling graph.DanglingPolicy
	// AllowDangling permits dangling vertices under DanglingKeep.
	AllowDangling bool
	// Dedup removes duplicate edges.
	Dedup bool
	// NoSelfLoops drops self loops.
	NoSelfLoops bool
}

// ReadEdgeList parses a SNAP-style edge-list stream. Vertex ids are
// remapped to dense [0, n) in first-appearance order.
func ReadEdgeList(r io.Reader, opts EdgeListOptions) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	idmap := make(map[uint64]uint32)
	var edges []graph.Edge
	lineNo := 0
	lookup := func(raw uint64) uint32 {
		if id, ok := idmap[raw]; ok {
			return id
		}
		id := uint32(len(idmap))
		idmap[raw] = id
		return id
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gio: line %d: want 'src dst', got %q", lineNo, line)
		}
		s, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad src: %v", lineNo, err)
		}
		d, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad dst: %v", lineNo, err)
		}
		edges = append(edges, graph.Edge{Src: lookup(s), Dst: lookup(d)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(len(idmap)).Dangling(opts.Dangling)
	if opts.AllowDangling {
		b.AllowDangling()
	}
	if opts.Dedup {
		b.Dedup()
	}
	if opts.NoSelfLoops {
		b.NoSelfLoops()
	}
	b.AddEdges(edges)
	return b.Build()
}

// LoadEdgeList reads an edge-list file (optionally .gz).
func LoadEdgeList(path string, opts EdgeListOptions) (*graph.Graph, error) {
	rc, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return ReadEdgeList(rc, opts)
}

// WriteEdgeList writes the graph as "src dst" lines.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var scratch [24]byte
	var outerErr error
	g.Edges(func(e graph.Edge) bool {
		buf := strconv.AppendUint(scratch[:0], uint64(e.Src), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendUint(buf, uint64(e.Dst), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			outerErr = err
			return false
		}
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	return bw.Flush()
}

// SaveEdgeList writes an edge-list file (optionally .gz).
func SaveEdgeList(path string, g *graph.Graph) error {
	wc, err := openWriter(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(wc, g); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// binaryMagic identifies the binary graph format, version 1.
const binaryMagic = "FWG1"

// WriteBinary serializes the graph in the compact binary format:
// magic, n (u64), m (u64), then m (src,dst) u32 pairs in CSR order.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	var outerErr error
	g.Edges(func(e graph.Edge) bool {
		binary.LittleEndian.PutUint32(rec[0:4], e.Src)
		binary.LittleEndian.PutUint32(rec[4:8], e.Dst)
		if _, err := bw.Write(rec[:]); err != nil {
			outerErr = err
			return false
		}
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	return bw.Flush()
}

// ErrBadFormat indicates a corrupt or foreign binary graph file.
var ErrBadFormat = errors.New("gio: not a FWG1 binary graph")

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, ErrBadFormat
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	if n > 1<<31 || m > 1<<40 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrBadFormat, n, m)
	}
	edges := make([]graph.Edge, m)
	var rec [8]byte
	for i := range edges {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at edge %d", ErrBadFormat, i)
		}
		s := binary.LittleEndian.Uint32(rec[0:4])
		d := binary.LittleEndian.Uint32(rec[4:8])
		if uint64(s) >= n || uint64(d) >= n {
			return nil, fmt.Errorf("%w: edge %d out of range", ErrBadFormat, i)
		}
		edges[i] = graph.Edge{Src: s, Dst: d}
	}
	g := graph.FromEdges(int(n), edges)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return g, nil
}

// SaveBinary writes the binary format to path (optionally .gz).
func SaveBinary(path string, g *graph.Graph) error {
	wc, err := openWriter(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(wc, g); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

// LoadBinary reads the binary format from path (optionally .gz).
func LoadBinary(path string) (*graph.Graph, error) {
	rc, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return ReadBinary(rc)
}

// Load loads a graph from path, auto-detecting the format: binary if
// the magic matches, edge-list text otherwise.
func Load(path string, opts EdgeListOptions) (*graph.Graph, error) {
	rc, err := openReader(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	br := bufio.NewReaderSize(rc, 1<<20)
	head, err := br.Peek(4)
	if err == nil && string(head) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadEdgeList(br, opts)
}
