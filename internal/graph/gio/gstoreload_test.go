package gio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graph/gstore"
)

func powerLawGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: n, MeanOutDeg: 6, DegExponent: 2.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSaveCSRLoadAutoDetect pins the contract the facade and CLIs rely
// on: SaveCSR output round-trips bit-identically (raw CSR arrays, not
// just the edge multiset) through the auto-detecting Load path, plain
// and gzipped.
func TestSaveCSRLoadAutoDetect(t *testing.T) {
	g := powerLawGraph(t, 400, 13)
	dir := t.TempDir()
	for _, name := range []string{"g.csr", "g.csr.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveCSR(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := Load(path, EdgeListOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, b := g.CSRView(), g2.CSRView()
		if a.NumVertices != b.NumVertices ||
			!reflect.DeepEqual(a.OutOff, b.OutOff) || !reflect.DeepEqual(a.OutAdj, b.OutAdj) ||
			!reflect.DeepEqual(a.InOff, b.InOff) || !reflect.DeepEqual(a.InAdj, b.InAdj) {
			t.Fatalf("%s: CSR arrays differ after round trip", name)
		}
		if s1, s2 := graph.ComputeStats(g), graph.ComputeStats(g2); s1 != s2 {
			t.Fatalf("%s: stats differ: %+v vs %+v", name, s1, s2)
		}
		g2.Close()
	}
}

// TestLoadWithValidateModes pins the load-time validation policy: off
// by default for checksummed gstore files, on for FWG1 binary, and
// forceable everywhere.
func TestLoadWithValidateModes(t *testing.T) {
	g := powerLawGraph(t, 120, 7)
	dir := t.TempDir()

	csrPath := filepath.Join(dir, "g.csr")
	if err := SaveCSR(csrPath, g); err != nil {
		t.Fatal(err)
	}
	// Auto: gstore loads fine without the O(E) pass.
	if _, err := LoadWith(csrPath, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Forced on: still fine for an honest file.
	if _, err := LoadWith(csrPath, LoadOptions{Validate: ValidateOn}); err != nil {
		t.Fatal(err)
	}

	// A corrupted section must fail by checksum even with validation
	// off — the satellite contract: skipping Validate does not skip
	// corruption detection for gstore files.
	raw, err := os.ReadFile(csrPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0x08
	badPath := filepath.Join(dir, "bad.csr")
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWith(badPath, LoadOptions{Validate: ValidateOff}); !errors.Is(err, gstore.ErrChecksum) {
		t.Fatalf("corrupted gstore load = %v, want ErrChecksum", err)
	}

	// FWG1: a file whose in/out directions disagree passes the
	// per-edge range checks but fails Validate; ValidateOff skips that
	// pass (the knob exists for trusted fast paths).
	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWith(binPath, LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWith(binPath, LoadOptions{Validate: ValidateOff}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCachedBuildOnMiss(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.csr")
	want := powerLawGraph(t, 300, 21)

	builds := 0
	build := func() (*graph.Graph, error) { builds++; return want, nil }

	g1, err := OpenCached(cache, build)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache not written: %v", err)
	}

	// Hit: build must not run again, content identical.
	g2, err := OpenCached(cache, func() (*graph.Graph, error) {
		t.Fatal("build called on cache hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	a, b := want.CSRView(), g2.CSRView()
	if !reflect.DeepEqual(a.OutAdj, b.OutAdj) || !reflect.DeepEqual(a.InAdj, b.InAdj) {
		t.Fatal("cache hit returned different graph")
	}

	// Corrupt cache: loud error, no silent rebuild.
	raw, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(cache, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCached(cache, build); err == nil {
		t.Fatal("corrupt cache silently accepted")
	}
	if builds != 1 {
		t.Fatalf("corrupt cache triggered rebuild (builds = %d)", builds)
	}
}

// FuzzReadBinary pins the FWG1 loader's robustness now that its edge
// allocation grows with the actual stream instead of the header's
// claim: arbitrary bytes must error or decode, never panic or balloon.
func FuzzReadBinary(f *testing.F) {
	g := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:7])
	f.Add(valid[:len(valid)-3])
	// A header claiming vastly more edges than the stream holds.
	hostile := append([]byte{}, valid...)
	hostile[12] = 0xff
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		if g, err := ReadBinary(bytes.NewReader(data)); err == nil {
			_ = g.NumEdges()
		}
	})
}
