package pcache

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// testFile returns size bytes where byte i == byte(i*7 + i>>8), plus a
// ReaderAt over them.
func testFile(size int64) ([]byte, io.ReaderAt) {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*7 + i>>8)
	}
	return data, bytes.NewReader(data)
}

func TestViewContentAndShortLastPage(t *testing.T) {
	size := int64(2*PageSize + 100)
	data, src := testFile(size)
	p := New(src, size, 1<<20)
	c := p.NewCursor()
	defer c.Release()
	for page := int64(0); page < p.NumPages(); page++ {
		got, err := c.View(page)
		if err != nil {
			t.Fatalf("View(%d): %v", page, err)
		}
		lo := page * PageSize
		hi := lo + PageSize
		if hi > size {
			hi = size
		}
		if !bytes.Equal(got, data[lo:hi]) {
			t.Fatalf("page %d content mismatch (len %d want %d)", page, len(got), hi-lo)
		}
	}
	if n := p.NumPages(); n != 3 {
		t.Fatalf("NumPages = %d, want 3", n)
	}
	if _, err := c.View(3); err == nil {
		t.Fatal("View past EOF succeeded")
	}
	if _, err := c.View(-1); err == nil {
		t.Fatal("View(-1) succeeded")
	}
}

func TestHitMissCounting(t *testing.T) {
	size := int64(4 * PageSize)
	_, src := testFile(size)
	p := New(src, size, 1<<20)
	c := p.NewCursor()
	defer c.Release()

	// First touch of each page: miss. Same-page View: free (no
	// recount). Re-touch through a second cursor: hit.
	for page := int64(0); page < 4; page++ {
		c.View(page)
		c.View(page)
	}
	c2 := p.NewCursor()
	defer c2.Release()
	for page := int64(3); page >= 0; page-- {
		c2.View(page)
	}
	s := p.Stats()
	if s.Misses != 4 || s.Hits != 4 {
		t.Fatalf("hits/misses = %d/%d, want 4/4", s.Hits, s.Misses)
	}
	if s.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", s.Evictions)
	}
	if s.ResidentPages != 4 {
		t.Fatalf("resident = %d, want 4", s.ResidentPages)
	}
	if s.PinnedPages != 2 {
		t.Fatalf("pinned = %d, want 2 (both cursors hold a page)", s.PinnedPages)
	}
}

func TestEvictionBoundsResidency(t *testing.T) {
	// Budget of exactly minFrames pages over a much larger file; sweep
	// it several times and confirm residency never exceeds the budget
	// (single cursor: only one page pinned at a time).
	pages := int64(4 * minFrames)
	size := pages * PageSize
	_, src := testFile(size)
	p := New(src, size, minFrames*PageSize)
	c := p.NewCursor()
	defer c.Release()
	for sweep := 0; sweep < 3; sweep++ {
		for page := int64(0); page < pages; page++ {
			if _, err := c.View(page); err != nil {
				t.Fatal(err)
			}
			if s := p.Stats(); s.ResidentPages > s.BudgetPages {
				t.Fatalf("resident %d exceeds budget %d", s.ResidentPages, s.BudgetPages)
			}
		}
	}
	s := p.Stats()
	if s.BudgetPages != minFrames {
		t.Fatalf("budget = %d pages, want %d", s.BudgetPages, minFrames)
	}
	if s.Evictions == 0 {
		t.Fatal("sweeping 4x the budget evicted nothing")
	}
	if s.Misses <= uint64(pages) {
		t.Fatalf("misses = %d; re-sweeps over an evicting pool should re-miss", s.Misses)
	}
}

func TestPinnedOverflowDoesNotDeadlock(t *testing.T) {
	// More cursors than budget frames, each pinning a distinct page:
	// the pool must admit overflow frames rather than deadlock, and
	// drain back under budget once pins release.
	pages := int64(2 * minFrames)
	size := pages * PageSize
	_, src := testFile(size)
	p := New(src, size, 1) // floored at minFrames
	cursors := make([]*Cursor, pages)
	for i := range cursors {
		cursors[i] = p.NewCursor()
		if _, err := cursors[i].View(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.PinnedPages != int(pages) {
		t.Fatalf("pinned = %d, want %d", s.PinnedPages, pages)
	}
	if s.ResidentPages < int(pages) {
		t.Fatalf("resident = %d, want >= %d while all pinned", s.ResidentPages, pages)
	}
	for _, c := range cursors {
		c.Release()
	}
	// Releasing the pins drains the overflow without further misses.
	if s := p.Stats(); s.ResidentPages > s.BudgetPages {
		t.Fatalf("resident %d still over budget %d after pins released", s.ResidentPages, s.BudgetPages)
	}
}

func TestConcurrentCursors(t *testing.T) {
	// Many goroutines sweep random-ish page orders through a tiny pool
	// under -race; every byte read must match the file.
	pages := int64(4 * minFrames)
	size := pages*PageSize - 123 // short last page
	data, src := testFile(size)
	p := New(src, size, minFrames*PageSize)
	var wg sync.WaitGroup
	var fails atomic.Int32
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := p.NewCursor()
			defer c.Release()
			x := uint64(w + 1)
			for i := 0; i < 400; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				page := int64(x % uint64(pages))
				got, err := c.View(page)
				if err != nil {
					fails.Add(1)
					return
				}
				lo := page * PageSize
				off := int(x % uint64(len(got)))
				if got[off] != data[lo+int64(off)] {
					fails.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if fails.Load() != 0 {
		t.Fatalf("%d goroutines saw bad reads", fails.Load())
	}
	s := p.Stats()
	if s.PinnedPages != 0 {
		t.Fatalf("pinned = %d after all cursors released", s.PinnedPages)
	}
	if s.ResidentPages > s.BudgetPages {
		t.Fatalf("resident %d over budget %d at rest", s.ResidentPages, s.BudgetPages)
	}
}

// flakyReader fails the first read of every page, then succeeds.
type flakyReader struct {
	src    io.ReaderAt
	mu     sync.Mutex
	failed map[int64]bool
}

func (f *flakyReader) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	first := !f.failed[off]
	f.failed[off] = true
	f.mu.Unlock()
	if first {
		return 0, errors.New("injected read failure")
	}
	return f.src.ReadAt(p, off)
}

func TestReadErrorRetries(t *testing.T) {
	size := int64(2 * PageSize)
	data, src := testFile(size)
	p := New(&flakyReader{src: src, failed: make(map[int64]bool)}, size, 1<<20)
	c := p.NewCursor()
	defer c.Release()
	if _, err := c.View(0); err == nil {
		t.Fatal("first View succeeded despite injected failure")
	}
	got, err := c.View(0)
	if err != nil {
		t.Fatalf("retry after injected failure: %v", err)
	}
	if !bytes.Equal(got, data[:PageSize]) {
		t.Fatal("retried page has wrong content")
	}
	if s := p.Stats(); s.PinnedPages != 1 {
		t.Fatalf("pinned = %d, want 1", s.PinnedPages)
	}
}

func TestAlignment(t *testing.T) {
	// Cursor views promise an 8-byte-aligned base so element views
	// (u32/u64) into pages never misalign.
	size := int64(2*PageSize + 12)
	_, src := testFile(size)
	p := New(src, size, 1<<20)
	c := p.NewCursor()
	defer c.Release()
	for page := int64(0); page < p.NumPages(); page++ {
		b, err := c.View(page)
		if err != nil {
			t.Fatal(err)
		}
		if addr := uintptr(unsafe.Pointer(&b[0])); addr%8 != 0 {
			t.Fatalf("page %d base %#x not 8-aligned", page, addr)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"1048576", 1 << 20, false},
		{"64KiB", 64 << 10, false},
		{"512MiB", 512 << 20, false},
		{"2GiB", 2 << 30, false},
		{"2G", 2 << 30, false},
		{"12m", 12 << 20, false},
		{"8kb", 8 << 10, false},
		{" 16 MiB ", 16 << 20, false},
		{"123B", 123, false},
		{"", 0, true},
		{"-1", 0, true},
		{"-4K", 0, true},
		{"10TiB", 0, true}, // unknown suffix: "10TI" fails to parse
		{"1e6", 0, true},
		{"9999999999G", 0, true}, // overflow
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
