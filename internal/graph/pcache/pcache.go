// Package pcache is a buffer-pool-style page cache over a file: fixed
// PageSize pages read on demand through an io.ReaderAt, held in a
// bounded set of frames with pin counts and CLOCK eviction. It is the
// storage engine under gstore's paged open (graphs bigger than RAM):
// the resident budget bounds how much of the adjacency ever lives in
// memory at once, and walk-shaped random access hits the pool instead
// of thrashing an mmap the kernel cannot be told the budget for.
//
// Concurrency model: the page table and CLOCK state live under one
// mutex, but I/O never does — a miss inserts a loading frame (pinned,
// so it cannot be evicted) and releases the lock before ReadAt;
// concurrent requests for the same page pin the same frame and block
// on its ready channel. A frame with pins > 0 is never evicted. When
// every frame is pinned the pool admits overflow frames beyond the
// budget rather than deadlock; the overflow drains on the next misses
// once pins release.
package pcache

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// PageSize is the pool's fixed page size. fwtool's per-section page
// counts use the same constant (pinned by a test), so the two can
// never drift. 64 KiB: big enough that one hot vertex's row rarely
// spans pages, small enough that a few-MiB budget still holds dozens
// of frames.
const PageSize = 1 << 16

// minFrames is the resident floor: below this a pool cannot make
// progress under concurrent pinning without constant overflow churn.
const minFrames = 8

// Stats is a point-in-time view of the pool's counters and gauges.
type Stats struct {
	// Hits and Misses count Cursor page requests; Evictions counts
	// frames dropped by capacity pressure.
	Hits, Misses, Evictions uint64
	// PinnedPages and ResidentPages are current gauges; BudgetPages is
	// the configured frame budget (ResidentPages may exceed it
	// transiently while every frame is pinned).
	PinnedPages, ResidentPages, BudgetPages int
	// BudgetBytes is the byte budget the pool was built with.
	BudgetBytes int64
}

// Pool is the page cache over one io.ReaderAt.
type Pool struct {
	src    io.ReaderAt
	size   int64 // file size; the last page may be short
	budget int64
	max    int // frame budget in pages

	hits, misses, evictions atomic.Uint64

	mu     sync.Mutex
	frames map[int64]*frame
	clock  []*frame // resident ring; hand sweeps for victims
	hand   int
	pinned int // frames with pins > 0
}

// frame is one resident page. pins, ref and the clock membership are
// guarded by the pool mutex; data and err are written once before
// ready closes and are read-only afterwards.
type frame struct {
	page  int64
	pins  int
	ref   bool
	data  []byte
	err   error
	ready chan struct{}
}

// New builds a pool over src (size bytes long) with a resident budget
// of budgetBytes, floored at a few pages so tiny budgets still make
// progress. src must support concurrent ReadAt (an *os.File does).
func New(src io.ReaderAt, size, budgetBytes int64) *Pool {
	max := int(budgetBytes / PageSize)
	if max < minFrames {
		max = minFrames
	}
	return &Pool{
		src:    src,
		size:   size,
		budget: budgetBytes,
		max:    max,
		frames: make(map[int64]*frame, max+1),
	}
}

// NumPages returns how many pages cover the pool's file.
func (p *Pool) NumPages() int64 { return (p.size + PageSize - 1) / PageSize }

// Stats returns the pool's counters and gauges.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	pinned, resident := p.pinned, len(p.clock)
	p.mu.Unlock()
	return Stats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Evictions:     p.evictions.Load(),
		PinnedPages:   pinned,
		ResidentPages: resident,
		BudgetPages:   p.max,
		BudgetBytes:   p.budget,
	}
}

// pin returns page's frame with its pin count raised, loading it on a
// miss. The caller must unpin it.
func (p *Pool) pin(page int64) (*frame, error) {
	if page < 0 || page*PageSize >= p.size {
		return nil, fmt.Errorf("pcache: page %d out of range (file %d bytes)", page, p.size)
	}
	p.mu.Lock()
	if f, ok := p.frames[page]; ok {
		if f.pins == 0 {
			p.pinned++
		}
		f.pins++
		f.ref = true
		p.mu.Unlock()
		<-f.ready
		if f.err != nil {
			p.unpin(f)
			return nil, f.err
		}
		p.hits.Add(1)
		return f, nil
	}
	f := &frame{page: page, pins: 1, ref: true, ready: make(chan struct{})}
	p.frames[page] = f
	p.clock = append(p.clock, f)
	p.pinned++
	p.evictLocked()
	p.mu.Unlock()

	p.misses.Add(1)
	n := PageSize
	if rest := p.size - page*PageSize; rest < int64(n) {
		n = int(rest)
	}
	buf := alignedBytes(n)
	_, err := io.ReadFull(io.NewSectionReader(p.src, page*PageSize, int64(n)), buf)
	if err != nil {
		f.err = fmt.Errorf("pcache: reading page %d: %w", page, err)
	} else {
		f.data = buf
	}
	close(f.ready)
	if f.err != nil {
		// Drop the failed frame so a later pin retries the read.
		p.mu.Lock()
		p.dropLocked(f)
		p.unpinLocked(f)
		p.mu.Unlock()
		return nil, f.err
	}
	return f, nil
}

// unpin lowers f's pin count.
func (p *Pool) unpin(f *frame) {
	p.mu.Lock()
	p.unpinLocked(f)
	p.mu.Unlock()
}

func (p *Pool) unpinLocked(f *frame) {
	f.pins--
	if f.pins == 0 {
		p.pinned--
		// Drain pin-overflow promptly: a hit-only workload would
		// otherwise never trigger the miss-path sweep.
		if len(p.clock) > p.max {
			p.evictLocked()
		}
	}
}

// dropLocked removes f from the page table and the clock ring.
func (p *Pool) dropLocked(f *frame) {
	delete(p.frames, f.page)
	for i, c := range p.clock {
		if c == f {
			last := len(p.clock) - 1
			p.clock[i] = p.clock[last]
			p.clock = p.clock[:last]
			if p.hand > i {
				p.hand--
			}
			if p.hand >= len(p.clock) {
				p.hand = 0
			}
			return
		}
	}
}

// evictLocked runs the CLOCK sweep until the ring is back within
// budget or every remaining frame is pinned (overflow is tolerated —
// the alternative is deadlock under heavy concurrent pinning).
func (p *Pool) evictLocked() {
	for len(p.clock) > p.max {
		evicted := false
		// Two sweeps: the first clears reference bits, the second takes
		// the first unreferenced unpinned frame.
		for sweep := 0; sweep < 2*len(p.clock); sweep++ {
			if p.hand >= len(p.clock) {
				p.hand = 0
			}
			f := p.clock[p.hand]
			if f.pins == 0 {
				if f.ref {
					f.ref = false
				} else {
					p.dropLocked(f)
					p.evictions.Add(1)
					evicted = true
					break
				}
			}
			p.hand++
		}
		if !evicted {
			return // all pinned; overflow stands until pins release
		}
	}
}

// A Cursor is one goroutine's handle on the pool: it keeps its current
// page pinned across View calls, so a run of accesses to one page pins
// and unpins once. Cursors are not safe for concurrent use; Release
// must be called when done.
type Cursor struct {
	p *Pool
	f *frame
}

// NewCursor returns a fresh unpinned cursor.
func (p *Pool) NewCursor() *Cursor { return &Cursor{p: p} }

// View returns page's bytes, pinned until the next View or Release.
// The base address is 8-byte aligned, so callers may take element
// views at element-aligned offsets. The last page is short.
func (c *Cursor) View(page int64) ([]byte, error) {
	if c.f != nil {
		if c.f.page == page {
			return c.f.data, nil
		}
		c.p.unpin(c.f)
		c.f = nil
	}
	f, err := c.p.pin(page)
	if err != nil {
		return nil, err
	}
	c.f = f
	return f.data, nil
}

// Release unpins the cursor's current page. The cursor stays usable.
func (c *Cursor) Release() {
	if c.f != nil {
		c.p.unpin(c.f)
		c.f = nil
	}
}

// alignedBytes returns an n-byte slice with an 8-byte-aligned base (it
// views a []uint64), so element views into pages never misalign.
func alignedBytes(n int) []byte {
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// ParseBytes parses a human byte size: a plain integer (bytes) or one
// with a K/M/G or KiB/MiB/GiB suffix (binary units either way). It is
// the parser behind the CLIs' -graph-mem and -target-bytes flags.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			t = t[:len(t)-len(u.suffix)]
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("pcache: bad byte size %q (want e.g. 512MiB, 2G, 1048576)", s)
	}
	if mult > 1 && v > (1<<62)/mult {
		return 0, fmt.Errorf("pcache: byte size %q overflows", s)
	}
	return v * mult, nil
}
