package graph

import (
	"testing"

	"repro/internal/rng"
)

func TestTranspose(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}})
	tr := g.Transpose()
	if tr.NumEdges() != 4 {
		t.Fatalf("edges = %d", tr.NumEdges())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Transposing twice is the identity on the edge multiset.
	trtr := tr.Transpose()
	a, b := g.EdgeSlice(), trtr.EdgeSlice()
	count := map[Edge]int{}
	for _, e := range a {
		count[e]++
	}
	for _, e := range b {
		count[e]--
	}
	for _, c := range count {
		if c != 0 {
			t.Fatal("double transpose changed edge multiset")
		}
	}
	// Degrees swap.
	for v := 0; v < 3; v++ {
		if g.OutDegree(VertexID(v)) != tr.InDegree(VertexID(v)) {
			t.Fatalf("degree swap broken at %d", v)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	// 0->1->2->3->0 plus chord 0->2.
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	sub, orig := g.InducedSubgraph([]bool{true, false, true, true})
	if sub.NumVertices() != 3 {
		t.Fatalf("vertices = %d", sub.NumVertices())
	}
	// Kept edges among {0,2,3}: 2->3, 3->0, 0->2.
	if sub.NumEdges() != 3 {
		t.Fatalf("edges = %d", sub.NumEdges())
	}
	if orig[0] != 0 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphBadMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mask length mismatch")
		}
	}()
	FromEdges(2, nil).InducedSubgraph([]bool{true})
}

func TestReachable(t *testing.T) {
	// Two disjoint cycles: {0,1} and {2,3}.
	g := FromEdges(4, []Edge{{0, 1}, {1, 0}, {2, 3}, {3, 2}})
	r := g.Reachable(0)
	if !r[0] || !r[1] || r[2] || r[3] {
		t.Fatalf("reachable = %v", r)
	}
}

func TestBFSDistances(t *testing.T) {
	// Path 0->1->2->3 with shortcut 0->3.
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	d := g.BFSDistances(0)
	want := []int32{0, 1, 2, 1, -1}
	for v, w := range want {
		if d[v] != w {
			t.Fatalf("dist[%d] = %d want %d", v, d[v], w)
		}
	}
}

func TestSCCSimple(t *testing.T) {
	// {0,1,2} cycle, {3,4} cycle, 2->3 bridge, 5 isolated.
	g := FromEdges(6, []Edge{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 3},
		{2, 3},
	})
	comp, num := g.SCC()
	if num != 3 {
		t.Fatalf("components = %d, want 3", num)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("cycle {0,1,2} split")
	}
	if comp[3] != comp[4] {
		t.Error("cycle {3,4} split")
	}
	if comp[0] == comp[3] || comp[0] == comp[5] || comp[3] == comp[5] {
		t.Error("distinct components merged")
	}
	// Tarjan emits components in reverse topological order: the sink
	// component {3,4} is emitted before {0,1,2} which can reach it.
	if comp[3] > comp[0] {
		t.Error("component order not reverse topological")
	}
}

func TestSCCCompleteAndAcyclic(t *testing.T) {
	// A directed 4-cycle is one SCC.
	cyc := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if _, num := cyc.SCC(); num != 1 {
		t.Errorf("cycle SCC count = %d", num)
	}
	// A DAG has n components.
	dag := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if _, num := dag.SCC(); num != 4 {
		t.Errorf("DAG SCC count = %d", num)
	}
}

// TestSCCAgainstBruteForce checks Tarjan against reachability-based
// component computation on random graphs.
func TestSCCAgainstBruteForce(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(30) + 2
		m := r.Intn(120)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{VertexID(r.Intn(n)), VertexID(r.Intn(n))}
		}
		g := FromEdges(n, edges)
		comp, _ := g.SCC()
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = g.Reachable(VertexID(v))
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				same := reach[a][b] && reach[b][a]
				if same != (comp[a] == comp[b]) {
					t.Fatalf("n=%d: SCC disagrees with reachability for (%d,%d)", n, a, b)
				}
			}
		}
	}
}

func TestLargestSCCMask(t *testing.T) {
	// Big cycle {0..4}, small cycle {5,6}.
	edges := []Edge{{5, 6}, {6, 5}}
	for v := 0; v < 5; v++ {
		edges = append(edges, Edge{VertexID(v), VertexID((v + 1) % 5)})
	}
	g := FromEdges(7, edges)
	mask := g.LargestSCCMask()
	for v := 0; v < 5; v++ {
		if !mask[v] {
			t.Fatalf("vertex %d should be in largest SCC", v)
		}
	}
	if mask[5] || mask[6] {
		t.Error("small component marked as largest")
	}
	sub, _ := g.InducedSubgraph(mask)
	if sub.NumVertices() != 5 || sub.NumEdges() != 5 {
		t.Errorf("largest SCC subgraph: %d vertices %d edges", sub.NumVertices(), sub.NumEdges())
	}
}

func TestSCCDeepRecursionSafe(t *testing.T) {
	// A 100k-vertex path would blow a recursive Tarjan's stack; the
	// iterative version must handle it.
	const n = 100000
	edges := make([]Edge, n-1)
	for v := 0; v < n-1; v++ {
		edges[v] = Edge{VertexID(v), VertexID(v + 1)}
	}
	g := FromEdges(n, edges)
	_, num := g.SCC()
	if num != n {
		t.Fatalf("path SCC count = %d, want %d", num, n)
	}
}
