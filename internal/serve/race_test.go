package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph/gen"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// fetchTopK is a goroutine-safe /v1/topk client (no testing.T calls).
func fetchTopK(url string) (*api.TopKResponse, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var got api.TopKResponse
	if err := json.Unmarshal(body, &got); err != nil {
		return nil, fmt.Errorf("bad JSON %q: %v", body, err)
	}
	return &got, nil
}

// TestTopKConsistentDuringSwap hammers /v1/topk from several clients
// while a refresher swaps snapshots as fast as it can, and asserts
// every response is internally consistent: all entries belong to the
// epoch the response claims, bit-identically. Run under -race this also
// proves the lock-free read path and the per-k cache are data-race
// free across swaps.
func TestTopKConsistentDuringSwap(t *testing.T) {
	const (
		n          = 2000
		k          = 25
		clients    = 8
		perClient  = 200
		rankStride = 1009 // prime, so generations permute the order
	)
	g := gen.Cycle(n)

	// Synthetic per-generation rank vectors: cheap to build (so swaps
	// are frequent relative to queries) and deterministic, so the
	// expected top-k for any epoch can be recomputed exactly.
	ranksFor := func(generation uint64) []float64 {
		ranks := make([]float64, n)
		var sum float64
		for v := range ranks {
			ranks[v] = float64((uint64(v)*rankStride + generation*31) % uint64(n))
			sum += ranks[v]
		}
		for v := range ranks {
			ranks[v] /= sum
		}
		return ranks
	}
	build := func(generation uint64) (*Snapshot, error) {
		return FromRanks(g, EngineFrogWild, generation, ranksFor(generation), 50)
	}

	st := NewStore()
	refresher := NewRefresher(st, build, 0)
	if _, err := refresher.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Swap continuously until the clients are done.
	var stop atomic.Bool
	swapDone := make(chan error, 1)
	go func() {
		for !stop.Load() {
			if _, err := refresher.Refresh(); err != nil {
				swapDone <- err
				return
			}
			// Brief pause so queries land on each epoch (an unthrottled
			// swapper runs thousands of epochs per query).
			time.Sleep(200 * time.Microsecond)
		}
		swapDone <- nil
	}()

	// expected memoizes the reference answer per epoch (epoch e was
	// built from generation e-1).
	var expectMu sync.Mutex
	expected := make(map[uint64][]topk.Entry)
	expectFor := func(epoch uint64) []topk.Entry {
		expectMu.Lock()
		defer expectMu.Unlock()
		if want, ok := expected[epoch]; ok {
			return want
		}
		want := topk.Top(ranksFor(epoch-1), k)
		expected[epoch] = want
		return want
	}

	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// No t.Fatal here: these run off the test goroutine.
				got, err := fetchTopK(ts.URL + "/v1/topk?k=25")
				if err != nil {
					errs <- err.Error()
					return
				}
				if got.Epoch == 0 {
					errs <- "response missing its epoch"
					return
				}
				want := expectFor(got.Epoch)
				if len(got.Entries) != len(want) {
					errs <- "entry count mismatch"
					return
				}
				for j, e := range got.Entries {
					if e.Vertex != want[j].Vertex || e.Score != want[j].Score {
						errs <- "response mixes epochs or corrupts entries"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	if err := <-swapDone; err != nil {
		t.Fatalf("refresher: %v", err)
	}
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if st.Epoch() < 2 {
		t.Fatalf("test never swapped (epoch %d); consistency not exercised", st.Epoch())
	}
	t.Logf("served %d queries across %d epochs (%d cache hits, %d coalesced)",
		srv.Queries(), st.Epoch(), srv.CacheHits(), srv.Coalesced())
}
