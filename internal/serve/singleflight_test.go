package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup[int, int]
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan int, 1)
	go func() {
		v, err, shared := g.Do(1, func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		if err != nil || shared {
			t.Errorf("leader: v=%d err=%v shared=%v", v, err, shared)
		}
		leaderDone <- v
	}()
	<-started

	// Joiners on the same key must wait for the leader's result, not
	// run their own fn. (A joiner scheduled pathologically late could
	// arrive after the leader lands and legitimately lead a fresh
	// call; its fn tolerates that but flags running while the leader
	// is still in flight.)
	const joiners = 4
	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do(1, func() (int, error) {
				select {
				case <-release:
					return 7, nil // fresh call after the flight landed
				default:
					t.Error("joiner fn ran while the leader was in flight")
					return -1, nil
				}
			})
			if v != 7 || err != nil {
				t.Errorf("joiner: v=%d err=%v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// A different key runs independently even while key 1 is in flight.
	if v, err, shared := g.Do(2, func() (int, error) { return 9, nil }); v != 9 || err != nil || shared {
		t.Errorf("independent key: v=%d err=%v shared=%v", v, err, shared)
	}
	time.Sleep(50 * time.Millisecond) // let the joiners reach Do
	close(release)
	wg.Wait()
	if sharedCount.Load() == 0 {
		t.Error("no joiner coalesced onto the in-flight call")
	}
	if v := <-leaderDone; v != 7 {
		t.Errorf("leader result %d", v)
	}

	// After the flight lands, the key is free again: a new call runs.
	if v, _, shared := g.Do(1, func() (int, error) { return 8, nil }); v != 8 || shared {
		t.Errorf("fresh call after completion: v=%d shared=%v", v, shared)
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	var g flightGroup[string, int]
	want := errors.New("boom")
	if _, err, _ := g.Do("k", func() (int, error) { return 0, want }); err != want {
		t.Errorf("err = %v", err)
	}
}
