package serve

import (
	"bytes"
	"encoding/binary"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/topk"
)

var updateSnapGolden = flag.Bool("update-golden", false, "rewrite the golden snapshot file")

func snapHostLittleEndian() bool {
	return binary.NativeEndian.Uint16([]byte{0x01, 0x00}) == 1
}

// goldenSnapshot is a fully deterministic snapshot (every field fixed,
// including the timing provenance WriteSnapshot persists), so its
// FWSNAP01 encoding can be pinned byte-for-byte.
func goldenSnapshot() *Snapshot {
	const n = 64
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(i+2)
	}
	return &Snapshot{
		Epoch:        5,
		Engine:       EngineFrogWild,
		Seed:         42,
		BuiltAt:      time.Unix(1700000000, 123456789),
		BuildSeconds: 1.5,
		Stats: graph.Stats{
			NumVertices: n,
			NumEdges:    192,
			MinOutDeg:   1,
			MaxOutDeg:   9,
			MaxInDeg:    7,
			MeanDeg:     3,
			GiniOut:     0.421875,
			Dangling:    3,
		},
		Ranks: ranks,
		Top:   topk.Top(ranks, 10),
		MaxK:  10,
	}
}

// TestSnapshotGoldenBytes pins the FWSNAP01 encoding in both
// directions: the writer must reproduce the checked-in golden file
// bit-identically, and the golden file (produced by the PR 5 writer)
// must decode to the same snapshot. Any refactor of the encode/decode
// plumbing must keep this file format-stable.
func TestSnapshotGoldenBytes(t *testing.T) {
	if !snapHostLittleEndian() {
		t.Skip("golden files carry little-endian native sections")
	}
	snap := goldenSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "fwsnap01-v1.golden")
	if *updateSnapGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("writer output diverged from the golden file (%d vs %d bytes): the FWSNAP01 encoding must stay bit-identical",
			buf.Len(), len(want))
	}
	got, err := DecodeSnapshot(append([]byte{}, want...), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != snap.Epoch || got.Engine != snap.Engine || got.Seed != snap.Seed {
		t.Fatalf("provenance lost: %+v", got)
	}
	if got.BuiltAt.UnixNano() != snap.BuiltAt.UnixNano() || got.BuildSeconds != snap.BuildSeconds {
		t.Fatal("timing provenance lost")
	}
	if got.MaxK != snap.MaxK || got.Stats != snap.Stats {
		t.Fatalf("metadata lost: maxk=%d stats=%+v", got.MaxK, got.Stats)
	}
	if !reflect.DeepEqual(got.Ranks, snap.Ranks) || !reflect.DeepEqual(got.Top, snap.Top) {
		t.Fatal("golden file decodes to different ranks or top index")
	}
	if math.IsNaN(got.Ranks[0]) {
		t.Fatal("impossible")
	}
}
