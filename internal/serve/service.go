package serve

import (
	"context"
	"time"

	"repro/internal/graph"
)

// ServiceConfig bundles everything the one-call service needs.
type ServiceConfig struct {
	// Build says how snapshots are computed (engine, knobs, seed).
	Build BuildConfig
	// RefreshInterval is the background recompute cadence; 0 serves
	// the initial snapshot forever.
	RefreshInterval time.Duration
	// OnRefreshError observes background build failures (nil = ignore;
	// the previous snapshot keeps serving either way).
	OnRefreshError func(error)
}

// ListenAndServe builds an initial snapshot of g, starts the background
// refresher (if an interval is set), and serves the query API on addr
// until ctx is cancelled, shutting down gracefully. The initial build
// is synchronous so the service is never up without an answer.
func ListenAndServe(ctx context.Context, addr string, g *graph.Graph, cfg ServiceConfig) error {
	srv, refresher, err := NewService(g, cfg)
	if err != nil {
		return err
	}
	if cfg.RefreshInterval > 0 {
		rctx, cancel := context.WithCancel(ctx)
		defer cancel()
		go refresher.Run(rctx, cfg.OnRefreshError)
	}
	return srv.Serve(ctx, addr)
}

// NewService assembles the store/refresher/server stack and publishes
// the initial snapshot synchronously. Callers that want background
// refresh run refresher.Run themselves (ListenAndServe does).
func NewService(g *graph.Graph, cfg ServiceConfig) (*Server, *Refresher, error) {
	store := NewStore()
	refresher := NewRefresher(store, EngineBuilder(g, cfg.Build), cfg.RefreshInterval)
	if _, err := refresher.Refresh(); err != nil {
		return nil, nil, err
	}
	srv := NewServer(store, ServerOptions{Compare: cfg.Build, Refresher: refresher})
	return srv, refresher, nil
}
