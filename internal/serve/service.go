package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// ServiceConfig bundles everything the one-call service needs.
type ServiceConfig struct {
	// Build says how snapshots are computed (engine, knobs, seed).
	Build BuildConfig
	// RefreshInterval is the background recompute cadence; 0 serves
	// the initial snapshot forever.
	RefreshInterval time.Duration
	// OnRefreshError observes background build failures (nil = ignore;
	// the previous snapshot keeps serving either way). It also
	// receives warm-start and snapshot-persistence problems, which are
	// likewise non-fatal.
	OnRefreshError func(error)
	// SnapshotDir enables snapshot persistence: every published
	// snapshot is saved there (atomically), and NewService warm-starts
	// from the last persisted snapshot when one matches the graph —
	// queries are answered in milliseconds with the persisted epoch's
	// provenance while the first fresh build runs in the background.
	// Empty disables persistence.
	SnapshotDir string
	// Metrics is the registry the server's /metrics endpoint renders;
	// the refresher's instruments are registered on it too. Nil creates
	// a private registry, so /metrics works either way.
	Metrics *obs.Registry
	// RequestLog, when non-nil, receives one JSON line per request.
	RequestLog *obs.Logger
	// PPR tunes the /v1/ppr endpoint (walk budget, hot-source cache,
	// batch executor); the zero value serves with defaults.
	PPR PPROptions
}

// ListenAndServe builds or restores an initial snapshot of g, starts
// the background refresher when an interval is set or the snapshot was
// warm-started from disk (so a restored estimate is re-derived
// promptly), and serves the query API on addr until ctx is cancelled,
// shutting down gracefully. The service is never up without an answer.
func ListenAndServe(ctx context.Context, addr string, g *graph.Graph, cfg ServiceConfig) error {
	srv, refresher, err := NewService(g, cfg)
	if err != nil {
		return err
	}
	cur := srv.Snapshot()
	if cfg.RefreshInterval > 0 || (cur != nil && cur.WarmStart) {
		rctx, cancel := context.WithCancel(ctx)
		defer cancel()
		go refresher.Run(rctx, cfg.OnRefreshError)
	}
	return srv.Serve(ctx, addr)
}

// NewService assembles the store/refresher/server stack. With a
// SnapshotDir holding a snapshot that matches g, the service
// warm-starts: the persisted estimate is restored (keeping its epoch
// and provenance) instead of computing one, which takes milliseconds
// instead of a full engine run — callers then run refresher.Run to
// re-derive a fresh estimate in the background (ListenAndServe does).
// Otherwise the initial snapshot is built synchronously so the service
// is never up without an answer. A corrupt or mismatched persisted
// snapshot is reported through OnRefreshError and falls back to the
// cold build; it never blocks startup.
func NewService(g *graph.Graph, cfg ServiceConfig) (*Server, *Refresher, error) {
	store := NewStore()
	refresher := NewRefresher(store, EngineBuilder(g, cfg.Build), cfg.RefreshInterval)
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	refresher.Instrument(reg)
	if cfg.SnapshotDir != "" {
		// A snapshot dir that cannot exist is a configuration error:
		// failing loudly here beats a service that looks healthy but
		// silently never persists (and so never warm-starts).
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("serve: snapshot dir: %w", err)
		}
		refresher.PersistTo(cfg.SnapshotDir, cfg.OnRefreshError)
		snap, err := LoadSnapshot(SnapshotPath(cfg.SnapshotDir), g)
		switch {
		case err == nil:
			store.Restore(snap)
			refresher.SetGeneration(snap.Epoch)
		case !errors.Is(err, fs.ErrNotExist):
			if cfg.OnRefreshError != nil {
				cfg.OnRefreshError(fmt.Errorf("serve: warm start: %w", err))
			}
		}
	}
	if store.Current() == nil {
		if _, err := refresher.Refresh(); err != nil {
			return nil, nil, err
		}
	}
	srv := NewServer(store, ServerOptions{
		Compare:    cfg.Build,
		Refresher:  refresher,
		Metrics:    reg,
		RequestLog: cfg.RequestLog,
		PPR:        cfg.PPR,
	})
	return srv, refresher, nil
}
