package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// BuildFunc computes one fresh (unpublished) snapshot. The generation
// counter starts at 0 and increments per successful build; builders
// should derive their randomness from it so every refresh produces a
// distinct, reproducible estimate.
type BuildFunc func(generation uint64) (*Snapshot, error)

// EngineBuilder returns a BuildFunc running cfg's engine on g with the
// per-generation seed cfg.Seed+generation, so refreshes re-estimate
// with fresh randomness but stay deterministic end to end.
func EngineBuilder(g *graph.Graph, cfg BuildConfig) BuildFunc {
	return func(generation uint64) (*Snapshot, error) {
		c := cfg
		c.Seed = cfg.Seed + generation
		return Build(g, c)
	}
}

// Refresher recomputes snapshots out of band and publishes them to a
// Store: either on a fixed cadence (Run) or on demand (Refresh). Builds
// are serialized — a refresh requested while one is in flight waits for
// its own turn rather than racing it.
type Refresher struct {
	store    *Store
	build    BuildFunc
	interval time.Duration

	// persistDir, when set via PersistTo, receives every published
	// snapshot; persistErr observes save failures.
	persistDir string
	persistErr func(error)

	mu         sync.Mutex // serializes builds; guards generation
	generation uint64

	refreshes   atomic.Uint64
	errs        atomic.Uint64
	persistErrs atomic.Uint64
}

// NewRefresher wires a refresher to a store. interval is the Run
// cadence; 0 or negative means Run publishes once and returns
// (on-demand only via Refresh).
func NewRefresher(store *Store, build BuildFunc, interval time.Duration) *Refresher {
	return &Refresher{store: store, build: build, interval: interval}
}

// PersistTo makes the refresher save every snapshot it publishes to
// SnapshotPath(dir), atomically, so the service can warm-start from
// the latest estimate after a restart. Persist failures never block
// serving: they are counted (PersistErrors) and reported through
// onErr (nil = ignore). Call before the refresher is in use.
func (r *Refresher) PersistTo(dir string, onErr func(error)) {
	r.persistDir = dir
	r.persistErr = onErr
}

// PersistErrors returns how many snapshot saves failed.
func (r *Refresher) PersistErrors() uint64 { return r.persistErrs.Load() }

// SetGeneration fast-forwards the build-generation counter (never
// backwards). The warm-start path syncs it to the restored snapshot's
// epoch — the counter equals the epoch of the latest published
// snapshot in a single life — so post-restart refreshes continue the
// deterministic seed sequence (seed = base + generation) instead of
// repeating the pre-restart seeds.
func (r *Refresher) SetGeneration(gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if gen > r.generation {
		r.generation = gen
	}
}

// Refresh builds one snapshot and publishes it, returning the published
// snapshot (with its epoch assigned). Safe for concurrent use.
func (r *Refresher) Refresh() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap, err := r.build(r.generation)
	if err != nil {
		r.errs.Add(1)
		return nil, err
	}
	r.generation++
	r.refreshes.Add(1)
	pub := r.store.Publish(snap)
	if r.persistDir != "" {
		if err := SaveSnapshot(SnapshotPath(r.persistDir), pub); err != nil {
			r.persistErrs.Add(1)
			if r.persistErr != nil {
				r.persistErr(fmt.Errorf("serve: persisting snapshot epoch %d: %w", pub.Epoch, err))
			}
		}
	}
	return pub, nil
}

// Refreshes returns how many snapshots this refresher has published.
func (r *Refresher) Refreshes() uint64 { return r.refreshes.Load() }

// Errors returns how many builds failed.
func (r *Refresher) Errors() uint64 { return r.errs.Load() }

// Run publishes an initial snapshot if the store is empty or holds
// only a warm-started (disk-restored) snapshot, then republishes every
// interval until ctx is cancelled. Build errors are counted and
// reported through onError (nil means ignore); the loop keeps going so
// a transient failure doesn't stop serving the previous snapshot. With
// a non-positive interval Run returns after the initial publish.
func (r *Refresher) Run(ctx context.Context, onError func(error)) error {
	report := func(err error) {
		if err != nil && onError != nil {
			onError(err)
		}
	}
	if cur := r.store.Current(); cur == nil || cur.WarmStart {
		if _, err := r.Refresh(); err != nil {
			report(err)
			if r.store.Current() == nil && r.interval <= 0 {
				return err
			}
		}
	}
	if r.interval <= 0 {
		return nil
	}
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			_, err := r.Refresh()
			report(err)
		}
	}
}
