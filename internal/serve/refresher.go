package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// BuildFunc computes one fresh (unpublished) snapshot. The generation
// counter starts at 0 and increments per successful build; builders
// should derive their randomness from it so every refresh produces a
// distinct, reproducible estimate.
type BuildFunc func(generation uint64) (*Snapshot, error)

// EngineBuilder returns a BuildFunc running cfg's engine on g with the
// per-generation seed cfg.Seed+generation, so refreshes re-estimate
// with fresh randomness but stay deterministic end to end.
func EngineBuilder(g *graph.Graph, cfg BuildConfig) BuildFunc {
	return func(generation uint64) (*Snapshot, error) {
		c := cfg
		c.Seed = cfg.Seed + generation
		return Build(g, c)
	}
}

// Refresher recomputes snapshots out of band and publishes them to a
// Store: either on a fixed cadence (Run) or on demand (Refresh). Builds
// are serialized — a refresh requested while one is in flight waits for
// its own turn rather than racing it.
type Refresher struct {
	store    *Store
	build    BuildFunc
	interval time.Duration

	mu         sync.Mutex // serializes builds; guards generation
	generation uint64

	refreshes atomic.Uint64
	errs      atomic.Uint64
}

// NewRefresher wires a refresher to a store. interval is the Run
// cadence; 0 or negative means Run publishes once and returns
// (on-demand only via Refresh).
func NewRefresher(store *Store, build BuildFunc, interval time.Duration) *Refresher {
	return &Refresher{store: store, build: build, interval: interval}
}

// Refresh builds one snapshot and publishes it, returning the published
// snapshot (with its epoch assigned). Safe for concurrent use.
func (r *Refresher) Refresh() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap, err := r.build(r.generation)
	if err != nil {
		r.errs.Add(1)
		return nil, err
	}
	r.generation++
	r.refreshes.Add(1)
	return r.store.Publish(snap), nil
}

// Refreshes returns how many snapshots this refresher has published.
func (r *Refresher) Refreshes() uint64 { return r.refreshes.Load() }

// Errors returns how many builds failed.
func (r *Refresher) Errors() uint64 { return r.errs.Load() }

// Run publishes an initial snapshot if the store is empty, then
// republishes every interval until ctx is cancelled. Build errors are
// counted and reported through onError (nil means ignore); the loop
// keeps going so a transient failure doesn't stop serving the previous
// snapshot. With a non-positive interval Run returns after the initial
// publish.
func (r *Refresher) Run(ctx context.Context, onError func(error)) error {
	report := func(err error) {
		if err != nil && onError != nil {
			onError(err)
		}
	}
	if r.store.Current() == nil {
		if _, err := r.Refresh(); err != nil {
			report(err)
			if r.store.Current() == nil && r.interval <= 0 {
				return err
			}
		}
	}
	if r.interval <= 0 {
		return nil
	}
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			_, err := r.Refresh()
			report(err)
		}
	}
}
