package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// BuildFunc computes one fresh (unpublished) snapshot. The generation
// counter starts at 0 and increments per successful build; builders
// should derive their randomness from it so every refresh produces a
// distinct, reproducible estimate.
type BuildFunc func(generation uint64) (*Snapshot, error)

// EngineBuilder returns a BuildFunc running cfg's engine on g with the
// per-generation seed cfg.Seed+generation, so refreshes re-estimate
// with fresh randomness but stay deterministic end to end.
func EngineBuilder(g *graph.Graph, cfg BuildConfig) BuildFunc {
	return func(generation uint64) (*Snapshot, error) {
		c := cfg
		c.Seed = cfg.Seed + generation
		return Build(g, c)
	}
}

// Refresher recomputes snapshots out of band and publishes them to a
// Store: either on a fixed cadence (Run) or on demand (Refresh). Builds
// are serialized — a refresh requested while one is in flight waits for
// its own turn rather than racing it.
type Refresher struct {
	store    *Store
	build    BuildFunc
	interval time.Duration

	// persistDir, when set via PersistTo, receives every published
	// snapshot; persistErr observes save failures.
	persistDir string
	persistErr func(error)

	mu         sync.Mutex // serializes builds; guards generation
	generation uint64

	// Free-standing obs instruments: they count from construction and
	// are optionally exposed on a /metrics registry via Instrument —
	// /v1/stats and the exposition read the very same values.
	refreshes    obs.Counter
	errs         obs.Counter
	persistErrs  obs.Counter
	stageLat     [3]obs.Latency // indexed by stage{Estimate,Index,Persist}
	publishDelay obs.Gauge      // seconds from build done to store swap
}

// Stage indices for stageLat.
const (
	stageEstimate = iota
	stageIndex
	stagePersist
)

// NewRefresher wires a refresher to a store. interval is the Run
// cadence; 0 or negative means Run publishes once and returns
// (on-demand only via Refresh).
func NewRefresher(store *Store, build BuildFunc, interval time.Duration) *Refresher {
	return &Refresher{store: store, build: build, interval: interval}
}

// PersistTo makes the refresher save every snapshot it publishes to
// SnapshotPath(dir), atomically, so the service can warm-start from
// the latest estimate after a restart. Persist failures never block
// serving: they are counted (PersistErrors) and reported through
// onErr (nil = ignore). Call before the refresher is in use.
func (r *Refresher) PersistTo(dir string, onErr func(error)) {
	r.persistDir = dir
	r.persistErr = onErr
}

// PersistErrors returns how many snapshot saves failed.
func (r *Refresher) PersistErrors() uint64 { return r.persistErrs.Value() }

// Instrument registers the refresher's instruments on reg under the
// refresh_* names. The instruments are live either way — Instrument
// only exposes them — so /v1/stats (which reads the same counters) and
// /metrics can never disagree. Call at most once per registry.
func (r *Refresher) Instrument(reg *obs.Registry) {
	reg.RegisterCounter("refresh_builds_total",
		"Snapshots built and published by the background refresher.", nil, &r.refreshes)
	reg.RegisterCounter("refresh_build_errors_total",
		"Background snapshot builds that failed (previous snapshot kept serving).", nil, &r.errs)
	reg.RegisterCounter("refresh_persist_errors_total",
		"Published snapshots that failed to persist to the snapshot dir.", nil, &r.persistErrs)
	for i, stage := range []string{"estimate", "index", "persist"} {
		reg.RegisterLatency("refresh_stage_seconds",
			"Time spent per snapshot build stage.", obs.Labels{"stage": stage}, &r.stageLat[i])
	}
	reg.RegisterGauge("refresh_publish_to_visible_seconds",
		"Delay between the last build finishing and its snapshot becoming visible to queries.",
		nil, &r.publishDelay)
}

// SetGeneration fast-forwards the build-generation counter (never
// backwards). The warm-start path syncs it to the restored snapshot's
// epoch — the counter equals the epoch of the latest published
// snapshot in a single life — so post-restart refreshes continue the
// deterministic seed sequence (seed = base + generation) instead of
// repeating the pre-restart seeds.
func (r *Refresher) SetGeneration(gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if gen > r.generation {
		r.generation = gen
	}
}

// Refresh builds one snapshot and publishes it, returning the published
// snapshot (with its epoch assigned). Safe for concurrent use.
func (r *Refresher) Refresh() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap, err := r.build(r.generation)
	if err != nil {
		r.errs.Inc()
		return nil, err
	}
	r.generation++
	r.refreshes.Inc()
	built := snap.BuiltAt
	if built.IsZero() {
		built = time.Now()
	}
	pub := r.store.Publish(snap)
	r.publishDelay.Set(time.Since(built).Seconds())
	// Stage timings are only known for Build-produced snapshots; a
	// custom BuildFunc that does not fill them records nothing.
	if pub.EstimateSeconds > 0 {
		r.stageLat[stageEstimate].Observe(secondsToDuration(pub.EstimateSeconds))
	}
	if pub.IndexSeconds > 0 {
		r.stageLat[stageIndex].Observe(secondsToDuration(pub.IndexSeconds))
	}
	if r.persistDir != "" {
		persistStart := time.Now()
		err := SaveSnapshot(SnapshotPath(r.persistDir), pub)
		r.stageLat[stagePersist].Observe(time.Since(persistStart))
		if err != nil {
			r.persistErrs.Inc()
			if r.persistErr != nil {
				r.persistErr(fmt.Errorf("serve: persisting snapshot epoch %d: %w", pub.Epoch, err))
			}
		}
	}
	return pub, nil
}

// secondsToDuration converts a float seconds stage timing back to a
// duration for latency recording.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Refreshes returns how many snapshots this refresher has published.
func (r *Refresher) Refreshes() uint64 { return r.refreshes.Value() }

// Errors returns how many builds failed.
func (r *Refresher) Errors() uint64 { return r.errs.Value() }

// Run publishes an initial snapshot if the store is empty or holds
// only a warm-started (disk-restored) snapshot, then republishes every
// interval until ctx is cancelled. Build errors are counted and
// reported through onError (nil means ignore); the loop keeps going so
// a transient failure doesn't stop serving the previous snapshot. With
// a non-positive interval Run returns after the initial publish.
func (r *Refresher) Run(ctx context.Context, onError func(error)) error {
	report := func(err error) {
		if err != nil && onError != nil {
			onError(err)
		}
	}
	if cur := r.store.Current(); cur == nil || cur.WarmStart {
		if _, err := r.Refresh(); err != nil {
			report(err)
			if r.store.Current() == nil && r.interval <= 0 {
				return err
			}
		}
	}
	if r.interval <= 0 {
		return nil
	}
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			_, err := r.Refresh()
			report(err)
		}
	}
}
