package serve

// Personalized PageRank serving. The paper's Section 2.4 frames top-k
// PPR as the problem FrogWild solves with a one-line change to the
// restart distribution; internal/frogwild computes it offline. This
// file serves it interactively: /v1/ppr answers per-user queries with
// request-time truncated-geometric walks over the current snapshot's
// graph — no precomputation per source, so any of the n vertices can
// be a source — under a hard per-request walk budget.
//
// Determinism is the contract, like everywhere else in the repo: the
// walks for one (epoch, source) pair are drawn from a stream derived
// from (snapshot seed, epoch, source) and consumed sequentially, so a
// walk's randomness is a pure function of (epoch, source, sequence).
// Identical requests within one epoch are therefore bit-identical —
// regardless of executor worker count, batching, cache state, or how
// requests interleave.
//
// Three layers amortize the work under hot traffic:
//
//   - An LRU of final response bodies keyed by (epoch, sourceSet, k)
//     with size and TTL knobs: Zipf-skewed source popularity makes
//     repeated sources cheap.
//   - A singleflight per (epoch, sourceSet, k): concurrent identical
//     requests share one execution.
//   - A batching executor: concurrent requests enqueue per-source walk
//     tasks, and one drainer sweeps all pending tasks in a combined
//     multi-source pass across a worker pool, so CSR traversal is
//     amortized across requests and overlapping source sets share
//     per-source walk results.

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pagerank"
	"repro/internal/rng"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// pprPurpose labels the rng stream domain for PPR walks, so they can
// never correlate with any other consumer of the snapshot seed.
const pprPurpose = uint64('P')<<8 | uint64('R')

// PPROptions tunes the /v1/ppr endpoint. The zero value serves with
// the defaults below; the endpoint is always on.
type PPROptions struct {
	// WalksPerSource is how many walks each source gets when the budget
	// allows (default 2000). More walks, tighter estimates.
	WalksPerSource int
	// WalkBudget is the hard per-request walk cap across all sources
	// (default 16384). A request whose sources × WalksPerSource exceed
	// it runs fewer walks per source and is flagged "truncated": true;
	// a request with more sources than the budget is rejected.
	WalkBudget int
	// MaxWalkLen truncates each geometric walk length (default 64).
	// With teleport 0.15 the probability of a longer walk is under
	// 3e-5, so truncation bias is far below sampling noise.
	MaxWalkLen int
	// MaxK bounds the k parameter (default 100).
	MaxK int
	// MaxSources bounds the source set size (default 16).
	MaxSources int
	// Teleport is the walk restart probability pT (default 0.15).
	Teleport float64
	// CacheSize is the hot-source LRU capacity in responses (default
	// 1024; negative disables caching).
	CacheSize int
	// CacheTTL expires cached responses by age (0 = size-bounded only).
	// Within one epoch a recomputed response is bit-identical to the
	// expired one, so a TTL trades only CPU, never consistency.
	CacheTTL time.Duration
	// Workers is the batch executor's worker pool size (0 =
	// GOMAXPROCS). Results are bit-identical for any worker count: each
	// per-source task consumes only its own derived stream.
	Workers int
}

// withDefaults resolves the zero values.
func (o PPROptions) withDefaults() PPROptions {
	if o.WalksPerSource <= 0 {
		o.WalksPerSource = 2000
	}
	if o.WalkBudget <= 0 {
		o.WalkBudget = 16384
	}
	if o.MaxWalkLen <= 0 {
		o.MaxWalkLen = 64
	}
	if o.MaxK <= 0 {
		o.MaxK = 100
	}
	if o.MaxSources <= 0 {
		o.MaxSources = 16
	}
	if o.Teleport <= 0 || o.Teleport > 1 {
		o.Teleport = pagerank.DefaultTeleport
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// pprEngine owns the /v1/ppr serving state: cache, flights, batcher
// and instruments. One per Server.
type pprEngine struct {
	opts PPROptions

	cache   *pprCache
	flights flightGroup[string, []byte]
	batcher *pprBatcher

	queries   obs.Counter
	cacheHits obs.Counter
	walks     obs.Counter
	truncated obs.Counter
	lat       *obs.Latency
}

// newPPREngine builds the engine and registers its instruments on reg.
func newPPREngine(opts PPROptions, reg *obs.Registry) *pprEngine {
	e := &pprEngine{opts: opts.withDefaults()}
	e.cache = newPPRCache(e.opts.CacheSize, e.opts.CacheTTL)
	e.batcher = &pprBatcher{tasks: make(map[pprTaskKey]*pprTask), workers: e.opts.Workers}
	reg.RegisterCounter("ppr_requests_total",
		"Personalized PageRank queries (method-allowed GETs on /v1/ppr).", nil, &e.queries)
	reg.RegisterCounter("ppr_cache_hits_total",
		"PPR queries answered from the hot-source LRU.", nil, &e.cacheHits)
	reg.RegisterCounter("ppr_walks_total",
		"Random walks executed for PPR queries (cache hits execute none).", nil, &e.walks)
	reg.RegisterCounter("ppr_truncated_total",
		"PPR responses truncated by the per-request walk budget.", nil, &e.truncated)
	reg.RegisterCounter("ppr_cache_evictions_total",
		"Responses evicted from the PPR LRU by capacity pressure.", nil, &e.cache.evictions)
	reg.RegisterCounter("ppr_batches_total",
		"Combined multi-source walk passes executed by the batcher.", nil, &e.batcher.batches)
	reg.RegisterCounter("ppr_walk_steps_total",
		"Individual walk steps executed on paged graphs (restarts included).", nil, &e.batcher.steps)
	reg.RegisterCounter("ppr_walk_page_local_steps_total",
		"Paged walk steps whose adjacency read hit the same cache page as the previous step.", nil, &e.batcher.local)
	e.lat = reg.Latency("ppr_request_seconds",
		"PPR request handling latency, cache hits included.", nil)
	return e
}

// --- hot-source LRU -------------------------------------------------

// pprCache is a size- and TTL-bounded LRU of marshaled response
// bodies. Keys carry the epoch, so a snapshot swap naturally misses
// and stale entries age out under capacity pressure.
type pprCache struct {
	mu        sync.Mutex
	max       int
	ttl       time.Duration
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions obs.Counter
}

type pprCacheEntry struct {
	key   string
	body  []byte
	added time.Time
}

func newPPRCache(max int, ttl time.Duration) *pprCache {
	return &pprCache{max: max, ttl: ttl, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached body and refreshes its recency; TTL-expired
// entries are removed and miss.
func (c *pprCache) Get(key string, now time.Time) ([]byte, bool) {
	if c.max < 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*pprCacheEntry)
	if c.ttl > 0 && now.Sub(ent.added) > c.ttl {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return ent.body, true
}

// Put inserts a body, evicting from the cold end past capacity.
func (c *pprCache) Put(key string, body []byte, now time.Time) {
	if c.max < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*pprCacheEntry).body = body
		el.Value.(*pprCacheEntry).added = now
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&pprCacheEntry{key: key, body: body, added: now})
	for c.ll.Len() > c.max {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*pprCacheEntry).key)
		c.evictions.Inc()
	}
}

// Len reports the current entry count (tests and eviction accounting).
func (c *pprCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// --- batching executor ----------------------------------------------

// pprTaskKey identifies one per-source walk job. Epoch is part of the
// key, so tasks over different snapshots never unify; walks is too, so
// a budget-truncated request cannot reuse a fuller run's tally (the
// response's walk count must be a pure function of the request).
type pprTaskKey struct {
	epoch  uint64
	source graph.VertexID
	walks  int
}

// pprTask is one scheduled per-source walk job: the snapshot to walk
// over and, once done is closed, the endpoint tally of its walks.
// counts maps vertex → visits; walks ≤ budget keeps it small relative
// to the graph, so the tally stays sparse (the NeedleTail-style
// density argument: a per-source top-k cut never needs a dense
// n-length vector).
type pprTask struct {
	key    pprTaskKey
	snap   *Snapshot
	done   chan struct{}
	counts map[graph.VertexID]int32
}

// pprBatcher collects concurrent per-source walk tasks and executes
// them in combined passes: the first request to find the executor idle
// becomes the drainer and sweeps everything pending (its own tasks and
// any that arrived meanwhile) across the worker pool, repeating until
// the queue is empty. Later requests just enqueue — joining an
// identical pending or running task instead of duplicating it — and
// wait, so under concurrency the CSR is traversed in wide multi-source
// passes rather than once per request.
type pprBatcher struct {
	mu      sync.Mutex
	tasks   map[pprTaskKey]*pprTask // pending or running, joinable
	pending []*pprTask
	running bool
	workers int
	batches obs.Counter
	steps   obs.Counter
	local   obs.Counter
}

// run schedules walk tasks for every key (joining identical in-flight
// ones), drives execution if no drainer is active, and blocks until
// all of this request's tasks are done. Returned tasks parallel keys.
func (b *pprBatcher) run(snap *Snapshot, opts PPROptions, keys []pprTaskKey) []*pprTask {
	mine := make([]*pprTask, len(keys))
	b.mu.Lock()
	for i, k := range keys {
		if t, ok := b.tasks[k]; ok {
			mine[i] = t
			continue
		}
		t := &pprTask{key: k, snap: snap, done: make(chan struct{})}
		b.tasks[k] = t
		b.pending = append(b.pending, t)
		mine[i] = t
	}
	drain := !b.running && len(b.pending) > 0
	if drain {
		b.running = true
	}
	b.mu.Unlock()
	if drain {
		b.drain(opts)
	}
	for _, t := range mine {
		<-t.done
	}
	return mine
}

// drain sweeps pending tasks in combined passes until none remain.
func (b *pprBatcher) drain(opts PPROptions) {
	for {
		b.mu.Lock()
		batch := b.pending
		b.pending = nil
		if len(batch) == 0 {
			b.running = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		b.batches.Inc()

		// One multi-source pass: workers pull tasks from a shared
		// cursor. Each task consumes only its own derived stream, so
		// the tally is bit-identical for any worker count or order.
		workers := min(b.workers, len(batch))
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					var m pprWalkMetrics
					batch[i].counts, m = pprWalkSource(batch[i].snap, batch[i].key, opts)
					if m.steps > 0 {
						b.steps.Add(m.steps)
						b.local.Add(m.local)
					}
				}
			}()
		}
		wg.Wait()

		b.mu.Lock()
		for _, t := range batch {
			delete(b.tasks, t.key)
		}
		b.mu.Unlock()
		for _, t := range batch {
			close(t.done)
		}
	}
}

// pprWalkMetrics counts a task's walk steps and how many of them hit
// the same cache page as the step processed just before — the
// page-locality signal the batched scheduler exists to maximize. Only
// the paged executor fills it in; resident graphs have no pages to be
// local to.
type pprWalkMetrics struct {
	steps uint64
	local uint64
}

// pprWalkSource runs key.walks truncated-geometric walks from
// key.source over snap's graph and tallies walk endpoints — the
// endpoint of a geometric-length walk samples the personalized
// invariant distribution (the paper's Lemma 16 equivalence, restart
// distribution concentrated on the source). A walk stuck on a
// dangling vertex restarts at the source, matching ExactPPR's
// dangling-mass treatment. Walk w's randomness is its own stream
// derived from (snapshot seed, epoch, source, w), consumed in step
// order: every draw is a pure function of (epoch, source, walk,
// step), so the tally is bit-identical whether the walks run
// sequentially (here) or interleaved by the page-batched executor —
// paging and relabeling can never change a served body.
func pprWalkSource(snap *Snapshot, key pprTaskKey, opts PPROptions) (map[graph.VertexID]int32, pprWalkMetrics) {
	if snap.Graph.Paged() {
		return pprWalkSourcePaged(snap, key, opts)
	}
	g := snap.Graph
	counts := make(map[graph.VertexID]int32, min(key.walks, 1024))
	for w := 0; w < key.walks; w++ {
		stream := rng.Derive(snap.Seed, pprPurpose, key.epoch, uint64(key.source), uint64(w))
		steps := stream.Geometric(opts.Teleport)
		if steps > opts.MaxWalkLen {
			steps = opts.MaxWalkLen
		}
		cur := key.source
		for s := 0; s < steps; s++ {
			outs := g.OutNeighbors(cur)
			if len(outs) == 0 {
				cur = key.source
				continue
			}
			cur = outs[stream.Intn(len(outs))]
		}
		counts[cur]++
	}
	return counts, pprWalkMetrics{}
}

// pprWalkSourcePaged is pprWalkSource for paged graphs: all the
// task's walks advance in lockstep rounds, and within a round the
// pending steps are sorted by the cache page their next adjacency
// read will touch, so the pool serves near-sequential page sweeps
// instead of key.walks independent random accesses. Each walk draws
// from its own stream in step order — the same draws, in the same
// per-walk order, as the sequential executor — so the tally is
// bit-identical to the resident path's.
func pprWalkSourcePaged(snap *Snapshot, key pprTaskKey, opts PPROptions) (map[graph.VertexID]int32, pprWalkMetrics) {
	r := snap.Graph.NewAdjReader()
	defer r.Release()
	counts := make(map[graph.VertexID]int32, min(key.walks, 1024))

	type walker struct {
		stream *rng.Stream
		cur    graph.VertexID
		left   int
	}
	active := make([]*walker, 0, key.walks)
	for w := 0; w < key.walks; w++ {
		stream := rng.Derive(snap.Seed, pprPurpose, key.epoch, uint64(key.source), uint64(w))
		steps := stream.Geometric(opts.Teleport)
		if steps > opts.MaxWalkLen {
			steps = opts.MaxWalkLen
		}
		if steps == 0 {
			counts[key.source]++
			continue
		}
		active = append(active, &walker{stream: stream, cur: key.source, left: steps})
	}

	type pending struct {
		wk   *walker
		idx  int32
		page int64
	}
	var m pprWalkMetrics
	batch := make([]pending, 0, len(active))
	lastPage := int64(-1)
	for len(active) > 0 {
		// Draw each walker's next neighbor index now (its own stream,
		// step order preserved), so the step's exact page is known
		// before any page is touched.
		batch = batch[:0]
		for _, wk := range active {
			deg := r.OutDegree(wk.cur)
			if deg == 0 {
				wk.cur = key.source // dangling restart: a step, no read
				m.steps++
				continue
			}
			idx := wk.stream.Intn(deg)
			batch = append(batch, pending{wk: wk, idx: int32(idx), page: r.OutPageAt(wk.cur, idx)})
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].page < batch[j].page })
		for _, p := range batch {
			m.steps++
			if p.page == lastPage {
				m.local++
			} else {
				lastPage = p.page
			}
			p.wk.cur = r.OutAt(p.wk.cur, int(p.idx))
		}
		retained := active[:0]
		for _, wk := range active {
			wk.left--
			if wk.left > 0 {
				retained = append(retained, wk)
			} else {
				counts[wk.cur]++
			}
		}
		active = retained
	}
	return counts, m
}

// --- request handling -----------------------------------------------

// pprKey renders the canonical cache/flight key for a request.
func pprKey(epoch uint64, sources []graph.VertexID, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d:", epoch, k)
	for i, s := range sources {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(s), 10))
	}
	return b.String()
}

// parsePPRSources parses the source/sources parameters into a
// canonical (sorted, deduplicated) source set. Validation errors carry
// the status and code the error envelope table pins.
func (s *Server) parsePPRSources(r *http.Request, n int, opts PPROptions) ([]graph.VertexID, int, string, error) {
	q := r.URL.Query()
	raw := q.Get("sources")
	if raw == "" {
		raw = q.Get("source")
	}
	if !q.Has("sources") && !q.Has("source") {
		return nil, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("missing source parameter (source=u or sources=a,b,c)")
	}
	parts := strings.Split(raw, ",")
	sources := make([]graph.VertexID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("bad source %q: %v", p, err)
		}
		if int(v) >= n {
			return nil, http.StatusNotFound, api.CodeNotFound, fmt.Errorf("source %d not in graph (n=%d)", v, n)
		}
		sources = append(sources, graph.VertexID(v))
	}
	if len(sources) == 0 {
		return nil, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("empty source set")
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	sources = dedupeSorted(sources)
	if len(sources) > opts.MaxSources {
		return nil, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("%d sources exceed the limit of %d", len(sources), opts.MaxSources)
	}
	if opts.WalkBudget/len(sources) == 0 {
		return nil, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("walk budget %d cannot cover %d sources", opts.WalkBudget, len(sources))
	}
	return sources, 0, "", nil
}

// dedupeSorted removes adjacent duplicates in place.
func dedupeSorted(xs []graph.VertexID) []graph.VertexID {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// handlePPR answers GET /v1/ppr?source=u&k= (or sources=a,b,c): the
// top-k personalized PageRank of the source set, estimated by
// request-time walks under the configured budget.
func (s *Server) handlePPR(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.ppr.lat.Observe(time.Since(start)) }()
	s.ppr.queries.Inc()
	snap := s.current(w)
	if snap == nil {
		return
	}
	opts := s.ppr.opts
	k, err := parsePositiveInt(r.URL.Query().Get("k"), 20)
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "bad k: %v", err)
		return
	}
	if k > opts.MaxK {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "k %d exceeds the limit of %d", k, opts.MaxK)
		return
	}
	sources, status, code, err := s.parsePPRSources(r, snap.Graph.NumVertices(), opts)
	if err != nil {
		s.fail(w, status, code, "%v", err)
		return
	}

	key := pprKey(snap.Epoch, sources, k)
	if body, ok := s.ppr.cache.Get(key, start); ok {
		s.ppr.cacheHits.Inc()
		s.reply(w, body)
		return
	}
	body, err, shared := s.ppr.flights.Do(key, func() ([]byte, error) {
		body, err := s.pprCompute(snap, sources, k)
		if err == nil {
			s.ppr.cache.Put(key, body, time.Now())
		}
		return body, err
	})
	if shared {
		s.coalesced.Inc()
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.reply(w, body)
}

// pprCut converts a merged endpoint tally into the top-k entries, in
// the topk package's total order (score descending, vertex ascending
// on ties) so the result is deterministic and consistent with /v1/topk
// semantics.
func pprCut(merged map[graph.VertexID]int32, totalWalks, k int) []topk.Entry {
	entries := make([]topk.Entry, 0, len(merged))
	inv := 1 / float64(totalWalks)
	for v, c := range merged {
		entries = append(entries, topk.Entry{Vertex: v, Score: float64(c) * inv})
	}
	sort.Slice(entries, func(i, j int) bool { return topk.Less(entries[j], entries[i]) })
	if k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// PPRTopK estimates the top-k personalized PageRank of the source set
// over snap with the same bounded-budget walk estimator /v1/ppr
// serves — the embedding hook (repro.PersonalizedTopK) for callers
// that hold a snapshot and want answers without HTTP. Sources are
// canonicalized (sorted, deduplicated); the boolean reports budget
// truncation. The entries are bit-identical to the served response's
// for the same snapshot, sources, k and options.
func PPRTopK(snap *Snapshot, sources []graph.VertexID, k int, opts PPROptions) ([]topk.Entry, bool, error) {
	opts = opts.withDefaults()
	srcs := append([]graph.VertexID(nil), sources...)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	srcs = dedupeSorted(srcs)
	n := snap.Graph.NumVertices()
	switch {
	case len(srcs) == 0:
		return nil, false, fmt.Errorf("serve: ppr needs at least one source")
	case len(srcs) > opts.MaxSources:
		return nil, false, fmt.Errorf("serve: %d sources exceed the limit of %d", len(srcs), opts.MaxSources)
	case opts.WalkBudget/len(srcs) == 0:
		return nil, false, fmt.Errorf("serve: walk budget %d cannot cover %d sources", opts.WalkBudget, len(srcs))
	case k <= 0:
		return nil, false, fmt.Errorf("serve: k must be positive, got %d", k)
	}
	for _, s := range srcs {
		if int(s) >= n {
			return nil, false, fmt.Errorf("serve: source %d not in graph (n=%d)", s, n)
		}
	}
	walksPer := opts.WalksPerSource
	truncated := false
	if walksPer*len(srcs) > opts.WalkBudget {
		walksPer = opts.WalkBudget / len(srcs)
		truncated = true
	}
	merged := make(map[graph.VertexID]int32, len(srcs)*8)
	for _, src := range srcs {
		counts, _ := pprWalkSource(snap, pprTaskKey{epoch: snap.Epoch, source: src, walks: walksPer}, opts)
		for v, c := range counts {
			merged[v] += c
		}
	}
	return pprCut(merged, walksPer*len(srcs), k), truncated, nil
}

// pprCompute runs the walks through the batcher and marshals the
// response body. Bit-identical for identical (snapshot, sources, k).
func (s *Server) pprCompute(snap *Snapshot, sources []graph.VertexID, k int) ([]byte, error) {
	opts := s.ppr.opts
	walksPer := opts.WalksPerSource
	truncated := false
	if walksPer*len(sources) > opts.WalkBudget {
		walksPer = opts.WalkBudget / len(sources)
		truncated = true
		s.ppr.truncated.Inc()
	}
	keys := make([]pprTaskKey, len(sources))
	for i, src := range sources {
		keys[i] = pprTaskKey{epoch: snap.Epoch, source: src, walks: walksPer}
	}
	tasks := s.ppr.batcher.run(snap, opts, keys)
	s.ppr.walks.Add(uint64(walksPer * len(sources)))

	// Merge the per-source endpoint tallies; the source set's PPR is
	// the uniform mixture of the per-source PPR vectors, and every
	// source ran the same walk count.
	merged := make(map[graph.VertexID]int32, len(tasks)*8)
	for _, t := range tasks {
		for v, c := range t.counts {
			merged[v] += c
		}
	}
	totalWalks := walksPer * len(sources)
	entries := pprCut(merged, totalWalks, k)

	rows := make([]api.TopKEntry, len(entries))
	for i, e := range entries {
		rows[i] = api.TopKEntry{Vertex: e.Vertex, Score: e.Score}
	}
	srcIDs := make([]uint32, len(sources))
	copy(srcIDs, sources)
	body, err := json.Marshal(api.PPRResponse{
		Epoch:     snap.Epoch,
		Engine:    snap.Engine,
		Seed:      snap.Seed,
		Sources:   srcIDs,
		K:         len(rows),
		Walks:     totalWalks,
		Truncated: truncated,
		Entries:   rows,
	})
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
