package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func persistTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 400, MeanOutDeg: 6, DegExponent: 2.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildPersistSnap(t testing.TB, g *graph.Graph) *Snapshot {
	t.Helper()
	snap, err := Build(g, BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 9, MaxK: 50})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := persistTestGraph(t)
	snap := buildPersistSnap(t, g)
	snap.Epoch = 7 // as if published

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if !got.WarmStart {
		t.Fatal("loaded snapshot must be flagged WarmStart")
	}
	if got.Epoch != 7 || got.Engine != snap.Engine || got.Seed != snap.Seed {
		t.Fatalf("provenance lost: epoch=%d engine=%s seed=%d", got.Epoch, got.Engine, got.Seed)
	}
	if !reflect.DeepEqual(got.Ranks, snap.Ranks) {
		t.Fatal("rank vector not bit-identical")
	}
	if !reflect.DeepEqual(got.Top, snap.Top) {
		t.Fatal("top index not bit-identical")
	}
	if got.MaxK != snap.MaxK || got.Stats != snap.Stats {
		t.Fatalf("metadata lost: maxk=%d stats=%+v", got.MaxK, got.Stats)
	}
	if got.BuiltAt.UnixNano() != snap.BuiltAt.UnixNano() || got.BuildSeconds != snap.BuildSeconds {
		t.Fatal("timing provenance lost")
	}
	// The loaded index must answer queries exactly like the original.
	for _, k := range []int{1, 10, 50, 200} {
		if !reflect.DeepEqual(got.TopK(k), snap.TopK(k)) {
			t.Fatalf("TopK(%d) diverges after round trip", k)
		}
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	g := persistTestGraph(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, buildPersistSnap(t, g)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flip := func(off int) []byte {
		cp := append([]byte{}, raw...)
		cp[off] ^= 0x04
		return cp
	}
	// Bit flips inside each section must fail by checksum.
	n := uint64(g.NumVertices())
	secs := snapSchema.Layout([]uint64{n * 8, 50 * 4, 50 * 8})
	for i, s := range secs {
		if _, err := DecodeSnapshot(flip(int(s.Off)+2), g); !errors.Is(err, ErrSnapshotChecksum) {
			t.Fatalf("section %d flip: err = %v, want checksum error", i, err)
		}
	}
	// Header tampering fails structurally.
	if _, err := DecodeSnapshot(flip(0), g); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatal("bad magic accepted")
	}
	for _, cut := range []int{0, snapHeaderSize - 1, len(raw) - 3} {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut]), g); !errors.Is(err, ErrSnapshotFormat) {
			t.Fatalf("cut at %d: err = %v, want format error", cut, err)
		}
	}
	// A snapshot for a different graph is refused.
	other, err := gen.PowerLaw(gen.PowerLawConfig{N: 300, MeanOutDeg: 6, DegExponent: 2.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(append([]byte{}, raw...), other); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatal("mismatched graph accepted")
	}
}

func TestSaveSnapshotAtomic(t *testing.T) {
	g := persistTestGraph(t)
	dir := t.TempDir()
	path := SnapshotPath(dir)
	snap := buildPersistSnap(t, g)
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	// Overwrite; only the final content is visible and no temp files
	// remain.
	snap2 := buildPersistSnap(t, g)
	snap2.Epoch = 2
	if err := SaveSnapshot(path, snap2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", got.Epoch)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left: %v", ents)
	}
}

func TestStoreRestorePreservesEpoch(t *testing.T) {
	st := NewStore()
	s := &Snapshot{Epoch: 41}
	st.Restore(s)
	if st.Current() != s || st.Epoch() != 41 {
		t.Fatalf("restore: current=%p epoch=%d", st.Current(), st.Epoch())
	}
	// The next publish moves strictly past the restored epoch.
	next := st.Publish(&Snapshot{})
	if next.Epoch != 42 {
		t.Fatalf("publish after restore: epoch = %d, want 42", next.Epoch)
	}
	// Zero-epoch snapshots get a fresh epoch.
	st2 := NewStore()
	if got := st2.Restore(&Snapshot{}); got.Epoch != 1 {
		t.Fatalf("zero-epoch restore: epoch = %d, want 1", got.Epoch)
	}
}

// TestWarmStartServesBeforeRecompute pins the acceptance criterion: a
// service pointed at a snapshot directory answers /v1/topk from the
// persisted snapshot — carrying the persisted epoch's provenance —
// without running any engine build, and the refresher then re-derives
// a fresh snapshot in the background.
func TestWarmStartServesBeforeRecompute(t *testing.T) {
	g := persistTestGraph(t)
	dir := t.TempDir()

	// First life: cold start with persistence on; the refresh is
	// persisted to dir.
	cfg := ServiceConfig{
		Build:       BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 9, MaxK: 50},
		SnapshotDir: dir,
	}
	srv1, _, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := srv1.Snapshot()
	if first == nil || first.WarmStart {
		t.Fatal("cold start should have built a fresh snapshot")
	}

	// Second life: the build function must NOT run during startup —
	// inject one that fails the test if called synchronously.
	store := NewStore()
	buildCalls := 0
	refresher := NewRefresher(store, func(gen uint64) (*Snapshot, error) {
		buildCalls++
		return Build(g, BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 9 + gen, MaxK: 50})
	}, 0)
	refresher.PersistTo(dir, nil)
	snap, err := LoadSnapshot(SnapshotPath(dir), g)
	if err != nil {
		t.Fatal(err)
	}
	store.Restore(snap)
	srv2 := NewServer(store, ServerOptions{Refresher: refresher})

	if buildCalls != 0 {
		t.Fatal("warm start ran an engine build")
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/topk?k=10", nil)
	srv2.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Epoch  uint64 `json:"epoch"`
		Engine string `json:"engine"`
		Seed   uint64 `json:"seed"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != first.Epoch || resp.Engine != string(first.Engine) || resp.Seed != first.Seed {
		t.Fatalf("warm response provenance %+v, want epoch=%d engine=%s seed=%d",
			resp, first.Epoch, first.Engine, first.Seed)
	}
	if buildCalls != 0 {
		t.Fatal("query triggered a build")
	}

	// The background refresher treats a warm store as due: one Run
	// publishes a strictly newer epoch.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := refresher.Run(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if buildCalls != 1 {
		t.Fatalf("background refresh builds = %d, want 1", buildCalls)
	}
	cur := store.Current()
	if cur.WarmStart || cur.Epoch <= first.Epoch {
		t.Fatalf("refresh did not supersede warm snapshot (epoch %d vs %d)", cur.Epoch, first.Epoch)
	}
}

// TestNewServiceWarmStart covers the one-call path: corrupt snapshots
// fall back to a cold build with the error surfaced, valid ones are
// restored.
func TestNewServiceWarmStart(t *testing.T) {
	g := persistTestGraph(t)
	dir := t.TempDir()
	cfg := ServiceConfig{
		Build:       BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 9, MaxK: 50},
		SnapshotDir: dir,
	}
	srv1, _, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	srv2, refresher2, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := srv2.Snapshot()
	if !snap.WarmStart {
		t.Fatal("second service did not warm-start")
	}
	if snap.Epoch != srv1.Snapshot().Epoch {
		t.Fatal("warm start lost the persisted epoch")
	}
	// The seed sequence continues across the restart: the restored
	// epoch fast-forwards the build generation, so the next refresh
	// uses seed base+epoch instead of repeating base+0.
	fresh, err := refresher2.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Build.Seed + snap.Epoch; fresh.Seed != want {
		t.Fatalf("post-restart refresh seed = %d, want %d", fresh.Seed, want)
	}
	if fresh.Epoch <= snap.Epoch || fresh.WarmStart {
		t.Fatalf("refresh did not supersede: epoch %d vs %d", fresh.Epoch, snap.Epoch)
	}

	// Corrupt file: cold build + error surfaced, not a startup
	// failure.
	raw, err := os.ReadFile(SnapshotPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(SnapshotPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var warmErr error
	cfg.OnRefreshError = func(err error) { warmErr = err }
	srv3, _, err := NewService(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warmErr == nil {
		t.Fatal("corrupt snapshot not reported")
	}
	if srv3.Snapshot().WarmStart {
		t.Fatal("corrupt snapshot served")
	}
}

// TestRefresherPersists pins that every published refresh lands on
// disk and a failed persist is counted without failing the refresh.
func TestRefresherPersists(t *testing.T) {
	g := persistTestGraph(t)
	dir := t.TempDir()
	store := NewStore()
	r := NewRefresher(store, EngineBuilder(g, BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 1, MaxK: 20}), 0)
	r.PersistTo(dir, nil)
	pub, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(SnapshotPath(dir), g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != pub.Epoch {
		t.Fatalf("persisted epoch %d, want %d", got.Epoch, pub.Epoch)
	}

	// Unwritable dir: refresh still succeeds, persist error counted.
	var reported error
	r2 := NewRefresher(store, EngineBuilder(g, BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 1, MaxK: 20}), 0)
	r2.PersistTo(filepath.Join(dir, "missing-subdir"), func(err error) { reported = err })
	if _, err := r2.Refresh(); err != nil {
		t.Fatalf("refresh must not fail on persist error: %v", err)
	}
	if r2.PersistErrors() != 1 || reported == nil {
		t.Fatalf("persist errors = %d, reported = %v", r2.PersistErrors(), reported)
	}
}

// FuzzDecodeSnapshot: the snapshot loader must never panic or
// over-allocate on corrupt bytes.
func FuzzDecodeSnapshot(f *testing.F) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 60, MeanOutDeg: 4, DegExponent: 2.1, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	snap, err := Build(g, BuildConfig{Engine: EngineFrogWild, Machines: 2, Seed: 1, MaxK: 10})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:snapHeaderSize])
	f.Add(valid[:len(valid)-5])
	for _, off := range []int{0, 9, 17, 41, snapTableOff + 3, snapHeaderSize + 1, len(valid) - 1} {
		cp := append([]byte{}, valid...)
		cp[off] ^= 0xff
		f.Add(cp)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeSnapshot(data, nil); err == nil {
			_ = s.TopK(5)
		}
		if s, err := ReadSnapshot(bytes.NewReader(data), nil); err == nil {
			_ = s.TopK(5)
		}
	})
}

// TestNewServiceCreatesSnapshotDir: a configured but not-yet-existing
// snapshot directory is created (nested), so persistence works on the
// very first run; an uncreatable one fails startup loudly.
func TestNewServiceCreatesSnapshotDir(t *testing.T) {
	g := persistTestGraph(t)
	dir := filepath.Join(t.TempDir(), "a", "b")
	cfg := ServiceConfig{
		Build:       BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 9, MaxK: 20},
		SnapshotDir: dir,
	}
	if _, _, err := NewService(g, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(SnapshotPath(dir)); err != nil {
		t.Fatalf("snapshot not persisted into created dir: %v", err)
	}

	// A path that cannot be a directory is a loud startup error.
	file := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.SnapshotDir = filepath.Join(file, "sub")
	if _, _, err := NewService(g, cfg); err == nil {
		t.Fatal("uncreatable snapshot dir accepted")
	}
}
