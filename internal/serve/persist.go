package serve

// Snapshot persistence: the serving layer's answer to restart cost.
// Every published snapshot can be written to disk in a checksummed
// binary format, and prserve can warm-start from the last persisted
// file: the ranks and the precomputed top index load in milliseconds —
// independent of how long the estimate took to compute — and serve
// queries, with the persisted epoch's provenance, while the first
// fresh refresh runs in the background.
//
// The byte-level discipline (header prelude, checksummed section
// table, atomic save, bounded stream read) is the shared
// internal/secfile codec; this file is the FWSNAP01 schema over it:
//
//	offset  size  field
//	0       8     magic "FWSNAP01"
//	8       4     format version (1)
//	12      1     array byte order: 0 little, 1 big
//	13      3     reserved (zero)
//	16      8     n, rank vector length (= graph vertices)
//	24      8     graph edge count (warm-start compatibility check)
//	32      8     MaxK
//	40      8     top index length (= min(MaxK, n))
//	48      8     epoch
//	56      8     seed
//	64      8     BuiltAt, unix nanoseconds
//	72      8     BuildSeconds
//	80      16    engine name, zero-padded
//	96      48    graph stats: minOutDeg, maxOutDeg, maxInDeg (i64),
//	              meanDeg, giniOut (f64), dangling (i64)
//	144     72    section table: 3 × (offset u64, length u64, crc64 u64)
//	              in order ranks (n × f64), top vertices (topLen × u32),
//	              top scores (topLen × f64)
//	216     40    reserved (zero)
//	256     ...   sections, 8-byte aligned

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/graph"
	"repro/internal/secfile"
	"repro/internal/topk"
)

const (
	snapMagic      = "FWSNAP01"
	snapVersion    = 1
	snapHeaderSize = 256
	snapTableOff   = 144
	snapSections   = 3

	// maxSnapVertices bounds a header's claimed rank-vector length
	// before any allocation happens.
	maxSnapVertices = 1 << 31
)

// ErrSnapshotFormat wraps every corruption the snapshot loader
// detects; ErrSnapshotMismatch flags a valid snapshot that belongs to
// a different graph than the one being served. Failures also wrap the
// corresponding internal/secfile identity.
var (
	ErrSnapshotFormat   = errors.New("serve: not a snapshot file")
	ErrSnapshotChecksum = errors.New("serve: snapshot section checksum mismatch")
	ErrSnapshotMismatch = errors.New("serve: snapshot does not match the served graph")
)

// snapSchema plugs the FWSNAP01 layout into the shared codec; a
// foreign byte order is a plain format error for snapshots (the file
// is a cache — the server just rebuilds).
var snapSchema = &secfile.Schema{
	Magic:        snapMagic,
	Version:      snapVersion,
	HeaderSize:   snapHeaderSize,
	TableOff:     snapTableOff,
	NumSections:  snapSections,
	SectionSizes: snapSectionSizes,
	ErrFormat:    ErrSnapshotFormat,
	ErrChecksum:  ErrSnapshotChecksum,
	ErrEndian:    ErrSnapshotFormat,
}

func init() {
	secfile.Register(secfile.Info{
		Name:         "serve snapshot",
		Schema:       snapSchema,
		SectionNames: []string{"ranks", "topVertices", "topScores"},
		Fields: func(hdr []byte) []secfile.Field {
			return []secfile.Field{
				{Name: "vertices", Value: fmt.Sprint(binary.LittleEndian.Uint64(hdr[16:24]))},
				{Name: "edges", Value: fmt.Sprint(binary.LittleEndian.Uint64(hdr[24:32]))},
				{Name: "maxK", Value: fmt.Sprint(binary.LittleEndian.Uint64(hdr[32:40]))},
				{Name: "topLen", Value: fmt.Sprint(binary.LittleEndian.Uint64(hdr[40:48]))},
				{Name: "epoch", Value: fmt.Sprint(binary.LittleEndian.Uint64(hdr[48:56]))},
				{Name: "seed", Value: fmt.Sprint(binary.LittleEndian.Uint64(hdr[56:64]))},
				{Name: "engine", Value: string(engineName(hdr))},
				{Name: "builtAt", Value: time.Unix(0, int64(binary.LittleEndian.Uint64(hdr[64:72]))).UTC().Format(time.RFC3339)},
				{Name: "buildSeconds", Value: fmt.Sprintf("%.3f", math.Float64frombits(binary.LittleEndian.Uint64(hdr[72:80])))},
			}
		},
	})
}

// engineName extracts the zero-padded engine name field.
func engineName(hdr []byte) []byte {
	engine := hdr[80:96]
	end := 0
	for end < len(engine) && engine[end] != 0 {
		end++
	}
	return engine[:end]
}

// snapSectionSizes derives the three sections' byte lengths from the
// header's rank-vector and top-index lengths, rejecting implausible or
// internally inconsistent claims before anything is allocated.
func snapSectionSizes(hdr []byte) ([]uint64, error) {
	n := binary.LittleEndian.Uint64(hdr[16:24])
	maxK := binary.LittleEndian.Uint64(hdr[32:40])
	topLen := binary.LittleEndian.Uint64(hdr[40:48])
	if n == 0 || n > maxSnapVertices {
		return nil, fmt.Errorf("implausible n=%d", n)
	}
	if topLen > n || maxK == 0 || maxK > maxSnapVertices {
		return nil, fmt.Errorf("implausible top index (maxk=%d len=%d)", maxK, topLen)
	}
	if topLen != min(maxK, n) {
		return nil, fmt.Errorf("top length %d, want min(maxk=%d, n=%d)", topLen, maxK, n)
	}
	return []uint64{n * 8, topLen * 4, topLen * 8}, nil
}

// SnapshotPath returns the file inside dir where the serving layer
// persists (and warm-starts from) the latest snapshot.
func SnapshotPath(dir string) string { return filepath.Join(dir, "snapshot.fws") }

// WriteSnapshot serializes s (ranks, top index, provenance, graph
// stats) to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s == nil || len(s.Ranks) == 0 {
		return errors.New("serve: nothing to persist")
	}
	if len(s.Engine) > 16 {
		return fmt.Errorf("serve: engine name %q too long to persist", s.Engine)
	}
	n, topLen := uint64(len(s.Ranks)), uint64(len(s.Top))
	topV := make([]uint32, topLen)
	topS := make([]float64, topLen)
	for i, e := range s.Top {
		topV[i], topS[i] = e.Vertex, e.Score
	}

	hdr := snapSchema.NewHeader()
	binary.LittleEndian.PutUint64(hdr[16:24], n)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(s.Stats.NumEdges))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(s.MaxK))
	binary.LittleEndian.PutUint64(hdr[40:48], topLen)
	binary.LittleEndian.PutUint64(hdr[48:56], s.Epoch)
	binary.LittleEndian.PutUint64(hdr[56:64], s.Seed)
	binary.LittleEndian.PutUint64(hdr[64:72], uint64(s.BuiltAt.UnixNano()))
	binary.LittleEndian.PutUint64(hdr[72:80], math.Float64bits(s.BuildSeconds))
	copy(hdr[80:96], s.Engine)
	st := s.Stats
	binary.LittleEndian.PutUint64(hdr[96:104], uint64(st.MinOutDeg))
	binary.LittleEndian.PutUint64(hdr[104:112], uint64(st.MaxOutDeg))
	binary.LittleEndian.PutUint64(hdr[112:120], uint64(st.MaxInDeg))
	binary.LittleEndian.PutUint64(hdr[120:128], math.Float64bits(st.MeanDeg))
	binary.LittleEndian.PutUint64(hdr[128:136], math.Float64bits(st.GiniOut))
	binary.LittleEndian.PutUint64(hdr[136:144], uint64(st.Dangling))
	return snapSchema.Write(w, hdr, [][]byte{
		secfile.Bytes(s.Ranks), secfile.Bytes(topV), secfile.Bytes(topS),
	})
}

// SaveSnapshot persists s to path atomically (temp file + fsync +
// rename in the same directory), so a crash mid-write never destroys
// the previous snapshot and a concurrent warm start never sees a torn
// file.
func SaveSnapshot(path string, s *Snapshot) error {
	return secfile.SaveAtomic(path, func(w io.Writer) error { return WriteSnapshot(w, s) })
}

// snapshotFromFile rebuilds a Snapshot from a parsed, checksum-verified
// section file, attaching it to g (the graph it will be served
// against). Beyond the codec's structural checks it verifies the
// graph-compatibility fields and the top index's internal consistency
// (every entry in range, scores matching the rank vector, sorted by
// the topk total order), so a loaded snapshot upholds exactly the
// invariants a freshly built one does.
func snapshotFromFile(f *secfile.File, g *graph.Graph) (*Snapshot, error) {
	hdr := f.Header()
	n := binary.LittleEndian.Uint64(hdr[16:24])
	edges := binary.LittleEndian.Uint64(hdr[24:32])
	maxK := binary.LittleEndian.Uint64(hdr[32:40])
	topLen := binary.LittleEndian.Uint64(hdr[40:48])
	if g != nil && (int(n) != g.NumVertices() || int64(edges) != g.NumEdges()) {
		return nil, fmt.Errorf("%w: snapshot for n=%d m=%d, graph has n=%d m=%d",
			ErrSnapshotMismatch, n, edges, g.NumVertices(), g.NumEdges())
	}

	// Sections were written in native byte order (the codec checked the
	// header's endian tag), so decode them with native-order copies —
	// not binary.LittleEndian, which would shred them on a big-endian
	// host that wrote them itself.
	ranks := make([]float64, n)
	copy(secfile.Bytes(ranks), f.Section(0))
	topV := make([]uint32, topLen)
	copy(secfile.Bytes(topV), f.Section(1))
	topS := make([]float64, topLen)
	copy(secfile.Bytes(topS), f.Section(2))
	top := make([]topk.Entry, topLen)
	for i := range top {
		v, score := topV[i], topS[i]
		if uint64(v) >= n {
			return nil, fmt.Errorf("%w: top entry %d vertex %d out of range", ErrSnapshotFormat, i, v)
		}
		if ranks[v] != score || math.IsNaN(score) {
			return nil, fmt.Errorf("%w: top entry %d score disagrees with rank vector", ErrSnapshotFormat, i)
		}
		if i > 0 {
			prev := top[i-1]
			if score > prev.Score || (score == prev.Score && v <= prev.Vertex) {
				return nil, fmt.Errorf("%w: top index not in topk order at entry %d", ErrSnapshotFormat, i)
			}
		}
		top[i] = topk.Entry{Vertex: v, Score: score}
	}

	s := &Snapshot{
		Epoch:        binary.LittleEndian.Uint64(hdr[48:56]),
		Engine:       Engine(engineName(hdr)),
		Seed:         binary.LittleEndian.Uint64(hdr[56:64]),
		BuiltAt:      time.Unix(0, int64(binary.LittleEndian.Uint64(hdr[64:72]))),
		BuildSeconds: math.Float64frombits(binary.LittleEndian.Uint64(hdr[72:80])),
		Graph:        g,
		Stats: graph.Stats{
			NumVertices: int(n),
			NumEdges:    int64(edges),
			MinOutDeg:   int(int64(binary.LittleEndian.Uint64(hdr[96:104]))),
			MaxOutDeg:   int(int64(binary.LittleEndian.Uint64(hdr[104:112]))),
			MaxInDeg:    int(int64(binary.LittleEndian.Uint64(hdr[112:120]))),
			MeanDeg:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[120:128])),
			GiniOut:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[128:136])),
			Dangling:    int(int64(binary.LittleEndian.Uint64(hdr[136:144]))),
		},
		Ranks:     ranks,
		Top:       top,
		MaxK:      int(maxK),
		WarmStart: true,
	}
	return s, nil
}

// DecodeSnapshot rebuilds a Snapshot from data, attaching it to g (the
// graph it will be served against). It verifies the header, the
// per-section checksums, the graph-compatibility fields, and the top
// index's internal consistency. The returned snapshot has WarmStart
// set.
func DecodeSnapshot(data []byte, g *graph.Graph) (*Snapshot, error) {
	f, err := snapSchema.Decode(data, nil, secfile.OpenOptions{})
	if err != nil {
		return nil, err
	}
	return snapshotFromFile(f, g)
}

// ReadSnapshot decodes a snapshot stream. The header is read first so
// the exact remaining size is known; the buffer grows geometrically
// toward it, so a hostile header fails at the stream's real end
// instead of forcing one giant allocation.
func ReadSnapshot(r io.Reader, g *graph.Graph) (*Snapshot, error) {
	f, err := snapSchema.Read(r, secfile.OpenOptions{})
	if err != nil {
		return nil, err
	}
	return snapshotFromFile(f, g)
}

// LoadSnapshot reads a persisted snapshot and attaches it to g. The
// returned snapshot has WarmStart set, which tells the Refresher to
// schedule a fresh build even though a snapshot is already serving.
func LoadSnapshot(path string, g *graph.Graph) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f, g)
}
