package serve

// Snapshot persistence: the serving layer's answer to restart cost.
// Every published snapshot can be written to disk in a checksummed
// binary format with the same header discipline as the gstore graph
// format (magic, version, byte-order tag, 8-aligned sections,
// CRC-64/ECMA per section), and prserve can warm-start from the last
// persisted file: the ranks and the precomputed top index load in
// milliseconds — independent of how long the estimate took to compute
// — and serve queries, with the persisted epoch's provenance, while
// the first fresh refresh runs in the background.
//
// File layout (header scalars little-endian, sections native order):
//
//	offset  size  field
//	0       8     magic "FWSNAP01"
//	8       4     format version (1)
//	12      1     array byte order: 0 little, 1 big
//	13      3     reserved (zero)
//	16      8     n, rank vector length (= graph vertices)
//	24      8     graph edge count (warm-start compatibility check)
//	32      8     MaxK
//	40      8     top index length (= min(MaxK, n))
//	48      8     epoch
//	56      8     seed
//	64      8     BuiltAt, unix nanoseconds
//	72      8     BuildSeconds
//	80      16    engine name, zero-padded
//	96      48    graph stats: minOutDeg, maxOutDeg, maxInDeg (i64),
//	              meanDeg, giniOut (f64), dangling (i64)
//	144     72    section table: 3 × (offset u64, length u64, crc64 u64)
//	              in order ranks (n × f64), top vertices (topLen × u32),
//	              top scores (topLen × f64)
//	216     40    reserved (zero)
//	256     ...   sections, 8-byte aligned

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/topk"
)

const (
	snapMagic      = "FWSNAP01"
	snapVersion    = 1
	snapHeaderSize = 256
	snapTableOff   = 144
	snapSections   = 3

	// maxSnapVertices bounds a header's claimed rank-vector length
	// before any allocation happens.
	maxSnapVertices = 1 << 31
)

// ErrSnapshotFormat wraps every corruption the snapshot loader
// detects; ErrSnapshotMismatch flags a valid snapshot that belongs to
// a different graph than the one being served.
var (
	ErrSnapshotFormat   = errors.New("serve: not a snapshot file")
	ErrSnapshotChecksum = errors.New("serve: snapshot section checksum mismatch")
	ErrSnapshotMismatch = errors.New("serve: snapshot does not match the served graph")
)

var snapCRC = crc64.MakeTable(crc64.ECMA)

var snapNativeEndian = func() byte {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) == 1 {
		return 0
	}
	return 1
}()

// SnapshotPath returns the file inside dir where the serving layer
// persists (and warm-starts from) the latest snapshot.
func SnapshotPath(dir string) string { return filepath.Join(dir, "snapshot.fws") }

type snapSection struct{ off, length, crc uint64 }

func snapLayout(n, topLen uint64) [snapSections]snapSection {
	sizes := [snapSections]uint64{n * 8, topLen * 4, topLen * 8}
	var secs [snapSections]snapSection
	off := uint64(snapHeaderSize)
	for i, sz := range sizes {
		secs[i] = snapSection{off: off, length: sz}
		off = (off + sz + 7) &^ 7
	}
	return secs
}

func snapFileSize(n, topLen uint64) uint64 {
	secs := snapLayout(n, topLen)
	last := secs[snapSections-1]
	return (last.off + last.length + 7) &^ 7
}

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// WriteSnapshot serializes s (ranks, top index, provenance, graph
// stats) to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s == nil || len(s.Ranks) == 0 {
		return errors.New("serve: nothing to persist")
	}
	if len(s.Engine) > 16 {
		return fmt.Errorf("serve: engine name %q too long to persist", s.Engine)
	}
	n, topLen := uint64(len(s.Ranks)), uint64(len(s.Top))
	topV := make([]uint32, topLen)
	topS := make([]float64, topLen)
	for i, e := range s.Top {
		topV[i], topS[i] = e.Vertex, e.Score
	}
	parts := [snapSections][]byte{f64Bytes(s.Ranks), u32Bytes(topV), f64Bytes(topS)}
	secs := snapLayout(n, topLen)

	hdr := make([]byte, snapHeaderSize)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapVersion)
	hdr[12] = snapNativeEndian
	binary.LittleEndian.PutUint64(hdr[16:24], n)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(s.Stats.NumEdges))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(s.MaxK))
	binary.LittleEndian.PutUint64(hdr[40:48], topLen)
	binary.LittleEndian.PutUint64(hdr[48:56], s.Epoch)
	binary.LittleEndian.PutUint64(hdr[56:64], s.Seed)
	binary.LittleEndian.PutUint64(hdr[64:72], uint64(s.BuiltAt.UnixNano()))
	binary.LittleEndian.PutUint64(hdr[72:80], math.Float64bits(s.BuildSeconds))
	copy(hdr[80:96], s.Engine)
	st := s.Stats
	binary.LittleEndian.PutUint64(hdr[96:104], uint64(st.MinOutDeg))
	binary.LittleEndian.PutUint64(hdr[104:112], uint64(st.MaxOutDeg))
	binary.LittleEndian.PutUint64(hdr[112:120], uint64(st.MaxInDeg))
	binary.LittleEndian.PutUint64(hdr[120:128], math.Float64bits(st.MeanDeg))
	binary.LittleEndian.PutUint64(hdr[128:136], math.Float64bits(st.GiniOut))
	binary.LittleEndian.PutUint64(hdr[136:144], uint64(st.Dangling))
	for i, part := range parts {
		secs[i].crc = crc64.Checksum(part, snapCRC)
		ent := hdr[snapTableOff+24*i:]
		binary.LittleEndian.PutUint64(ent[0:8], secs[i].off)
		binary.LittleEndian.PutUint64(ent[8:16], secs[i].length)
		binary.LittleEndian.PutUint64(ent[16:24], secs[i].crc)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var pad [8]byte
	pos := uint64(snapHeaderSize)
	for i, part := range parts {
		if secs[i].off > pos {
			if _, err := w.Write(pad[:secs[i].off-pos]); err != nil {
				return err
			}
			pos = secs[i].off
		}
		if _, err := w.Write(part); err != nil {
			return err
		}
		pos += uint64(len(part))
	}
	if end := snapFileSize(n, topLen); end > pos {
		if _, err := w.Write(pad[:end-pos]); err != nil {
			return err
		}
	}
	return nil
}

// SaveSnapshot persists s to path atomically (temp file + rename in
// the same directory), so a crash mid-write never destroys the
// previous snapshot and a concurrent warm start never sees a torn
// file.
func SaveSnapshot(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	// Flush before the rename so a crash can never replace the
	// previous good snapshot with a truncated one; then best-effort
	// fsync the directory so the rename itself is durable.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// DecodeSnapshot rebuilds a Snapshot from data, attaching it to g (the
// graph it will be served against). It verifies the header, the
// per-section checksums, the graph-compatibility fields, and the top
// index's internal consistency (every entry in range, scores matching
// the rank vector, sorted by the topk total order), so a loaded
// snapshot upholds exactly the invariants a freshly built one does.
// The returned snapshot has WarmStart set.
func DecodeSnapshot(data []byte, g *graph.Graph) (*Snapshot, error) {
	if len(data) < snapHeaderSize {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrSnapshotFormat, len(data))
	}
	if string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotFormat)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshotFormat, v)
	}
	if data[12] != snapNativeEndian {
		return nil, fmt.Errorf("%w: foreign byte order", ErrSnapshotFormat)
	}
	n := binary.LittleEndian.Uint64(data[16:24])
	edges := binary.LittleEndian.Uint64(data[24:32])
	maxK := binary.LittleEndian.Uint64(data[32:40])
	topLen := binary.LittleEndian.Uint64(data[40:48])
	if n == 0 || n > maxSnapVertices {
		return nil, fmt.Errorf("%w: implausible n=%d", ErrSnapshotFormat, n)
	}
	if topLen > n || maxK == 0 || maxK > maxSnapVertices {
		return nil, fmt.Errorf("%w: implausible top index (maxk=%d len=%d)", ErrSnapshotFormat, maxK, topLen)
	}
	if topLen != min(maxK, n) {
		return nil, fmt.Errorf("%w: top length %d, want min(maxk=%d, n=%d)", ErrSnapshotFormat, topLen, maxK, n)
	}
	want := snapLayout(n, topLen)
	var secs [snapSections]snapSection
	for i := range secs {
		ent := data[snapTableOff+24*i:]
		secs[i] = snapSection{
			off:    binary.LittleEndian.Uint64(ent[0:8]),
			length: binary.LittleEndian.Uint64(ent[8:16]),
			crc:    binary.LittleEndian.Uint64(ent[16:24]),
		}
		if secs[i].off != want[i].off || secs[i].length != want[i].length {
			return nil, fmt.Errorf("%w: section %d geometry mismatch", ErrSnapshotFormat, i)
		}
	}
	if snapFileSize(n, topLen) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: truncated (%d bytes, need %d)", ErrSnapshotFormat, len(data), snapFileSize(n, topLen))
	}
	for i, s := range secs {
		if got := crc64.Checksum(data[s.off:s.off+s.length], snapCRC); got != s.crc {
			return nil, fmt.Errorf("%w: section %d", ErrSnapshotChecksum, i)
		}
	}
	if g != nil && (int(n) != g.NumVertices() || int64(edges) != g.NumEdges()) {
		return nil, fmt.Errorf("%w: snapshot for n=%d m=%d, graph has n=%d m=%d",
			ErrSnapshotMismatch, n, edges, g.NumVertices(), g.NumEdges())
	}

	// Sections were written in native byte order (the header's endian
	// tag was checked above), so decode them with native-order copies —
	// not binary.LittleEndian, which would shred them on a big-endian
	// host that wrote them itself.
	ranks := make([]float64, n)
	copy(f64Bytes(ranks), data[secs[0].off:])
	topV := make([]uint32, topLen)
	copy(u32Bytes(topV), data[secs[1].off:])
	topS := make([]float64, topLen)
	copy(f64Bytes(topS), data[secs[2].off:])
	top := make([]topk.Entry, topLen)
	for i := range top {
		v, score := topV[i], topS[i]
		if uint64(v) >= n {
			return nil, fmt.Errorf("%w: top entry %d vertex %d out of range", ErrSnapshotFormat, i, v)
		}
		if ranks[v] != score || math.IsNaN(score) {
			return nil, fmt.Errorf("%w: top entry %d score disagrees with rank vector", ErrSnapshotFormat, i)
		}
		if i > 0 {
			prev := top[i-1]
			if score > prev.Score || (score == prev.Score && v <= prev.Vertex) {
				return nil, fmt.Errorf("%w: top index not in topk order at entry %d", ErrSnapshotFormat, i)
			}
		}
		top[i] = topk.Entry{Vertex: v, Score: score}
	}

	engine := data[80:96]
	end := 0
	for end < len(engine) && engine[end] != 0 {
		end++
	}
	s := &Snapshot{
		Epoch:        binary.LittleEndian.Uint64(data[48:56]),
		Engine:       Engine(engine[:end]),
		Seed:         binary.LittleEndian.Uint64(data[56:64]),
		BuiltAt:      time.Unix(0, int64(binary.LittleEndian.Uint64(data[64:72]))),
		BuildSeconds: math.Float64frombits(binary.LittleEndian.Uint64(data[72:80])),
		Graph:        g,
		Stats: graph.Stats{
			NumVertices: int(n),
			NumEdges:    int64(edges),
			MinOutDeg:   int(int64(binary.LittleEndian.Uint64(data[96:104]))),
			MaxOutDeg:   int(int64(binary.LittleEndian.Uint64(data[104:112]))),
			MaxInDeg:    int(int64(binary.LittleEndian.Uint64(data[112:120]))),
			MeanDeg:     math.Float64frombits(binary.LittleEndian.Uint64(data[120:128])),
			GiniOut:     math.Float64frombits(binary.LittleEndian.Uint64(data[128:136])),
			Dangling:    int(int64(binary.LittleEndian.Uint64(data[136:144]))),
		},
		Ranks:     ranks,
		Top:       top,
		MaxK:      int(maxK),
		WarmStart: true,
	}
	return s, nil
}

// ReadSnapshot decodes a snapshot stream. The header is read first so
// the exact remaining size is known before the body allocation.
func ReadSnapshot(r io.Reader, g *graph.Graph) (*Snapshot, error) {
	hdr := make([]byte, snapHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if string(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotFormat)
	}
	n := binary.LittleEndian.Uint64(hdr[16:24])
	topLen := binary.LittleEndian.Uint64(hdr[40:48])
	if n > maxSnapVertices || topLen > maxSnapVertices {
		return nil, fmt.Errorf("%w: implausible sizes", ErrSnapshotFormat)
	}
	// Grow toward the claimed size instead of allocating it up front,
	// so a hostile header fails at the stream's real end.
	total := snapFileSize(n, topLen)
	buf := hdr
	for have := uint64(snapHeaderSize); have < total; {
		next := have * 2
		if next < 1<<24 {
			next = 1 << 24
		}
		if next > total {
			next = total
		}
		grown := make([]byte, next)
		copy(grown, buf[:have])
		if _, err := io.ReadFull(r, grown[have:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at byte %d of %d: %v", ErrSnapshotFormat, have, total, err)
		}
		buf = grown
		have = next
	}
	return DecodeSnapshot(buf, g)
}

// LoadSnapshot reads a persisted snapshot and attaches it to g. The
// returned snapshot has WarmStart set, which tells the Refresher to
// schedule a fresh build even though a snapshot is already serving.
func LoadSnapshot(path string, g *graph.Graph) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f, g)
}
