package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve/api"
)

// TestStatsAgreeWithMetrics pins the no-drift guarantee on the
// single-node server: /v1/stats and /metrics read the same registered
// instruments, so every serving counter the JSON body exposes must
// equal its Prometheus family exactly — including the refresher's
// counters, which NewService registers on the same registry.
func TestStatsAgreeWithMetrics(t *testing.T) {
	srv, refresher, err := NewService(testGraph(t), ServiceConfig{
		Build: testBuildConfig(EngineFrogWild),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refresher.Refresh(); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (int, string) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec.Code, rec.Body.String()
	}
	// Repeated k hits the top-k cache; the rank query does not.
	for i := 0; i < 5; i++ {
		if code, body := get("/v1/topk?k=10"); code != http.StatusOK {
			t.Fatalf("topk status %d: %s", code, body)
		}
	}
	if code, _ := get("/v1/rank?vertex=3"); code != http.StatusOK {
		t.Fatal("rank failed")
	}

	// The stats request increments the query counter before its body
	// is built, so the body includes itself; the /metrics scrape is
	// not a query and renders the identical values afterwards.
	code, statsBody := get("/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	var stats api.StatsResponse
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatal(err)
	}
	code, metricsBody := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	series, err := obs.ParseText([]byte(metricsBody))
	if err != nil {
		t.Fatal(err)
	}

	checks := []struct {
		family string
		want   float64
	}{
		{"serve_requests_total", float64(stats.Serving.Queries)},
		{"serve_topk_cache_hits_total", float64(stats.Serving.TopKCacheHits)},
		{"serve_compare_cache_hits_total", float64(stats.Serving.CompareCacheHits)},
		{"serve_coalesced_total", float64(stats.Serving.Coalesced)},
		{"refresh_builds_total", float64(stats.Serving.Refreshes)},
		{"refresh_build_errors_total", float64(stats.Serving.BuildErrors)},
		{"serve_snapshot_epoch", float64(stats.Epoch)},
	}
	for _, c := range checks {
		if got := obs.FamilySum(series, c.family); got != c.want {
			t.Errorf("%s = %v in /metrics, %v in /v1/stats", c.family, got, c.want)
		}
	}
	if stats.Serving.Queries != 7 {
		t.Errorf("queries = %d, want 7 (5 topk + rank + the stats request)", stats.Serving.Queries)
	}
	if stats.Serving.TopKCacheHits != 4 {
		t.Errorf("topk cache hits = %d, want 4 (first of 5 misses)", stats.Serving.TopKCacheHits)
	}
	if got := series[`serve_request_seconds_count{endpoint="topk"}`]; got != 5 {
		t.Errorf(`serve_request_seconds_count{endpoint="topk"} = %v, want 5`, got)
	}
	if got := obs.FamilySum(series, "refresh_publish_to_visible_seconds"); got < 0 {
		t.Errorf("refresh_publish_to_visible_seconds = %v, want >= 0", got)
	}
}

// TestServeRequestLogCarriesRID checks the single-node request log: one
// JSON line per request with component, rid (client-supplied or
// generated), path, status and the served epoch.
func TestServeRequestLogCarriesRID(t *testing.T) {
	var buf bytes.Buffer
	store := NewStore()
	snap := buildSnap(t, store, EngineFrogWild)
	srv := NewServer(store, ServerOptions{RequestLog: obs.NewLogger(&buf)})

	req := httptest.NewRequest(http.MethodGet, "/v1/topk?k=5", nil)
	req.Header.Set(obs.RequestIDHeader, "serve-rid-1")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	if !sc.Scan() {
		t.Fatal("no log line written")
	}
	var e obs.Entry
	if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
		t.Fatalf("log line %q: %v", sc.Text(), err)
	}
	if e.Component != "serve" || e.RID != "serve-rid-1" || e.Path != "/v1/topk" ||
		e.Status != http.StatusOK || e.Epoch != snap.Epoch {
		t.Fatalf("log entry = %+v", e)
	}
	if sc.Scan() {
		t.Fatalf("unexpected second log line %q", sc.Text())
	}
}

// TestMetricsScrapeDuringSwap scrapes /metrics continuously while
// queries run and the store keeps publishing new snapshots. Run under
// -race: the gauges read the live store and must never race a publish,
// and every scrape must stay a parseable exposition.
func TestMetricsScrapeDuringSwap(t *testing.T) {
	g := testGraph(t)
	store := NewStore()
	buildSnap(t, store, EngineFrogWild)
	srv := NewServer(store, ServerOptions{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfg := testBuildConfig(EngineFrogWild)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg.Seed = uint64(100 + i)
			snap, err := Build(g, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			store.Publish(snap)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			rec := httptest.NewRecorder()
			url := fmt.Sprintf("/v1/topk?k=%d", 5+i%7)
			srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
			if rec.Code != http.StatusOK {
				t.Errorf("query status %d", rec.Code)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("scrape status %d", rec.Code)
		}
		if _, err := obs.ParseText(rec.Body.Bytes()); err != nil {
			t.Fatalf("scrape %d not parseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
