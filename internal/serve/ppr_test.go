package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/frogwild"
	"repro/internal/graph"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// pprServer builds a server over an exact epoch-1 snapshot of the
// shared test graph with the given PPR options.
func pprServer(t testing.TB, opts PPROptions) (*Server, *Snapshot) {
	t.Helper()
	g := testGraph(t)
	snap, err := Build(g, BuildConfig{Engine: EngineExact, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.Publish(snap)
	return NewServer(store, ServerOptions{PPR: opts}), snap
}

// getPPR issues one GET and decodes the response body.
func getPPR(t testing.TB, srv *Server, url string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec.Code, rec.Body.Bytes()
}

// TestPPRErrorEnvelopeTable pins the (status, code) pair of every
// error /v1/ppr can produce — the wire contract, mirroring the main
// endpoint error table.
func TestPPRErrorEnvelopeTable(t *testing.T) {
	srv, _ := pprServer(t, PPROptions{MaxK: 50, MaxSources: 4, WalkBudget: 64, WalksPerSource: 16})
	empty := NewServer(NewStore(), ServerOptions{})

	cases := []struct {
		name      string
		srv       *Server
		method    string
		url       string
		status    int
		code      string
		wantEpoch uint64
	}{
		{"missing source", srv, "GET", "/v1/ppr", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"bad source", srv, "GET", "/v1/ppr?source=x", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"negative source", srv, "GET", "/v1/ppr?source=-4", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"source out of range", srv, "GET", "/v1/ppr?source=99999", http.StatusNotFound, api.CodeNotFound, 1},
		{"one bad among good", srv, "GET", "/v1/ppr?sources=1,zap,3", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"empty sources", srv, "GET", "/v1/ppr?sources=", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"only separators", srv, "GET", "/v1/ppr?sources=,,%20,", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"bad k", srv, "GET", "/v1/ppr?source=1&k=zero", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"zero k", srv, "GET", "/v1/ppr?source=1&k=0", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"k over maxk", srv, "GET", "/v1/ppr?source=1&k=51", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"too many sources", srv, "GET", "/v1/ppr?sources=1,2,3,4,5", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"post rejected", srv, "POST", "/v1/ppr?source=1", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, 1},
		{"no snapshot", empty, "GET", "/v1/ppr?source=1", http.StatusServiceUnavailable, api.CodeNoSnapshot, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.url, nil)
			rec := httptest.NewRecorder()
			tc.srv.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.status, rec.Body.String())
			}
			var env api.Error
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("envelope decode: %v (body %q)", err, rec.Body.String())
			}
			if env.Code != tc.code {
				t.Errorf("code %q, want %q", env.Code, tc.code)
			}
			if env.Message == "" {
				t.Error("empty error message")
			}
			if env.Epoch != tc.wantEpoch {
				t.Errorf("epoch %d, want %d", env.Epoch, tc.wantEpoch)
			}
		})
	}
	// A source-set too wide for the budget is a 400 of its own (walks
	// per source would round to zero): MaxSources 4 with budget 3.
	tight, _ := pprServer(t, PPROptions{MaxSources: 4, WalkBudget: 3, WalksPerSource: 16})
	code, body := getPPR(t, tight, "/v1/ppr?sources=1,2,3,4")
	if code != http.StatusBadRequest {
		t.Fatalf("budget-uncoverable status %d, want 400 (body %s)", code, body)
	}
}

// TestPPRResponseSanity checks the estimator against ground truth: the
// served top-k of a single hot source captures most of the exact
// personalized PageRank mass that any k-set could capture.
func TestPPRResponseSanity(t *testing.T) {
	srv, snap := pprServer(t, PPROptions{WalksPerSource: 4000, WalkBudget: 4000})
	const source, k = 7, 10
	code, body := getPPR(t, srv, fmt.Sprintf("/v1/ppr?source=%d&k=%d", source, k))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp api.PPRResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 || resp.Engine != snap.Engine || resp.Seed != snap.Seed {
		t.Errorf("provenance %d/%s/%d, want 1/%s/%d", resp.Epoch, resp.Engine, resp.Seed, snap.Engine, snap.Seed)
	}
	if len(resp.Sources) != 1 || resp.Sources[0] != source {
		t.Errorf("sources echo %v, want [%d]", resp.Sources, source)
	}
	if resp.Walks != 4000 || resp.Truncated {
		t.Errorf("walks %d truncated %v, want 4000 untruncated", resp.Walks, resp.Truncated)
	}
	if resp.K != len(resp.Entries) || resp.K == 0 || resp.K > k {
		t.Fatalf("k %d with %d entries", resp.K, len(resp.Entries))
	}
	var mass float64
	for i, e := range resp.Entries {
		if i > 0 && topk.Less(topk.Entry{Vertex: resp.Entries[i-1].Vertex, Score: resp.Entries[i-1].Score},
			topk.Entry{Vertex: e.Vertex, Score: e.Score}) {
			t.Fatalf("entries not in descending total order at %d", i)
		}
		if e.Score <= 0 || e.Score > 1 {
			t.Fatalf("entry %d score %v outside (0,1]", i, e.Score)
		}
		mass += e.Score
	}
	if mass > 1+1e-9 {
		t.Fatalf("top-%d scores sum to %v > 1", k, mass)
	}

	exact, err := frogwild.ExactPPR(testGraph(t), []graph.VertexID{source}, 0.15, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, e := range resp.Entries {
		got += exact[e.Vertex]
	}
	best := 0.0
	for _, e := range topk.Top(exact, k) {
		best += e.Score
	}
	// 4000 walks against a hot source: the walk estimate's k-set should
	// capture the bulk of the best possible k-set mass.
	if got < 0.7*best {
		t.Errorf("captured exact mass %v, want >= 70%% of optimal %v", got, best)
	}
}

// TestPPRSourceCanonicalization checks that order and duplicates in
// the source list do not change the answer: the canonical source set
// is what is walked, cached and echoed.
func TestPPRSourceCanonicalization(t *testing.T) {
	srv, _ := pprServer(t, PPROptions{WalksPerSource: 200})
	_, a := getPPR(t, srv, "/v1/ppr?sources=9,3,5&k=10")
	_, b := getPPR(t, srv, "/v1/ppr?sources=3,5,9,3,9&k=10")
	if string(a) != string(b) {
		t.Fatalf("permuted/duplicated sources changed the body:\n%s\nvs\n%s", a, b)
	}
	var resp api.PPRResponse
	if err := json.Unmarshal(a, &resp); err != nil {
		t.Fatal(err)
	}
	if want := []uint32{3, 5, 9}; len(resp.Sources) != 3 ||
		resp.Sources[0] != want[0] || resp.Sources[1] != want[1] || resp.Sources[2] != want[2] {
		t.Fatalf("canonical sources %v, want %v", resp.Sources, want)
	}
	// source= and sources= are the same parameter.
	_, c := getPPR(t, srv, "/v1/ppr?source=3,5,9&k=10")
	if string(a) != string(c) {
		t.Fatal("source= and sources= diverge for the same set")
	}
}

// TestPPRBudgetTruncation pins the budget semantics: requests whose
// sources × walks-per-source exceed the budget run fewer walks per
// source, flag "truncated": true, and report the walks actually run.
func TestPPRBudgetTruncation(t *testing.T) {
	srv, _ := pprServer(t, PPROptions{WalksPerSource: 1000, WalkBudget: 100, MaxSources: 8})
	var resp api.PPRResponse

	code, body := getPPR(t, srv, "/v1/ppr?source=1&k=5")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || resp.Walks != 100 {
		t.Fatalf("single source: walks %d truncated %v, want 100 true", resp.Walks, resp.Truncated)
	}

	code, body = getPPR(t, srv, "/v1/ppr?sources=1,2,3&k=5")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// 100/3 = 33 walks per source.
	if !resp.Truncated || resp.Walks != 99 {
		t.Fatalf("three sources: walks %d truncated %v, want 99 true", resp.Walks, resp.Truncated)
	}
	if srv.ppr.truncated.Value() != 2 {
		t.Fatalf("truncated counter %d, want 2", srv.ppr.truncated.Value())
	}

	// Under budget: untruncated. Fresh variable — "truncated" is
	// omitted from untruncated responses, so a reused struct would
	// keep the stale true.
	within, _ := pprServer(t, PPROptions{WalksPerSource: 10, WalkBudget: 100, MaxSources: 8})
	_, body = getPPR(t, within, "/v1/ppr?sources=1,2,3&k=5")
	var fresh api.PPRResponse
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Truncated || fresh.Walks != 30 {
		t.Fatalf("under budget: walks %d truncated %v, want 30 false", fresh.Walks, fresh.Truncated)
	}
}

// TestPPRDeterministicPerEpoch is the tentpole determinism contract:
// within one epoch, identical requests produce bit-identical bodies —
// across repeats, across cache hits and misses, and across executor
// worker counts 1/2/4/7. Walk randomness is a pure function of
// (epoch, source, sequence), so the batch executor's parallelism must
// never leak into results.
func TestPPRDeterministicPerEpoch(t *testing.T) {
	urls := []string{
		"/v1/ppr?source=7&k=10",
		"/v1/ppr?sources=1,2,3&k=5",
		"/v1/ppr?sources=42,17&k=25",
	}
	// Reference bodies from a single-worker, cache-disabled server.
	ref := make(map[string][]byte)
	refSrv, _ := pprServer(t, PPROptions{Workers: 1, CacheSize: -1, WalksPerSource: 500})
	for _, url := range urls {
		code, body := getPPR(t, refSrv, url)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, code, body)
		}
		ref[url] = body
	}
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, _ := pprServer(t, PPROptions{Workers: workers, WalksPerSource: 500})
			// Issue every URL concurrently (batching kicks in), twice
			// (second round hits the LRU), and compare every body to
			// the single-worker reference.
			for round := 0; round < 2; round++ {
				var wg sync.WaitGroup
				errs := make(chan string, len(urls))
				for _, url := range urls {
					wg.Add(1)
					go func(url string) {
						defer wg.Done()
						rec := httptest.NewRecorder()
						srv.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
						if rec.Code != http.StatusOK {
							errs <- fmt.Sprintf("%s: status %d", url, rec.Code)
							return
						}
						if rec.Body.String() != string(ref[url]) {
							errs <- fmt.Sprintf("%s: body diverges from single-worker reference", url)
						}
					}(url)
				}
				wg.Wait()
				close(errs)
				for msg := range errs {
					t.Error(msg)
				}
			}
			if srv.ppr.cacheHits.Value() == 0 {
				t.Error("second round produced no cache hits")
			}
		})
	}
}

// TestPPRCacheHitsAndTTL pins the LRU behavior: repeats hit, the hit
// count is observable in stats and /metrics identically, and a TTL
// expires entries (recomputation is invisible: bodies stay
// bit-identical within the epoch).
func TestPPRCacheHitsAndTTL(t *testing.T) {
	srv, _ := pprServer(t, PPROptions{WalksPerSource: 100})
	_, first := getPPR(t, srv, "/v1/ppr?source=3&k=5")
	_, second := getPPR(t, srv, "/v1/ppr?source=3&k=5")
	if string(first) != string(second) {
		t.Fatal("cache hit body differs from computed body")
	}
	if got := srv.ppr.cacheHits.Value(); got != 1 {
		t.Fatalf("cache hits %d, want 1", got)
	}
	// Different k is a different cache key.
	getPPR(t, srv, "/v1/ppr?source=3&k=6")
	if got := srv.ppr.cacheHits.Value(); got != 1 {
		t.Fatalf("cache hits after distinct k %d, want still 1", got)
	}

	// TTL: entries older than the TTL miss (and are re-inserted).
	ttlSrv, _ := pprServer(t, PPROptions{WalksPerSource: 100, CacheTTL: time.Nanosecond})
	_, a := getPPR(t, ttlSrv, "/v1/ppr?source=3&k=5")
	time.Sleep(time.Millisecond)
	_, b := getPPR(t, ttlSrv, "/v1/ppr?source=3&k=5")
	if ttlSrv.ppr.cacheHits.Value() != 0 {
		t.Fatalf("TTL-expired entry still hit (%d hits)", ttlSrv.ppr.cacheHits.Value())
	}
	if string(a) != string(b) {
		t.Fatal("TTL recompute changed the body within one epoch")
	}

	// Disabled cache: no hits, no growth.
	offSrv, _ := pprServer(t, PPROptions{WalksPerSource: 100, CacheSize: -1})
	getPPR(t, offSrv, "/v1/ppr?source=3&k=5")
	getPPR(t, offSrv, "/v1/ppr?source=3&k=5")
	if offSrv.ppr.cacheHits.Value() != 0 || offSrv.ppr.cache.Len() != 0 {
		t.Fatalf("disabled cache held %d entries, %d hits", offSrv.ppr.cache.Len(), offSrv.ppr.cacheHits.Value())
	}
}

// TestPPRCacheEviction pins the size bound: the LRU never exceeds its
// capacity, evicts cold entries first, and counts evictions.
func TestPPRCacheEviction(t *testing.T) {
	srv, _ := pprServer(t, PPROptions{WalksPerSource: 50, CacheSize: 2})
	getPPR(t, srv, "/v1/ppr?source=1&k=5")
	getPPR(t, srv, "/v1/ppr?source=2&k=5")
	getPPR(t, srv, "/v1/ppr?source=1&k=5") // refresh 1's recency
	getPPR(t, srv, "/v1/ppr?source=3&k=5") // evicts 2, the cold one
	if n := srv.ppr.cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	if ev := srv.ppr.cache.evictions.Value(); ev != 1 {
		t.Fatalf("evictions %d, want 1", ev)
	}
	hitsBefore := srv.ppr.cacheHits.Value()
	getPPR(t, srv, "/v1/ppr?source=1&k=5") // still cached (was refreshed)
	getPPR(t, srv, "/v1/ppr?source=2&k=5") // was evicted: miss
	if hits := srv.ppr.cacheHits.Value(); hits != hitsBefore+1 {
		t.Fatalf("hits went %d -> %d, want exactly one more (1 hot, 2 evicted)", hitsBefore, hits)
	}
}

// TestPPRStatsAgreeWithMetrics extends the no-drift guarantee to the
// PPR instruments: the stats body and the Prometheus exposition must
// report the very same values, exactly.
func TestPPRStatsAgreeWithMetrics(t *testing.T) {
	srv, snap := pprServer(t, PPROptions{WalksPerSource: 100})
	getPPR(t, srv, "/v1/ppr?source=3&k=5")
	getPPR(t, srv, "/v1/ppr?source=3&k=5") // cache hit
	getPPR(t, srv, "/v1/ppr?sources=4,5&k=5")
	getPPR(t, srv, "/v1/ppr?source=nope") // 400: counted as a query, no walks

	stats := srv.StatsBody(snap)
	if stats.Serving.PPRQueries != 4 {
		t.Fatalf("pprQueries %d, want 4", stats.Serving.PPRQueries)
	}
	if stats.Serving.PPRCacheHits != 1 {
		t.Fatalf("pprCacheHits %d, want 1", stats.Serving.PPRCacheHits)
	}
	// 100 (source 3) + 2×100 (sources 4,5); the hit and the 400 walk
	// nothing.
	if stats.Serving.PPRWalks != 300 {
		t.Fatalf("pprWalks %d, want 300", stats.Serving.PPRWalks)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	exposition := rec.Body.String()
	for _, want := range []string{
		"ppr_requests_total 4",
		"ppr_cache_hits_total 1",
		"ppr_walks_total 300",
		"ppr_truncated_total 0",
		`ppr_request_seconds_count 4`,
	} {
		if !containsLine(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// containsLine reports whether the exposition has a line with the
// exact sample (name and value).
func containsLine(exposition, sample string) bool {
	for len(exposition) > 0 {
		line := exposition
		if i := indexByte(exposition, '\n'); i >= 0 {
			line, exposition = exposition[:i], exposition[i+1:]
		} else {
			exposition = ""
		}
		if line == sample {
			return true
		}
	}
	return false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TestPPRTopKFacadeMatchesServed checks the embedding hook: PPRTopK
// returns exactly the entries the HTTP endpoint serves, including
// canonicalization of the source list.
func TestPPRTopKFacadeMatchesServed(t *testing.T) {
	opts := PPROptions{WalksPerSource: 300}
	srv, snap := pprServer(t, opts)
	_, body := getPPR(t, srv, "/v1/ppr?sources=9,3,5&k=10")
	var resp api.PPRResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	entries, truncated, err := PPRTopK(snap, []graph.VertexID{5, 9, 3, 5}, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != resp.Truncated {
		t.Fatalf("truncated %v vs served %v", truncated, resp.Truncated)
	}
	if len(entries) != len(resp.Entries) {
		t.Fatalf("%d entries vs served %d", len(entries), len(resp.Entries))
	}
	for i, e := range entries {
		if e.Vertex != resp.Entries[i].Vertex || e.Score != resp.Entries[i].Score {
			t.Fatalf("entry %d: %+v vs served %+v", i, e, resp.Entries[i])
		}
	}
	// The facade rejects what the endpoint rejects.
	if _, _, err := PPRTopK(snap, nil, 10, opts); err == nil {
		t.Error("empty source set accepted")
	}
	if _, _, err := PPRTopK(snap, []graph.VertexID{1 << 30}, 10, opts); err == nil {
		t.Error("out-of-range source accepted")
	}
}
