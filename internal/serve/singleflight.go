package serve

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution whose result every waiter shares — the standard
// singleflight pattern, reimplemented generically because this module
// is stdlib-only.
type flightGroup[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do runs fn once per concurrent set of callers sharing key; every
// caller gets the same result. shared reports whether the caller
// joined an in-flight execution instead of starting one.
func (g *flightGroup[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall[V]{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
