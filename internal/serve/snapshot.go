// Package serve turns the batch reproduction into a query service: the
// paper's point is that FrogWild answers the top-k PageRank query fast
// enough to be interactive, so this package holds a computed result and
// answers queries from it.
//
// The moving parts:
//
//   - Snapshot: an immutable view of one completed estimate — the
//     per-vertex ranks, a precomputed top-MaxK index, graph stats, and
//     the provenance (engine, seed, epoch) that produced it.
//   - Store: publishes snapshots through an atomic.Pointer so readers
//     are lock-free and always see a complete, internally consistent
//     snapshot.
//   - Refresher: recomputes estimates on a cadence (or on demand) and
//     swaps the result into the Store atomically.
//   - Server: an HTTP JSON API over a Store with per-k response
//     caching, request coalescing, and graceful shutdown.
//
// Every response carries the snapshot's epoch, so clients can detect
// staleness and correlate answers across endpoints.
package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/frogwild"
	"repro/internal/glpr"
	"repro/internal/graph"
	"repro/internal/pagerank"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// Engine names an estimate producer a Snapshot can be built from. It
// is the wire package's engine vocabulary: configuration and responses
// share one type, so they cannot disagree.
type Engine = api.Engine

// Engines the serving layer can run.
const (
	// EngineFrogWild runs the paper's fast approximation on the
	// simulated cluster (the intended serving configuration).
	EngineFrogWild Engine = "frogwild"
	// EngineGLPR runs synchronous power iteration on the same engine
	// (the paper's principal baseline).
	EngineGLPR Engine = "glpr"
	// EngineExact runs serial-reference power iteration to
	// convergence (ground truth; slowest).
	EngineExact Engine = "exact"
)

// ParseEngine converts a name into an Engine.
func ParseEngine(name string) (Engine, error) {
	switch Engine(name) {
	case EngineFrogWild, EngineGLPR, EngineExact:
		return Engine(name), nil
	}
	return "", fmt.Errorf("serve: unknown engine %q (want frogwild|glpr|exact)", name)
}

// DefaultMaxK is the top index size when BuildConfig.MaxK is zero:
// queries up to this k are answered from the precomputed index.
const DefaultMaxK = 100

// BuildConfig says how to compute a Snapshot's estimate. The zero
// value selects FrogWild with the paper's defaults (n/6 walkers, 4
// iterations, ps=0.7, 16 machines).
type BuildConfig struct {
	// Engine selects the estimate producer; zero value is FrogWild.
	Engine Engine
	// Walkers is FrogWild's frog count N; 0 selects n/6 (min 100).
	Walkers int
	// Iterations is the superstep budget for frogwild (walk cutoff,
	// default 4) and glpr (reduced iterations; 0 runs glpr to
	// tolerance).
	Iterations int
	// PS is the mirror-synchronization probability; 0 selects 0.7.
	PS float64
	// Teleport is pT; 0 selects the conventional 0.15.
	Teleport float64
	// Machines is the simulated cluster size; 0 selects 16.
	Machines int
	// WorkersPerMachine shards each simulated machine's engine phases
	// (0 divides GOMAXPROCS across machines, 1 is serial per machine).
	WorkersPerMachine int
	// Workers shards the exact engine's power iteration (0 = all
	// cores).
	Workers int
	// Seed drives the run; the Refresher derives a fresh seed from it
	// per generation.
	Seed uint64
	// MaxK is the precomputed top index size; 0 selects DefaultMaxK.
	MaxK int
}

// withDefaults resolves the zero values.
func (c BuildConfig) withDefaults(n int) BuildConfig {
	if c.Engine == "" {
		c.Engine = EngineFrogWild
	}
	if c.Walkers == 0 {
		c.Walkers = max(n/6, 100)
	}
	if c.Iterations == 0 && c.Engine == EngineFrogWild {
		c.Iterations = 4
	}
	if c.PS == 0 {
		c.PS = 0.7
	}
	if c.Machines == 0 {
		c.Machines = 16
	}
	if c.MaxK == 0 {
		c.MaxK = DefaultMaxK
	}
	return c
}

// Snapshot is one immutable published answer to the top-k PageRank
// query: the full estimate vector plus a precomputed top-MaxK index.
// All fields are set before the snapshot is published and never
// mutated afterwards, so lock-free readers are safe.
type Snapshot struct {
	// Epoch is the publication sequence number the Store assigned
	// (first publish = 1). Every API response carries it.
	Epoch uint64
	// Engine and Seed are the provenance of the estimate.
	Engine Engine
	Seed   uint64
	// BuiltAt is when the build finished; BuildSeconds how long the
	// estimate took to compute.
	BuiltAt      time.Time
	BuildSeconds float64
	// EstimateSeconds/IndexSeconds split BuildSeconds into its stages:
	// the engine run producing Ranks, and the top-index/stats
	// construction. Zero when the snapshot was not produced by Build
	// (warm starts, FromRanks). Never persisted.
	EstimateSeconds float64
	IndexSeconds    float64
	// Graph is the graph the estimate was computed on, retained for
	// on-demand comparison runs.
	Graph *graph.Graph
	// Stats summarizes the graph's degree structure.
	Stats graph.Stats
	// Ranks is the per-vertex estimate (sums to 1).
	Ranks []float64
	// Top is topk.Top(Ranks, MaxK), the precomputed index queries are
	// answered from.
	Top []topk.Entry
	// MaxK is the index size.
	MaxK int
	// WarmStart marks a snapshot restored from disk rather than
	// freshly computed: it serves immediately (with its persisted
	// epoch and provenance) while the Refresher treats the store as
	// due for a fresh build. Never persisted; set by the loader.
	WarmStart bool
}

// TopK returns the k highest-ranked vertices in descending order,
// bit-identical to topk.Top(s.Ranks, k). Queries with k <= MaxK are a
// copy of the precomputed index prefix (the prefix property holds
// because topk's ordering is total); larger k falls back to a full
// selection. The result is freshly allocated and safe to modify.
func (s *Snapshot) TopK(k int) []topk.Entry {
	if k <= 0 {
		return nil
	}
	if k <= s.MaxK || s.MaxK >= len(s.Ranks) {
		if k > len(s.Top) {
			k = len(s.Top)
		}
		out := make([]topk.Entry, k)
		copy(out, s.Top[:k])
		return out
	}
	return topk.Top(s.Ranks, k)
}

// Rank returns vertex v's estimated PageRank and whether v exists.
func (s *Snapshot) Rank(v graph.VertexID) (float64, bool) {
	if int(v) >= len(s.Ranks) {
		return 0, false
	}
	return s.Ranks[int(v)], true
}

// FromRanks wraps an already-computed estimate vector in a Snapshot
// (index precomputed, epoch 0 until published). The vector is retained,
// not copied: callers hand over ownership.
func FromRanks(g *graph.Graph, engine Engine, seed uint64, ranks []float64, maxK int) (*Snapshot, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("serve: empty graph")
	}
	if len(ranks) != g.NumVertices() {
		return nil, fmt.Errorf("serve: %d ranks for %d vertices", len(ranks), g.NumVertices())
	}
	if maxK <= 0 {
		maxK = DefaultMaxK
	}
	return &Snapshot{
		Engine:  engine,
		Seed:    seed,
		BuiltAt: time.Now(),
		Graph:   g,
		Stats:   graph.ComputeStats(g),
		Ranks:   ranks,
		Top:     topk.Top(ranks, maxK),
		MaxK:    maxK,
	}, nil
}

// Build computes an estimate with the configured engine and wraps it in
// an unpublished Snapshot (epoch 0 until a Store publishes it).
func Build(g *graph.Graph, cfg BuildConfig) (*Snapshot, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("serve: empty graph")
	}
	cfg = cfg.withDefaults(g.NumVertices())
	start := time.Now()
	ranks, err := computeRanks(g, cfg)
	if err != nil {
		return nil, err
	}
	estimated := time.Now()
	snap, err := FromRanks(g, cfg.Engine, cfg.Seed, ranks, cfg.MaxK)
	if err != nil {
		return nil, err
	}
	snap.EstimateSeconds = estimated.Sub(start).Seconds()
	snap.IndexSeconds = time.Since(estimated).Seconds()
	snap.BuildSeconds = time.Since(start).Seconds()
	return snap, nil
}

// computeRanks dispatches to the configured engine.
func computeRanks(g *graph.Graph, cfg BuildConfig) ([]float64, error) {
	switch cfg.Engine {
	case EngineFrogWild:
		res, err := frogwild.Run(g, frogwild.Config{
			Walkers:           cfg.Walkers,
			Iterations:        cfg.Iterations,
			PS:                cfg.PS,
			Teleport:          cfg.Teleport,
			Machines:          cfg.Machines,
			WorkersPerMachine: cfg.WorkersPerMachine,
			Seed:              cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return res.Estimate, nil
	case EngineGLPR:
		res, err := glpr.Run(g, glpr.Config{
			Machines:          cfg.Machines,
			Teleport:          cfg.Teleport,
			Iterations:        cfg.Iterations,
			WorkersPerMachine: cfg.WorkersPerMachine,
			Seed:              cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return res.Rank, nil
	case EngineExact:
		res, err := pagerank.Exact(g, pagerank.Options{
			Teleport: cfg.Teleport,
			Workers:  cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		return res.Rank, nil
	}
	return nil, fmt.Errorf("serve: unknown engine %q", cfg.Engine)
}
