package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graph/gstore"
)

// pagedVariants serves one snapshot over three storage layouts of the
// same logical graph — heap-resident, degree-relabeled, and relabeled
// + paged at a one-byte budget (the pool floors that to its minimum
// frame count, so every walk step contends for a handful of pages) —
// and returns a server per variant. Closers run on test cleanup.
func pagedVariants(t *testing.T, workers int) map[string]*Server {
	t.Helper()
	// Big enough that the out-adjacency alone spans more pages than the
	// pool's minimum frame count, so the tiny budget really evicts.
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 25000, MeanOutDeg: 8, DegExponent: 2.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := gstore.Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := gstore.Save(path, rg); err != nil {
		t.Fatal(err)
	}
	pg, err := gstore.Open(path, gstore.OpenOptions{Mem: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	if !pg.Paged() {
		t.Fatal("Mem: 1 open is not paged")
	}

	// One engine run on the resident graph; each variant serves a
	// shallow copy of the snapshot with its own Graph, exactly like a
	// warm start from -snapshot-dir onto a paged open.
	base, err := Build(g, BuildConfig{Engine: EngineFrogWild, Machines: 4, Seed: 11, WorkersPerMachine: 1, MaxK: 50})
	if err != nil {
		t.Fatal(err)
	}
	servers := make(map[string]*Server)
	for name, vg := range map[string]*graph.Graph{"plain": g, "relabeled": rg, "paged": pg} {
		snap := *base
		snap.Graph = vg
		store := NewStore()
		store.Publish(&snap)
		servers[name] = NewServer(store, ServerOptions{
			PPR: PPROptions{Workers: workers, CacheSize: -1},
		})
	}
	return servers
}

func body(t *testing.T, srv *Server, url string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body)
	}
	return rec.Body.String()
}

// TestPagedServingBytesIdentical is the PR's core acceptance check:
// every served body — topk, rank, and the walk-driven ppr — is
// byte-identical whether the graph is heap-resident, relabeled, or
// paged at the smallest possible budget, across worker counts.
func TestPagedServingBytesIdentical(t *testing.T) {
	urls := []string{
		"/v1/topk?k=25",
		"/v1/rank?vertex=0",
		"/v1/rank?vertex=42",
		"/v1/ppr?source=1&k=20",
		"/v1/ppr?source=3&source=700&k=10",
		"/v1/ppr?source=24999&k=5",
	}
	var want map[string]string
	for _, workers := range []int{1, 4} {
		servers := pagedVariants(t, workers)
		ref := servers["plain"]
		if want == nil {
			want = make(map[string]string)
			for _, u := range urls {
				want[u] = body(t, ref, u)
			}
		}
		for name, srv := range servers {
			for _, u := range urls {
				if got := body(t, srv, u); got != want[u] {
					t.Errorf("workers=%d %s: GET %s body differs from plain reference\n got: %s\nwant: %s",
						workers, name, u, got, want[u])
				}
			}
		}
	}
}

// TestPagedPPRConcurrentEviction hammers the paged server with
// concurrent multi-source PPR traffic at the minimum page budget —
// constant pin/unpin/evict cycles across goroutines (run under -race)
// — and checks every body against the unpaged server's.
func TestPagedPPRConcurrentEviction(t *testing.T) {
	servers := pagedVariants(t, 4)
	plain, paged := servers["plain"], servers["paged"]

	urls := make([]string, 24)
	for i := range urls {
		urls[i] = fmt.Sprintf("/v1/ppr?source=%d&source=%d&k=15", (i*997)%25000, (i*6211+5)%25000)
	}
	want := make([]string, len(urls))
	for i, u := range urls {
		want[i] = body(t, plain, u)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3*len(urls); i++ {
				j := (w + i) % len(urls)
				rec := httptest.NewRecorder()
				paged.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, urls[j], nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", rec.Code, rec.Body)
					return
				}
				if rec.Body.String() != want[j] {
					errs <- fmt.Sprintf("GET %s: paged body diverged under concurrency", urls[j])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	snap := paged.store.Current()
	stats, ok := snap.Graph.PageCacheStats()
	if !ok {
		t.Fatal("paged graph reports no page-cache stats")
	}
	if stats.Evictions == 0 {
		t.Fatal("tiny budget saw no evictions under load")
	}
	if steps := paged.ppr.batcher.steps.Value(); steps == 0 {
		t.Fatal("paged executor recorded no walk steps")
	} else if local := paged.ppr.batcher.local.Value(); local > steps {
		t.Fatalf("page-local steps %d exceed total steps %d", local, steps)
	}
}
