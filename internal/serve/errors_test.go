package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve/api"
)

// TestErrorEnvelopeTable pins the (status, code) pair and envelope
// shape of every error the single-node server can produce: the wire
// contract clients and the router's fallback logic rely on.
func TestErrorEnvelopeTable(t *testing.T) {
	g := testGraph(t)
	snap, err := Build(g, BuildConfig{Engine: EngineExact, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.Publish(snap)
	srv := NewServer(store, ServerOptions{})

	empty := NewServer(NewStore(), ServerOptions{})

	cases := []struct {
		name      string
		srv       *Server
		method    string
		url       string
		status    int
		code      string
		wantEpoch uint64
	}{
		{"bad k", srv, "GET", "/v1/topk?k=zero", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"negative k", srv, "GET", "/v1/topk?k=-3", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"missing vertex", srv, "GET", "/v1/rank", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"bad vertex", srv, "GET", "/v1/rank?vertex=x", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"vertex out of range", srv, "GET", "/v1/rank?vertex=99999", http.StatusNotFound, api.CodeNotFound, 1},
		{"unknown engine", srv, "GET", "/v1/compare?engine=quantum", http.StatusBadRequest, api.CodeBadRequest, 1},
		{"post rejected", srv, "POST", "/v1/topk", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, 1},
		{"no snapshot topk", empty, "GET", "/v1/topk", http.StatusServiceUnavailable, api.CodeNoSnapshot, 0},
		{"no snapshot stats", empty, "GET", "/v1/stats", http.StatusServiceUnavailable, api.CodeNoSnapshot, 0},
		{"no snapshot healthz", empty, "GET", "/healthz", http.StatusServiceUnavailable, api.CodeNoSnapshot, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.url, nil)
			rec := httptest.NewRecorder()
			tc.srv.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d", rec.Code, tc.status)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("content type %q, want application/json", ct)
			}
			var env api.Error
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("envelope decode: %v (body %q)", err, rec.Body.String())
			}
			if env.Code != tc.code {
				t.Errorf("code %q, want %q", env.Code, tc.code)
			}
			if env.Message == "" {
				t.Error("empty error message")
			}
			if env.Epoch != tc.wantEpoch {
				t.Errorf("epoch %d, want %d", env.Epoch, tc.wantEpoch)
			}
		})
	}
}

// TestHealthzBody pins the healthy single-node /healthz JSON body.
func TestHealthzBody(t *testing.T) {
	g := testGraph(t)
	snap, err := Build(g, BuildConfig{Engine: EngineExact, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.Publish(snap)
	srv := NewServer(store, ServerOptions{})

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h api.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 1 || len(h.Shards) != 0 {
		t.Errorf("health = %+v, want ok/epoch 1/no shards", h)
	}
}

// TestErrorEnvelopeDecodesAsError checks the envelope round-trips as a
// Go error through the api package (the loadgen decoder path).
func TestErrorEnvelopeDecodesAsError(t *testing.T) {
	empty := NewServer(NewStore(), ServerOptions{})
	rec := httptest.NewRecorder()
	empty.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/topk", nil))
	var env api.Error
	if err := json.Unmarshal(mustRead(t, rec.Result().Body), &env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.Error(), api.CodeNoSnapshot) {
		t.Errorf("Error() = %q, want the code embedded", env.Error())
	}
}

func mustRead(t *testing.T, r io.Reader) []byte {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
