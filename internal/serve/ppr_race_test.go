package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph/gen"
)

// fetchBody is a goroutine-safe raw GET (no testing.T calls).
func fetchBody(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// TestPPRConsistentDuringSwap hammers /v1/ppr from several clients
// while a refresher swaps snapshots as fast as it can. The batcher
// joins concurrent requests and the LRU caches across them, so under
// -race this exercises both against the swap path; the consistency
// assertion is the epoch contract: for one (epoch, URL) pair every
// response body is bit-identical, no matter which worker, batch or
// cache entry produced it.
func TestPPRConsistentDuringSwap(t *testing.T) {
	const (
		n         = 2000
		clients   = 8
		perClient = 150
	)
	g := gen.Cycle(n)
	build := func(generation uint64) (*Snapshot, error) {
		ranks := make([]float64, n)
		for v := range ranks {
			ranks[v] = 1 / float64(n)
		}
		return FromRanks(g, EngineFrogWild, generation, ranks, 50)
	}

	st := NewStore()
	refresher := NewRefresher(st, build, 0)
	if _, err := refresher.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Small cache so swaps also churn entries out by capacity, and a
	// small walk count so queries are fast relative to swaps.
	srv := NewServer(st, ServerOptions{PPR: PPROptions{WalksPerSource: 50, CacheSize: 8}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var stop atomic.Bool
	swapDone := make(chan error, 1)
	go func() {
		for !stop.Load() {
			if _, err := refresher.Refresh(); err != nil {
				swapDone <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		swapDone <- nil
	}()

	// seen pins the first body observed for each (epoch, URL); every
	// later response for the pair must match it byte for byte.
	type bodyKey struct {
		epoch uint64
		url   string
	}
	var seenMu sync.Mutex
	seen := make(map[bodyKey][]byte)

	urls := []string{
		"/v1/ppr?source=7&k=10",
		"/v1/ppr?sources=1,2,3&k=5",
		"/v1/ppr?sources=42,17&k=25",
		"/v1/ppr?source=999&k=10",
	}
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				url := urls[(c+i)%len(urls)]
				status, body, err := fetchBody(ts.URL + url)
				if err != nil {
					errs <- err.Error()
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Sprintf("%s: status %d: %s", url, status, body)
					return
				}
				var resp struct {
					Epoch uint64 `json:"epoch"`
				}
				if err := json.Unmarshal(body, &resp); err != nil || resp.Epoch == 0 {
					errs <- fmt.Sprintf("%s: bad epoch in %q", url, body)
					return
				}
				key := bodyKey{resp.Epoch, url}
				seenMu.Lock()
				if prev, ok := seen[key]; !ok {
					seen[key] = body
				} else if string(prev) != string(body) {
					seenMu.Unlock()
					errs <- fmt.Sprintf("%s: two different bodies within epoch %d", url, resp.Epoch)
					return
				}
				seenMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	stop.Store(true)
	if err := <-swapDone; err != nil {
		t.Fatalf("refresher: %v", err)
	}
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if st.Epoch() < 2 {
		t.Fatalf("test never swapped (epoch %d); consistency not exercised", st.Epoch())
	}
	t.Logf("served %d ppr queries across %d epochs (%d cache hits, %d batches)",
		srv.ppr.queries.Value(), st.Epoch(), srv.ppr.cacheHits.Value(), srv.ppr.batcher.batches.Value())
}

// TestPPRCacheEvictionUnderLoad drives a capacity-4 LRU with many
// concurrent clients spread over far more than 4 distinct source
// sets. Under -race this pins the cache's locking on the hot
// Get/Put/evict path; the assertions pin the size bound and that
// eviction never corrupts answers (each distinct URL has exactly one
// body all goroutines agree on — the store never swaps here).
func TestPPRCacheEvictionUnderLoad(t *testing.T) {
	srv, _ := pprServer(t, PPROptions{WalksPerSource: 20, CacheSize: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients, perClient, distinct = 8, 100, 24
	var bodies [distinct]atomic.Pointer[string]
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				slot := (c*perClient + i*7) % distinct
				url := fmt.Sprintf("/v1/ppr?source=%d&k=5", slot+1)
				status, body, err := fetchBody(ts.URL + url)
				if err != nil {
					errs <- err.Error()
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Sprintf("%s: status %d: %s", url, status, body)
					return
				}
				s := string(body)
				if !bodies[slot].CompareAndSwap(nil, &s) && *bodies[slot].Load() != s {
					errs <- fmt.Sprintf("%s: body changed across cache eviction", url)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if n := srv.ppr.cache.Len(); n > 4 {
		t.Fatalf("cache grew to %d entries past its capacity 4", n)
	}
	if srv.ppr.cache.evictions.Value() == 0 {
		t.Fatal("no evictions: load did not exercise capacity pressure")
	}
	if srv.ppr.cacheHits.Value() == 0 {
		t.Fatal("no cache hits: load did not exercise the hit path")
	}
}
