package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// maxCachedK bounds the per-k response cache: queries above it are
// still served (and coalesced) but their bodies are not retained, so an
// adversarial k sweep cannot grow the cache without bound.
const maxCachedK = 4096

// ServerOptions tunes a Server beyond its Store.
type ServerOptions struct {
	// Compare is the BuildConfig template for /v1/compare runs; the
	// query's engine overrides its Engine and the current snapshot's
	// seed replaces its Seed (so a comparison is deterministic per
	// epoch). Zero value means engine defaults.
	Compare BuildConfig
	// Refresher, when set, contributes refresh counters to /v1/stats.
	Refresher *Refresher
}

// Server answers the top-k PageRank query over HTTP from whatever
// snapshot its Store currently publishes.
//
// API (all GET, all JSON, every response stamped with the snapshot
// epoch it was answered from):
//
//	/v1/topk?k=20            top-k vertices with scores
//	/v1/rank?vertex=17       one vertex's estimated rank
//	/v1/compare?engine=exact&k=20
//	                         accuracy of the served estimate vs another
//	                         engine run on the same graph (computed on
//	                         demand, cached per epoch)
//	/v1/stats                snapshot provenance, graph stats, serving
//	                         counters
//	/healthz                 200 once a snapshot is published
//
// Identical concurrent queries are coalesced (singleflight) and top-k
// bodies are cached per (epoch, k), so a hot k costs one selection and
// one JSON marshal per epoch.
type Server struct {
	store *Store
	opts  ServerOptions
	mux   *http.ServeMux

	// topkMu guards the per-k body cache; topkEpoch stamps which
	// epoch the cached bodies belong to (the map is flushed lazily
	// when the store moves on).
	topkMu      sync.Mutex
	topkEpoch   uint64
	topkCache   map[int][]byte
	topkFlights flightGroup[[2]uint64, []byte]

	// compare runs are far more expensive than topk marshals; they
	// get their own cache (per epoch+engine) and flight group.
	compareMu      sync.Mutex
	compareEpoch   uint64
	compareCache   map[Engine][]float64
	compareFlights flightGroup[string, []float64]

	queries     atomic.Uint64
	cacheHits   atomic.Uint64
	compareHits atomic.Uint64
	coalesced   atomic.Uint64

	httpMu   sync.Mutex
	httpSrv  *http.Server
	listener net.Listener
}

// NewServer builds a server over store.
func NewServer(store *Store, opts ServerOptions) *Server {
	s := &Server{store: store, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/topk", s.get(s.handleTopK))
	mux.HandleFunc("/v1/rank", s.get(s.handleRank))
	mux.HandleFunc("/v1/compare", s.get(s.handleCompare))
	mux.HandleFunc("/v1/stats", s.get(s.handleStats))
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes *Server itself an http.Handler, so in-process
// drivers (the load generator, httptest) can hit the full API without
// a listener.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Snapshot returns the snapshot the server is currently answering
// from (nil before the first publish). Callers use it to see whether
// the service warm-started from disk and which epoch is live.
func (s *Server) Snapshot() *Snapshot { return s.store.Current() }

// Queries returns the total query count across the /v1 endpoints.
func (s *Server) Queries() uint64 { return s.queries.Load() }

// CacheHits returns how many /v1/topk queries were answered from the
// per-k body cache.
func (s *Server) CacheHits() uint64 { return s.cacheHits.Load() }

// CompareCacheHits returns how many /v1/compare queries reused a
// cached reference vector instead of recomputing it.
func (s *Server) CompareCacheHits() uint64 { return s.compareHits.Load() }

// Coalesced returns how many queries joined an in-flight identical
// computation instead of starting their own.
func (s *Server) Coalesced() uint64 { return s.coalesced.Load() }

// get wraps a handler with method filtering and query counting.
func (s *Server) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			s.fail(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
			return
		}
		s.queries.Add(1)
		h(w, r)
	}
}

// fail writes the api.Error JSON envelope, stamped with the epoch the
// server was serving when the request failed (0 before the first
// publish).
func (s *Server) fail(w http.ResponseWriter, status int, code, format string, args ...any) {
	var epoch uint64
	if snap := s.store.Current(); snap != nil {
		epoch = snap.Epoch
	}
	WriteError(w, status, code, epoch, format, args...)
}

// WriteError writes the shared JSON error envelope; the router reuses
// it so both serving planes fail identically.
func WriteError(w http.ResponseWriter, status int, code string, epoch uint64, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(api.Error{
		Message: fmt.Sprintf(format, args...),
		Code:    code,
		Epoch:   epoch,
	})
	w.Write(append(body, '\n'))
}

// reply writes a marshaled JSON body.
func (s *Server) reply(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// current returns the published snapshot or writes a 503.
func (s *Server) current(w http.ResponseWriter) *Snapshot {
	snap := s.store.Current()
	if snap == nil {
		s.fail(w, http.StatusServiceUnavailable, api.CodeNoSnapshot, "no snapshot published yet")
	}
	return snap
}

// marshalTopK builds the /v1/topk body for one (snapshot, k) pair.
func marshalTopK(snap *Snapshot, k int) ([]byte, error) {
	entries := snap.TopK(k)
	rows := make([]api.TopKEntry, len(entries))
	for i, e := range entries {
		rows[i] = api.TopKEntry{Vertex: e.Vertex, Score: e.Score}
	}
	body, err := json.Marshal(api.TopKResponse{
		Epoch:   snap.Epoch,
		Engine:  snap.Engine,
		Seed:    snap.Seed,
		K:       len(rows),
		Entries: rows,
	})
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	k, err := parsePositiveInt(r.URL.Query().Get("k"), 20)
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "bad k: %v", err)
		return
	}

	cacheable := k <= maxCachedK
	if cacheable {
		s.topkMu.Lock()
		if s.topkEpoch == snap.Epoch {
			if body, ok := s.topkCache[k]; ok {
				s.topkMu.Unlock()
				s.cacheHits.Add(1)
				s.reply(w, body)
				return
			}
		}
		s.topkMu.Unlock()
	}

	body, err, shared := s.topkFlights.Do([2]uint64{snap.Epoch, uint64(k)}, func() ([]byte, error) {
		return marshalTopK(snap, k)
	})
	if shared {
		s.coalesced.Add(1)
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	if cacheable && !shared {
		s.topkMu.Lock()
		if s.topkEpoch != snap.Epoch {
			// The store moved on (or this is the first fill for this
			// epoch): restart the cache so stale-epoch bodies are
			// never mixed with fresh ones. Only newer epochs replace
			// the cache — a slow goroutine holding an old snapshot
			// must not clobber current entries.
			if snap.Epoch > s.topkEpoch {
				s.topkEpoch = snap.Epoch
				s.topkCache = make(map[int][]byte)
				s.topkCache[k] = body
			}
		} else {
			s.topkCache[k] = body
		}
		s.topkMu.Unlock()
	}
	s.reply(w, body)
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	raw := r.URL.Query().Get("vertex")
	if raw == "" {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "missing vertex parameter")
		return
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "bad vertex: %v", err)
		return
	}
	rank, ok := snap.Rank(graph.VertexID(v))
	if !ok {
		s.fail(w, http.StatusNotFound, api.CodeNotFound, "vertex %d not in graph (n=%d)", v, len(snap.Ranks))
		return
	}
	body, err := json.Marshal(api.RankResponse{
		Epoch: snap.Epoch, Engine: snap.Engine, Vertex: uint32(v), Rank: rank,
	})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.reply(w, append(body, '\n'))
}

// referenceRanks computes (or fetches the cached) comparison vector for
// the snapshot's graph and epoch.
func (s *Server) referenceRanks(snap *Snapshot, engine Engine) ([]float64, error) {
	s.compareMu.Lock()
	if s.compareEpoch == snap.Epoch {
		if ranks, ok := s.compareCache[engine]; ok {
			s.compareMu.Unlock()
			s.compareHits.Add(1)
			return ranks, nil
		}
	}
	s.compareMu.Unlock()

	key := fmt.Sprintf("%d/%s", snap.Epoch, engine)
	ranks, err, shared := s.compareFlights.Do(key, func() ([]float64, error) {
		cfg := s.opts.Compare
		if engine != cfg.Engine {
			// The template's tuning knobs belong to the serving
			// engine; a different reference engine runs with its own
			// defaults (e.g. glpr to tolerance, not the serving
			// engine's truncated iteration budget). Infrastructure
			// knobs (machines, workers, teleport) stay shared.
			cfg.Walkers, cfg.Iterations, cfg.PS = 0, 0, 0
		}
		cfg.Engine = engine
		cfg.Seed = snap.Seed
		cfg = cfg.withDefaults(snap.Graph.NumVertices())
		return computeRanks(snap.Graph, cfg)
	})
	if shared {
		s.coalesced.Add(1)
	}
	if err != nil {
		return nil, err
	}
	s.compareMu.Lock()
	if s.compareEpoch != snap.Epoch {
		if snap.Epoch > s.compareEpoch {
			s.compareEpoch = snap.Epoch
			s.compareCache = map[Engine][]float64{engine: ranks}
		}
	} else {
		if s.compareCache == nil {
			s.compareCache = make(map[Engine][]float64)
		}
		s.compareCache[engine] = ranks
	}
	s.compareMu.Unlock()
	return ranks, nil
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	engine, err := ParseEngine(valueOr(r.URL.Query().Get("engine"), string(EngineExact)))
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	k, err := parsePositiveInt(r.URL.Query().Get("k"), 20)
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "bad k: %v", err)
		return
	}
	ref, err := s.referenceRanks(snap, engine)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "compare run: %v", err)
		return
	}
	body, err := json.Marshal(api.CompareResponse{
		Epoch:               snap.Epoch,
		Engine:              snap.Engine,
		Against:             engine,
		K:                   k,
		CapturedMass:        topk.CapturedMass(ref, snap.Ranks, k),
		NormalizedMass:      topk.NormalizedCapturedMass(ref, snap.Ranks, k),
		ExactIdentification: topk.ExactIdentification(ref, snap.Ranks, k),
		L1Distance:          topk.L1Distance(ref, snap.Ranks),
	})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.reply(w, append(body, '\n'))
}

// StatsBody assembles the /v1/stats response for the current snapshot;
// shards reuse it so their RPC stats match the single-node body.
func (s *Server) StatsBody(snap *Snapshot) api.StatsResponse {
	serving := api.ServeStats{
		Queries:          s.queries.Load(),
		TopKCacheHits:    s.cacheHits.Load(),
		CompareCacheHits: s.compareHits.Load(),
		Coalesced:        s.coalesced.Load(),
	}
	if ref := s.opts.Refresher; ref != nil {
		serving.Refreshes = ref.Refreshes()
		serving.BuildErrors = ref.Errors()
	}
	return api.StatsResponse{
		Epoch:        snap.Epoch,
		Engine:       snap.Engine,
		Seed:         snap.Seed,
		BuiltAt:      snap.BuiltAt,
		BuildSeconds: snap.BuildSeconds,
		MaxK:         snap.MaxK,
		Graph: api.GraphStats{
			Vertices:  snap.Stats.NumVertices,
			Edges:     snap.Stats.NumEdges,
			MinOutDeg: snap.Stats.MinOutDeg,
			MaxOutDeg: snap.Stats.MaxOutDeg,
			MaxInDeg:  snap.Stats.MaxInDeg,
			MeanDeg:   snap.Stats.MeanDeg,
			GiniOut:   snap.Stats.GiniOut,
		},
		Serving: serving,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	body, err := json.Marshal(s.StatsBody(snap))
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.reply(w, append(body, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	if snap == nil {
		s.fail(w, http.StatusServiceUnavailable, api.CodeNoSnapshot, "no snapshot published yet")
		return
	}
	body, _ := json.Marshal(api.HealthResponse{Status: "ok", Epoch: snap.Epoch})
	s.reply(w, append(body, '\n'))
}

// Serve listens on addr and serves until ctx is cancelled, then shuts
// down gracefully (in-flight requests get up to 5 seconds to finish).
// It returns nil on a clean ctx-triggered shutdown.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serveListener(ctx, ln)
}

// Addr returns the listening address once Serve has bound it ("" before
// that) — handy when addr was ":0".
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// serveListener runs the http.Server lifecycle over an existing
// listener.
func (s *Server) serveListener(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.listener = ln
	s.httpMu.Unlock()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// parsePositiveInt parses a strictly positive integer, returning def
// for the empty string.
func parsePositiveInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("must be positive, got %d", v)
	}
	return v, nil
}

// valueOr returns raw unless it is empty.
func valueOr(raw, def string) string {
	if raw == "" {
		return def
	}
	return raw
}
