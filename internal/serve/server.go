package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// maxCachedK bounds the per-k response cache: queries above it are
// still served (and coalesced) but their bodies are not retained, so an
// adversarial k sweep cannot grow the cache without bound.
const maxCachedK = 4096

// ServerOptions tunes a Server beyond its Store.
type ServerOptions struct {
	// Compare is the BuildConfig template for /v1/compare runs; the
	// query's engine overrides its Engine and the current snapshot's
	// seed replaces its Seed (so a comparison is deterministic per
	// epoch). Zero value means engine defaults.
	Compare BuildConfig
	// Refresher, when set, contributes refresh counters to /v1/stats.
	Refresher *Refresher
	// Metrics is the registry /metrics renders from; nil creates a
	// private one (so /metrics always works). NewService shares one
	// registry between server and refresher.
	Metrics *obs.Registry
	// RequestLog, when non-nil, receives one JSON line per request.
	RequestLog *obs.Logger
	// PPR tunes the /v1/ppr endpoint (walk budget, cache, batch
	// executor); the zero value serves with defaults.
	PPR PPROptions
}

// Server answers the top-k PageRank query over HTTP from whatever
// snapshot its Store currently publishes.
//
// API (all GET, all JSON, every response stamped with the snapshot
// epoch it was answered from):
//
//	/v1/topk?k=20            top-k vertices with scores
//	/v1/rank?vertex=17       one vertex's estimated rank
//	/v1/ppr?source=7&k=20    top-k personalized PageRank of a source
//	                         set (sources=a,b,c for multi-source),
//	                         estimated by request-time walks under a
//	                         bounded budget (see ppr.go)
//	/v1/compare?engine=exact&k=20
//	                         accuracy of the served estimate vs another
//	                         engine run on the same graph (computed on
//	                         demand, cached per epoch)
//	/v1/stats                snapshot provenance, graph stats, serving
//	                         counters
//	/healthz                 200 once a snapshot is published
//
// Identical concurrent queries are coalesced (singleflight) and top-k
// bodies are cached per (epoch, k), so a hot k costs one selection and
// one JSON marshal per epoch.
type Server struct {
	store *Store
	opts  ServerOptions
	mux   *http.ServeMux

	// topkMu guards the per-k body cache; topkEpoch stamps which
	// epoch the cached bodies belong to (the map is flushed lazily
	// when the store moves on).
	topkMu      sync.Mutex
	topkEpoch   uint64
	topkCache   map[int][]byte
	topkFlights flightGroup[[2]uint64, []byte]

	// compare runs are far more expensive than topk marshals; they
	// get their own cache (per epoch+engine) and flight group.
	compareMu      sync.Mutex
	compareEpoch   uint64
	compareCache   map[Engine][]float64
	compareFlights flightGroup[string, []float64]

	// Serving counters are obs instruments registered on reg, so
	// /v1/stats (which reads them directly) and /metrics (which renders
	// the registry) are two views over the same values by construction.
	queries     obs.Counter
	cacheHits   obs.Counter
	compareHits obs.Counter
	coalesced   obs.Counter
	reqLat      map[string]*obs.Latency
	reg         *obs.Registry
	reqLog      *obs.Logger

	// ppr owns the /v1/ppr walk executor, hot-source LRU and
	// instruments (see ppr.go).
	ppr *pprEngine

	httpMu   sync.Mutex
	httpSrv  *http.Server
	listener net.Listener
}

// NewServer builds a server over store.
func NewServer(store *Store, opts ServerOptions) *Server {
	s := &Server{store: store, opts: opts, reg: opts.Metrics, reqLog: opts.RequestLog}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.reg.RegisterCounter("serve_requests_total",
		"Queries across the /v1 endpoints (method-allowed GETs).", nil, &s.queries)
	s.reg.RegisterCounter("serve_topk_cache_hits_total",
		"Top-k queries answered from the per-(epoch,k) body cache.", nil, &s.cacheHits)
	s.reg.RegisterCounter("serve_compare_cache_hits_total",
		"Compare queries that reused a cached reference vector.", nil, &s.compareHits)
	s.reg.RegisterCounter("serve_coalesced_total",
		"Queries that joined an in-flight identical computation.", nil, &s.coalesced)
	s.reg.GaugeFunc("serve_snapshot_epoch",
		"Epoch of the published snapshot (0 before the first publish).", nil, func() float64 {
			if snap := store.Current(); snap != nil {
				return float64(snap.Epoch)
			}
			return 0
		})
	s.reg.GaugeFunc("serve_snapshot_age_seconds",
		"Seconds since the published snapshot was built (0 before the first publish).", nil, func() float64 {
			if snap := store.Current(); snap != nil {
				return time.Since(snap.BuiltAt).Seconds()
			}
			return 0
		})
	pageCacheGauge := func(name, help string, pick func(graph.PageCacheStats) float64) {
		s.reg.GaugeFunc(name, help, nil, func() float64 {
			if snap := store.Current(); snap != nil {
				if st, ok := snap.Graph.PageCacheStats(); ok {
					return pick(st)
				}
			}
			return 0
		})
	}
	pageCacheGauge("graph_page_cache_resident_pages",
		"Pages of CSR adjacency resident in the page cache (0 when fully resident in RAM).",
		func(st graph.PageCacheStats) float64 { return float64(st.ResidentPages) })
	pageCacheGauge("graph_page_cache_pinned_pages",
		"Resident pages currently pinned by active readers.",
		func(st graph.PageCacheStats) float64 { return float64(st.PinnedPages) })
	pageCacheGauge("graph_page_cache_budget_pages",
		"Page-cache capacity implied by the -graph-mem budget.",
		func(st graph.PageCacheStats) float64 { return float64(st.BudgetPages) })
	pageCacheGauge("graph_page_cache_hits_total",
		"Adjacency page lookups served from a resident page.",
		func(st graph.PageCacheStats) float64 { return float64(st.Hits) })
	pageCacheGauge("graph_page_cache_misses_total",
		"Adjacency page lookups that had to read the page from disk.",
		func(st graph.PageCacheStats) float64 { return float64(st.Misses) })
	pageCacheGauge("graph_page_cache_evictions_total",
		"Pages evicted by the CLOCK sweep to stay under budget.",
		func(st graph.PageCacheStats) float64 { return float64(st.Evictions) })
	s.ppr = newPPREngine(opts.PPR, s.reg)
	s.reqLat = make(map[string]*obs.Latency)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/topk", s.handle("topk", true, s.handleTopK))
	mux.HandleFunc("/v1/rank", s.handle("rank", true, s.handleRank))
	mux.HandleFunc("/v1/ppr", s.handle("ppr", true, s.handlePPR))
	mux.HandleFunc("/v1/compare", s.handle("compare", true, s.handleCompare))
	mux.HandleFunc("/v1/stats", s.handle("stats", true, s.handleStats))
	mux.HandleFunc("/healthz", s.handle("healthz", false, s.handleHealthz))
	mux.Handle("/metrics", s.reg.Handler())
	s.mux = mux
	return s
}

// Metrics returns the registry /metrics renders from, so embedders
// (the in-process load generator) can scrape without HTTP.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes *Server itself an http.Handler, so in-process
// drivers (the load generator, httptest) can hit the full API without
// a listener.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Snapshot returns the snapshot the server is currently answering
// from (nil before the first publish). Callers use it to see whether
// the service warm-started from disk and which epoch is live.
func (s *Server) Snapshot() *Snapshot { return s.store.Current() }

// Queries returns the total query count across the /v1 endpoints.
func (s *Server) Queries() uint64 { return s.queries.Value() }

// CacheHits returns how many /v1/topk queries were answered from the
// per-k body cache.
func (s *Server) CacheHits() uint64 { return s.cacheHits.Value() }

// CompareCacheHits returns how many /v1/compare queries reused a
// cached reference vector instead of recomputing it.
func (s *Server) CompareCacheHits() uint64 { return s.compareHits.Value() }

// Coalesced returns how many queries joined an in-flight identical
// computation instead of starting their own.
func (s *Server) Coalesced() uint64 { return s.coalesced.Value() }

// handle wraps one endpoint with instrumentation: a per-endpoint
// latency histogram, request-id stamping, status capture for the
// request log, and — for gated endpoints — GET/HEAD filtering plus the
// /v1 query counter. healthz is not gated, preserving its historical
// accept-anything behavior.
func (s *Server) handle(endpoint string, gated bool, h http.HandlerFunc) http.HandlerFunc {
	lat := s.reg.Latency("serve_request_seconds",
		"Request handling latency by endpoint.", obs.Labels{"endpoint": endpoint})
	s.reqLat[endpoint] = lat
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// The fast path (no request log) stays allocation-free: a
		// client-supplied X-Request-Id is still sanitized and echoed,
		// but no rid is generated for requests nobody will trace, and
		// the response writer is not wrapped (the status is only read
		// by the log). The router always generates — that is where
		// cross-process tracing lives, and its hot path is dominated
		// by the shard fan-out anyway.
		logged := s.reqLog.Enabled()
		var rid string
		if logged || r.Header.Get(obs.RequestIDHeader) != "" {
			rid = obs.EnsureRequestID(w, r)
		}
		var sw http.ResponseWriter = w
		if logged {
			sw = &obs.StatusWriter{ResponseWriter: w}
		}
		if gated && r.Method != http.MethodGet && r.Method != http.MethodHead {
			s.fail(sw, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
		} else {
			if gated {
				s.queries.Inc()
			}
			h(sw, r)
		}
		dur := time.Since(start)
		lat.Observe(dur)
		if logged {
			var epoch uint64
			if snap := s.store.Current(); snap != nil {
				epoch = snap.Epoch
			}
			s.reqLog.Log(obs.Entry{
				Component: "serve",
				RID:       rid,
				Method:    r.Method,
				Path:      r.URL.Path,
				Query:     r.URL.RawQuery,
				Status:    sw.(*obs.StatusWriter).Status(),
				Epoch:     epoch,
				DurMS:     dur.Seconds() * 1e3,
			})
		}
	}
}

// fail writes the api.Error JSON envelope, stamped with the epoch the
// server was serving when the request failed (0 before the first
// publish).
func (s *Server) fail(w http.ResponseWriter, status int, code, format string, args ...any) {
	var epoch uint64
	if snap := s.store.Current(); snap != nil {
		epoch = snap.Epoch
	}
	WriteError(w, status, code, epoch, format, args...)
}

// WriteError writes the shared JSON error envelope; the router reuses
// it so both serving planes fail identically.
func WriteError(w http.ResponseWriter, status int, code string, epoch uint64, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(api.Error{
		Message: fmt.Sprintf(format, args...),
		Code:    code,
		Epoch:   epoch,
	})
	w.Write(append(body, '\n'))
}

// reply writes a marshaled JSON body.
func (s *Server) reply(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// current returns the published snapshot or writes a 503.
func (s *Server) current(w http.ResponseWriter) *Snapshot {
	snap := s.store.Current()
	if snap == nil {
		s.fail(w, http.StatusServiceUnavailable, api.CodeNoSnapshot, "no snapshot published yet")
	}
	return snap
}

// marshalTopK builds the /v1/topk body for one (snapshot, k) pair.
func marshalTopK(snap *Snapshot, k int) ([]byte, error) {
	entries := snap.TopK(k)
	rows := make([]api.TopKEntry, len(entries))
	for i, e := range entries {
		rows[i] = api.TopKEntry{Vertex: e.Vertex, Score: e.Score}
	}
	body, err := json.Marshal(api.TopKResponse{
		Epoch:   snap.Epoch,
		Engine:  snap.Engine,
		Seed:    snap.Seed,
		K:       len(rows),
		Entries: rows,
	})
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	k, err := parsePositiveInt(r.URL.Query().Get("k"), 20)
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "bad k: %v", err)
		return
	}

	cacheable := k <= maxCachedK
	if cacheable {
		s.topkMu.Lock()
		if s.topkEpoch == snap.Epoch {
			if body, ok := s.topkCache[k]; ok {
				s.topkMu.Unlock()
				s.cacheHits.Inc()
				s.reply(w, body)
				return
			}
		}
		s.topkMu.Unlock()
	}

	body, err, shared := s.topkFlights.Do([2]uint64{snap.Epoch, uint64(k)}, func() ([]byte, error) {
		return marshalTopK(snap, k)
	})
	if shared {
		s.coalesced.Inc()
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	if cacheable && !shared {
		s.topkMu.Lock()
		if s.topkEpoch != snap.Epoch {
			// The store moved on (or this is the first fill for this
			// epoch): restart the cache so stale-epoch bodies are
			// never mixed with fresh ones. Only newer epochs replace
			// the cache — a slow goroutine holding an old snapshot
			// must not clobber current entries.
			if snap.Epoch > s.topkEpoch {
				s.topkEpoch = snap.Epoch
				s.topkCache = make(map[int][]byte)
				s.topkCache[k] = body
			}
		} else {
			s.topkCache[k] = body
		}
		s.topkMu.Unlock()
	}
	s.reply(w, body)
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	raw := r.URL.Query().Get("vertex")
	if raw == "" {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "missing vertex parameter")
		return
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "bad vertex: %v", err)
		return
	}
	rank, ok := snap.Rank(graph.VertexID(v))
	if !ok {
		s.fail(w, http.StatusNotFound, api.CodeNotFound, "vertex %d not in graph (n=%d)", v, len(snap.Ranks))
		return
	}
	body, err := json.Marshal(api.RankResponse{
		Epoch: snap.Epoch, Engine: snap.Engine, Vertex: uint32(v), Rank: rank,
	})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.reply(w, append(body, '\n'))
}

// referenceRanks computes (or fetches the cached) comparison vector for
// the snapshot's graph and epoch.
func (s *Server) referenceRanks(snap *Snapshot, engine Engine) ([]float64, error) {
	s.compareMu.Lock()
	if s.compareEpoch == snap.Epoch {
		if ranks, ok := s.compareCache[engine]; ok {
			s.compareMu.Unlock()
			s.compareHits.Inc()
			return ranks, nil
		}
	}
	s.compareMu.Unlock()

	key := fmt.Sprintf("%d/%s", snap.Epoch, engine)
	ranks, err, shared := s.compareFlights.Do(key, func() ([]float64, error) {
		cfg := s.opts.Compare
		if engine != cfg.Engine {
			// The template's tuning knobs belong to the serving
			// engine; a different reference engine runs with its own
			// defaults (e.g. glpr to tolerance, not the serving
			// engine's truncated iteration budget). Infrastructure
			// knobs (machines, workers, teleport) stay shared.
			cfg.Walkers, cfg.Iterations, cfg.PS = 0, 0, 0
		}
		cfg.Engine = engine
		cfg.Seed = snap.Seed
		cfg = cfg.withDefaults(snap.Graph.NumVertices())
		return computeRanks(snap.Graph, cfg)
	})
	if shared {
		s.coalesced.Inc()
	}
	if err != nil {
		return nil, err
	}
	s.compareMu.Lock()
	if s.compareEpoch != snap.Epoch {
		if snap.Epoch > s.compareEpoch {
			s.compareEpoch = snap.Epoch
			s.compareCache = map[Engine][]float64{engine: ranks}
		}
	} else {
		if s.compareCache == nil {
			s.compareCache = make(map[Engine][]float64)
		}
		s.compareCache[engine] = ranks
	}
	s.compareMu.Unlock()
	return ranks, nil
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	engine, err := ParseEngine(valueOr(r.URL.Query().Get("engine"), string(EngineExact)))
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	k, err := parsePositiveInt(r.URL.Query().Get("k"), 20)
	if err != nil {
		s.fail(w, http.StatusBadRequest, api.CodeBadRequest, "bad k: %v", err)
		return
	}
	ref, err := s.referenceRanks(snap, engine)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "compare run: %v", err)
		return
	}
	body, err := json.Marshal(api.CompareResponse{
		Epoch:               snap.Epoch,
		Engine:              snap.Engine,
		Against:             engine,
		K:                   k,
		CapturedMass:        topk.CapturedMass(ref, snap.Ranks, k),
		NormalizedMass:      topk.NormalizedCapturedMass(ref, snap.Ranks, k),
		ExactIdentification: topk.ExactIdentification(ref, snap.Ranks, k),
		L1Distance:          topk.L1Distance(ref, snap.Ranks),
	})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.reply(w, append(body, '\n'))
}

// StatsBody assembles the /v1/stats response for the current snapshot;
// shards reuse it so their RPC stats match the single-node body.
func (s *Server) StatsBody(snap *Snapshot) api.StatsResponse {
	serving := api.ServeStats{
		Queries:           s.queries.Value(),
		TopKCacheHits:     s.cacheHits.Value(),
		CompareCacheHits:  s.compareHits.Value(),
		Coalesced:         s.coalesced.Value(),
		PPRQueries:        s.ppr.queries.Value(),
		PPRCacheHits:      s.ppr.cacheHits.Value(),
		PPRWalks:          s.ppr.walks.Value(),
		PPRWalkSteps:      s.ppr.batcher.steps.Value(),
		PPRPageLocalSteps: s.ppr.batcher.local.Value(),
	}
	if ref := s.opts.Refresher; ref != nil {
		serving.Refreshes = ref.Refreshes()
		serving.BuildErrors = ref.Errors()
	}
	var pc *api.PageCacheStats
	if st, ok := snap.Graph.PageCacheStats(); ok {
		pc = &api.PageCacheStats{
			PageSize:      int64(st.PageSize),
			BudgetBytes:   st.BudgetBytes,
			BudgetPages:   int64(st.BudgetPages),
			ResidentPages: int64(st.ResidentPages),
			PinnedPages:   int64(st.PinnedPages),
			Hits:          st.Hits,
			Misses:        st.Misses,
			Evictions:     st.Evictions,
		}
	}
	return api.StatsResponse{
		Epoch:        snap.Epoch,
		Engine:       snap.Engine,
		Seed:         snap.Seed,
		BuiltAt:      snap.BuiltAt,
		BuildSeconds: snap.BuildSeconds,
		MaxK:         snap.MaxK,
		Graph: api.GraphStats{
			Vertices:  snap.Stats.NumVertices,
			Edges:     snap.Stats.NumEdges,
			MinOutDeg: snap.Stats.MinOutDeg,
			MaxOutDeg: snap.Stats.MaxOutDeg,
			MaxInDeg:  snap.Stats.MaxInDeg,
			MeanDeg:   snap.Stats.MeanDeg,
			GiniOut:   snap.Stats.GiniOut,
		},
		Serving:   serving,
		PageCache: pc,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.current(w)
	if snap == nil {
		return
	}
	body, err := json.Marshal(s.StatsBody(snap))
	if err != nil {
		s.fail(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	s.reply(w, append(body, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	if snap == nil {
		s.fail(w, http.StatusServiceUnavailable, api.CodeNoSnapshot, "no snapshot published yet")
		return
	}
	body, _ := json.Marshal(api.HealthResponse{Status: "ok", Epoch: snap.Epoch})
	s.reply(w, append(body, '\n'))
}

// Serve listens on addr and serves until ctx is cancelled, then shuts
// down gracefully (in-flight requests get up to 5 seconds to finish).
// It returns nil on a clean ctx-triggered shutdown.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serveListener(ctx, ln)
}

// Addr returns the listening address once Serve has bound it ("" before
// that) — handy when addr was ":0".
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// serveListener runs the http.Server lifecycle over an existing
// listener.
func (s *Server) serveListener(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.listener = ln
	s.httpMu.Unlock()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // always http.ErrServerClosed after Shutdown
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// parsePositiveInt parses a strictly positive integer, returning def
// for the empty string.
func parsePositiveInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("must be positive, got %d", v)
	}
	return v, nil
}

// valueOr returns raw unless it is empty.
func valueOr(raw, def string) string {
	if raw == "" {
		return def
	}
	return raw
}
