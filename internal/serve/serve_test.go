package serve

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/pagerank"
	"repro/internal/serve/api"
	"repro/internal/topk"
)

// testGraph is a small power-law graph shared across tests.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.TwitterLike(2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testBuildConfig keeps engine runs cheap in tests.
func testBuildConfig(engine Engine) BuildConfig {
	return BuildConfig{Engine: engine, Machines: 4, Seed: 11, WorkersPerMachine: 1, MaxK: 50}
}

// buildSnap builds and publishes one snapshot.
func buildSnap(t testing.TB, store *Store, engine Engine) *Snapshot {
	t.Helper()
	snap, err := Build(testGraph(t), testBuildConfig(engine))
	if err != nil {
		t.Fatal(err)
	}
	return store.Publish(snap)
}

func TestStorePublishEpochs(t *testing.T) {
	st := NewStore()
	if st.Current() != nil || st.Epoch() != 0 {
		t.Fatal("fresh store should be empty at epoch 0")
	}
	a := buildSnap(t, st, EngineFrogWild)
	if a.Epoch != 1 || st.Epoch() != 1 || st.Current() != a {
		t.Fatalf("first publish: epoch %d, store epoch %d", a.Epoch, st.Epoch())
	}
	b := buildSnap(t, st, EngineFrogWild)
	if b.Epoch != 2 || st.Current() != b {
		t.Fatalf("second publish: epoch %d", b.Epoch)
	}
	if a.Epoch != 1 {
		t.Error("old snapshot's epoch must not change")
	}
}

func TestSnapshotTopKMatchesTopkTop(t *testing.T) {
	snap, err := Build(testGraph(t), testBuildConfig(EngineFrogWild))
	if err != nil {
		t.Fatal(err)
	}
	n := len(snap.Ranks)
	for _, k := range []int{1, 5, 20, 50, 51, 100, n, n + 10} {
		got := snap.TopK(k)
		want := topk.Top(snap.Ranks, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%d) != topk.Top (index MaxK=%d)", k, snap.MaxK)
		}
	}
	if snap.TopK(0) != nil || snap.TopK(-1) != nil {
		t.Error("non-positive k should return nil")
	}
	// The returned slice must be a copy, not a window into the index.
	top := snap.TopK(3)
	top[0].Score = -1
	if snap.Top[0].Score == -1 {
		t.Error("TopK must not alias the precomputed index")
	}
}

func TestSnapshotRank(t *testing.T) {
	snap, err := Build(testGraph(t), testBuildConfig(EngineFrogWild))
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := snap.Rank(0); !ok || r != snap.Ranks[0] {
		t.Errorf("Rank(0) = %v, %v", r, ok)
	}
	if _, ok := snap.Rank(uint32(len(snap.Ranks))); ok {
		t.Error("out-of-range vertex should report !ok")
	}
}

func TestFromRanksValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := FromRanks(nil, EngineExact, 0, nil, 10); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := FromRanks(g, EngineExact, 0, make([]float64, 3), 10); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestBuildEngines(t *testing.T) {
	g := testGraph(t)
	for _, engine := range []Engine{EngineFrogWild, EngineGLPR, EngineExact} {
		snap, err := Build(g, testBuildConfig(engine))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if len(snap.Ranks) != g.NumVertices() {
			t.Fatalf("%s: %d ranks", engine, len(snap.Ranks))
		}
		var sum float64
		for _, r := range snap.Ranks {
			sum += r
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s: ranks sum to %v", engine, sum)
		}
		if snap.Stats.NumVertices != g.NumVertices() {
			t.Errorf("%s: stats not populated", engine)
		}
	}
	// The exact engine must agree with the solver it wraps.
	snap, err := Build(g, testBuildConfig(EngineExact))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Ranks, ref.Rank) {
		t.Error("exact engine ranks differ from pagerank.Exact")
	}
	if _, err := Build(g, BuildConfig{Engine: "nope"}); err == nil {
		t.Error("unknown engine should error")
	}
	if _, err := Build(nil, BuildConfig{}); err == nil {
		t.Error("nil graph should error")
	}
}

func TestParseEngine(t *testing.T) {
	for _, name := range []string{"frogwild", "glpr", "exact"} {
		if e, err := ParseEngine(name); err != nil || string(e) != name {
			t.Errorf("ParseEngine(%q) = %v, %v", name, e, err)
		}
	}
	if _, err := ParseEngine("pagerank"); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestRefresherGenerations(t *testing.T) {
	g := testGraph(t)
	st := NewStore()
	r := NewRefresher(st, EngineBuilder(g, testBuildConfig(EngineFrogWild)), 0)
	a, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch != 1 || b.Epoch != 2 {
		t.Fatalf("epochs %d, %d", a.Epoch, b.Epoch)
	}
	if a.Seed+1 != b.Seed {
		t.Errorf("seeds should advance per generation: %d then %d", a.Seed, b.Seed)
	}
	if reflect.DeepEqual(a.Ranks, b.Ranks) {
		t.Error("reseeded frogwild refresh should produce a different estimate")
	}
	if r.Refreshes() != 2 || r.Errors() != 0 {
		t.Errorf("counters: %d refreshes, %d errors", r.Refreshes(), r.Errors())
	}
	// Same generation seed ⇒ bit-identical rebuild (determinism).
	c, err := EngineBuilder(g, testBuildConfig(EngineFrogWild))(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Ranks, a.Ranks) {
		t.Error("rebuilding generation 0 should be bit-identical")
	}
}

func TestRefresherRunPublishesInitialAndStops(t *testing.T) {
	g := testGraph(t)
	st := NewStore()
	r := NewRefresher(st, EngineBuilder(g, testBuildConfig(EngineFrogWild)), 0)
	if err := r.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("one-shot Run should publish once, epoch = %d", st.Epoch())
	}

	ctx, cancel := context.WithCancel(context.Background())
	r2 := NewRefresher(st, EngineBuilder(g, testBuildConfig(EngineFrogWild)), time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- r2.Run(ctx, nil) }()
	deadline := time.Now().Add(5 * time.Second)
	for st.Epoch() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run should return ctx.Err(), got %v", err)
	}
	if st.Epoch() < 3 {
		t.Errorf("cadenced Run should keep publishing, epoch = %d", st.Epoch())
	}
}

func TestRefresherBuildErrorKeepsServing(t *testing.T) {
	g := testGraph(t)
	st := NewStore()
	ok := EngineBuilder(g, testBuildConfig(EngineFrogWild))
	calls := 0
	flaky := func(gen uint64) (*Snapshot, error) {
		calls++
		if calls > 1 {
			return nil, io.ErrUnexpectedEOF
		}
		return ok(gen)
	}
	r := NewRefresher(st, flaky, 0)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	prev := st.Current()
	if _, err := r.Refresh(); err == nil {
		t.Fatal("second refresh should fail")
	}
	if st.Current() != prev {
		t.Error("failed refresh must not unpublish the previous snapshot")
	}
	if r.Errors() != 1 {
		t.Errorf("error counter = %d", r.Errors())
	}
}

// newTestServer publishes one frogwild snapshot and wraps the handler
// in an httptest server.
func newTestServer(t testing.TB) (*Server, *Store, *httptest.Server) {
	t.Helper()
	st := NewStore()
	buildSnap(t, st, EngineFrogWild)
	srv := NewServer(st, ServerOptions{Compare: testBuildConfig(EngineFrogWild)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, st, ts
}

// getJSON fetches url and decodes the JSON body into out, returning the
// status code.
func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("bad JSON %q: %v", body, err)
		}
	}
	return resp.StatusCode
}

func TestServerTopKBitIdentical(t *testing.T) {
	_, st, ts := newTestServer(t)
	snap := st.Current()
	for _, k := range []int{1, 20, 50, 200} {
		var got api.TopKResponse
		if code := getJSON(t, ts.URL+"/v1/topk?k="+strconv.Itoa(k), &got); code != http.StatusOK {
			t.Fatalf("k=%d: status %d", k, code)
		}
		want := topk.Top(snap.Ranks, k)
		if got.Epoch != snap.Epoch || got.Engine != snap.Engine || got.K != len(want) {
			t.Fatalf("k=%d: header fields %+v", k, got)
		}
		if len(got.Entries) != len(want) {
			t.Fatalf("k=%d: %d entries, want %d", k, len(got.Entries), len(want))
		}
		for i, e := range got.Entries {
			if e.Vertex != want[i].Vertex || e.Score != want[i].Score {
				t.Fatalf("k=%d entry %d: got %+v want %+v (must be bit-identical)", k, i, e, want[i])
			}
		}
	}
}

func TestServerTopKDefaultsAndErrors(t *testing.T) {
	_, _, ts := newTestServer(t)
	var got api.TopKResponse
	if code := getJSON(t, ts.URL+"/v1/topk", &got); code != http.StatusOK {
		t.Fatalf("default k: status %d", code)
	}
	if got.K != 20 || len(got.Entries) != 20 {
		t.Errorf("default k should be 20, got %d", got.K)
	}
	for _, bad := range []string{"k=0", "k=-3", "k=frog"} {
		if code := getJSON(t, ts.URL+"/v1/topk?"+bad, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, code)
		}
	}
	// k above the cache bound still answers (uncached path), clamped
	// to the graph size.
	var huge api.TopKResponse
	if code := getJSON(t, ts.URL+"/v1/topk?k=999999", &huge); code != http.StatusOK {
		t.Fatalf("huge k: status %d", code)
	}
	if huge.K != 2000 || len(huge.Entries) != 2000 {
		t.Errorf("huge k should clamp to n=2000, got %d", huge.K)
	}
}

func TestServerTopKCacheAndInvalidation(t *testing.T) {
	srv, st, ts := newTestServer(t)
	var first api.TopKResponse
	getJSON(t, ts.URL+"/v1/topk?k=7", &first)
	hits := srv.CacheHits()
	var second api.TopKResponse
	getJSON(t, ts.URL+"/v1/topk?k=7", &second)
	if srv.CacheHits() != hits+1 {
		t.Errorf("second identical query should hit the cache (hits %d -> %d)", hits, srv.CacheHits())
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached response differs")
	}

	buildSnap(t, st, EngineGLPR) // swap epochs
	var third api.TopKResponse
	getJSON(t, ts.URL+"/v1/topk?k=7", &third)
	if third.Epoch != 2 || third.Engine != EngineGLPR {
		t.Errorf("after swap the cache must serve the new epoch, got %+v", third)
	}
}

func TestServerRank(t *testing.T) {
	_, st, ts := newTestServer(t)
	snap := st.Current()
	var got api.RankResponse
	if code := getJSON(t, ts.URL+"/v1/rank?vertex=17", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Vertex != 17 || got.Rank != snap.Ranks[17] || got.Epoch != snap.Epoch {
		t.Errorf("rank response %+v", got)
	}
	if code := getJSON(t, ts.URL+"/v1/rank", nil); code != http.StatusBadRequest {
		t.Errorf("missing vertex: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rank?vertex=x", nil); code != http.StatusBadRequest {
		t.Errorf("bad vertex: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/rank?vertex=999999", nil); code != http.StatusNotFound {
		t.Errorf("out-of-range vertex: status %d", code)
	}
}

func TestServerCompare(t *testing.T) {
	srv, st, ts := newTestServer(t)
	snap := st.Current()
	var got api.CompareResponse
	if code := getJSON(t, ts.URL+"/v1/compare?engine=exact&k=20", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Epoch != snap.Epoch || got.Against != EngineExact || got.K != 20 {
		t.Fatalf("compare response %+v", got)
	}
	if got.NormalizedMass <= 0 || got.NormalizedMass > 1+1e-12 {
		t.Errorf("normalized mass %v out of (0,1]", got.NormalizedMass)
	}
	if got.ExactIdentification < 0 || got.ExactIdentification > 1 {
		t.Errorf("identification %v out of [0,1]", got.ExactIdentification)
	}
	// Verify against a direct computation on the snapshot.
	ref, err := pagerank.Exact(snap.Graph, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := topk.NormalizedCapturedMass(ref.Rank, snap.Ranks, 20); got.NormalizedMass != want {
		t.Errorf("normalized mass %v, want %v", got.NormalizedMass, want)
	}

	hits := srv.CompareCacheHits()
	getJSON(t, ts.URL+"/v1/compare?engine=exact&k=50", nil)
	if srv.CompareCacheHits() != hits+1 {
		t.Error("second compare against the same engine should reuse the cached reference vector")
	}
	if srv.CacheHits() != 0 {
		t.Error("compare cache reuse must not count as a topk body cache hit")
	}
	if code := getJSON(t, ts.URL+"/v1/compare?engine=quantum", nil); code != http.StatusBadRequest {
		t.Errorf("unknown engine: status %d", code)
	}
}

func TestServerStatsAndHealthz(t *testing.T) {
	st := NewStore()
	srv := NewServer(st, ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/v1/stats", nil); code != http.StatusServiceUnavailable {
		t.Errorf("empty store stats: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty store healthz: status %d", resp.StatusCode)
	}

	snap := buildSnap(t, st, EngineFrogWild)
	var got api.StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &got); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if got.Epoch != snap.Epoch || got.Engine != EngineFrogWild || got.MaxK != snap.MaxK {
		t.Errorf("stats %+v", got)
	}
	if got.Graph.Vertices != snap.Stats.NumVertices || got.Graph.Edges != snap.Stats.NumEdges {
		t.Errorf("graph stats %+v", got.Graph)
	}
	if got.Serving.Queries == 0 {
		t.Error("queries counter should count this request")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after publish: status %d", resp.StatusCode)
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	_, _, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/topk", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	st := NewStore()
	buildSnap(t, st, EngineFrogWild)
	srv := NewServer(st, ServerOptions{})
	if srv.Addr() != "" {
		t.Error("Addr should be empty before Serve binds")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, "127.0.0.1:0") }()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("server never bound")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown should return nil, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown timed out")
	}
}

func TestListenAndServeLifecycle(t *testing.T) {
	g := testGraph(t)
	cfg := ServiceConfig{
		Build:           testBuildConfig(EngineFrogWild),
		RefreshInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ListenAndServe(ctx, "127.0.0.1:0", g, cfg) }()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean shutdown should return nil, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not stop")
	}

	// A failing initial build surfaces immediately.
	if err := ListenAndServe(ctx, "127.0.0.1:0", g, ServiceConfig{
		Build: BuildConfig{Engine: "bogus"},
	}); err == nil {
		t.Error("bad engine should fail the initial build")
	}
	// A bad address surfaces as a listen error.
	if err := ListenAndServe(context.Background(), "256.0.0.1:http", g, cfg); err == nil {
		t.Error("unlistenable address should error")
	}
}

func TestNewServiceInitialSnapshot(t *testing.T) {
	g := testGraph(t)
	srv, refresher, err := NewService(g, ServiceConfig{Build: testBuildConfig(EngineFrogWild)})
	if err != nil {
		t.Fatal(err)
	}
	if refresher.Refreshes() != 1 {
		t.Errorf("NewService should publish the initial snapshot, refreshes = %d", refresher.Refreshes())
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var got api.TopKResponse
	if code := getJSON(t, ts.URL+"/v1/topk?k=5", &got); code != http.StatusOK || got.Epoch != 1 {
		t.Errorf("service topk: code %d, %+v", code, got)
	}
}
