// Package api is the versioned wire schema of the query service: every
// JSON body the single-node server, the sharded router, the shard RPC
// codec and the load generator's decoder exchange is defined here, once
// — the same discipline internal/benchfmt applies to the benchmark
// reports. Producer and consumer alias these types instead of
// re-declaring inline structs, so the two sides of the wire cannot
// drift apart silently.
//
// Version gates compatibility: the shard RPC handshake carries it and
// a shard refuses requests from a router speaking a different version,
// so a mixed-version cluster fails loudly at the first query instead of
// mis-decoding frames.
package api

import "time"

// Version is the wire-protocol generation. Bump it when a change to the
// types below is not backward compatible (removed field, changed
// meaning); additions with `omitempty` are compatible and do not bump.
const Version = 1

// Engine names an estimate producer a snapshot can be built from. The
// serving layer aliases this type, so the engine names on the wire and
// in build configuration are one vocabulary.
type Engine string

// TopKEntry is one result row of a top-k query.
type TopKEntry struct {
	Vertex uint32  `json:"vertex"`
	Score  float64 `json:"score"`
}

// TopKResponse is the /v1/topk body. Degraded is set only by the
// router, when a shard failure forced the answer to be served from the
// last complete merge (at its — possibly stale — epoch); a healthy
// sharded response is byte-identical to the single-node one.
type TopKResponse struct {
	Epoch    uint64      `json:"epoch"`
	Engine   Engine      `json:"engine"`
	Seed     uint64      `json:"seed"`
	K        int         `json:"k"`
	Entries  []TopKEntry `json:"entries"`
	Degraded bool        `json:"degraded,omitempty"`
}

// PPRResponse is the /v1/ppr body: the top-k personalized PageRank of
// a source set, estimated by request-time random walks. Sources echoes
// the canonical (sorted, deduplicated) source set the walks restarted
// at; Walks is the total walk count actually executed; Truncated is
// set when the per-request walk budget forced fewer walks per source
// than configured (the result is still valid, just noisier). Within
// one epoch, identical requests produce bit-identical bodies.
type PPRResponse struct {
	Epoch     uint64      `json:"epoch"`
	Engine    Engine      `json:"engine"`
	Seed      uint64      `json:"seed"`
	Sources   []uint32    `json:"sources"`
	K         int         `json:"k"`
	Walks     int         `json:"walks"`
	Truncated bool        `json:"truncated,omitempty"`
	Entries   []TopKEntry `json:"entries"`
}

// RankResponse is the /v1/rank body.
type RankResponse struct {
	Epoch    uint64  `json:"epoch"`
	Engine   Engine  `json:"engine"`
	Vertex   uint32  `json:"vertex"`
	Rank     float64 `json:"rank"`
	Degraded bool    `json:"degraded,omitempty"`
}

// CompareResponse is the /v1/compare body: the served estimate's
// accuracy metrics against another engine run on the same graph, with
// the comparison engine treated as the reference.
type CompareResponse struct {
	Epoch               uint64  `json:"epoch"`
	Engine              Engine  `json:"engine"`
	Against             Engine  `json:"against"`
	K                   int     `json:"k"`
	CapturedMass        float64 `json:"capturedMass"`
	NormalizedMass      float64 `json:"normalizedMass"`
	ExactIdentification float64 `json:"exactIdentification"`
	L1Distance          float64 `json:"l1Distance"`
}

// GraphStats summarizes the served graph's degree structure.
type GraphStats struct {
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	MinOutDeg int     `json:"minOutDeg"`
	MaxOutDeg int     `json:"maxOutDeg"`
	MaxInDeg  int     `json:"maxInDeg"`
	MeanDeg   float64 `json:"meanDeg"`
	GiniOut   float64 `json:"giniOut"`
}

// ServeStats counts one server's query-path activity. The PPR fields
// are additive (omitempty) and absent from deployments that predate
// the endpoint, so no Version bump.
type ServeStats struct {
	Queries          uint64 `json:"queries"`
	TopKCacheHits    uint64 `json:"topkCacheHits"`
	CompareCacheHits uint64 `json:"compareCacheHits"`
	Coalesced        uint64 `json:"coalesced"`
	Refreshes        uint64 `json:"refreshes"`
	BuildErrors      uint64 `json:"buildErrors"`
	// PPRQueries counts /v1/ppr requests; PPRCacheHits of those were
	// answered from the hot-source LRU; PPRWalks is the total random
	// walks executed on their behalf.
	PPRQueries   uint64 `json:"pprQueries,omitempty"`
	PPRCacheHits uint64 `json:"pprCacheHits,omitempty"`
	PPRWalks     uint64 `json:"pprWalks,omitempty"`
	// PPRWalkSteps counts individual walk steps on paged graphs;
	// PPRPageLocalSteps of those reused the page the previous step
	// touched — the batched scheduler's locality win. Both are zero
	// (and absent) on fully resident graphs.
	PPRWalkSteps      uint64 `json:"pprWalkSteps,omitempty"`
	PPRPageLocalSteps uint64 `json:"pprPageLocalSteps,omitempty"`
}

// PageCacheStats describes the graph page cache of a server running
// under a -graph-mem budget. Absent (nil) when the graph is fully
// resident.
type PageCacheStats struct {
	PageSize      int64  `json:"pageSize"`
	BudgetBytes   int64  `json:"budgetBytes"`
	BudgetPages   int64  `json:"budgetPages"`
	ResidentPages int64  `json:"residentPages"`
	PinnedPages   int64  `json:"pinnedPages"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
}

// StatsResponse is the single-node /v1/stats body.
type StatsResponse struct {
	Epoch        uint64     `json:"epoch"`
	Engine       Engine     `json:"engine"`
	Seed         uint64     `json:"seed"`
	BuiltAt      time.Time  `json:"builtAt"`
	BuildSeconds float64    `json:"buildSeconds"`
	MaxK         int        `json:"maxK"`
	Graph        GraphStats `json:"graph"`
	Serving      ServeStats `json:"serving"`
	// PageCache is set only when the graph is served under a memory
	// budget (additive, so no Version bump).
	PageCache *PageCacheStats `json:"pageCache,omitempty"`
}

// ShardStatus is one shard's row in router health and stats bodies.
type ShardStatus struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr,omitempty"`
	Epoch uint64 `json:"epoch"`
	// Owned is the number of vertices the shard masters.
	Owned int  `json:"owned,omitempty"`
	OK    bool `json:"ok"`
	// SnapshotAgeSeconds is how long ago the shard's current snapshot
	// was built — it distinguishes a shard lagging behind a refresh
	// (old snapshot, old epoch) from one that just booted (fresh
	// snapshot at an early epoch). Zero when the shard has no snapshot.
	SnapshotAgeSeconds float64 `json:"snapshotAgeSeconds,omitempty"`
	// Error carries the dial/RPC failure when OK is false.
	Error string `json:"error,omitempty"`
}

// HealthResponse is the /healthz body. The single-node server reports
// no shards; the router lists every shard with its epoch so a lagging
// or dead shard is visible, and Status is "degraded" (with HTTP 503)
// whenever any shard is down or behind the freshest epoch.
type HealthResponse struct {
	Status string        `json:"status"` // "ok" or "degraded"
	Epoch  uint64        `json:"epoch,omitempty"`
	Shards []ShardStatus `json:"shards,omitempty"`
}

// NetworkStats reports the router's measured wire traffic, the
// quantity the paper's inter-machine claims are about: real bytes on a
// real wire, per query.
type NetworkStats struct {
	// Queries is the number of routed queries the bytes are averaged
	// over.
	Queries uint64 `json:"queries"`
	// BytesSent / BytesRecv are totals across all shard connections
	// (requests out, partial results back).
	BytesSent int64 `json:"bytesSent"`
	BytesRecv int64 `json:"bytesRecv"`
	// BytesPerQuery is (BytesSent+BytesRecv)/Queries.
	BytesPerQuery float64 `json:"bytesPerQuery"`
}

// RouterStats counts the router's own query-path activity.
type RouterStats struct {
	Queries uint64 `json:"queries"`
	// Degraded counts responses served from the last-good cache because
	// a shard was unreachable or lacked a consistent epoch.
	Degraded uint64 `json:"degraded"`
	// Retries counts per-shard RPC retries after a transport error.
	Retries uint64 `json:"retries"`
	// EpochFallbacks counts queries re-issued at an older epoch because
	// the shards disagreed on the current one.
	EpochFallbacks uint64 `json:"epochFallbacks"`
	// PPRUnsupported counts /v1/ppr requests refused with 501
	// unsupported — the router holds no graph to walk. Tracked apart
	// from generic totals so a client mis-targeting PPR at a router is
	// visible in stats, not folded into request noise.
	PPRUnsupported uint64 `json:"pprUnsupported,omitempty"`
}

// RouterStatsResponse is the router's /v1/stats body.
type RouterStatsResponse struct {
	Epoch   uint64        `json:"epoch"`
	Engine  Engine        `json:"engine"`
	Seed    uint64        `json:"seed"`
	Shards  []ShardStatus `json:"shards"`
	Serving RouterStats   `json:"serving"`
	Network NetworkStats  `json:"network"`
}

// Error is the JSON error envelope every non-2xx response carries.
// Epoch is the epoch the server was serving when it failed the request
// (0 when no snapshot is published), so clients can correlate errors
// with the snapshot trail.
type Error struct {
	Message string `json:"error"`
	Code    string `json:"code"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// Error implements the error interface, so decoded envelopes propagate
// as Go errors with their machine-readable code attached.
func (e *Error) Error() string {
	return e.Code + ": " + e.Message
}

// Error codes, one vocabulary for single-node server, shards and
// router. The code says what class of failure occurred; the HTTP status
// says what the client should do about it.
const (
	// CodeBadRequest: malformed query parameters.
	CodeBadRequest = "bad_request"
	// CodeNotFound: the queried entity does not exist.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: non-GET on a query endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNoSnapshot: nothing published yet (503, retryable).
	CodeNoSnapshot = "no_snapshot"
	// CodeInternal: marshal or compute failure inside the server.
	CodeInternal = "internal"
	// CodeUnavailable: shards unreachable and no fallback answer held.
	CodeUnavailable = "unavailable"
	// CodeUnsupported: the endpoint exists but not on this deployment
	// (e.g. /v1/compare on the stateless router).
	CodeUnsupported = "unsupported"
	// CodeVersionMismatch: RPC peers speak different wire versions.
	CodeVersionMismatch = "version_mismatch"
)
