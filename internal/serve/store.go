package serve

import (
	"sync"
	"sync/atomic"
)

// Store publishes Snapshots to readers. Reads are a single atomic
// pointer load — no locks on the query path — and writes swap the whole
// snapshot at once, so a reader can never observe a half-updated
// estimate.
type Store struct {
	mu    sync.Mutex // serializes Publish so epochs and cur agree
	cur   atomic.Pointer[Snapshot]
	epoch atomic.Uint64
}

// NewStore returns an empty store; Current is nil until the first
// Publish.
func NewStore() *Store { return &Store{} }

// Publish assigns s the next epoch and makes it the current snapshot.
// Publishes are serialized (they are rare; reads stay lock-free), so
// concurrent publishers can never leave Current holding an older epoch
// than the store has handed out, and the epoch write always
// happens-before the pointer store. Returns s for chaining.
func (st *Store) Publish(s *Snapshot) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	s.Epoch = st.epoch.Add(1)
	st.cur.Store(s)
	return s
}

// Restore publishes a previously persisted snapshot, preserving the
// epoch it carried when it was saved (so warm-start responses are
// honest about which estimate they serve) and fast-forwarding the
// store's epoch counter past it, so the next fresh Publish gets a
// strictly newer epoch. A zero-epoch snapshot (persisted before its
// first publish) is assigned the next epoch like a normal publish.
func (st *Store) Restore(s *Snapshot) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s.Epoch == 0 {
		s.Epoch = st.epoch.Add(1)
	} else if cur := st.epoch.Load(); s.Epoch > cur {
		st.epoch.Store(s.Epoch)
	}
	st.cur.Store(s)
	return s
}

// Current returns the latest published snapshot, or nil if none has
// been published yet. The returned snapshot is immutable; callers keep
// a consistent view for as long as they hold the pointer, even across
// concurrent swaps.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Epoch returns the number of snapshots published so far.
func (st *Store) Epoch() uint64 { return st.epoch.Load() }
