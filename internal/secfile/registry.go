package secfile

import (
	"sort"
	"sync"
)

// Field is one decoded header scalar, rendered for inspection.
type Field struct {
	Name  string
	Value string
}

// Info describes a registered format for auto-detection and
// inspection: its schema plus the human-facing metadata tools like
// cmd/fwtool need to dump a file without format-specific code.
type Info struct {
	// Name is the format's human-readable name.
	Name string
	// Schema is the format's codec schema; its Magic keys the registry.
	Schema *Schema
	// SectionNames names each section, index-aligned with the table.
	SectionNames []string
	// Fields renders the format's scalar header fields from a full
	// header (already prelude-validated). Optional.
	Fields func(hdr []byte) []Field
	// ResidentPaged, when set (index-aligned with the table), marks
	// the sections a paged open keeps fully resident — offset arrays
	// and the like — as opposed to sections served from the page
	// cache. Inspection tools use it to estimate the paged-open
	// memory floor. Optional; formats without a paged open omit it.
	ResidentPaged []bool
}

var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register adds (or replaces) a format in the global registry,
// normally from the format package's init. The schema's magic is the
// key.
func Register(info Info) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[info.Schema.Magic] = info
}

// Lookup finds the registered format whose magic starts head.
func Lookup(head []byte) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, info := range registry {
		if info.Schema.IsMagic(head) {
			return info, true
		}
	}
	return Info{}, false
}

// Registered returns every registered format, sorted by magic.
func Registered() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, info := range registry {
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Schema.Magic < infos[j].Schema.Magic })
	return infos
}
