// Package secfile is the repository's on-disk format discipline,
// factored out of the two formats that first implemented it
// (internal/graph/gstore's "FWGSTOR1" CSR graphs and
// internal/serve's "FWSNAP01" snapshots): a checksummed-section file
// codec that a format plugs a schema into instead of hand-rolling its
// own header, table, and I/O plumbing.
//
// Every secfile-based format shares this shape:
//
//	offset  size  field
//	0       8     magic (8 bytes, format-specific)
//	8       4     format version (little-endian u32)
//	12      1     section byte order: 0 little-endian, 1 big-endian
//	13      3     reserved (zero)
//	16      ...   format-specific scalar fields (little-endian)
//	T       24×S  section table: S × (offset u64, length u64,
//	              CRC-64/ECMA u64), at the schema's TableOff
//	H       ...   sections, each 8-byte aligned, at the schema's
//	              HeaderSize
//
// Header scalars are always little-endian; section payloads are raw
// native-order bytes, with the writer's order recorded at offset 12 so
// a foreign-order file fails loudly instead of decoding garbage.
//
// The codec owns everything below the schema:
//
//   - Write lays sections out canonically (8-byte aligned, in order,
//     zero padding) and fills the table with offsets, lengths, and
//     CRC-64/ECMA checksums.
//   - Parse pins a file's table to exactly the canonical layout derived
//     from its own header scalars, so a crafted table has nowhere to
//     point, and bounds every size claim through the schema's
//     SectionSizes callback before anything is allocated or sliced.
//   - Open maps the file zero-copy where the platform allows (the
//     caller's views alias the page cache; Close unmaps), falling back
//     to a buffered read into an 8-aligned buffer.
//   - Read decodes a stream (gzip, pipes) with geometric buffer growth
//     toward the header's claimed size, so a hostile header fails at
//     the stream's real end instead of forcing one giant allocation.
//   - SaveAtomic writes temp + fsync + rename with a best-effort
//     directory fsync, so readers never see a torn file and a crash
//     never destroys the previous good one.
//
// Formats built on the codec register themselves (see Register) so
// inspection tools like cmd/fwtool can dump any format's header,
// sections, and checksum status without format-specific code.
package secfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"unsafe"
)

const (
	// PreludeSize is the fixed part every header starts with: magic,
	// version, byte-order tag, reserved padding.
	PreludeSize = 16
	// EntrySize is one section-table entry: offset, length, CRC-64.
	EntrySize = 24

	// LittleEndianTag and BigEndianTag are the byte-order values stored
	// at header offset 12.
	LittleEndianTag = 0
	BigEndianTag    = 1
)

// Generic error identities. Schemas carry their own identities too
// (Schema.ErrFormat et al.), and every failure wraps both, so callers
// can test either the format's error or the codec's.
var (
	ErrFormat   = errors.New("secfile: malformed section file")
	ErrChecksum = errors.New("secfile: section checksum mismatch")
	ErrEndian   = errors.New("secfile: file written with foreign byte order")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum is the codec's section checksum: CRC-64/ECMA over raw bytes.
func Checksum(b []byte) uint64 { return crc64.Checksum(b, crcTable) }

// NativeEndian is the byte-order tag this process writes and accepts:
// LittleEndianTag or BigEndianTag.
var NativeEndian = func() byte {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) == 1 {
		return LittleEndianTag
	}
	return BigEndianTag
}()

// hostEndian is the tag Write stamps and Parse accepts. It equals
// NativeEndian except in tests, which swap it to drive the big-endian
// header path on little-endian hardware (see export_test.go).
var hostEndian = NativeEndian

// MmapSupported reports whether Open has a zero-copy path on this
// platform.
const MmapSupported = mmapSupported

// Schema defines one on-disk format over the codec: its identity
// (magic, version), header geometry, and how its scalar header fields
// determine each section's byte length. A format is a Schema plus the
// code that fills and reads its scalar fields — all byte-level
// discipline lives in the codec.
type Schema struct {
	// Magic is the 8-byte file identity sniffed by auto-detection.
	Magic string
	// Version is the only format version this schema accepts.
	Version uint32
	// HeaderSize is the full header length; sections start here.
	HeaderSize int
	// TableOff is the section table's offset within the header.
	TableOff int
	// NumSections is the table's entry count.
	NumSections int
	// SectionSizes decodes the schema's scalar header fields (hdr is
	// exactly HeaderSize bytes, prelude already validated) and returns
	// each section's byte length. It must reject implausible size
	// claims so a hostile header can never drive a giant allocation.
	SectionSizes func(hdr []byte) ([]uint64, error)

	// ErrFormat, ErrChecksum, and ErrEndian are the format's own error
	// identities, wrapped into every corresponding failure alongside
	// the codec's. Nil fields fall back to ErrFormat (and ultimately to
	// the codec's identities).
	ErrFormat   error
	ErrChecksum error
	ErrEndian   error
}

// Section is one table entry: a payload's offset, byte length, and
// CRC-64/ECMA checksum.
type Section struct{ Off, Len, CRC uint64 }

// IsMagic reports whether head (the first bytes of a file or stream)
// starts a file of this schema's format.
func (s *Schema) IsMagic(head []byte) bool {
	return len(head) >= len(s.Magic) && string(head[:len(s.Magic)]) == s.Magic
}

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// Layout assigns the canonical section geometry for the given payload
// sizes: offsets in file order after the header, each 8-byte aligned.
func (s *Schema) Layout(sizes []uint64) []Section {
	secs := make([]Section, len(sizes))
	off := uint64(s.HeaderSize)
	for i, sz := range sizes {
		secs[i] = Section{Off: off, Len: sz}
		off = align8(off + sz)
	}
	return secs
}

// FileSize returns the total encoded size for the given payload sizes.
func (s *Schema) FileSize(sizes []uint64) uint64 {
	return fileEnd(s.Layout(sizes), s.HeaderSize)
}

func fileEnd(secs []Section, headerSize int) uint64 {
	if len(secs) == 0 {
		return uint64(headerSize)
	}
	last := secs[len(secs)-1]
	return align8(last.Off + last.Len)
}

// errFormat wraps a structural failure in the schema's and the codec's
// format identities.
func (s *Schema) errFormat(format string, args ...any) error {
	if s.ErrFormat != nil {
		return fmt.Errorf("%w: %w: "+format, append([]any{s.ErrFormat, ErrFormat}, args...)...)
	}
	return fmt.Errorf("%w: "+format, append([]any{ErrFormat}, args...)...)
}

func (s *Schema) errChecksum(section int) error {
	if s.ErrChecksum != nil {
		return fmt.Errorf("%w: %w: section %d", s.ErrChecksum, ErrChecksum, section)
	}
	return fmt.Errorf("%w: section %d", ErrChecksum, section)
}

func (s *Schema) errEndian() error {
	own := s.ErrEndian
	if own == nil {
		own = s.ErrFormat
	}
	if own != nil {
		return fmt.Errorf("%w: %w", own, ErrEndian)
	}
	return ErrEndian
}

// NewHeader allocates a header with the prelude stamped (magic,
// version, native byte-order tag); the format fills its scalar fields
// into the rest before Write.
func (s *Schema) NewHeader() []byte {
	hdr := make([]byte, s.HeaderSize)
	copy(hdr, s.Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], s.Version)
	hdr[12] = hostEndian
	return hdr
}

// Write emits hdr followed by the section payloads in the canonical
// layout: the table at TableOff is filled with each part's offset,
// length, and CRC-64/ECMA checksum, and every section is 8-byte
// aligned with zero padding (including trailing padding to the aligned
// file end). hdr must come from NewHeader with the format's scalar
// fields already placed.
func (s *Schema) Write(w io.Writer, hdr []byte, parts [][]byte) error {
	if len(parts) != s.NumSections {
		return fmt.Errorf("secfile: %s: %d parts for %d sections", s.Magic, len(parts), s.NumSections)
	}
	sizes := make([]uint64, len(parts))
	for i, p := range parts {
		sizes[i] = uint64(len(p))
	}
	secs := s.Layout(sizes)
	for i, p := range parts {
		secs[i].CRC = Checksum(p)
		ent := hdr[s.TableOff+EntrySize*i:]
		binary.LittleEndian.PutUint64(ent[0:8], secs[i].Off)
		binary.LittleEndian.PutUint64(ent[8:16], secs[i].Len)
		binary.LittleEndian.PutUint64(ent[16:24], secs[i].CRC)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var pad [8]byte
	pos := uint64(s.HeaderSize)
	for i, p := range parts {
		if secs[i].Off > pos {
			if _, err := w.Write(pad[:secs[i].Off-pos]); err != nil {
				return err
			}
			pos = secs[i].Off
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
		pos += uint64(len(p))
	}
	if end := fileEnd(secs, s.HeaderSize); end > pos {
		if _, err := w.Write(pad[:end-pos]); err != nil {
			return err
		}
	}
	return nil
}

// Parse validates hdr's prelude, derives the section sizes from the
// scalar fields via SectionSizes, and pins the table to exactly the
// canonical layout — alignment, ordering, and non-overlap in one
// comparison, leaving a crafted table nowhere to point. total, when
// >= 0, is the number of bytes actually available (file or buffer
// size) and is checked against the claimed file size; pass -1 on the
// stream path where only the header has been read.
func (s *Schema) Parse(hdr []byte, total int64) ([]Section, error) {
	if len(hdr) < s.HeaderSize {
		return nil, s.errFormat("short header (%d bytes)", len(hdr))
	}
	if !s.IsMagic(hdr) {
		return nil, s.errFormat("bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != s.Version {
		return nil, s.errFormat("unsupported version %d", v)
	}
	if hdr[12] != hostEndian {
		return nil, s.errEndian()
	}
	sizes, err := s.SectionSizes(hdr[:s.HeaderSize])
	if err != nil {
		return nil, s.errFormat("%v", err)
	}
	if len(sizes) != s.NumSections {
		return nil, fmt.Errorf("secfile: %s schema returned %d sizes for %d sections", s.Magic, len(sizes), s.NumSections)
	}
	want := s.Layout(sizes)
	secs := make([]Section, s.NumSections)
	for i := range secs {
		ent := hdr[s.TableOff+EntrySize*i:]
		secs[i] = Section{
			Off: binary.LittleEndian.Uint64(ent[0:8]),
			Len: binary.LittleEndian.Uint64(ent[8:16]),
			CRC: binary.LittleEndian.Uint64(ent[16:24]),
		}
		if secs[i].Off != want[i].Off || secs[i].Len != want[i].Len {
			return nil, s.errFormat("section %d geometry %d+%d, want %d+%d",
				i, secs[i].Off, secs[i].Len, want[i].Off, want[i].Len)
		}
	}
	if size := fileEnd(secs, s.HeaderSize); total >= 0 && size > uint64(total) {
		return nil, s.errFormat("truncated (%d bytes, need %d)", total, size)
	}
	return secs, nil
}

// VerifySections checks every section's recorded checksum against
// data. The sections must come from a Parse whose total covered data.
func (s *Schema) VerifySections(data []byte, secs []Section) error {
	for i, sec := range secs {
		if got := Checksum(data[sec.Off : sec.Off+sec.Len]); got != sec.CRC {
			return s.errChecksum(i)
		}
	}
	return nil
}

// VerifySectionsReaderAt is VerifySections for callers that never
// materialize the whole file (paged opens): it streams each section
// through a fixed-size buffer, so verification costs one sequential
// read of the file and O(1) memory regardless of file size. The
// sections must come from a Parse whose total covered the file.
func (s *Schema) VerifySectionsReaderAt(r io.ReaderAt, secs []Section) error {
	buf := make([]byte, 1<<20)
	for i, sec := range secs {
		var crc uint64
		for off := uint64(0); off < sec.Len; {
			n := uint64(len(buf))
			if rest := sec.Len - off; rest < n {
				n = rest
			}
			if _, err := r.ReadAt(buf[:n], int64(sec.Off+off)); err != nil {
				return s.errFormat("reading section %d: %v", i, err)
			}
			crc = crc64.Update(crc, crcTable, buf[:n])
			off += n
		}
		if crc != sec.CRC {
			return s.errChecksum(i)
		}
	}
	return nil
}

// OpenMode selects how Open gets the file's bytes.
type OpenMode int

const (
	// ModeAuto maps the file when the platform supports it and falls
	// back to a buffered read.
	ModeAuto OpenMode = iota
	// ModeMmap requires the zero-copy mapping; Open fails where mmap
	// is unavailable.
	ModeMmap
	// ModeBuffered always reads the file into memory.
	ModeBuffered
)

// OpenOptions tunes Open, Read, and Decode.
type OpenOptions struct {
	// Mode selects mmap vs buffered read (Open only).
	Mode OpenMode
	// NoVerify skips the per-section checksum verification. The
	// default (verify) reads every page once at open; skipping it
	// makes open O(offsets) at the cost of deferring corruption
	// detection to first use.
	NoVerify bool
}

// File is one parsed section file: the raw bytes, the validated
// section table, and ownership of whatever backs the bytes (an mmap,
// or nothing for heap buffers). Close releases the backing; a File is
// itself an io.Closer, so callers that alias Data can hand ownership
// to whatever outlives them.
type File struct {
	// Data holds the complete file, header included. Views into it
	// stay valid until Close.
	Data []byte
	// Secs is the validated section table.
	Secs []Section

	schema  *Schema
	backing io.Closer
}

// Header returns the file's header bytes.
func (f *File) Header() []byte { return f.Data[:f.schema.HeaderSize] }

// Section returns section i's payload bytes, aliasing Data.
func (f *File) Section(i int) []byte {
	s := f.Secs[i]
	return f.Data[s.Off : s.Off+s.Len]
}

// Close releases the backing storage (an munmap for mapped files;
// a no-op otherwise). Safe to call more than once.
func (f *File) Close() error {
	b := f.backing
	f.backing = nil
	if b != nil {
		return b.Close()
	}
	return nil
}

// Decode parses and (unless opts.NoVerify) checksum-verifies data,
// which must hold a complete file. backing, when non-nil, owns data's
// memory; it is closed on error, and on success the returned File's
// Close releases it. Decode never panics on corrupt input.
func (s *Schema) Decode(data []byte, backing io.Closer, opts OpenOptions) (*File, error) {
	fail := func(err error) (*File, error) {
		if backing != nil {
			backing.Close()
		}
		return nil, err
	}
	secs, err := s.Parse(data, int64(len(data)))
	if err != nil {
		return fail(err)
	}
	if !opts.NoVerify {
		if err := s.VerifySections(data, secs); err != nil {
			return fail(err)
		}
	}
	return &File{Data: data, Secs: secs, schema: s, backing: backing}, nil
}

// mmapBacking releases a mapping when the File is closed.
type mmapBacking struct{ unmap func() error }

func (b *mmapBacking) Close() error { return b.unmap() }

// Open opens a section file, zero-copy via mmap when the platform
// allows (Data aliases the file pages; Close unmaps them), falling
// back to a buffered read into an 8-aligned buffer under ModeAuto.
func (s *Schema) Open(path string, opts OpenOptions) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < int64(s.HeaderSize) {
		f.Close()
		return nil, s.errFormat("%s is %d bytes", path, size)
	}

	if opts.Mode != ModeBuffered && mmapSupported {
		data, unmap, merr := mmapFile(f, int(size))
		if merr == nil {
			f.Close() // the mapping outlives the descriptor
			return s.Decode(data, &mmapBacking{unmap: unmap}, opts)
		}
		if opts.Mode == ModeMmap {
			f.Close()
			return nil, fmt.Errorf("secfile: mmap %s: %w", path, merr)
		}
	} else if opts.Mode == ModeMmap {
		f.Close()
		return nil, fmt.Errorf("secfile: mmap %s: %w", path, errors.ErrUnsupported)
	}

	defer f.Close()
	buf := AlignedBytes(int(size))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return s.Decode(buf, nil, opts)
}

// Read decodes a section-file stream (the buffered path gzip-wrapped
// files use). The header is read first so the exact remaining size is
// known; the buffer then grows geometrically toward it, so a hostile
// header claiming a huge file fails at the stream's real end instead
// of forcing one giant allocation up front.
func (s *Schema) Read(r io.Reader, opts OpenOptions) (*File, error) {
	hdr := make([]byte, s.HeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, s.errFormat("%v", err)
	}
	secs, err := s.Parse(hdr, -1)
	if err != nil {
		return nil, err
	}
	total := fileEnd(secs, s.HeaderSize)
	buf := AlignedBytes(s.HeaderSize)
	copy(buf, hdr)
	for have := uint64(s.HeaderSize); have < total; {
		next := have * 2
		if next < 1<<24 {
			next = 1 << 24
		}
		if next > total {
			next = total
		}
		grown := AlignedBytes(int(next))
		copy(grown, buf[:have])
		if _, err := io.ReadFull(r, grown[have:]); err != nil {
			return nil, s.errFormat("truncated at byte %d of %d: %v", have, total, err)
		}
		buf = grown
		have = next
	}
	return s.Decode(buf, nil, opts)
}

// SaveAtomic writes a file via write to a temp file in path's
// directory, fsyncs it, renames it over path, and best-effort fsyncs
// the directory, so readers never see a half-written file and a crash
// never corrupts an existing one. (The data fsync before the rename
// matters: a journaled rename over unflushed blocks could otherwise
// survive a crash as a truncated destination, destroying a previous
// good file.)
func SaveAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Bytes views s's elements as raw bytes in native order. T must be a
// fixed-size type with no pointers (the scalar arrays sections hold).
func Bytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// View aliases count Ts at data[off:] when the base pointer meets T's
// alignment (mmap bases and AlignedBytes buffers always do) and copies
// otherwise, so decoding never performs a misaligned load. The caller
// must have bounds-checked off and count against data (Parse's
// geometry pinning does exactly that).
func View[T any](data []byte, off uint64, count int) []T {
	if count == 0 {
		return []T{}
	}
	var zero T
	size := uint64(unsafe.Sizeof(zero))
	p := unsafe.Pointer(&data[off])
	if uintptr(p)%uintptr(unsafe.Alignof(zero)) == 0 {
		return unsafe.Slice((*T)(p), count)
	}
	out := make([]T, count)
	copy(Bytes(out), data[off:off+uint64(count)*size])
	return out
}

// AlignedBytes returns an n-byte slice whose base address is 8-byte
// aligned (it views a []uint64), so decoders can alias 8-byte-wide
// sections without copying even on the buffered path.
func AlignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}
