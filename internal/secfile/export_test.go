package secfile

// SwapHostEndian flips the byte-order tag Write stamps and Parse
// accepts, so tests on little-endian hardware can produce and consume
// synthetic big-endian-tagged files (and vice versa). The returned
// func restores the real tag; callers must t.Cleanup or defer it, and
// must not run in parallel with other codec users.
func SwapHostEndian() (restore func()) {
	old := hostEndian
	hostEndian = 1 - old
	return func() { hostEndian = old }
}

// ForeignEndianTag is the tag SwapHostEndian switches to: the byte
// order this process does not have.
func ForeignEndianTag() byte { return 1 - NativeEndian }
