//go:build unix

package secfile

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform has the zero-copy open
// path.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The returned release
// function unmaps; the caller may close f immediately (the mapping
// keeps the file pages alive).
func mmapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
