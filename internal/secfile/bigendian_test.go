// Big-endian decode-path tests for the two production formats, driven
// through the shared codec's byte-order hook: SwapHostEndian makes the
// codec stamp and accept the foreign tag, so a little-endian machine
// can both produce and consume synthetic big-endian-tagged files. This
// is the only way the tag-mismatch paths get exercised on the hardware
// CI actually has. Lives in secfile's external test package so it can
// import the formats without a cycle.
package secfile_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gstore"
	"repro/internal/secfile"
	"repro/internal/serve"
	"repro/internal/topk"
)

// writeForeignGraph renders a graph file carrying the non-native
// byte-order tag.
func writeForeignGraph(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	restore := secfile.SwapHostEndian()
	defer restore()
	var buf bytes.Buffer
	if err := gstore.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGstoreByteOrderTag(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 5, Dst: 0}})
	defer g.Close()
	data := writeForeignGraph(t, g)
	if data[12] != secfile.ForeignEndianTag() {
		t.Fatalf("tag byte %d, want the foreign tag %d", data[12], secfile.ForeignEndianTag())
	}

	// A machine of the writer's byte order (simulated by keeping the
	// swap active) decodes the file fully.
	restore := secfile.SwapHostEndian()
	g2, err := gstore.Decode(bytes.Clone(data), nil, gstore.OpenOptions{Validate: true})
	restore()
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("foreign-order round trip: %d/%d, want %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}

	// This machine rejects it with the format's own endian identity and
	// the codec's, on both decode paths.
	if _, err := gstore.Decode(bytes.Clone(data), nil, gstore.OpenOptions{}); !errors.Is(err, gstore.ErrEndian) || !errors.Is(err, secfile.ErrEndian) {
		t.Fatalf("Decode: %v, want gstore.ErrEndian and secfile.ErrEndian", err)
	}
	if _, err := gstore.Read(bytes.NewReader(data), gstore.OpenOptions{}); !errors.Is(err, gstore.ErrEndian) {
		t.Fatalf("Read: %v, want gstore.ErrEndian", err)
	}
}

func TestSnapshotByteOrderTag(t *testing.T) {
	g := graph.FromEdges(8, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	defer g.Close()
	ranks := make([]float64, 8)
	for i := range ranks {
		ranks[i] = 1 / float64(i+2)
	}
	s := &serve.Snapshot{
		Ranks:   ranks,
		Top:     topk.Top(ranks, 4),
		MaxK:    4,
		Epoch:   2,
		Seed:    9,
		Engine:  serve.EngineExact,
		BuiltAt: time.Unix(1700000000, 0),
		Stats:   graph.Stats{NumVertices: 8, NumEdges: 2},
	}

	restore := secfile.SwapHostEndian()
	var buf bytes.Buffer
	err := serve.WriteSnapshot(&buf, s)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if data[12] != secfile.ForeignEndianTag() {
		t.Fatalf("tag byte %d, want the foreign tag %d", data[12], secfile.ForeignEndianTag())
	}

	restore = secfile.SwapHostEndian()
	s2, err := serve.DecodeSnapshot(bytes.Clone(data), g)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Epoch != s.Epoch || len(s2.Ranks) != len(s.Ranks) || s2.Engine != s.Engine {
		t.Fatalf("foreign-order round trip: epoch %d engine %s n %d", s2.Epoch, s2.Engine, len(s2.Ranks))
	}

	// The snapshot format folds foreign byte order into its format
	// error (a snapshot is a cache: reject and rebuild), still carrying
	// the codec's endian identity.
	if _, err := serve.DecodeSnapshot(bytes.Clone(data), g); !errors.Is(err, serve.ErrSnapshotFormat) || !errors.Is(err, secfile.ErrEndian) {
		t.Fatalf("DecodeSnapshot: %v, want serve.ErrSnapshotFormat and secfile.ErrEndian", err)
	}
}
