//go:build !unix

package secfile

import (
	"errors"
	"os"
)

// mmapSupported: no zero-copy open on this platform; Open falls back
// to the buffered read under ModeAuto and fails under ModeMmap.
const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, errors.ErrUnsupported
}
