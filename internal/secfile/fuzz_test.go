package secfile

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false, "regenerate the checked-in FuzzSecfile seed corpus")

// corpusSeeds builds the canonical fuzz seeds: a valid file, a
// truncated one, a hostile header claiming a huge section, and a valid
// geometry whose payload fails its checksum.
func corpusSeeds(t testing.TB) map[string][]byte {
	s := testSchema()
	enc := func(a, b []byte) []byte {
		hdr := s.NewHeader()
		binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(a)))
		binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(b)))
		var buf bytes.Buffer
		if err := s.Write(&buf, hdr, [][]byte{a, b}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := enc([]byte("seed section one"), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	truncated := bytes.Clone(valid)[:len(valid)-7]
	hostile := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(hostile[16:24], 1<<60)
	badsum := bytes.Clone(valid)
	badsum[len(badsum)-1] ^= 0xff
	return map[string][]byte{
		"valid":          valid,
		"truncated":      truncated,
		"hostile-header": hostile,
		"bad-checksum":   badsum,
	}
}

// TestFuzzCorpus pins the checked-in seed corpus under
// testdata/fuzz/FuzzSecfile to corpusSeeds; -update-corpus regenerates
// it.
func TestFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSecfile")
	seeds := corpusSeeds(t)
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, data := range seeds {
		path := filepath.Join(dir, name)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if *updateCorpus {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with -update-corpus): %v", err)
		}
		if string(got) != body {
			t.Errorf("seed corpus entry %s drifted from corpusSeeds (regenerate with -update-corpus)", name)
		}
	}
}

// FuzzSecfile throws arbitrary bytes at both decode paths. Invariants:
// neither Decode nor Read may panic; they agree on validity for the
// same input; and anything that decodes re-encodes into a file that
// decodes to the same sections.
func FuzzSecfile(f *testing.F) {
	for _, data := range corpusSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := testSchema()
		file, err := s.Decode(bytes.Clone(data), nil, OpenOptions{})
		rfile, rerr := s.Read(bytes.NewReader(data), OpenOptions{})
		if (err == nil) != (rerr == nil) {
			t.Fatalf("Decode err=%v but Read err=%v on identical input", err, rerr)
		}
		if err != nil {
			return
		}
		for i := range file.Secs {
			if !bytes.Equal(file.Section(i), rfile.Section(i)) {
				t.Fatalf("Decode and Read disagree on section %d", i)
			}
		}
		var buf bytes.Buffer
		parts := [][]byte{bytes.Clone(file.Section(0)), bytes.Clone(file.Section(1))}
		if err := s.Write(&buf, bytes.Clone(file.Header()), parts); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		re, err := s.Decode(buf.Bytes(), nil, OpenOptions{})
		if err != nil {
			t.Fatalf("re-encoded file does not decode: %v", err)
		}
		if !bytes.Equal(re.Section(0), file.Section(0)) || !bytes.Equal(re.Section(1), file.Section(1)) {
			t.Fatal("sections do not survive a re-encode round trip")
		}
	})
}
