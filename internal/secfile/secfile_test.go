package secfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

// testSchema is a minimal two-section format exercising every codec
// path: section byte lengths live as u64 scalars at offsets 16 and 24,
// the table at 32, sections after the 96-byte header.
func testSchema() *Schema {
	return &Schema{
		Magic:       "SFTEST01",
		Version:     1,
		HeaderSize:  96,
		TableOff:    32,
		NumSections: 2,
		SectionSizes: func(hdr []byte) ([]uint64, error) {
			a := binary.LittleEndian.Uint64(hdr[16:24])
			b := binary.LittleEndian.Uint64(hdr[24:32])
			if a > 1<<20 || b > 1<<20 {
				return nil, fmt.Errorf("implausible section sizes %d, %d", a, b)
			}
			return []uint64{a, b}, nil
		},
	}
}

// encode writes a testSchema file holding the two payloads.
func encode(t *testing.T, s *Schema, a, b []byte) []byte {
	t.Helper()
	hdr := s.NewHeader()
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(a)))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(b)))
	var buf bytes.Buffer
	if err := s.Write(&buf, hdr, [][]byte{a, b}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	s := testSchema()
	a := []byte("first section payload")       // 21 bytes: exercises padding
	b := bytes.Repeat([]byte{0xab, 0xcd}, 100) // 200 bytes
	data := encode(t, s, a, b)

	if want := s.FileSize([]uint64{uint64(len(a)), uint64(len(b))}); uint64(len(data)) != want {
		t.Fatalf("encoded %d bytes, FileSize says %d", len(data), want)
	}
	f, err := s.Decode(data, nil, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !bytes.Equal(f.Section(0), a) || !bytes.Equal(f.Section(1), b) {
		t.Fatal("sections do not round-trip")
	}
	if got := f.Header(); len(got) != s.HeaderSize || !s.IsMagic(got) {
		t.Fatalf("bad header: %d bytes", len(got))
	}
	// The layout is canonical: second section starts 8-aligned.
	if f.Secs[1].Off%8 != 0 || f.Secs[1].Off < f.Secs[0].Off+f.Secs[0].Len {
		t.Fatalf("section 1 at %d, section 0 is %d+%d", f.Secs[1].Off, f.Secs[0].Off, f.Secs[0].Len)
	}
	// Trailing padding brings the file to an aligned end.
	if len(data)%8 != 0 {
		t.Fatalf("file end %d not aligned", len(data))
	}
}

func TestEmptySections(t *testing.T) {
	s := testSchema()
	data := encode(t, s, nil, nil)
	f, err := s.Decode(data, nil, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(f.Section(0)) != 0 || len(f.Section(1)) != 0 {
		t.Fatal("empty sections round-trip non-empty")
	}
	if len(data) != s.HeaderSize {
		t.Fatalf("empty file is %d bytes, want the %d-byte header", len(data), s.HeaderSize)
	}
}

func TestParseRejects(t *testing.T) {
	s := testSchema()
	good := encode(t, s, []byte("aaaa"), []byte("bbbbbbbb"))

	mutate := func(fn func(d []byte)) []byte {
		d := bytes.Clone(good)
		fn(d)
		return d
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short header", good[:s.HeaderSize-1], ErrFormat},
		{"bad magic", mutate(func(d []byte) { d[0] = 'X' }), ErrFormat},
		{"bad version", mutate(func(d []byte) { binary.LittleEndian.PutUint32(d[8:12], 99) }), ErrFormat},
		{"foreign endian", mutate(func(d []byte) { d[12] = ForeignEndianTag() }), ErrEndian},
		{"implausible size", mutate(func(d []byte) { binary.LittleEndian.PutUint64(d[16:24], 1<<40) }), ErrFormat},
		{"crafted table offset", mutate(func(d []byte) { binary.LittleEndian.PutUint64(d[s.TableOff:], 0) }), ErrFormat},
		{"crafted table length", mutate(func(d []byte) { binary.LittleEndian.PutUint64(d[s.TableOff+8:], 1<<19) }), ErrFormat},
		{"truncated payload", good[:len(good)-8], ErrFormat},
		{"corrupt payload", mutate(func(d []byte) { d[len(d)-1] ^= 0xff }), ErrChecksum},
	}
	for _, tc := range cases {
		if _, err := s.Decode(tc.data, nil, OpenOptions{}); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// NoVerify admits the corrupt payload (geometry is still pinned).
	corrupt := mutate(func(d []byte) { d[len(d)-1] ^= 0xff })
	if _, err := s.Decode(corrupt, nil, OpenOptions{NoVerify: true}); err != nil {
		t.Fatalf("NoVerify rejected corrupt payload: %v", err)
	}
}

func TestSchemaErrorIdentities(t *testing.T) {
	s := testSchema()
	s.ErrFormat = errors.New("test: format")
	s.ErrChecksum = errors.New("test: checksum")
	s.ErrEndian = errors.New("test: endian")
	good := encode(t, s, []byte("aaaa"), nil)

	bad := bytes.Clone(good)
	bad[0] = 'X'
	if _, err := s.Decode(bad, nil, OpenOptions{}); !errors.Is(err, s.ErrFormat) || !errors.Is(err, ErrFormat) {
		t.Errorf("format error missing an identity: %v", err)
	}
	bad = bytes.Clone(good)
	bad[12] = ForeignEndianTag()
	if _, err := s.Decode(bad, nil, OpenOptions{}); !errors.Is(err, s.ErrEndian) || !errors.Is(err, ErrEndian) {
		t.Errorf("endian error missing an identity: %v", err)
	}
	bad = bytes.Clone(good)
	bad[s.HeaderSize] ^= 0xff
	if _, err := s.Decode(bad, nil, OpenOptions{}); !errors.Is(err, s.ErrChecksum) || !errors.Is(err, ErrChecksum) {
		t.Errorf("checksum error missing an identity: %v", err)
	}

	// A schema with no ErrEndian of its own falls back to its ErrFormat.
	s2 := testSchema()
	s2.ErrFormat = errors.New("test: format only")
	if _, err := s2.Decode(bytes.Clone(bad), nil, OpenOptions{}); err == nil {
		t.Fatal("corrupt file accepted")
	}
	foreign := encode(t, s2, nil, nil)
	foreign[12] = ForeignEndianTag()
	if _, err := s2.Decode(foreign, nil, OpenOptions{}); !errors.Is(err, s2.ErrFormat) || !errors.Is(err, ErrEndian) {
		t.Errorf("fallback endian error missing an identity")
	}
}

// closeTracker records whether Decode released the backing on error.
type closeTracker struct{ closed bool }

func (c *closeTracker) Close() error { c.closed = true; return nil }

func TestDecodeClosesBackingOnError(t *testing.T) {
	s := testSchema()
	data := encode(t, s, []byte("aaaa"), nil)
	data[0] = 'X'
	c := &closeTracker{}
	if _, err := s.Decode(data, c, OpenOptions{}); err == nil {
		t.Fatal("corrupt file accepted")
	}
	if !c.closed {
		t.Fatal("backing not closed on decode error")
	}

	// And on success it is held until File.Close.
	good := encode(t, s, []byte("aaaa"), nil)
	c = &closeTracker{}
	f, err := s.Decode(good, c, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.closed {
		t.Fatal("backing closed prematurely")
	}
	f.Close()
	if !c.closed {
		t.Fatal("File.Close did not release the backing")
	}
	if err := f.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
}

func TestOpenModes(t *testing.T) {
	s := testSchema()
	a, b := bytes.Repeat([]byte{1}, 1000), bytes.Repeat([]byte{2}, 77)
	path := filepath.Join(t.TempDir(), "t.sf")
	err := SaveAtomic(path, func(w io.Writer) error {
		hdr := s.NewHeader()
		binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(a)))
		binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(b)))
		return s.Write(w, hdr, [][]byte{a, b})
	})
	if err != nil {
		t.Fatal(err)
	}

	modes := []OpenMode{ModeAuto, ModeBuffered}
	if MmapSupported {
		modes = append(modes, ModeMmap)
	}
	for _, mode := range modes {
		f, err := s.Open(path, OpenOptions{Mode: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if !bytes.Equal(f.Section(0), a) || !bytes.Equal(f.Section(1), b) {
			t.Fatalf("mode %d: sections do not round-trip", mode)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("mode %d close: %v", mode, err)
		}
	}

	if !MmapSupported {
		if _, err := s.Open(path, OpenOptions{Mode: ModeMmap}); err == nil {
			t.Fatal("ModeMmap succeeded without mmap support")
		}
	}
	if _, err := s.Open(filepath.Join(t.TempDir(), "absent"), OpenOptions{}); err == nil {
		t.Fatal("opened a missing file")
	}
	short := filepath.Join(t.TempDir(), "short.sf")
	os.WriteFile(short, []byte("SFTEST01"), 0o644)
	if _, err := s.Open(short, OpenOptions{}); !errors.Is(err, ErrFormat) {
		t.Fatalf("short file: %v", err)
	}
}

func TestReadStream(t *testing.T) {
	s := testSchema()
	a, b := bytes.Repeat([]byte{7}, 123), bytes.Repeat([]byte{9}, 456)
	data := encode(t, s, a, b)

	f, err := s.Read(bytes.NewReader(data), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !bytes.Equal(f.Section(0), a) || !bytes.Equal(f.Section(1), b) {
		t.Fatal("sections do not round-trip through Read")
	}

	// A truncated stream is a format error, not a hang or a panic.
	if _, err := s.Read(bytes.NewReader(data[:len(data)-10]), OpenOptions{}); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated stream: %v", err)
	}
	if _, err := s.Read(bytes.NewReader(data[:4]), OpenOptions{}); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated header: %v", err)
	}
}

func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := SaveAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}

	// A failed write neither clobbers the existing file nor leaves a
	// temp file behind.
	boom := errors.New("boom")
	if err := SaveAtomic(path, func(w io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("write error not propagated: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "payload" {
		t.Fatalf("failed save clobbered the file: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("%d directory entries after failed save, want 1", len(ents))
	}
}

func TestBytesAndView(t *testing.T) {
	vals := []uint64{1, 2, 3}
	raw := Bytes(vals)
	if len(raw) != 24 {
		t.Fatalf("Bytes: %d bytes for 3 uint64s", len(raw))
	}
	raw[0] = 42 // aliases
	if vals[0] != 42 {
		t.Fatal("Bytes does not alias")
	}
	if Bytes([]uint64(nil)) != nil {
		t.Fatal("Bytes(nil) != nil")
	}

	// Aligned base: View aliases.
	buf := AlignedBytes(32)
	if uintptr(unsafe.Pointer(&buf[0]))%8 != 0 {
		t.Fatal("AlignedBytes base not 8-aligned")
	}
	v := View[uint64](buf, 8, 2)
	v[0] = 0xdead
	if binary.NativeEndian.Uint64(buf[8:16]) != 0xdead {
		t.Fatal("aligned View does not alias")
	}

	// Misaligned base: View copies instead of faulting.
	un := buf[1:17]
	u := View[uint64](un, 0, 2)
	if len(u) != 2 {
		t.Fatalf("misaligned View: %d elements", len(u))
	}
	if len(View[uint64](buf, 0, 0)) != 0 {
		t.Fatal("zero-count View not empty")
	}
	if AlignedBytes(0) != nil {
		t.Fatal("AlignedBytes(0) != nil")
	}
}

func TestRegistry(t *testing.T) {
	s := testSchema()
	Register(Info{
		Name:         "codec test format",
		Schema:       s,
		SectionNames: []string{"a", "b"},
	})
	info, ok := Lookup([]byte("SFTEST01 and trailing bytes"))
	if !ok || info.Name != "codec test format" {
		t.Fatalf("Lookup: %v, %v", info, ok)
	}
	if _, ok := Lookup([]byte("UNKNOWN0")); ok {
		t.Fatal("Lookup matched an unregistered magic")
	}
	found := false
	for _, i := range Registered() {
		if i.Schema.Magic == s.Magic {
			found = true
		}
	}
	if !found {
		t.Fatal("Registered() omits the test format")
	}
}

func BenchmarkWrite(b *testing.B) {
	s := testSchema()
	a := bytes.Repeat([]byte{3}, 1<<19)
	c := bytes.Repeat([]byte{5}, 1<<18)
	hdr := s.NewHeader()
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(a)))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(c)))
	b.SetBytes(int64(s.FileSize([]uint64{uint64(len(a)), uint64(len(c))})))
	b.ReportAllocs()
	for range b.N {
		if err := s.Write(io.Discard, bytes.Clone(hdr), [][]byte{a, c}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	s := testSchema()
	var buf bytes.Buffer
	hdr := s.NewHeader()
	a := bytes.Repeat([]byte{3}, 1<<19)
	c := bytes.Repeat([]byte{5}, 1<<18)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(a)))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(c)))
	if err := s.Write(&buf, hdr, [][]byte{a, c}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for range b.N {
		f, err := s.Decode(data, nil, OpenOptions{})
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}
