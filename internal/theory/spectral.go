package theory

import (
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// SecondEigenvalueEstimate estimates |λ₂(Q)|, the modulus of the second
// eigenvalue of the PageRank transition matrix Q, by deflated power
// iteration: start from a random vector orthogonal to the all-ones
// left eigenvector, apply Q repeatedly, and measure the asymptotic
// per-step contraction. The paper's Lemma 14 uses the classical fact
// (Haveliwala & Kamvar) that |λ₂(Q)| ≤ 1 − pT; tests verify the
// estimate respects that bound.
//
// iters controls the power iterations (≥ 20 recommended); the result
// is a lower estimate of |λ₂| (exact in the limit).
func SecondEigenvalueEstimate(g *graph.Graph, pT float64, iters int, seed uint64) (float64, error) {
	n := g.NumVertices()
	if n < 2 {
		return 0, errors.New("theory: need at least 2 vertices")
	}
	if pT <= 0 || pT > 1 {
		return 0, errors.New("theory: pT out of (0,1]")
	}
	if iters < 2 {
		iters = 2
	}
	// Q acts on distributions (column-stochastic in the paper's
	// convention): Qx = (1-pT)·Px + pT·sum(x)·u. For vectors with
	// sum(x) = 0 this reduces to (1-pT)·Px, and the all-ones row vector
	// is the left eigenvector for λ₁ = 1, so zero-sum vectors span the
	// complement of the principal eigenspace.
	r := rng.Derive(seed, 0x57EC)
	x := make([]float64, n)
	var sum float64
	for i := range x {
		x[i] = r.Float64() - 0.5
		sum += x[i]
	}
	for i := range x {
		x[i] -= sum / float64(n) // project out the principal direction
	}
	normalize(x)
	var lastRatio float64
	for it := 0; it < iters; it++ {
		px := stepP(g, x)
		// Re-project: numerical drift can reintroduce a sum component.
		var s float64
		for _, v := range px {
			s += v
		}
		for i := range px {
			px[i] = (1-pT)*(px[i]-s/float64(n)) + 0 // pT·u·sum(x)=0 for zero-sum x
		}
		lastRatio = norm(px)
		if lastRatio == 0 {
			return 0, nil // x hit the kernel: λ₂ indistinguishable from 0
		}
		normalize(px)
		x = px
	}
	return lastRatio, nil
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := norm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
