package theory

import (
	"math"
	"testing"

	"repro/internal/frogwild"
	"repro/internal/graph/gen"
	"repro/internal/pagerank"
	"repro/internal/topk"
)

// TestLemma16ProcessEquivalence verifies the paper's Lemma 16: the
// fixed-step teleporting walk (Process 11) and the truncated-geometric
// plain walk (Process 15) produce identical sampling distributions.
func TestLemma16ProcessEquivalence(t *testing.T) {
	cases := []struct {
		name string
		n    int
		seed uint64
	}{
		{"powerlaw", 200, 1},
		{"powerlaw2", 97, 5},
	}
	for _, c := range cases {
		g, err := gen.PowerLaw(gen.PowerLawConfig{
			N: c.n, MeanOutDeg: 5, DegExponent: 2.1, PrefExponent: 1, Seed: c.seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, steps := range []int{0, 1, 3, 8} {
			a, err := WalkDistribution(g, steps, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			b, err := TruncatedGeometricDistribution(g, steps, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			for v := range a {
				if math.Abs(a[v]-b[v]) > 1e-12 {
					t.Fatalf("%s t=%d: processes differ at vertex %d: %v vs %v",
						c.name, steps, v, a[v], b[v])
				}
			}
		}
	}
	// Also on the cycle, where mixing is slow and the tail term
	// matters.
	cyc := gen.Cycle(10)
	a, _ := WalkDistribution(cyc, 5, 0.15)
	b, _ := TruncatedGeometricDistribution(cyc, 5, 0.15)
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-12 {
			t.Fatalf("cycle: processes differ at %d", v)
		}
	}
}

// TestLemma14ContrastBound verifies χ²(π_t; π) ≤ ((1−pT)/pT)(1−pT)^t.
func TestLemma14ContrastBound(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 300, MeanOutDeg: 6, DegExponent: 2.0, PrefExponent: 1.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	const pT = 0.15
	for _, steps := range []int{0, 1, 2, 4, 8, 16} {
		pit, err := WalkDistribution(g, steps, pT)
		if err != nil {
			t.Fatal(err)
		}
		chi2 := topk.ChiSquaredContrast(pit, exact.Rank)
		bound := (1 - pT) / pT * math.Pow(1-pT, float64(steps))
		if chi2 > bound+1e-9 {
			t.Fatalf("t=%d: χ² = %v exceeds Lemma 14 bound %v", steps, chi2, bound)
		}
	}
}

// TestMixingLossLemma17 verifies the Lemma 17 captured-mass bound:
// µk(π_t) ≥ µk(π) − sqrt((1−pT)^{t+1}/pT).
func TestMixingLossLemma17(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 400, MeanOutDeg: 8, DegExponent: 2.0, PrefExponent: 1.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	const pT, k = 0.15, 30
	opt := topk.OptimalMass(exact.Rank, k)
	for _, steps := range []int{1, 2, 4, 8} {
		pit, err := WalkDistribution(g, steps, pT)
		if err != nil {
			t.Fatal(err)
		}
		captured := topk.CapturedMass(exact.Rank, pit, k)
		loss := math.Sqrt(math.Pow(1-pT, float64(steps+1)) / pT)
		if captured < opt-loss-1e-9 {
			t.Fatalf("t=%d: captured %v < µk %v − loss %v", steps, captured, opt, loss)
		}
	}
}

// TestWalkDistributionConvergesToPageRank: Q^t·u → π as t grows.
func TestWalkDistributionConvergesToPageRank(t *testing.T) {
	g, err := gen.PowerLaw(gen.LiveJournalLike(300, 9))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, steps := range []int{1, 4, 16, 64} {
		pit, err := WalkDistribution(g, steps, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		d := topk.L1Distance(pit, exact.Rank)
		if d > prev+1e-12 {
			t.Fatalf("L1 to π increased at t=%d: %v > %v", steps, d, prev)
		}
		prev = d
	}
	if prev > 1e-3 {
		t.Errorf("64 steps still %v away from π in L1", prev)
	}
}

// TestSerialWalkMatchesAnalyticDistribution: the Monte-Carlo serial
// reference must sample from the analytic truncated-geometric
// distribution (χ² goodness-of-fit, loose bound).
func TestSerialWalkMatchesAnalyticDistribution(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 100, MeanOutDeg: 5, DegExponent: 2.1, PrefExponent: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const walkers, steps = 400000, 5
	counts, err := frogwild.SerialWalk(g, walkers, steps, 0.15, 13)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TruncatedGeometricDistribution(g, steps, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// Pearson χ² statistic against expected counts; dof ≈ 99. A sound
	// sampler stays below ~200 with overwhelming probability.
	chi2 := 0.0
	for v, c := range counts {
		expected := want[v] * walkers
		if expected < 1 {
			continue
		}
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 250 {
		t.Fatalf("serial walk χ² = %v against analytic distribution (dof≈99)", chi2)
	}
}

// TestSecondEigenvalueBound verifies |λ₂(Q)| ≤ 1 − pT (Haveliwala &
// Kamvar; used by Lemma 14) on several graphs and teleport values.
func TestSecondEigenvalueBound(t *testing.T) {
	graphs := []struct {
		name string
		n    int
	}{{"powerlaw", 200}, {"powerlaw-big", 600}}
	for _, gc := range graphs {
		g, err := gen.PowerLaw(gen.PowerLawConfig{
			N: gc.n, MeanOutDeg: 6, DegExponent: 2.1, PrefExponent: 1, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, pT := range []float64{0.15, 0.5, 0.9} {
			lam, err := SecondEigenvalueEstimate(g, pT, 60, 7)
			if err != nil {
				t.Fatal(err)
			}
			if lam > 1-pT+1e-9 {
				t.Errorf("%s pT=%v: |λ₂| estimate %v exceeds 1-pT = %v", gc.name, pT, lam, 1-pT)
			}
			if lam < 0 {
				t.Errorf("negative eigenvalue estimate %v", lam)
			}
		}
	}
}

// TestSecondEigenvalueTightOnCycle: on the directed n-cycle, P's
// spectrum lies on the unit circle, so |λ₂(Q)| = 1 − pT exactly — the
// bound is tight.
func TestSecondEigenvalueTightOnCycle(t *testing.T) {
	g := gen.Cycle(16)
	lam, err := SecondEigenvalueEstimate(g, 0.15, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-0.85) > 0.01 {
		t.Errorf("cycle |λ₂| = %v, want ≈ 0.85 (tight bound)", lam)
	}
}

func TestSecondEigenvalueValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := SecondEigenvalueEstimate(g, 0, 10, 1); err == nil {
		t.Error("pT=0 should error")
	}
	small := gen.Cycle(2)
	if _, err := SecondEigenvalueEstimate(small, 0.15, 10, 1); err != nil {
		t.Errorf("n=2 should work: %v", err)
	}
}
