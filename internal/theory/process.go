package theory

// This file computes walk distributions analytically (by dense
// iteration of the transition operator), so tests can verify the
// paper's process-equivalence and convergence lemmas exactly:
//
//   - Lemma 16: the fixed-step walk with teleportation (Process 11,
//     distribution Q^t·u) equals the truncated-geometric walk without
//     teleportation (Process 15, equation (5)).
//   - Lemma 14: χ²(π_t; π) ≤ ((1−pT)/pT)·(1−pT)^t.
//
// These run in O(t·m) and are intended for small graphs in tests and
// diagnostics, not production use.

import (
	"errors"

	"repro/internal/graph"
)

// stepP applies the plain transition operator P (uniform over
// out-edges) to distribution x. Dangling vertices hold their mass (the
// callers below require dout > 0 anyway).
func stepP(g *graph.Graph, x []float64) []float64 {
	n := g.NumVertices()
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		outs := g.OutNeighbors(graph.VertexID(v))
		if len(outs) == 0 {
			next[v] += x[v]
			continue
		}
		w := x[v] / float64(len(outs))
		for _, d := range outs {
			next[d] += w
		}
	}
	return next
}

// WalkDistribution returns Q^t·u — the distribution of a walker that
// starts uniform and follows the teleporting chain Q for exactly t
// steps (the paper's Process 11).
func WalkDistribution(g *graph.Graph, t int, pT float64) ([]float64, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("theory: empty graph")
	}
	if pT < 0 || pT > 1 {
		return nil, errors.New("theory: pT out of [0,1]")
	}
	uniform := 1 / float64(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = uniform
	}
	for step := 0; step < t; step++ {
		px := stepP(g, x)
		for i := range px {
			x[i] = (1-pT)*px[i] + pT*uniform
		}
	}
	return x, nil
}

// TruncatedGeometricDistribution returns the sampling distribution of
// the paper's Process 15 via equation (5):
//
//	π'_t = Σ_{τ=0..t} pT(1−pT)^τ P^τ u + (1−pT)^{t+1} P^t u
//
// — a walker that follows the plain chain P for min(Geom(pT), t)
// steps from a uniform start. Lemma 16 proves this equals
// WalkDistribution(g, t, pT); TestLemma16 verifies our implementations
// agree to machine precision.
func TruncatedGeometricDistribution(g *graph.Graph, t int, pT float64) ([]float64, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("theory: empty graph")
	}
	if pT < 0 || pT > 1 {
		return nil, errors.New("theory: pT out of [0,1]")
	}
	uniform := 1 / float64(n)
	pu := make([]float64, n) // P^τ u
	for i := range pu {
		pu[i] = uniform
	}
	out := make([]float64, n)
	coeff := pT // pT(1-pT)^τ at τ=0
	for tau := 0; ; tau++ {
		for i := range out {
			out[i] += coeff * pu[i]
		}
		if tau == t {
			// Add the cutoff term (1-pT)^{t+1} P^t u.
			tail := coeff / pT * (1 - pT)
			for i := range out {
				out[i] += tail * pu[i]
			}
			break
		}
		pu = stepP(g, pu)
		coeff *= 1 - pT
	}
	return out, nil
}
