package theory

import (
	"math"
	"testing"

	"repro/internal/frogwild"
	"repro/internal/graph/gen"
	"repro/internal/pagerank"
	"repro/internal/rng"
	"repro/internal/topk"
)

func rngNew(seed uint64) *rng.Stream          { return rng.New(seed) }
func rngZipf(s float64, lo, hi int) *rng.Zipf { return rng.NewZipf(s, lo, hi) }

func TestIntersectBound(t *testing.T) {
	b := IntersectBound(1000, 10, 0.01, 0.15)
	want := 1.0/1000 + 10*0.01/0.15
	if math.Abs(b-want) > 1e-12 {
		t.Errorf("bound = %v want %v", b, want)
	}
	if IntersectBound(10, 1000, 1, 0.15) != 1 {
		t.Error("bound should clamp to 1")
	}
	if IntersectBound(0, 1, 0.1, 0.15) != 1 {
		t.Error("degenerate n should clamp to 1")
	}
}

func TestIntersectBoundShrinksWithN(t *testing.T) {
	prev := 2.0
	for _, n := range []int{100, 10000, 1000000} {
		piMax := 1 / math.Sqrt(float64(n)) // Proposition 7 regime
		b := IntersectBound(n, 5, piMax, 0.15)
		if b >= prev {
			t.Errorf("bound should shrink with n: %v -> %v at n=%d", prev, b, n)
		}
		prev = b
	}
}

func TestPowerLawMaxBound(t *testing.T) {
	v, fe := PowerLawMaxBound(10000, 2.2, 0.5)
	if math.Abs(v-0.01) > 1e-12 {
		t.Errorf("value bound = %v want 0.01", v)
	}
	// γ - 1/(θ-1) = 0.5 - 1/1.2 = -1/3: vanishing failure probability.
	if math.Abs(fe-(0.5-1/1.2)) > 1e-12 {
		t.Errorf("failure exponent = %v", fe)
	}
	if fe >= 0 {
		t.Error("θ=2.2, γ=0.5 must give vanishing failure probability")
	}
}

func TestEpsilonValidation(t *testing.T) {
	good := BoundParams{PT: 0.15, T: 5, K: 100, Delta: 0.1, N: 10000, PS: 0.7, Intersect: 0.01}
	if _, err := Epsilon(good); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bads := []BoundParams{
		{PT: 0, T: 5, K: 100, Delta: 0.1, N: 1000, PS: 1},
		{PT: 0.15, T: -1, K: 100, Delta: 0.1, N: 1000, PS: 1},
		{PT: 0.15, T: 5, K: 0, Delta: 0.1, N: 1000, PS: 1},
		{PT: 0.15, T: 5, K: 100, Delta: 0, N: 1000, PS: 1},
		{PT: 0.15, T: 5, K: 100, Delta: 0.1, N: 0, PS: 1},
		{PT: 0.15, T: 5, K: 100, Delta: 0.1, N: 1000, PS: 2},
		{PT: 0.15, T: 5, K: 100, Delta: 0.1, N: 1000, PS: 1, Intersect: 2},
	}
	for i, b := range bads {
		if _, err := Epsilon(b); err == nil {
			t.Errorf("case %d should error: %+v", i, b)
		}
	}
}

func TestEpsilonMonotonicity(t *testing.T) {
	base := BoundParams{PT: 0.15, T: 6, K: 100, Delta: 0.1, N: 100000, PS: 1, Intersect: 0.001}
	eps := func(p BoundParams) float64 {
		e, err := Epsilon(p)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e0 := eps(base)

	moreWalkers := base
	moreWalkers.N *= 10
	if eps(moreWalkers) >= e0 {
		t.Error("more walkers should shrink the bound")
	}
	moreIters := base
	moreIters.T += 5
	if eps(moreIters) >= e0 {
		t.Error("more iterations should shrink the bound")
	}
	lessSync := base
	lessSync.PS = 0.1
	if eps(lessSync) <= e0 {
		t.Error("less synchronization should grow the bound")
	}
	// ps=1 kills the correlation term entirely: intersection shouldn't
	// matter.
	noCorr := base
	noCorr.Intersect = 0.9
	if math.Abs(eps(noCorr)-e0) > 1e-12 {
		t.Error("at ps=1 the intersection probability must not matter")
	}
}

func TestSufficientIterations(t *testing.T) {
	tIters := SufficientIterations(0.15, 0.05)
	if tIters <= 0 || tIters > 100 {
		t.Fatalf("implausible iteration count %d", tIters)
	}
	// Check the returned t actually achieves the target.
	mixing := math.Sqrt(math.Pow(0.85, float64(tIters+1)) / 0.15)
	if mixing > 0.05 {
		t.Errorf("t=%d gives mixing loss %v > 0.05", tIters, mixing)
	}
	// And t-1 does not (minimality).
	if tIters > 0 {
		prev := math.Sqrt(math.Pow(0.85, float64(tIters)) / 0.15)
		if prev <= 0.05 {
			t.Errorf("t=%d not minimal", tIters)
		}
	}
	if SufficientIterations(0, 0.05) != 0 || SufficientIterations(0.15, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestSufficientWalkers(t *testing.T) {
	n := SufficientWalkers(100, 0.1, 0.1)
	want := int(math.Ceil(100 / (0.1 * 0.01)))
	if n != want {
		t.Errorf("walkers = %d want %d", n, want)
	}
	if SufficientWalkers(0, 0.1, 0.1) != 0 {
		t.Error("k=0 should return 0")
	}
}

// TestBoundHoldsEmpirically runs FrogWild repeatedly and verifies the
// Theorem 1 guarantee µk(π̂N) ≥ µk(π) − ε in at least a 1−δ fraction
// of runs (with slack for the finite trial count).
func TestBoundHoldsEmpirically(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 1000, MeanOutDeg: 8, DegExponent: 2.0, PrefExponent: 1.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	piMax := 0.0
	for _, p := range exact.Rank {
		if p > piMax {
			piMax = p
		}
	}
	const (
		k       = 20
		iters   = 8
		walkers = 20000
		ps      = 0.5
		delta   = 0.2
	)
	pCap := IntersectBound(g.NumVertices(), iters, piMax, 0.15)
	eps, err := Epsilon(BoundParams{PT: 0.15, T: iters, K: k, Delta: delta, N: walkers, PS: ps, Intersect: pCap})
	if err != nil {
		t.Fatal(err)
	}
	optimal := topk.OptimalMass(exact.Rank, k)

	const trials = 10
	failures := 0
	for trial := 0; trial < trials; trial++ {
		res, err := frogwild.Run(g, frogwild.Config{
			Walkers: walkers, Iterations: iters, PS: ps, Machines: 8, Seed: uint64(100 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		captured := topk.CapturedMass(exact.Rank, res.Estimate, k)
		if captured < optimal-eps {
			failures++
		}
	}
	// Theorem 1 allows a δ = 0.2 failure rate; with 10 trials tolerate
	// up to 4 failures before declaring the bound violated.
	if failures > 4 {
		t.Errorf("bound violated in %d/%d runs (ε=%.4f, µk=%.4f)", failures, trials, eps, optimal)
	}
}

func TestFitPowerLawMLERecoversExponent(t *testing.T) {
	// Draw from a bounded Zipf with known exponent and recover it.
	r := rngNew(9)
	z := rngZipf(2.2, 1, 1<<20)
	values := make([]float64, 50000)
	for i := range values {
		values[i] = float64(z.Sample(r))
	}
	xmin, err := TailXMin(values, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if xmin < 2 {
		xmin = 2
	}
	theta, tail, err := FitPowerLawMLE(values, xmin)
	if err != nil {
		t.Fatal(err)
	}
	if tail < 100 {
		t.Fatalf("tail too small: %d", tail)
	}
	if math.Abs(theta-2.2) > 0.25 {
		t.Errorf("MLE θ = %v, want ≈ 2.2", theta)
	}
}

func TestPageRankTailIsPowerLaw(t *testing.T) {
	// Proposition 7's premise: the PageRank values of our synthetic
	// social graphs have a power-law tail with θ in the ballpark the
	// paper cites (≈ 2.2; anything clearly heavy-tailed, θ ∈ [1.5, 3.5],
	// keeps the proposition's conclusion).
	g, err := gen.PowerLaw(gen.TwitterLike(20000, 3))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.Exact(g, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rescale to avoid xmin <= 0.5 (fit is scale-dependent through
	// xmin only): express values in units of the uniform mass 1/n.
	scaled := make([]float64, len(exact.Rank))
	for i, p := range exact.Rank {
		scaled[i] = p * float64(len(exact.Rank))
	}
	xmin, err := TailXMin(scaled, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	theta, tail, err := FitPowerLawMLE(scaled, xmin)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PageRank tail: θ = %.3f over %d tail vertices (xmin=%.3f)", theta, tail, xmin)
	if theta < 1.5 || theta > 3.5 {
		t.Errorf("PageRank tail exponent %v outside the heavy-tail regime [1.5, 3.5]", theta)
	}
}

func TestFitPowerLawValidation(t *testing.T) {
	if _, _, err := FitPowerLawMLE([]float64{1, 2, 3}, 0.4); err == nil {
		t.Error("xmin <= 0.5 should error")
	}
	if _, _, err := FitPowerLawMLE([]float64{1, 2, 3}, 100); err == nil {
		t.Error("empty tail should error")
	}
	if _, err := TailXMin(nil, 0.1); err == nil {
		t.Error("empty values should error")
	}
	if _, err := TailXMin([]float64{1}, 1.5); err == nil {
		t.Error("bad quantile should error")
	}
}
