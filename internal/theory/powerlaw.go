package theory

import (
	"errors"
	"math"
	"sort"
)

// FitPowerLawMLE estimates the exponent θ of a power-law tail
// P(X = x) ∝ x^(-θ) from the observations ≥ xmin, using the standard
// continuous maximum-likelihood estimator (Clauset, Shalizi & Newman):
//
//	θ̂ = 1 + n / Σ ln(x_i / (xmin − 1/2))
//
// (the −1/2 shift is the usual discrete correction). It returns the
// estimate and the number of tail observations used.
//
// The paper's Proposition 7 assumes PageRank values follow a power law
// with θ ≈ 2.2 (citing Becchetti & Castillo); tests use this fitter to
// confirm the synthetic workloads put the experiments in that regime.
func FitPowerLawMLE(values []float64, xmin float64) (theta float64, tailSize int, err error) {
	if xmin <= 0.5 {
		return 0, 0, errors.New("theory: xmin must exceed 0.5")
	}
	var sum float64
	for _, x := range values {
		if x >= xmin {
			sum += math.Log(x / (xmin - 0.5))
			tailSize++
		}
	}
	if tailSize < 10 {
		return 0, tailSize, errors.New("theory: too few tail observations (need ≥ 10)")
	}
	if sum <= 0 {
		return 0, tailSize, errors.New("theory: degenerate tail")
	}
	return 1 + float64(tailSize)/sum, tailSize, nil
}

// TailXMin picks a pragmatic xmin for FitPowerLawMLE: the value at the
// given upper quantile (e.g. 0.1 keeps the top 10% as the tail).
// Returns an error on empty input or out-of-range quantile.
func TailXMin(values []float64, upperQuantile float64) (float64, error) {
	if len(values) == 0 {
		return 0, errors.New("theory: no values")
	}
	if upperQuantile <= 0 || upperQuantile >= 1 {
		return 0, errors.New("theory: quantile out of (0,1)")
	}
	cp := append([]float64(nil), values...)
	sort.Float64s(cp)
	idx := int(float64(len(cp)) * (1 - upperQuantile))
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx], nil
}
