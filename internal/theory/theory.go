// Package theory evaluates the FrogWild paper's analytical bounds so
// tests and tools can check the implementation against the theory:
//
//   - Theorem 1: the captured-mass error bound ε for the estimator π̂N
//     under partial synchronization.
//   - Theorem 2: the pairwise walker intersection probability bound
//     p∩(t) ≤ 1/n + t·‖π‖∞/pT.
//   - Proposition 7: the power-law bound on ‖π‖∞.
//   - Remark 6: the sufficient scaling for t and N.
package theory

import (
	"errors"
	"math"
)

// IntersectBound returns the Theorem 2 upper bound on the probability
// that two independent walkers meet within t steps:
//
//	p∩(t) ≤ 1/n + t·piMax/pT
//
// clamped to [0, 1].
func IntersectBound(n int, t int, piMax, pT float64) float64 {
	if n <= 0 || pT <= 0 {
		return 1
	}
	b := 1/float64(n) + float64(t)*piMax/pT
	return clamp01(b)
}

// PowerLawMaxBound returns the Proposition 7 style bound pair: with
// probability at least 1 - c·n^(γ - 1/(θ-1)), the maximum PageRank
// entry is at most n^(-γ). It returns the value bound n^(-γ) and the
// failure-probability exponent γ - 1/(θ-1) (negative means the failure
// probability vanishes as n grows).
func PowerLawMaxBound(n int, theta, gamma float64) (valueBound, failureExponent float64) {
	return math.Pow(float64(n), -gamma), gamma - 1/(theta-1)
}

// Epsilon computes the Theorem 1 error bound:
//
//	ε ≤ sqrt((1-pT)^(t+1)/pT) + sqrt(k/δ · (1/N + (1-ps²)·p∩(t)))
//
// The first term is the mixing loss from the t-step cutoff (Lemma 17);
// the second is the sampling loss including the partial-synchronization
// correlation penalty (Lemma 18). With probability at least 1-δ,
// µk(π̂N) ≥ µk(π) − ε.
type BoundParams struct {
	PT        float64 // teleport probability
	T         int     // walk cutoff (supersteps)
	K         int     // top-k set size
	Delta     float64 // failure probability
	N         int     // number of walkers
	PS        float64 // synchronization probability
	Intersect float64 // p∩(t), e.g. from IntersectBound
}

// Epsilon evaluates the Theorem 1 bound. It returns an error on
// invalid parameters.
func Epsilon(p BoundParams) (float64, error) {
	if p.PT <= 0 || p.PT > 1 {
		return 0, errors.New("theory: pT out of (0,1]")
	}
	if p.T < 0 || p.K <= 0 || p.N <= 0 {
		return 0, errors.New("theory: t, k, N must be positive")
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return 0, errors.New("theory: delta out of (0,1)")
	}
	if p.PS < 0 || p.PS > 1 {
		return 0, errors.New("theory: ps out of [0,1]")
	}
	if p.Intersect < 0 || p.Intersect > 1 {
		return 0, errors.New("theory: intersection probability out of [0,1]")
	}
	mixing := math.Sqrt(math.Pow(1-p.PT, float64(p.T+1)) / p.PT)
	sampling := math.Sqrt(float64(p.K) / p.Delta *
		(1/float64(p.N) + (1-p.PS*p.PS)*p.Intersect))
	return mixing + sampling, nil
}

// SufficientIterations returns the Remark 6 scaling for the cutoff:
// t = O(log 1/µk(π)), here with the explicit constant from the mixing
// term — the smallest t that makes the mixing loss at most targetEps.
func SufficientIterations(pT, targetEps float64) int {
	if pT <= 0 || pT >= 1 || targetEps <= 0 {
		return 0
	}
	// sqrt((1-pT)^(t+1)/pT) <= eps  ⇔  (t+1)·log(1-pT) <= log(eps²·pT)
	t := math.Log(targetEps*targetEps*pT)/math.Log(1-pT) - 1
	if t < 0 {
		return 0
	}
	return int(math.Ceil(t))
}

// SufficientWalkers returns the Remark 6 scaling N = O(k/µk(π)²): the
// smallest N making the pure sampling term (ps = 1) at most targetEps
// with failure probability delta.
func SufficientWalkers(k int, delta, targetEps float64) int {
	if k <= 0 || delta <= 0 || delta >= 1 || targetEps <= 0 {
		return 0
	}
	// sqrt(k/(δN)) <= eps  ⇔  N >= k/(δ·eps²)
	return int(math.Ceil(float64(k) / (delta * targetEps * targetEps)))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
