// Package pagerank computes the exact PageRank vector by power
// iteration. It provides the ground truth π against which FrogWild's
// estimator and the GraphLab-PR baseline are evaluated (Definition 1 of
// the paper: π is the principal right eigenvector of
// Q = (1-pT)·P + pT·(1/n)·1).
//
// The inner loop runs on the shared-memory worker pool of package
// parallel, pulling each destination's rank from its in-neighbors over
// contiguous CSR vertex chunks. Chunk boundaries depend only on the
// vertex count and floating-point partials are reduced in chunk index
// order, so the result is bit-identical for every Workers setting.
package pagerank

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// DefaultTeleport is the conventional teleportation probability; the
// paper fixes pT = 0.15 throughout.
const DefaultTeleport = 0.15

// Options configures the power-iteration solver.
type Options struct {
	// Teleport is pT; defaults to DefaultTeleport when zero.
	Teleport float64
	// Tolerance is the L1 change between iterations below which the
	// solver stops. Defaults to 1e-12 when zero.
	Tolerance float64
	// MaxIterations caps the iteration count. Defaults to 500 when zero.
	MaxIterations int
	// Workers is the number of goroutines executing the power-iteration
	// inner loop: 0 selects GOMAXPROCS, 1 runs single-threaded. The
	// computed vector is bit-identical for every value — Workers is
	// purely a throughput knob.
	Workers int
}

// Result holds the converged PageRank vector and solver diagnostics.
type Result struct {
	// Rank is π: Rank[v] is the PageRank of v; sums to 1.
	Rank []float64
	// Iterations actually performed.
	Iterations int
	// Residual is the final L1 change between iterations.
	Residual float64
	// Converged reports whether Residual fell below tolerance before
	// MaxIterations was reached.
	Converged bool
}

// Exact runs power iteration on Q until convergence. Dangling vertices
// (out-degree zero) are handled by spreading their mass uniformly, the
// standard correction; graphs produced by this repo's generators have
// none.
func Exact(g *graph.Graph, opts Options) (*Result, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	pT := opts.Teleport
	if pT == 0 {
		pT = DefaultTeleport
	}
	if pT < 0 || pT > 1 {
		return nil, fmt.Errorf("pagerank: teleport %v out of [0,1]", pT)
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 1e-12
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 500
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	uniform := 1 / float64(n)
	for i := range cur {
		cur[i] = uniform
	}

	// Dangling vertices, in ascending order, so their mass is summed in
	// a fixed order each iteration regardless of worker count.
	var dangling []graph.VertexID
	for v := 0; v < n; v++ {
		if g.OutDegree(graph.VertexID(v)) == 0 {
			dangling = append(dangling, graph.VertexID(v))
		}
	}

	pool := parallel.NewPool(opts.Workers)
	defer pool.Close()
	chunks := parallel.Chunks(n)
	contrib := make([]float64, n)          // cur[s]/dout(s), or 0 for dangling s
	deltas := make([]float64, len(chunks)) // per-chunk L1 partials

	res := &Result{}
	for iter := 1; iter <= maxIter; iter++ {
		// next = (1-pT)·P·cur + (pT + (1-pT)·danglingMass)·u
		danglingMass := 0.0
		for _, v := range dangling {
			danglingMass += cur[v]
		}
		base := pT*uniform + (1-pT)*danglingMass*uniform
		pool.Run(len(chunks), func(c, _ int) {
			for v := chunks[c].Lo; v < chunks[c].Hi; v++ {
				if d := g.OutDegree(graph.VertexID(v)); d > 0 {
					contrib[v] = cur[v] / float64(d)
				} else {
					contrib[v] = 0
				}
			}
		})
		// Pull phase: each chunk owns a contiguous destination range, so
		// there are no write races, and each next[v] accumulates its
		// in-neighbor contributions in the fixed CSR order.
		pool.Run(len(chunks), func(c, _ int) {
			delta := 0.0
			for v := chunks[c].Lo; v < chunks[c].Hi; v++ {
				sum := 0.0
				for _, s := range g.InNeighbors(graph.VertexID(v)) {
					sum += contrib[s]
				}
				x := (1-pT)*sum + base
				next[v] = x
				delta += math.Abs(x - cur[v])
			}
			deltas[c] = delta
		})
		delta := 0.0
		for _, d := range deltas {
			delta += d
		}
		cur, next = next, cur
		res.Iterations = iter
		res.Residual = delta
		if delta < tol {
			res.Converged = true
			break
		}
	}
	res.Rank = cur
	return res, nil
}

// Iterate runs exactly k power iterations from the uniform vector and
// returns the (possibly unconverged) iterate. This models "GraphLab PR
// run for k iterations", the paper's reduced-iterations heuristic, in
// its idealized serial form.
func Iterate(g *graph.Graph, k int, teleport float64) (*Result, error) {
	if k < 0 {
		return nil, fmt.Errorf("pagerank: negative iteration count %d", k)
	}
	r, err := Exact(g, Options{Teleport: teleport, Tolerance: math.SmallestNonzeroFloat64, MaxIterations: max(k, 1)})
	if err != nil {
		return nil, err
	}
	if k == 0 {
		// The zero-iteration "estimate" is the uniform vector.
		n := g.NumVertices()
		u := make([]float64, n)
		for i := range u {
			u[i] = 1 / float64(n)
		}
		return &Result{Rank: u}, nil
	}
	return r, nil
}

// Validate checks that v is a probability distribution to within eps.
func Validate(v []float64, eps float64) error {
	sum := 0.0
	for i, x := range v {
		if x < -eps || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("pagerank: entry %d = %v invalid", i, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > eps {
		return fmt.Errorf("pagerank: sums to %v, want 1", sum)
	}
	return nil
}
