// Package pagerank computes the exact PageRank vector by serial power
// iteration. It provides the ground truth π against which FrogWild's
// estimator and the GraphLab-PR baseline are evaluated (Definition 1 of
// the paper: π is the principal right eigenvector of
// Q = (1-pT)·P + pT·(1/n)·1).
package pagerank

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// DefaultTeleport is the conventional teleportation probability; the
// paper fixes pT = 0.15 throughout.
const DefaultTeleport = 0.15

// Options configures the power-iteration solver.
type Options struct {
	// Teleport is pT; defaults to DefaultTeleport when zero.
	Teleport float64
	// Tolerance is the L1 change between iterations below which the
	// solver stops. Defaults to 1e-12 when zero.
	Tolerance float64
	// MaxIterations caps the iteration count. Defaults to 500 when zero.
	MaxIterations int
}

// Result holds the converged PageRank vector and solver diagnostics.
type Result struct {
	// Rank is π: Rank[v] is the PageRank of v; sums to 1.
	Rank []float64
	// Iterations actually performed.
	Iterations int
	// Residual is the final L1 change between iterations.
	Residual float64
	// Converged reports whether Residual fell below tolerance before
	// MaxIterations was reached.
	Converged bool
}

// Exact runs power iteration on Q until convergence. Dangling vertices
// (out-degree zero) are handled by spreading their mass uniformly, the
// standard correction; graphs produced by this repo's generators have
// none.
func Exact(g *graph.Graph, opts Options) (*Result, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	pT := opts.Teleport
	if pT == 0 {
		pT = DefaultTeleport
	}
	if pT < 0 || pT > 1 {
		return nil, fmt.Errorf("pagerank: teleport %v out of [0,1]", pT)
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 1e-12
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 500
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	uniform := 1 / float64(n)
	for i := range cur {
		cur[i] = uniform
	}

	res := &Result{}
	for iter := 1; iter <= maxIter; iter++ {
		// next = (1-pT)·P·cur + (pT + (1-pT)·danglingMass)·u
		danglingMass := 0.0
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			mass := cur[v]
			outs := g.OutNeighbors(uint32(v))
			if len(outs) == 0 {
				danglingMass += mass
				continue
			}
			share := mass / float64(len(outs))
			for _, d := range outs {
				next[d] += share
			}
		}
		base := pT*uniform + (1-pT)*danglingMass*uniform
		delta := 0.0
		for i := range next {
			next[i] = (1-pT)*next[i] + base
			delta += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		res.Iterations = iter
		res.Residual = delta
		if delta < tol {
			res.Converged = true
			break
		}
	}
	res.Rank = cur
	return res, nil
}

// Iterate runs exactly k power iterations from the uniform vector and
// returns the (possibly unconverged) iterate. This models "GraphLab PR
// run for k iterations", the paper's reduced-iterations heuristic, in
// its idealized serial form.
func Iterate(g *graph.Graph, k int, teleport float64) (*Result, error) {
	if k < 0 {
		return nil, fmt.Errorf("pagerank: negative iteration count %d", k)
	}
	r, err := Exact(g, Options{Teleport: teleport, Tolerance: math.SmallestNonzeroFloat64, MaxIterations: maxInt(k, 1)})
	if err != nil {
		return nil, err
	}
	if k == 0 {
		// The zero-iteration "estimate" is the uniform vector.
		n := g.NumVertices()
		u := make([]float64, n)
		for i := range u {
			u[i] = 1 / float64(n)
		}
		return &Result{Rank: u}, nil
	}
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate checks that v is a probability distribution to within eps.
func Validate(v []float64, eps float64) error {
	sum := 0.0
	for i, x := range v {
		if x < -eps || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("pagerank: entry %d = %v invalid", i, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > eps {
		return fmt.Errorf("pagerank: sums to %v, want 1", sum)
	}
	return nil
}
