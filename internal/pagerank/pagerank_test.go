package pagerank

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestExactUniformOnComplete(t *testing.T) {
	g := gen.Complete(8)
	r, err := Exact(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("did not converge")
	}
	for v, p := range r.Rank {
		if math.Abs(p-0.125) > 1e-9 {
			t.Errorf("vertex %d: rank %v, want 0.125", v, p)
		}
	}
}

func TestExactUniformOnCycle(t *testing.T) {
	g := gen.Cycle(10)
	r, err := Exact(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range r.Rank {
		if math.Abs(p-0.1) > 1e-9 {
			t.Errorf("vertex %d: rank %v, want 0.1", v, p)
		}
	}
}

func TestExactSumsToOne(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(2000, 11))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Exact(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r.Rank, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestExactStarHubDominates(t *testing.T) {
	g := gen.Star(50)
	r, err := Exact(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub := r.Rank[0]
	for v := 1; v < 50; v++ {
		if r.Rank[v] >= hub {
			t.Fatalf("leaf %d rank %v >= hub %v", v, r.Rank[v], hub)
		}
	}
	// Known closed form: hub gets pT/n + (1-pT)·(1-hub) since every
	// leaf sends all its mass to the hub. Solve: hub ≈ (pT/n + (1-pT)·(1-?))...
	// Just check it is large.
	if hub < 0.4 {
		t.Errorf("hub rank %v suspiciously small", hub)
	}
}

func TestFixedPointProperty(t *testing.T) {
	// π must satisfy π = Qπ: applying one more power-iteration step
	// must not change it.
	g, err := gen.PowerLaw(gen.LiveJournalLike(1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Exact(g, Options{Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	pT := DefaultTeleport
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		share := r.Rank[v] / float64(g.OutDegree(uint32(v)))
		for _, d := range g.OutNeighbors(uint32(v)) {
			next[d] += share
		}
	}
	for v := 0; v < n; v++ {
		want := (1-pT)*next[v] + pT/float64(n)
		if math.Abs(want-r.Rank[v]) > 1e-10 {
			t.Fatalf("fixed point violated at %d: %v vs %v", v, r.Rank[v], want)
		}
	}
}

func TestDanglingHandled(t *testing.T) {
	// 0->1, 1 dangling. Mass must still sum to 1.
	g, err := graph.NewBuilder(2).AddEdge(0, 1).AllowDangling().Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Exact(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r.Rank, 1e-9); err != nil {
		t.Fatal(err)
	}
	if r.Rank[1] <= r.Rank[0] {
		t.Error("vertex 1 receives all of 0's mass and should rank higher")
	}
}

func TestTeleportOneIsUniform(t *testing.T) {
	g := gen.Star(20)
	r, err := Exact(g, Options{Teleport: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Rank {
		if math.Abs(p-0.05) > 1e-12 {
			t.Fatalf("pT=1 should give uniform, got %v", p)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Exact(g, Options{Teleport: 1.5}); err == nil {
		t.Error("teleport > 1 should error")
	}
	if _, err := Exact(g, Options{Teleport: -0.1}); err == nil {
		t.Error("teleport < 0 should error")
	}
	empty, _ := graph.NewBuilder(0).Build()
	if _, err := Exact(empty, Options{}); err == nil {
		t.Error("empty graph should error")
	}
	if _, err := Iterate(g, -1, 0.15); err == nil {
		t.Error("negative iterations should error")
	}
}

func TestIterateApproaches(t *testing.T) {
	g, err := gen.PowerLaw(gen.TwitterLike(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l1 := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16} {
		it, err := Iterate(g, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if it.Iterations != k {
			t.Fatalf("Iterate(%d) ran %d iterations", k, it.Iterations)
		}
		d := l1(it.Rank, exact.Rank)
		if d > prev+1e-12 {
			t.Fatalf("iterate %d moved away from exact: %v > %v", k, d, prev)
		}
		prev = d
	}
	if prev > 1e-2 {
		t.Errorf("16 iterations still %v away in L1", prev)
	}
}

func TestIterateZero(t *testing.T) {
	g := gen.Star(10)
	r, err := Iterate(g, 0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Rank {
		if math.Abs(p-0.1) > 1e-12 {
			t.Fatal("zero iterations should return uniform")
		}
	}
}

func TestValidateRejects(t *testing.T) {
	if err := Validate([]float64{0.5, 0.6}, 1e-9); err == nil {
		t.Error("sum != 1 should fail")
	}
	if err := Validate([]float64{1.5, -0.5}, 1e-9); err == nil {
		t.Error("negative entry should fail")
	}
	if err := Validate([]float64{math.NaN(), 1}, 1e-9); err == nil {
		t.Error("NaN should fail")
	}
	if err := Validate([]float64{0.25, 0.25, 0.25, 0.25}, 1e-9); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
}

func TestExactParallelBitIdentical(t *testing.T) {
	// The parallel inner loop promises bit-identical results for every
	// worker count: fixed chunk boundaries, fixed per-destination
	// accumulation order, partial sums reduced in chunk index order.
	graphs := map[string]*graph.Graph{
		"star":  gen.Star(300),
		"cycle": gen.Cycle(100),
	}
	if g, err := gen.PowerLaw(gen.TwitterLike(3000, 17)); err == nil {
		graphs["twitterlike"] = g
	} else {
		t.Fatal(err)
	}
	if g, err := graph.NewBuilder(40).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0).AddEdge(3, 0).AllowDangling().Build(); err == nil {
		graphs["dangling"] = g // vertices 4..39 are dangling
	} else {
		t.Fatal(err)
	}
	for name, g := range graphs {
		ref, err := Exact(g, Options{Tolerance: 1e-13, Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := Exact(g, Options{Tolerance: 1e-13, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if got.Iterations != ref.Iterations || got.Residual != ref.Residual || got.Converged != ref.Converged {
				t.Errorf("%s workers=%d: diagnostics (%d,%v,%v) != serial (%d,%v,%v)",
					name, workers, got.Iterations, got.Residual, got.Converged,
					ref.Iterations, ref.Residual, ref.Converged)
			}
			for v := range ref.Rank {
				if got.Rank[v] != ref.Rank[v] {
					t.Fatalf("%s workers=%d: rank[%d] = %v != serial %v (not bit-identical)",
						name, workers, v, got.Rank[v], ref.Rank[v])
				}
			}
		}
	}
}

func BenchmarkExact100k(b *testing.B) {
	g, err := gen.PowerLaw(gen.LiveJournalLike(100000, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(g, Options{Tolerance: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}
