package hist

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/rng"
)

// refQuantile computes the bucket-quantized quantile directly from a
// sorted sample slice, mirroring Quantile's contract (upper bound of
// the selected sample's bucket, clamped to [min, max]).
func refQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	v := bucketUpper(bucketIndex(sorted[rank-1]))
	if v < sorted[0] {
		v = sorted[0]
	}
	if v > sorted[n-1] {
		v = sorted[n-1]
	}
	return v
}

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose [lower, upper] range
	// contains it, and bucket boundaries must be contiguous.
	vals := []int64{0, 1, 2, 63, 64, 65, 127, 128, 129, 1000, 4095, 4096,
		1 << 20, 1<<20 + 17, 1 << 40, math.MaxInt64}
	for _, v := range vals {
		i := bucketIndex(v)
		if up := bucketUpper(i); v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, up)
		}
		if i > 0 {
			if prev := bucketUpper(i - 1); v <= prev {
				t.Errorf("value %d should be in bucket %d (upper %d), got %d", v, i-1, prev, i)
			}
		}
	}
	for i := 0; i < 1000; i++ {
		if got := bucketIndex(bucketUpper(i)); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", i, got)
		}
	}
	// The largest representable value lands in the last index of the
	// documented bucket space.
	if got := bucketIndex(math.MaxInt64); got != maxBuckets-1 {
		t.Errorf("bucketIndex(MaxInt64) = %d, want %d", got, maxBuckets-1)
	}
	// Values below subBucketCount are exact.
	for v := int64(0); v < subBucketCount; v++ {
		if bucketUpper(bucketIndex(v)) != v {
			t.Fatalf("small value %d not exact", v)
		}
	}
	// Relative error bound: upper/lower within a bucket differ by at
	// most a factor of 1 + 1/subBucketCount.
	for _, v := range vals[1:] {
		i := bucketIndex(v)
		up := bucketUpper(i)
		lo := int64(0)
		if i > 0 {
			lo = bucketUpper(i-1) + 1
		}
		if float64(up-lo) > float64(lo)/subBucketCount+1 {
			t.Errorf("bucket %d [%d,%d] too wide for value %d", i, lo, up, v)
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram not all-zero: %s", h.String())
	}
	// Out-of-range and hostile q values must also return 0 on an empty
	// histogram — concurrent scrapers quantile histograms that may not
	// have seen a sample yet, and garbage here would leak into metrics.
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if h.Quantile(q) != 0 {
			t.Errorf("empty Quantile(%v) = %d", q, h.Quantile(q))
		}
	}
	// An empty snapshot iterates no buckets.
	h.Snapshot().Buckets(func(upper int64, count uint64) {
		t.Errorf("empty histogram iterated bucket (%d, %d)", upper, count)
	})
}

func TestSnapshotIsIndependentCopy(t *testing.T) {
	var h Histogram
	for _, v := range []int64{3, 70, 70, 5000, 1 << 20} {
		h.RecordValue(v)
	}
	snap := h.Snapshot()
	if snap.Count() != h.Count() || snap.Sum() != h.Sum() ||
		snap.Min() != h.Min() || snap.Max() != h.Max() ||
		!reflect.DeepEqual(snap.Counts(), h.Counts()) {
		t.Fatalf("snapshot differs from source: %s vs %s", snap, &h)
	}
	// Recording into the original must not bleed into the snapshot,
	// and vice versa.
	before := snap.Counts()
	h.RecordValue(1 << 30)
	if !reflect.DeepEqual(snap.Counts(), before) || snap.Count() != 5 {
		t.Fatal("snapshot mutated by a later Record into the source")
	}
	snap.RecordValue(1)
	if h.Count() != 6 || h.Min() != 3 {
		t.Fatalf("source mutated by a Record into the snapshot: %s", &h)
	}
}

func TestBucketsIteration(t *testing.T) {
	var h Histogram
	samples := []int64{0, 1, 63, 64, 100, 100, 4096, 1 << 22}
	for _, v := range samples {
		h.RecordValue(v)
	}
	var total uint64
	last := int64(-1)
	h.Buckets(func(upper int64, count uint64) {
		if count == 0 {
			t.Errorf("bucket %d iterated with zero count", upper)
		}
		if upper <= last {
			t.Errorf("bucket upper bounds not strictly ascending: %d after %d", upper, last)
		}
		last = upper
		total += count
	})
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
	// Every sample must be <= the upper bound of some bucket holding it:
	// cumulative counts over the iteration dominate the true CDF.
	for _, v := range samples {
		var cum uint64
		h.Buckets(func(upper int64, count uint64) {
			if upper >= v {
				cum += count
			}
		})
		var atLeast uint64
		for _, s := range samples {
			if bucketUpper(bucketIndex(s)) >= v {
				atLeast++
			}
		}
		if cum != atLeast {
			t.Fatalf("cumulative count above %d = %d, want %d", v, cum, atLeast)
		}
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Record(1500 * time.Microsecond)
	want := int64(1500 * 1000)
	if h.Count() != 1 || h.Sum() != want || h.Min() != want || h.Max() != want {
		t.Fatalf("single sample stats wrong: %s", h.String())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %d, want %d (min==max must pin every quantile)", q, got, want)
		}
	}
}

func TestAllEqualSamples(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.RecordValue(777777)
	}
	for _, q := range []float64{0, 0.5, 0.9999, 1} {
		if got := h.Quantile(q); got != 777777 {
			t.Errorf("Quantile(%v) = %d, want 777777", q, got)
		}
	}
	if h.Mean() != 777777 {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.RecordValue(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("negative sample not clamped: %s", h.String())
	}
}

func TestQuantilesAgainstSortedReference(t *testing.T) {
	r := rng.New(42)
	var h Histogram
	var samples []int64
	for i := 0; i < 5000; i++ {
		// Mix magnitudes: microseconds to seconds.
		v := int64(r.Uint64n(1_000_000_000))
		if r.Bernoulli(0.3) {
			v = int64(r.Uint64n(50_000))
		}
		samples = append(samples, v)
		h.RecordValue(v)
	}
	sorted := append([]int64(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got, want := h.Quantile(q), refQuantile(sorted, q)
		if got != want {
			t.Errorf("Quantile(%v) = %d, reference %d", q, got, want)
		}
	}
}

// TestMergeEqualsConcat is the satellite contract: for any shard split
// of a sample stream, merging the shard histograms equals the histogram
// of the concatenated samples — exactly, bucket by bucket.
func TestMergeEqualsConcat(t *testing.T) {
	r := rng.New(7)
	samples := make([]int64, 4096)
	for i := range samples {
		samples[i] = int64(r.Uint64n(10_000_000_000))
	}
	var whole Histogram
	for _, v := range samples {
		whole.RecordValue(v)
	}
	// Shard splits: contiguous chunks of several widths, including
	// degenerate ones (single shard, one-element shards via width 1).
	for _, shards := range []int{1, 2, 3, 7, 64, len(samples)} {
		var merged Histogram
		per := (len(samples) + shards - 1) / shards
		for s := 0; s < shards; s++ {
			lo := s * per
			hi := min(lo+per, len(samples))
			var part Histogram
			for _, v := range samples[lo:hi] {
				part.RecordValue(v)
			}
			merged.Merge(&part)
		}
		if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
			merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("shards=%d: scalar stats diverge", shards)
		}
		if !reflect.DeepEqual(merged.Counts(), whole.Counts()) {
			t.Fatalf("shards=%d: bucket counts diverge", shards)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			if merged.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("shards=%d: Quantile(%v) diverges", shards, q)
			}
		}
	}
}

func TestMergeEmptyAndIntoEmpty(t *testing.T) {
	var a, b, empty Histogram
	a.RecordValue(10)
	a.RecordValue(30)
	a.Merge(&empty) // no-op
	a.Merge(nil)    // no-op
	if a.Count() != 2 {
		t.Fatalf("merge of empty changed count: %d", a.Count())
	}
	b.Merge(&a) // into empty: adopts min/max
	if b.Count() != 2 || b.Min() != 10 || b.Max() != 30 {
		t.Errorf("merge into empty: %s", b.String())
	}
}
