// Package hist provides a mergeable log-bucketed latency histogram for
// the load-generation and serving-measurement pipeline.
//
// The bucket layout is log-linear (HDR-histogram style): values below
// subBucketCount land in exact unit buckets; above that, every power of
// two is split into subBucketCount linear sub-buckets, so the relative
// quantization error is bounded by 1/subBucketCount (< 1.6%) at every
// magnitude. Bucket indices are computed with integer bit operations
// only — no floating point — so the mapping is exact, portable and
// deterministic.
//
// Histograms merge by bucket-count addition, which is associative and
// commutative: merging per-shard histograms in any order yields exactly
// the histogram of the concatenated samples. That property is what lets
// the load generator keep one histogram per worker goroutine, record
// without locks, and still produce bit-identical aggregate buckets for
// any worker count.
package hist

import (
	"fmt"
	"math/bits"
	"time"
)

// subBucketBits fixes the resolution: 2^subBucketBits linear
// sub-buckets per power of two.
const subBucketBits = 6

// subBucketCount is the number of sub-buckets per power of two (and the
// threshold below which values are counted exactly).
const subBucketCount = 1 << subBucketBits // 64

// maxBuckets is the index space needed for the full non-negative int64
// range (values are clamped into it): 64 exact buckets plus
// subBucketCount per remaining power of two.
const maxBuckets = subBucketCount + (63-subBucketBits)*subBucketCount

// Histogram counts non-negative int64 samples (canonically latency in
// nanoseconds) in log-linear buckets, tracking count, sum, min and max
// exactly. The zero value is ready to use. It is not safe for
// concurrent use; keep one per goroutine and Merge.
type Histogram struct {
	buckets []uint64 // grown lazily to the highest index recorded
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// bucketIndex maps a non-negative value to its bucket. Values below
// subBucketCount map to themselves; above, the index advances by
// subBucketCount per power of two, linearly within each.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBucketCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // 2^exp <= u < 2^(exp+1)
	shift := exp - subBucketBits
	return int(uint64(shift+1)<<subBucketBits + (u >> shift) - subBucketCount)
}

// bucketUpper returns the largest value mapping to bucket i (the
// pessimistic representative quantiles report).
func bucketUpper(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	major := i >> subBucketBits // >= 1
	sub := i & (subBucketCount - 1)
	lower := int64(subBucketCount+sub) << (major - 1)
	return lower + int64(1)<<(major-1) - 1
}

// RecordValue adds one sample. Negative values are clamped to zero (a
// latency can round down to it, never legitimately below).
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.buckets) {
		grown := make([]uint64, idx+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[idx]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Record adds one duration sample at nanosecond granularity.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// Merge folds other into h. Bucket addition is exact, so for any
// partition of a sample stream into shards, merging the shard
// histograms (in any order) equals recording the whole stream into one
// histogram.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if len(other.buckets) > len(h.buckets) {
		grown := make([]uint64, len(other.buckets))
		copy(grown, h.buckets)
		h.buckets = grown
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the exact smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound
// of the bucket holding the ceil(q·count)-th smallest sample, clamped
// to the exact [min, max] envelope (so Quantile(0) == Min and
// Quantile(1) == Max exactly). Returns 0 when empty; q outside [0, 1]
// is clamped.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max // unreachable: bucket counts always sum to h.count
}

// QuantileDuration is Quantile for nanosecond samples.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Snapshot returns an independent deep copy of the histogram: a
// consistent point-in-time view that a scraper can iterate and
// quantile at leisure while the original keeps recording. The copy
// shares no storage with h, so it is immutable as long as the caller
// does not Record into it.
func (h *Histogram) Snapshot() *Histogram {
	c := *h
	c.buckets = append([]uint64(nil), h.buckets...)
	return &c
}

// Buckets calls fn once per non-empty bucket in ascending value order,
// with the bucket's inclusive upper bound and its count. This is the
// iteration surface exposition renderers (e.g. Prometheus cumulative
// buckets) are built on: summing count over all calls equals Count(),
// and every sample in a bucket is <= that bucket's upper bound.
func (h *Histogram) Buckets(fn func(upper int64, count uint64)) {
	for i, c := range h.buckets {
		if c != 0 {
			fn(bucketUpper(i), c)
		}
	}
}

// Counts returns a copy of the bucket counts (trailing zero buckets
// trimmed by construction). Two histograms over the same samples have
// equal Counts regardless of recording order or sharding.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d p50=%v p95=%v p99=%v max=%v}",
		h.count, h.QuantileDuration(0.50), h.QuantileDuration(0.95),
		h.QuantileDuration(0.99), time.Duration(h.Max()))
}
