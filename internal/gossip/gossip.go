// Package gossip implements randomized rumor spreading (the classic
// push protocol) as a vertex program on the partial-synchronization
// engine. The FrogWild paper remarks (Section 3.3) that "any random
// walk or gossip style algorithm (that sends a single message to a
// random subset of its neighbors) can benefit by exploiting ps"; this
// package demonstrates that generality: each informed vertex pushes the
// rumor along one uniformly random out-edge per round, and the engine's
// ps knob thins mirror synchronization exactly as it does for FrogWild.
package gossip

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gas"
	"repro/internal/graph"
	"repro/internal/rng"
)

// state is the per-vertex rumor state.
type state struct {
	// Informed reports whether the rumor has reached this vertex.
	Informed bool
	// Round is the superstep at which the rumor arrived (-1 before).
	Round int32
	// pushes is the number of pushes to route this superstep (1 while
	// informed).
	pushes int64
}

// program implements gas.Program, gas.Splitter and gas.Finalizer.
type program struct {
	origin graph.VertexID
	rounds int
}

// InitState implements gas.Program.
func (p *program) InitState(v graph.VertexID) (state, bool) {
	if v == p.origin {
		return state{Informed: true, Round: 0, pushes: 1}, true
	}
	return state{Round: -1}, false
}

// GatherDir implements gas.Program.
func (p *program) GatherDir() gas.Dir { return gas.DirNone }

// GatherLocal implements gas.Program (never invoked).
func (p *program) GatherLocal(graph.VertexID, []graph.VertexID, func(graph.VertexID) state, *gas.Context) float64 {
	return 0
}

// Apply implements gas.Program: become informed on first contact; every
// informed vertex pushes once per round.
func (p *program) Apply(v graph.VertexID, st state, _ float64, msg int64, hasMsg bool, ctx *gas.Context) (state, bool) {
	if !st.Informed && (hasMsg || v == p.origin && ctx.Superstep == 0) {
		st.Informed = true
		st.Round = int32(ctx.Superstep)
	}
	if !st.Informed {
		return st, false
	}
	st.pushes = 1
	return st, true
}

// ScatterDir implements gas.Program.
func (p *program) ScatterDir() gas.Dir { return gas.DirOut }

// Split implements gas.Splitter: the single push lands on one
// synchronized replica, chosen proportionally to local out-degree —
// i.e., the pushed edge is uniform over the enabled out-edges.
func (p *program) Split(v graph.VertexID, st state, weights []int, r *rng.Stream) []state {
	shares := make([]state, len(weights))
	total := 0
	for _, w := range weights {
		total += w
	}
	pick := r.Intn(total)
	for i, w := range weights {
		if pick < w {
			shares[i] = state{Informed: true, pushes: 1}
			break
		}
		pick -= w
	}
	return shares
}

// ScatterLocal implements gas.Program: push along one uniformly random
// local out-edge.
func (p *program) ScatterLocal(v graph.VertexID, st state, neighbors []graph.VertexID, emit func(graph.VertexID, int64), ctx *gas.Context) {
	if st.pushes <= 0 || len(neighbors) == 0 {
		return
	}
	emit(neighbors[ctx.Rng.Intn(len(neighbors))], 1)
}

// CombineMsg implements gas.Program.
func (p *program) CombineMsg(a, b int64) int64 { return a + b }

// Sizes implements gas.Program.
func (p *program) Sizes() gas.Sizes { return gas.Sizes{State: 2, Msg: 1, Acc: 1} }

// Finalize implements gas.Finalizer: a rumor still in flight at the
// cutoff informs its destination at the final round.
func (p *program) Finalize(v graph.VertexID, st state, pending int64, hasPending bool) state {
	if !st.Informed && hasPending && pending > 0 {
		st.Informed = true
		st.Round = int32(p.rounds)
	}
	return st
}

// Config configures a rumor-spreading run.
type Config struct {
	// Origin is the initially informed vertex.
	Origin graph.VertexID
	// Rounds caps the protocol length. Required.
	Rounds int
	// PS is the mirror synchronization probability; 0 selects 1.
	PS float64
	// Machines is the cluster size; 0 selects 1.
	Machines int
	// Partitioner selects ingress; nil means random.
	Partitioner cluster.Partitioner
	// Seed drives all randomness.
	Seed uint64
	// WorkersPerMachine shards each simulated machine's engine phases
	// across a worker pool: 0 divides GOMAXPROCS across machines, 1 is
	// fully serial per machine. Results are bit-identical for every
	// setting (see gas.Options.WorkersPerMachine).
	WorkersPerMachine int
	// Layout optionally reuses a prebuilt layout.
	Layout *cluster.Layout
}

// Result reports a run's outcome.
type Result struct {
	// Informed is the number of vertices reached.
	Informed int
	// RoundReached[v] is the superstep the rumor reached v, or -1.
	RoundReached []int32
	// InformedByRound[r] is the cumulative informed count after round r.
	InformedByRound []int
	// Stats carries the engine metrics.
	Stats *gas.RunStats
}

// Run executes push-protocol rumor spreading.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("gossip: empty graph")
	}
	if int(cfg.Origin) >= g.NumVertices() {
		return nil, fmt.Errorf("gossip: origin %d out of range", cfg.Origin)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("gossip: Rounds must be positive, got %d", cfg.Rounds)
	}
	ps := cfg.PS
	if ps == 0 {
		ps = 1
	}
	if ps < 0 || ps > 1 {
		return nil, fmt.Errorf("gossip: ps %v out of [0,1]", cfg.PS)
	}
	lay := cfg.Layout
	if lay == nil {
		machines := cfg.Machines
		if machines <= 0 {
			machines = 1
		}
		var err error
		lay, err = cluster.NewLayout(g, machines, cfg.Partitioner, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	prog := &program{origin: cfg.Origin, rounds: cfg.Rounds}
	eng, err := gas.New[state, int64](lay, prog, gas.Options{
		PS:                ps,
		Seed:              cfg.Seed,
		MaxSupersteps:     cfg.Rounds,
		AlwaysActive:      true, // informed vertices push every round
		WorkersPerMachine: cfg.WorkersPerMachine,
	})
	if err != nil {
		return nil, err
	}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: stats, RoundReached: make([]int32, g.NumVertices())}
	maxRound := 0
	for v, st := range eng.MasterStates() {
		res.RoundReached[v] = st.Round
		if st.Informed {
			res.Informed++
			if int(st.Round) > maxRound {
				maxRound = int(st.Round)
			}
		}
	}
	res.InformedByRound = make([]int, stats.Supersteps+1)
	for _, st := range eng.MasterStates() {
		if st.Informed && int(st.Round) < len(res.InformedByRound) {
			res.InformedByRound[st.Round]++
		}
	}
	for r := 1; r < len(res.InformedByRound); r++ {
		res.InformedByRound[r] += res.InformedByRound[r-1]
	}
	return res, nil
}
