package gossip

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph/gen"
)

func TestRumorSpreadsOnCompleteGraph(t *testing.T) {
	// Push protocol on the complete graph informs everyone in
	// O(log n) rounds whp; give it generous slack.
	g := gen.Complete(64)
	res, err := Run(g, Config{Origin: 0, Rounds: 40, Machines: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 64 {
		t.Fatalf("informed %d/64 after 40 rounds", res.Informed)
	}
	if res.RoundReached[0] != 0 {
		t.Error("origin round should be 0")
	}
}

func TestInformedByRoundMonotone(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 500, MeanOutDeg: 8, DegExponent: 2.1, PrefExponent: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Origin: 3, Rounds: 20, Machines: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(res.InformedByRound); r++ {
		if res.InformedByRound[r] < res.InformedByRound[r-1] {
			t.Fatal("cumulative informed counts must be monotone")
		}
	}
	if last := res.InformedByRound[len(res.InformedByRound)-1]; last != res.Informed {
		t.Errorf("cumulative end %d != informed %d", last, res.Informed)
	}
	if res.Informed < 10 {
		t.Errorf("rumor barely spread: %d informed", res.Informed)
	}
}

func TestLowPSSlowsSpreadNotStopsIt(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 1000, MeanOutDeg: 10, DegExponent: 2.1, PrefExponent: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 12, cluster.Random{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(g, Config{Origin: 0, Rounds: 15, PS: 1, Layout: lay, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Run(g, Config{Origin: 0, Rounds: 15, PS: 0.2, Layout: lay, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The erasure model always enables at least one out-edge, so a push
	// always happens: low ps must still spread the rumor, roughly as
	// fast (pushes are never dropped, only constrained to enabled
	// machines).
	if low.Informed < full.Informed/2 {
		t.Errorf("ps=0.2 informed %d vs ps=1 %d — far too slow", low.Informed, full.Informed)
	}
	// And it must cost less sync traffic.
	if low.Stats.Net.ClassBytes(cluster.TrafficSync) >= full.Stats.Net.ClassBytes(cluster.TrafficSync) {
		t.Error("ps=0.2 should reduce sync bytes")
	}
}

func TestOnePushPerRound(t *testing.T) {
	// On a directed cycle, the push has exactly one possible edge each
	// round: after R rounds exactly R+1 vertices are informed.
	g := gen.Cycle(30)
	res, err := Run(g, Config{Origin: 0, Rounds: 10, Machines: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 11 {
		t.Fatalf("cycle informed %d after 10 rounds, want 11 (one hop per round)", res.Informed)
	}
	for v := 0; v <= 10; v++ {
		if res.RoundReached[v] != int32(v) {
			t.Fatalf("vertex %d reached at round %d, want %d", v, res.RoundReached[v], v)
		}
	}
}

func TestDeterministic(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 300, MeanOutDeg: 6, DegExponent: 2.1, PrefExponent: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := cluster.NewLayout(g, 6, cluster.Random{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, Config{Origin: 5, Rounds: 12, PS: 0.5, Layout: lay, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Config{Origin: 5, Rounds: 12, PS: 0.5, Layout: lay, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.RoundReached {
		if a.RoundReached[v] != b.RoundReached[v] {
			t.Fatal("gossip not deterministic under fixed seed")
		}
	}
}

func TestValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := Run(nil, Config{Rounds: 1}); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := Run(g, Config{Origin: 99, Rounds: 1}); err == nil {
		t.Error("bad origin should error")
	}
	if _, err := Run(g, Config{Rounds: 0}); err == nil {
		t.Error("zero rounds should error")
	}
	if _, err := Run(g, Config{Rounds: 1, PS: 2}); err == nil {
		t.Error("bad ps should error")
	}
}

func TestSpreadRateLogarithmic(t *testing.T) {
	// Rounds to inform half the complete graph should grow ~log n.
	roundsToHalf := func(n int) int {
		g := gen.Complete(n)
		res, err := Run(g, Config{Origin: 0, Rounds: 60, Machines: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for r, c := range res.InformedByRound {
			if c >= n/2 {
				return r
			}
		}
		return math.MaxInt32
	}
	r64 := roundsToHalf(64)
	r256 := roundsToHalf(256)
	if r256 > 4*r64+4 {
		t.Errorf("spread not logarithmic-ish: half(64)=%d rounds, half(256)=%d", r64, r256)
	}
}
