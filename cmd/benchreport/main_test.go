package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkFrogWildRun-8         	       1	 123456789 ns/op	    52340 vertex/s	       212.5 simvswall
BenchmarkFrogWildEngineWorkers/workers=2-8 	       1	  98765432 ns/op	         1.85 speedup/serial-vs-parallel
some stray log line
BenchmarkMonteCarloParallel-8  	       2	  51234567 ns/op
PASS
ok  	repro	12.345s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Error("PASS output marked failed")
	}
	for key, want := range map[string]string{
		"goos": "linux", "goarch": "amd64", "pkg": "repro", "cpu": "Intel(R) Xeon(R) CPU",
	} {
		if rep.Env[key] != want {
			t.Errorf("env[%s] = %q, want %q", key, rep.Env[key], want)
		}
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	fw := rep.Benchmarks[0]
	if fw.Name != "BenchmarkFrogWildRun-8" || fw.Iterations != 1 {
		t.Errorf("first benchmark = %+v", fw)
	}
	if fw.Metrics["vertex/s"] != 52340 || fw.Metrics["simvswall"] != 212.5 || fw.Metrics["ns/op"] != 123456789 {
		t.Errorf("metrics = %v", fw.Metrics)
	}
	sub := rep.Benchmarks[1]
	if sub.Name != "BenchmarkFrogWildEngineWorkers/workers=2-8" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
	if sub.Metrics["speedup/serial-vs-parallel"] != 1.85 {
		t.Errorf("speedup metric = %v", sub.Metrics)
	}
	if rep.Benchmarks[2].Iterations != 2 {
		t.Errorf("iterations = %d, want 2", rep.Benchmarks[2].Iterations)
	}
}

func TestParseBenchFail(t *testing.T) {
	rep, err := parseBench(strings.NewReader("BenchmarkX-4 1 5 ns/op\nFAIL\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Error("FAIL output not marked failed")
	}
}

func TestParseBenchLineRejectsHeaders(t *testing.T) {
	if _, ok := parseBenchLine("BenchmarkGroup"); ok {
		t.Error("bare group header should not parse")
	}
	if _, ok := parseBenchLine("BenchmarkX notanumber 5 ns/op"); ok {
		t.Error("malformed iteration count should not parse")
	}
}
