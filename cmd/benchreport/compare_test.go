package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// report builds a one-benchmark Report with the given metrics.
func report(t *testing.T, name string, metrics map[string]float64) *Report {
	t.Helper()
	return &Report{
		Env:        map[string]string{"goos": "linux"},
		Benchmarks: []Benchmark{{Name: name, Iterations: 100, Metrics: metrics}},
	}
}

// writeReport marshals rep into dir and returns its path.
func writeReport(t *testing.T, dir, file string, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, file)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// compare runs runCompare against two reports with the given threshold
// flag and returns (exit code, stdout).
func compare(t *testing.T, baseline, current *Report, extra ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	args := []string{
		"-baseline", writeReport(t, dir, "base.json", baseline),
		"-current", writeReport(t, dir, "cur.json", current),
	}
	args = append(args, extra...)
	var stdout, stderr bytes.Buffer
	code := runCompare(args, &stdout, &stderr)
	return code, stdout.String() + stderr.String()
}

func TestCompareIdenticalPasses(t *testing.T) {
	rep := report(t, "prload/all", map[string]float64{"queries/s": 50000, "p99/ms": 1.5})
	code, out := compare(t, rep, rep)
	if code != 0 {
		t.Fatalf("identical reports exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("no PASS line:\n%s", out)
	}
}

func TestCompareSmallDropWithinThresholdPasses(t *testing.T) {
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000})
	cur := report(t, "prload/all", map[string]float64{"queries/s": 45000}) // -10%
	if code, out := compare(t, base, cur); code != 0 {
		t.Fatalf("10%% drop under default 20%% threshold exit %d:\n%s", code, out)
	}
}

func TestCompareBigDropFails(t *testing.T) {
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000})
	cur := report(t, "prload/all", map[string]float64{"queries/s": 35000}) // -30%
	code, out := compare(t, base, cur)
	if code != 1 {
		t.Fatalf("30%% drop exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "FAIL") {
		t.Errorf("regression not reported:\n%s", out)
	}
}

func TestCompareThresholdFlag(t *testing.T) {
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000})
	cur := report(t, "prload/all", map[string]float64{"queries/s": 45000}) // -10%
	if code, out := compare(t, base, cur, "-threshold", "0.05"); code != 1 {
		t.Fatalf("10%% drop over 5%% threshold exit %d, want 1:\n%s", code, out)
	}
	cur = report(t, "prload/all", map[string]float64{"queries/s": 30000}) // -40%
	if code, out := compare(t, base, cur, "-threshold", "0.5"); code != 0 {
		t.Fatalf("40%% drop under 50%% threshold exit %d, want 0:\n%s", code, out)
	}
}

func TestCompareLatencyDoesNotGate(t *testing.T) {
	// p99 quadrupled but throughput held: latency is context, not gate.
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000, "p99/ms": 1.0})
	cur := report(t, "prload/all", map[string]float64{"queries/s": 50000, "p99/ms": 4.0})
	if code, out := compare(t, base, cur); code != 0 {
		t.Fatalf("latency-only change exit %d, want 0:\n%s", code, out)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000})
	cur := report(t, "prload/all", map[string]float64{"queries/s": 90000})
	if code, out := compare(t, base, cur); code != 0 {
		t.Fatalf("improvement exit %d:\n%s", code, out)
	}
}

func TestCompareSpeedupMetricGates(t *testing.T) {
	base := report(t, "BenchmarkX-8", map[string]float64{"speedup/serial-vs-parallel": 3.0})
	cur := report(t, "BenchmarkX-8", map[string]float64{"speedup/serial-vs-parallel": 1.5})
	if code, _ := compare(t, base, cur); code != 1 {
		t.Fatal("halved speedup did not gate")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000})
	cur := report(t, "prload/other", map[string]float64{"queries/s": 50000})
	code, out := compare(t, base, cur)
	if code != 1 {
		t.Fatalf("missing tracked benchmark exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "MISSING") {
		t.Errorf("missing benchmark not reported:\n%s", out)
	}
}

func TestCompareZeroBaselineFails(t *testing.T) {
	// A zero tracked baseline (degenerate baseline run) must fail
	// loudly rather than disable the gate for that metric forever.
	base := report(t, "prload/all", map[string]float64{"queries/s": 0})
	cur := report(t, "prload/all", map[string]float64{"queries/s": 50000})
	code, out := compare(t, base, cur)
	if code != 1 {
		t.Fatalf("zero baseline exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "BAD BASELINE") {
		t.Errorf("zero baseline not called out:\n%s", out)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000, "errors": 0})
	cur := report(t, "prload/all", map[string]float64{"errors": 0})
	code, out := compare(t, base, cur)
	if code != 1 {
		t.Fatal("dropped tracked metric did not gate")
	}
	if !strings.Contains(out, "MISSING") {
		t.Errorf("absent metric not labeled MISSING:\n%s", out)
	}
}

func TestCompareMeasuredZeroIsRegressionNotMissing(t *testing.T) {
	// A present-but-zero measurement is a (catastrophic) regression;
	// it must not masquerade as a vanished metric.
	base := report(t, "prload/all", map[string]float64{"queries/s": 50000})
	cur := report(t, "prload/all", map[string]float64{"queries/s": 0})
	code, out := compare(t, base, cur)
	if code != 1 {
		t.Fatalf("zero throughput exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") || strings.Contains(out, "MISSING") {
		t.Errorf("measured zero mislabeled:\n%s", out)
	}
}

func TestCompareUntrackedOnlyBaselineIgnoresMissing(t *testing.T) {
	// A baseline benchmark with no tracked metrics may vanish freely.
	base := report(t, "BenchmarkY-8", map[string]float64{"ns/op": 100})
	cur := report(t, "BenchmarkZ-8", map[string]float64{"ns/op": 100})
	if code, out := compare(t, base, cur); code != 0 {
		t.Fatalf("untracked-only benchmark gated: exit %d\n%s", code, out)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runCompare([]string{}, &stdout, &stderr); code != 2 {
		t.Errorf("no args exit %d, want 2", code)
	}
	if code := runCompare([]string{"-baseline", "/no/such.json", "-current", "/no/such.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing files exit %d, want 2", code)
	}
	if code := runCompare([]string{"-bogus-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare([]string{"-baseline", bad, "-current", bad}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed JSON exit %d, want 2", code)
	}
}

func TestTrackedMetric(t *testing.T) {
	for name, want := range map[string]bool{
		"queries/s": true, "vertex/s": true, "speedup/serial-vs-parallel": true,
		"ns/op": false, "p99/ms": false, "errors": false, "simvswall": false,
	} {
		if trackedMetric(name) != want {
			t.Errorf("trackedMetric(%q) = %v, want %v", name, !want, want)
		}
	}
}
