// Command benchreport converts `go test -bench` text output into a
// machine-readable JSON report, so CI can archive benchmark
// trajectories (vertex/s, simulated-vs-wall ratios, speedups) as build
// artifacts — and compares two such reports to gate perf regressions.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' . | benchreport -out BENCH.json
//	benchreport -in bench.txt -out BENCH.json
//	benchreport compare -baseline BENCH_baseline.json -current LOAD.json -threshold 0.20
//
// The report carries the run's environment header (goos, goarch, pkg,
// cpu) and, per benchmark, the iteration count and every reported
// metric including the custom ones attached via b.ReportMetric.
// cmd/prload emits reports in the same schema, so load-test results
// and benchmark results live in one artifact trajectory.
//
// The compare mode prints per-metric relative deltas and exits 0 when
// every tracked throughput metric (units ending in "/s", speedup
// ratios) is within the threshold of the baseline, 1 when any
// regresses beyond it or its measurement disappeared, and 2 on usage
// errors. Latency and other lower-is-better metrics are printed for
// context but do not gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

// Benchmark is one benchmark line's parsed result; the schema lives in
// internal/benchfmt, shared with the load generator's reports.
type Benchmark = benchfmt.Benchmark

// Report is the full JSON document (see internal/benchfmt).
type Report = benchfmt.Report

// parseBench reads `go test -bench` text output into a Report. Lines
// that are neither header, benchmark nor PASS/FAIL markers are ignored,
// so interleaved log output is harmless.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		case line == "FAIL" || strings.HasPrefix(line, "FAIL\t"):
			rep.Failed = true
		default:
			for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
				if v, ok := strings.CutPrefix(line, key+":"); ok {
					rep.Env[key] = strings.TrimSpace(v)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one "BenchmarkName-8  N  v1 u1  v2 u2 ..."
// line; ok is false for benchmark lines with no measurements (e.g. a
// bare sub-benchmark group header).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		in  = flag.String("in", "-", "bench output file ('-' = stdin)")
		out = flag.String("out", "", "JSON report path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchreport: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	// Echo the input so the tool can sit at the end of a pipe without
	// hiding the human-readable bench table from the CI log.
	rep, err := parseBench(io.TeeReader(src, os.Stdout))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines found in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	if rep.Failed {
		os.Exit(1)
	}
}
