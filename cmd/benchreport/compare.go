package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// trackedMetric reports whether a metric gates the comparison: the
// throughput-shaped ones, where higher is better and a drop is a
// regression. Everything else (ns/op, p99/ms, counters) is printed for
// context but never fails the gate — latency percentiles on shared CI
// runners are too noisy to block merges on, while throughput over a
// multi-thousand-query run is stable enough to.
func trackedMetric(name string) bool {
	return strings.HasSuffix(name, "/s") || strings.HasPrefix(name, "speedup")
}

// compareRow is one metric's comparison.
type compareRow struct {
	bench, metric string
	base, cur     float64
	delta         float64 // relative: (cur-base)/base
	tracked       bool
	regressed     bool
	missing       bool // metric absent from the current report (≠ measured zero)
}

// compareReports diffs current against baseline. Tracked metrics
// regress when current < baseline·(1-threshold); a benchmark present
// in the baseline with tracked metrics but missing from current is a
// regression too (a gate that can pass by losing its measurements is
// no gate).
func compareReports(baseline, current *Report, threshold float64) (rows []compareRow, missing []string, regressed bool) {
	curByName := make(map[string]Benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		curByName[b.Name] = b
	}
	for _, base := range baseline.Benchmarks {
		cur, ok := curByName[base.Name]
		if !ok {
			for metric := range base.Metrics {
				if trackedMetric(metric) {
					missing = append(missing, base.Name)
					regressed = true
					break
				}
			}
			continue
		}
		for _, metric := range sortedKeys(base.Metrics) {
			baseVal := base.Metrics[metric]
			curVal, ok := cur.Metrics[metric]
			row := compareRow{
				bench: base.Name, metric: metric,
				base: baseVal, cur: curVal,
				tracked: trackedMetric(metric),
			}
			switch {
			case !ok:
				row.missing = true
				if row.tracked {
					row.regressed = true
				}
			case baseVal != 0:
				row.delta = (curVal - baseVal) / baseVal
				if row.tracked && row.delta < -threshold {
					row.regressed = true
				}
			default:
				// A zero tracked baseline is a corrupt or degenerate
				// baseline run; failing loudly beats a gate that can
				// never fire on this metric again.
				if row.tracked {
					row.regressed = true
				}
			}
			if row.regressed {
				regressed = true
			}
			rows = append(rows, row)
		}
	}
	return rows, missing, regressed
}

// sortedKeys returns m's keys in lexical order so output is stable.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readReport loads one JSON report.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// runCompare is the `benchreport compare` entry point. Exit codes are
// part of the CI contract, pinned by tests: 0 when every tracked
// throughput metric is within the threshold of the baseline, 1 when
// any regresses (or its measurement disappeared), 2 on usage or I/O
// errors.
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "", "baseline JSON report (required)")
		curPath   = fs.String("current", "", "current JSON report (required)")
		threshold = fs.Float64("threshold", 0.20, "allowed relative drop in tracked throughput metrics before failing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *basePath == "" || *curPath == "" || *threshold < 0 {
		fmt.Fprintln(stderr, "benchreport compare: -baseline and -current are required, -threshold must be >= 0")
		fs.Usage()
		return 2
	}
	baseline, err := readReport(*basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport compare: %v\n", err)
		return 2
	}
	current, err := readReport(*curPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport compare: %v\n", err)
		return 2
	}

	rows, missing, regressed := compareReports(baseline, current, *threshold)
	w := tabwriter.NewWriter(stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\tmetric\tbaseline\tcurrent\tdelta\tstatus\n")
	for _, r := range rows {
		status := ""
		switch {
		case r.regressed && r.base == 0:
			status = "BAD BASELINE (zero; gated)"
		case r.regressed && r.missing:
			status = "MISSING (gated)"
		case r.regressed:
			status = fmt.Sprintf("REGRESSED (>%.0f%%)", *threshold*100)
		case r.tracked:
			status = "ok (gated)"
		}
		fmt.Fprintf(w, "%s\t%s\t%.4g\t%.4g\t%+.1f%%\t%s\n",
			r.bench, r.metric, r.base, r.cur, r.delta*100, status)
	}
	w.Flush()
	for _, name := range missing {
		fmt.Fprintf(stdout, "MISSING benchmark %q: in baseline but not in current report\n", name)
	}
	if regressed {
		fmt.Fprintf(stdout, "FAIL: tracked throughput regressed more than %.0f%% vs baseline\n", *threshold*100)
		return 1
	}
	fmt.Fprintf(stdout, "PASS: all tracked throughput metrics within %.0f%% of baseline\n", *threshold*100)
	return 0
}
