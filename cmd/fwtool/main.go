// Command fwtool inspects any file written in a registered
// checksummed-section format (internal/secfile) — today the gstore CSR
// graph format ("FWGSTOR1"/"FWGSTOR2") and the serving layer's snapshot format
// ("FWSNAP01") — through the shared codec alone: no format-specific
// decode code runs, which is the point. A format that registers its
// schema is inspectable for free.
//
// Usage:
//
//	fwtool info   <file>   dump the header, scalar fields, and section table
//	fwtool verify <file>   verify every section's CRC-64 checksum
//	fwtool formats         list the registered formats
//
// Files ending in .gz are decompressed transparently (read buffered
// instead of mmap'd). Exit codes: 0 on success, 1 when the file is
// corrupt or fails verification, 2 on usage errors.
package main

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/graph/pcache"
	"repro/internal/secfile"

	// Formats register their schemas from init; importing them is what
	// populates the registry fwtool dispatches on.
	_ "repro/internal/graph/gstore"
	_ "repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 && args[0] == "formats" {
		for _, info := range secfile.Registered() {
			fmt.Fprintf(stdout, "%s  v%d  %-22s sections: %s\n",
				info.Schema.Magic, info.Schema.Version, info.Name, strings.Join(info.SectionNames, ", "))
		}
		return 0
	}
	if len(args) != 2 || (args[0] != "info" && args[0] != "verify") {
		fmt.Fprintln(stderr, "usage: fwtool info|verify <file>  (or: fwtool formats)")
		return 2
	}
	cmd, path := args[0], args[1]

	info, f, err := open(path)
	if err != nil {
		fmt.Fprintf(stderr, "fwtool: %v\n", err)
		return 1
	}
	defer f.Close()

	switch cmd {
	case "info":
		printInfo(stdout, info, f)
		return 0
	case "verify":
		return verify(stdout, info, f)
	}
	return 2
}

// open sniffs path's magic against the registry and loads the file
// through the matching schema with checksum verification deferred
// (verify reports per-section status; info does not need it).
func open(path string) (secfile.Info, *secfile.File, error) {
	head, err := readHead(path)
	if err != nil {
		return secfile.Info{}, nil, err
	}
	info, ok := secfile.Lookup(head)
	if !ok {
		return secfile.Info{}, nil, fmt.Errorf("%s: magic %q matches no registered format (try 'fwtool formats')", path, printable(head))
	}
	opts := secfile.OpenOptions{NoVerify: true}
	if strings.HasSuffix(path, ".gz") {
		f, err := os.Open(path)
		if err != nil {
			return secfile.Info{}, nil, err
		}
		defer f.Close()
		zr, err := gzip.NewReader(f)
		if err != nil {
			return secfile.Info{}, nil, err
		}
		defer zr.Close()
		sf, err := info.Schema.Read(zr, opts)
		return info, sf, err
	}
	sf, err := info.Schema.Open(path, opts)
	return info, sf, err
}

// readHead returns the file's first bytes (through gzip for .gz
// paths) for magic sniffing.
func readHead(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
	}
	head := make([]byte, 8)
	n, err := io.ReadFull(r, head)
	if err != nil && n == 0 {
		return nil, err
	}
	return head[:n], nil
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c < 0x20 || c > 0x7e {
			c = '.'
		}
		out[i] = c
	}
	return string(out)
}

func printInfo(w io.Writer, info secfile.Info, f *secfile.File) {
	s := info.Schema
	endian := "little-endian"
	if f.Header()[12] == secfile.BigEndianTag {
		endian = "big-endian"
	}
	fmt.Fprintf(w, "format:   %s (%s, version %d)\n", info.Name, s.Magic, s.Version)
	fmt.Fprintf(w, "sections: %s byte order, header %d bytes, file %d bytes\n",
		endian, s.HeaderSize, len(f.Data))
	if info.Fields != nil {
		for _, field := range info.Fields(f.Header()) {
			fmt.Fprintf(w, "  %-14s %s\n", field.Name, field.Value)
		}
	}
	fmt.Fprintf(w, "%-14s %10s %12s %7s  %s\n", "section", "offset", "length", "pages", "crc64")
	var resident int64
	for i, sec := range f.Secs {
		pages := (int64(sec.Len) + pcache.PageSize - 1) / pcache.PageSize
		fmt.Fprintf(w, "%-14s %10d %12d %7d  %016x\n", sectionName(info, i), sec.Off, sec.Len, pages, sec.CRC)
		if i < len(info.ResidentPaged) && info.ResidentPaged[i] {
			resident += int64(sec.Len)
		}
	}
	if len(info.ResidentPaged) > 0 {
		fmt.Fprintf(w, "paged open: %d bytes resident (%d-byte pages) + the adjacency page budget\n",
			resident, pcache.PageSize)
	}
}

func verify(w io.Writer, info secfile.Info, f *secfile.File) int {
	bad := 0
	for i, sec := range f.Secs {
		status := "OK"
		if secfile.Checksum(f.Section(i)) != sec.CRC {
			status, bad = "FAIL", bad+1
		}
		fmt.Fprintf(w, "%-14s %12d bytes  %s\n", sectionName(info, i), sec.Len, status)
	}
	if bad > 0 {
		fmt.Fprintf(w, "%d of %d sections corrupt\n", bad, len(f.Secs))
		return 1
	}
	fmt.Fprintf(w, "all %d sections verify\n", len(f.Secs))
	return 0
}

func sectionName(info secfile.Info, i int) string {
	if i < len(info.SectionNames) {
		return info.SectionNames[i]
	}
	return fmt.Sprintf("section%d", i)
}
