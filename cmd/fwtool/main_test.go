package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gstore"
	"repro/internal/graph/pcache"
	"repro/internal/serve"
	"repro/internal/topk"
)

func writeGraphFile(t *testing.T, dir string) string {
	t.Helper()
	g := graph.FromEdges(8, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 4}})
	defer g.Close()
	path := filepath.Join(dir, "g.csr")
	if err := gstore.Save(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeSnapshotFile(t *testing.T, dir string) string {
	t.Helper()
	n := 16
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(i+2)
	}
	s := &serve.Snapshot{
		Ranks:   ranks,
		Top:     topk.Top(ranks, 5),
		MaxK:    5,
		Epoch:   3,
		Seed:    7,
		Engine:  "exact",
		BuiltAt: time.Unix(1700000000, 0),
		Stats:   graph.Stats{NumVertices: n, NumEdges: 42},
	}
	path := filepath.Join(dir, "snap.fwsnap")
	if err := serve.SaveSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFormats(t *testing.T) {
	code, out, _ := runTool(t, "formats")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"FWGSTOR1", "FWSNAP01"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formats output missing %s:\n%s", want, out)
		}
	}
}

func TestInfoAndVerifyGraph(t *testing.T) {
	path := writeGraphFile(t, t.TempDir())

	code, out, errb := runTool(t, "info", path)
	if code != 0 {
		t.Fatalf("info exit %d: %s", code, errb)
	}
	for _, want := range []string{"FWGSTOR1", "vertices", "8", "outAdj", "crc64"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}

	code, out, errb = runTool(t, "verify", path)
	if code != 0 {
		t.Fatalf("verify exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "all 4 sections verify") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestInfoAndVerifySnapshot(t *testing.T) {
	path := writeSnapshotFile(t, t.TempDir())

	code, out, errb := runTool(t, "info", path)
	if code != 0 {
		t.Fatalf("info exit %d: %s", code, errb)
	}
	for _, want := range []string{"FWSNAP01", "engine", "exact", "ranks", "topScores"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}

	code, out, errb = runTool(t, "verify", path)
	if code != 0 {
		t.Fatalf("verify exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "all 3 sections verify") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	path := writeGraphFile(t, t.TempDir())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runTool(t, "verify", path)
	if code != 1 {
		t.Fatalf("verify exit %d on corrupt file, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "sections corrupt") {
		t.Fatalf("verify output:\n%s", out)
	}

	// info still works on a corrupt-payload file: the header and table
	// are intact, and info does not checksum.
	code, _, errb := runTool(t, "info", path)
	if code != 0 {
		t.Fatalf("info exit %d: %s", code, errb)
	}
}

func TestGzipInput(t *testing.T) {
	dir := t.TempDir()
	plain := writeGraphFile(t, dir)
	data, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "g.csr.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(data)
	zw.Close()
	if err := os.WriteFile(gz, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errb := runTool(t, "verify", gz)
	if code != 0 {
		t.Fatalf("verify exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "all 4 sections verify") {
		t.Fatalf("verify output:\n%s", out)
	}
}

func TestUnknownMagicAndUsage(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, []byte("NOTAFMT0 trailing"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runTool(t, "info", junk)
	if code != 1 {
		t.Fatalf("exit %d on unknown magic, want 1", code)
	}
	if !strings.Contains(errb, "no registered format") {
		t.Fatalf("stderr: %s", errb)
	}

	if code, _, _ := runTool(t); code != 2 {
		t.Fatal("no-args should be a usage error")
	}
	if code, _, _ := runTool(t, "frobnicate", junk); code != 2 {
		t.Fatal("bad verb should be a usage error")
	}
}

// TestInfoPageAccounting pins the page-size agreement between fwtool
// and the serving page cache: the pages column is computed with
// pcache.PageSize (a drift here would make capacity planning from
// fwtool output wrong), and v2 files report the resident estimate for
// a paged open.
func TestInfoPageAccounting(t *testing.T) {
	g := graph.FromEdges(8, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 4}})
	defer g.Close()
	rg, err := gstore.Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := gstore.Save(path, rg); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runTool(t, "info", path)
	if code != 0 {
		t.Fatalf("info exit %d: %s", code, errb)
	}
	for _, want := range []string{
		"FWGSTOR2", "pages", "perm",
		fmt.Sprintf("(%d-byte pages)", pcache.PageSize),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}
	// Every section here is under one page; the resident estimate is
	// the offsets + perm byte total exactly.
	wantResident := fmt.Sprintf("paged open: %d bytes resident", 2*9*8+8*4)
	if !strings.Contains(out, wantResident) {
		t.Fatalf("info output missing %q:\n%s", wantResident, out)
	}
}
