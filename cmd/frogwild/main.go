// Command frogwild runs the FrogWild top-k PageRank approximation on a
// graph over the simulated vertex-cut cluster, optionally comparing
// against exact PageRank and reporting the engine's network and time
// metrics.
//
// Usage:
//
//	frogwild -graph tw.bin.gz -walkers 100000 -iters 4 -ps 0.7 -machines 16 -k 20 -compare
//	frogwild -gen twitterlike -n 50000 -walkers 8000 -ps 0.4
//	frogwild -gen twitterlike -n 50000 -machines 8 -engine-workers 4
//	frogwild -gen twitterlike -n 50000 -reference -workers 0
//
// -engine-workers shards every simulated machine's gather/apply/scatter
// loops across that many goroutines (0 splits the cores across the
// machines); tallies are bit-identical for any setting. With -reference
// the simulated cluster is skipped entirely and the single-machine
// frog-walk process runs instead, sharded across -workers cores
// (likewise bit-identical for any worker count).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/parallel"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file (edge list or binary)")
		genType  = flag.String("gen", "", "generate instead of load: twitterlike|livejournallike")
		n        = flag.Int("n", 50000, "vertex count when generating")
		walkers  = flag.Int("walkers", 0, "number of frogs N (default: vertices/6)")
		iters    = flag.Int("iters", 4, "iterations t (walk cutoff)")
		ps       = flag.Float64("ps", 1.0, "mirror synchronization probability")
		machines = flag.Int("machines", 16, "simulated cluster size")
		part     = flag.String("partitioner", "random", "ingress: random|oblivious|grid")
		mode     = flag.String("mode", "split", "scatter mode: split|binomial")
		erasure  = flag.String("erasure", "at-least-one", "erasure model: at-least-one|independent")
		k        = flag.Int("k", 20, "how many top vertices to print")
		seed     = flag.Uint64("seed", 1, "run seed")
		compare  = flag.Bool("compare", false, "also compute exact PageRank and report accuracy")
		refMode  = flag.Bool("reference", false, "run the single-machine reference walk instead of the simulated cluster")
		workers  = flag.Int("workers", 0, "worker goroutines in -reference mode (0 = all cores, 1 = serial)")
		engWork  = flag.Int("engine-workers", 0, "worker goroutines per simulated machine (0 = split cores across machines, 1 = serial per machine)")
	)
	flag.Parse()
	if *engWork < 0 {
		fmt.Fprintf(os.Stderr, "frogwild: -engine-workers must be >= 0, got %d\n", *engWork)
		flag.Usage()
		os.Exit(2)
	}

	var (
		g   *repro.Graph
		err error
	)
	switch {
	case *path != "":
		g, err = repro.LoadGraph(*path)
	case *genType == "twitterlike":
		g, err = repro.TwitterLikeGraph(*n, *seed)
	case *genType == "livejournallike":
		g, err = repro.LiveJournalLikeGraph(*n, *seed)
	default:
		err = fmt.Errorf("provide -graph FILE or -gen twitterlike|livejournallike")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "frogwild: %v\n", err)
		os.Exit(1)
	}
	nWalkers := *walkers
	if nWalkers == 0 {
		nWalkers = g.NumVertices() / 6
		if nWalkers < 100 {
			nWalkers = 100
		}
	}
	if *refMode {
		counts, err := repro.SerialFrogWalkParallel(g, nWalkers, *iters, repro.DefaultTeleport, *seed, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "frogwild: %v\n", err)
			os.Exit(1)
		}
		var total int64
		for _, c := range counts {
			total += c
		}
		est := make([]float64, len(counts))
		for v, c := range counts {
			est[v] = float64(c) / float64(total)
		}
		fmt.Printf("graph: %d vertices, %d edges; single-machine reference walk\n",
			g.NumVertices(), g.NumEdges())
		fmt.Printf("frogwild: %d walkers, %d iterations, %d workers\n", nWalkers, *iters, parallel.Workers(*workers))
		fmt.Printf("\n%-8s %-10s %-12s %s\n", "rank", "vertex", "estimate", "frogs")
		for i, e := range repro.TopK(est, *k) {
			fmt.Printf("%-8d %-10d %.6e %d\n", i+1, e.Vertex, e.Score, counts[e.Vertex])
		}
		if *compare {
			reportAccuracy(g, est, *k)
		}
		return
	}

	p, err := repro.PartitionerByName(*part)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frogwild: %v\n", err)
		os.Exit(1)
	}
	var scatter repro.ScatterMode
	switch *mode {
	case "split":
		scatter = repro.ScatterSplit
	case "binomial":
		scatter = repro.ScatterBinomial
	default:
		fmt.Fprintf(os.Stderr, "frogwild: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	var erasureModel repro.Erasure
	switch *erasure {
	case "at-least-one":
		erasureModel = repro.ErasureAtLeastOne
	case "independent":
		erasureModel = repro.ErasureIndependent
	default:
		fmt.Fprintf(os.Stderr, "frogwild: unknown -erasure %q\n", *erasure)
		os.Exit(2)
	}

	res, err := repro.RunFrogWild(g, repro.FrogWildConfig{
		Walkers:           nWalkers,
		Iterations:        *iters,
		PS:                *ps,
		Machines:          *machines,
		Partitioner:       p,
		Mode:              scatter,
		ErasureModel:      erasureModel,
		Seed:              *seed,
		WorkersPerMachine: *engWork,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "frogwild: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("graph: %d vertices, %d edges; cluster: %d machines (%s ingress, replication %.2f)\n",
		g.NumVertices(), g.NumEdges(), *machines, *part, res.Stats.ReplicationFactor)
	fmt.Printf("frogwild: %d walkers, %d iterations, ps=%.2f, mode=%s, erasure=%s\n",
		nWalkers, *iters, *ps, scatter, erasureModel)
	if res.LostFrogs > 0 {
		fmt.Printf("lost frogs (independent erasures): %d of %d\n", res.LostFrogs, nWalkers)
	}
	fmt.Printf("simulated: total %.4fs (%.4fs/iter), cpu %.4fs, network %d bytes\n",
		res.Stats.SimSeconds, res.Stats.SimSeconds/float64(res.Stats.Supersteps),
		res.Stats.CPUSeconds, res.Stats.Net.TotalBytes)
	fmt.Printf("wall clock: %.3fs\n", res.Stats.WallSeconds)

	fmt.Printf("\n%-8s %-10s %-12s %s\n", "rank", "vertex", "estimate", "frogs")
	for i, e := range repro.TopK(res.Estimate, *k) {
		fmt.Printf("%-8d %-10d %.6e %d\n", i+1, e.Vertex, e.Score, res.Counts[e.Vertex])
	}

	if *compare {
		reportAccuracy(g, res.Estimate, *k)
	}
}

// reportAccuracy computes exact PageRank and prints the paper's two
// accuracy metrics for the given estimate.
func reportAccuracy(g *repro.Graph, estimate []float64, k int) {
	exact, err := repro.ExactPageRank(g, repro.PageRankOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "frogwild: exact pagerank: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\naccuracy vs exact PageRank:\n")
	for _, kk := range []int{10, k, 100} {
		if kk > g.NumVertices() {
			continue
		}
		fmt.Printf("  k=%-5d mass captured %.4f   exact identification %.4f\n",
			kk,
			repro.NormalizedCapturedMass(exact.Rank, estimate, kk),
			repro.ExactIdentification(exact.Rank, estimate, kk))
	}
}
