// Command experiments regenerates the FrogWild paper's evaluation
// figures (Section 3) on the simulated cluster and prints the same
// series the paper plots, as aligned tables (optionally CSV files).
//
// Usage:
//
//	experiments -fig all -scale small
//	experiments -fig 1 -scale medium -seed 7
//	experiments -fig 6 -csv out/
//
// Figure numbering follows the paper: 1 (time/network/CPU vs cluster
// size), 2 (accuracy vs k), 3/4 (accuracy-time-network trade-off,
// Twitter), 5 (vs uniform sparsification), 6 (accuracy/time vs walkers
// and iterations, LiveJournal), 7 (trade-off, LiveJournal), 8 (network
// vs walkers).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to run: all|1|2|3|4|5|6|7|8|ablation")
		scale   = flag.String("scale", "small", "workload scale: tiny|small|medium|large")
		seed    = flag.Uint64("seed", 12345, "experiment seed")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		engWork = flag.Int("engine-workers", 0, "worker goroutines per simulated machine (0 = split cores across machines, 1 = serial per machine)")
	)
	flag.Parse()
	if *engWork < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -engine-workers must be >= 0, got %d\n", *engWork)
		flag.Usage()
		os.Exit(2)
	}

	sc, err := harness.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	env := harness.NewEnv(sc, *seed)
	env.EngineWorkers = *engWork

	start := time.Now()
	var tables []*harness.Table
	switch {
	case *fig == "all":
		tables, err = harness.All(env)
	case *fig == "ablation":
		tables, err = harness.Ablations(env)
	default:
		var figNum int
		figNum, err = strconv.Atoi(*fig)
		if err == nil {
			tables, err = harness.Figure(env, figNum)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	for _, t := range tables {
		if err := t.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if err := t.CSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("ran %d tables at scale %s in %.1fs (seed %d)\n",
		len(tables), sc, time.Since(start).Seconds(), *seed)
}
