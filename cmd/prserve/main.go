// Command prserve serves the top-k PageRank query over HTTP: it
// computes an estimate of a graph's PageRank with the chosen engine,
// publishes it as an immutable snapshot, and answers queries from it
// while a background refresher recomputes the estimate on a cadence and
// swaps it in atomically. Every response carries the snapshot epoch, so
// clients can see exactly how stale an answer is.
//
// Usage:
//
//	prserve -gen twitterlike -n 50000 -addr :8080 -refresh 30s
//	prserve -graph tw.bin.gz -engine frogwild -walkers 100000 -ps 0.7
//	prserve -gen livejournallike -n 20000 -engine glpr -iters 5
//	prserve -gen twitterlike -n 10000 -engine exact -workers 0
//
// API:
//
//	GET /v1/topk?k=20                  top-k vertices with scores
//	GET /v1/rank?vertex=17             one vertex's estimated rank
//	GET /v1/compare?engine=exact&k=20  served accuracy vs another engine
//	GET /v1/stats                      provenance, graph + serving stats
//	GET /healthz                       200 once a snapshot is published
//
// -refresh 0 disables background refresh: the initial snapshot serves
// forever. SIGINT/SIGTERM shut the server down gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		path     = flag.String("graph", "", "graph file (edge list or binary, auto-detected)")
		genType  = flag.String("gen", "", "generate instead of load: twitterlike|livejournallike")
		n        = flag.Int("n", 50000, "vertex count when generating")
		engine   = flag.String("engine", "frogwild", "estimate engine: frogwild|glpr|exact")
		walkers  = flag.Int("walkers", 0, "frogwild walker count N (default: vertices/6)")
		iters    = flag.Int("iters", 0, "iterations: frogwild walk cutoff (default 4) / glpr supersteps (0 = to tolerance)")
		ps       = flag.Float64("ps", 0.7, "mirror synchronization probability")
		machines = flag.Int("machines", 16, "simulated cluster size")
		engWork  = flag.Int("engine-workers", 0, "worker goroutines per simulated machine (0 = split cores across machines)")
		workers  = flag.Int("workers", 0, "exact-engine power-iteration workers (0 = all cores)")
		maxK     = flag.Int("maxk", serve.DefaultMaxK, "precomputed top index size (queries up to this k are O(k))")
		refresh  = flag.Duration("refresh", 0, "background recompute cadence (0 = serve the initial snapshot forever)")
		seed     = flag.Uint64("seed", 1, "base seed; each refresh derives generation seeds from it")
	)
	flag.Parse()
	if *engWork < 0 {
		fmt.Fprintf(os.Stderr, "prserve: -engine-workers must be >= 0, got %d\n", *engWork)
		flag.Usage()
		os.Exit(2)
	}
	eng, err := serve.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prserve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	var g *repro.Graph
	switch {
	case *path != "":
		g, err = repro.LoadGraph(*path)
	case *genType == "twitterlike":
		g, err = repro.TwitterLikeGraph(*n, *seed)
	case *genType == "livejournallike":
		g, err = repro.LiveJournalLikeGraph(*n, *seed)
	default:
		err = fmt.Errorf("provide -graph FILE or -gen twitterlike|livejournallike")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "prserve: %v\n", err)
		os.Exit(1)
	}

	cfg := serve.ServiceConfig{
		Build: serve.BuildConfig{
			Engine:            eng,
			Walkers:           *walkers,
			Iterations:        *iters,
			PS:                *ps,
			Machines:          *machines,
			WorkersPerMachine: *engWork,
			Workers:           *workers,
			Seed:              *seed,
			MaxK:              *maxK,
		},
		RefreshInterval: *refresh,
		OnRefreshError:  func(err error) { log.Printf("prserve: refresh: %v", err) },
	}

	log.Printf("prserve: graph %d vertices / %d edges; building initial %s snapshot...",
		g.NumVertices(), g.NumEdges(), eng)
	start := time.Now()
	srv, refresher, err := serve.NewService(g, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prserve: initial snapshot: %v\n", err)
		os.Exit(1)
	}
	log.Printf("prserve: snapshot epoch 1 ready in %.2fs (top index k<=%d)",
		time.Since(start).Seconds(), cfg.Build.MaxK)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *refresh > 0 {
		log.Printf("prserve: background refresh every %s", *refresh)
		go refresher.Run(ctx, cfg.OnRefreshError)
	}
	log.Printf("prserve: serving on %s", *addr)
	if err := srv.Serve(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "prserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("prserve: graceful shutdown after %d queries (%d cache hits, %d refreshes)",
		srv.Queries(), srv.CacheHits(), refresher.Refreshes())
}
