// Command prserve serves the top-k PageRank query over HTTP: it
// computes an estimate of a graph's PageRank with the chosen engine,
// publishes it as an immutable snapshot, and answers queries from it
// while a background refresher recomputes the estimate on a cadence and
// swaps it in atomically. Every response carries the snapshot epoch, so
// clients can see exactly how stale an answer is.
//
// Usage:
//
//	prserve -gen twitterlike -n 50000 -addr :8080 -refresh 30s
//	prserve -graph tw.bin.gz -engine frogwild -walkers 100000 -ps 0.7
//	prserve -gen livejournallike -n 20000 -engine glpr -iters 5
//	prserve -gen twitterlike -n 50000 -graph-cache tw.csr -snapshot-dir /var/lib/prserve
//
// API:
//
//	GET /v1/topk?k=20                  top-k vertices with scores
//	GET /v1/rank?vertex=17             one vertex's estimated rank
//	GET /v1/compare?engine=exact&k=20  served accuracy vs another engine
//	GET /v1/stats                      provenance, graph + serving stats
//	GET /healthz                       200 once a snapshot is published
//
// Restart cost is optional: -graph-cache FILE keeps the graph in the
// mmap-able gstore CSR format (built from -graph/-gen on the first
// run, mapped zero-copy afterwards), and -snapshot-dir DIR persists
// every published snapshot so a restarted server warm-starts — it
// answers queries from the last persisted estimate in milliseconds,
// with that epoch's provenance, while the first fresh estimate
// computes in the background.
//
// -refresh 0 disables the recompute cadence: the initial snapshot
// serves forever (after a warm start, one background refresh still
// replaces the restored estimate). SIGINT/SIGTERM shut the server
// down gracefully.
//
// Router mode: -shards fronts a cluster of prshard workers instead of
// serving a local snapshot. The router holds no graph; it fans every
// query out to the shard RPC addresses, merges the partial top-k lists
// exactly, and degrades gracefully when a shard dies or lags a
// refresh:
//
//	prserve -addr :8080 -shards 127.0.0.1:9001,127.0.0.1:9002
//
// In router mode the graph and engine flags are unused; /v1/compare is
// not served (the router has nothing to compare against) and /v1/stats
// aggregates per-shard health plus measured wire bytes per query.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/router"
	"repro/internal/serve"
)

// runRouter serves router mode: a stateless merge front over the given
// shard RPC addresses.
func runRouter(ctx context.Context, addr, shardList string, timeout time.Duration) {
	addrs := strings.Split(shardList, ",")
	clients := make([]*router.ShardClient, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		id := len(clients)
		clients = append(clients, router.NewShardClient(id, a, router.DialTCP(a), timeout))
	}
	if len(clients) == 0 {
		fmt.Fprintln(os.Stderr, "prserve: -shards needs at least one address")
		os.Exit(2)
	}
	rt := router.New(clients, router.Options{Timeout: timeout})
	log.Printf("prserve: routing over %d shards, serving on %s", len(clients), addr)
	if err := rt.Serve(ctx, addr); err != nil {
		fmt.Fprintf(os.Stderr, "prserve: %v\n", err)
		os.Exit(1)
	}
	ns := rt.NetworkStats()
	log.Printf("prserve: graceful shutdown after %d queries (%d degraded, %d epoch fallbacks, %.0f wire bytes/query)",
		rt.Queries(), rt.Degraded(), rt.EpochFallbacks(), ns.BytesPerQuery)
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		path     = flag.String("graph", "", "graph file (gstore CSR, binary, or edge list; auto-detected)")
		genType  = flag.String("gen", "", "generate instead of load: twitterlike|livejournallike")
		n        = flag.Int("n", 50000, "vertex count when generating")
		cache    = flag.String("graph-cache", "", "gstore CSR cache file: mmap it if present, else build from -graph/-gen and save it")
		snapDir  = flag.String("snapshot-dir", "", "persist every published snapshot here and warm-start from the last one")
		engine   = flag.String("engine", "frogwild", "estimate engine: frogwild|glpr|exact")
		walkers  = flag.Int("walkers", 0, "frogwild walker count N (default: vertices/6)")
		iters    = flag.Int("iters", 0, "iterations: frogwild walk cutoff (default 4) / glpr supersteps (0 = to tolerance)")
		ps       = flag.Float64("ps", 0.7, "mirror synchronization probability")
		machines = flag.Int("machines", 16, "simulated cluster size")
		engWork  = flag.Int("engine-workers", 0, "worker goroutines per simulated machine (0 = split cores across machines)")
		workers  = flag.Int("workers", 0, "exact-engine power-iteration workers (0 = all cores)")
		maxK     = flag.Int("maxk", serve.DefaultMaxK, "precomputed top index size (queries up to this k are O(k))")
		refresh  = flag.Duration("refresh", 0, "background recompute cadence (0 = serve the initial snapshot forever)")
		seed     = flag.Uint64("seed", 1, "base seed; each refresh derives generation seeds from it")
		shards   = flag.String("shards", "", "router mode: comma-separated prshard RPC addresses to fan queries out to")
		shardTO  = flag.Duration("shard-timeout", 2*time.Second, "router mode: per-shard RPC timeout (each query retries once on a fresh connection)")
	)
	flag.Parse()
	if *shards != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		runRouter(ctx, *addr, *shards, *shardTO)
		return
	}
	if *engWork < 0 {
		fmt.Fprintf(os.Stderr, "prserve: -engine-workers must be >= 0, got %d\n", *engWork)
		flag.Usage()
		os.Exit(2)
	}
	eng, err := serve.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prserve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	buildGraph := func() (*repro.Graph, error) {
		switch {
		case *path != "":
			return repro.LoadGraph(*path)
		case *genType == "twitterlike":
			return repro.TwitterLikeGraph(*n, *seed)
		case *genType == "livejournallike":
			return repro.LiveJournalLikeGraph(*n, *seed)
		}
		return nil, fmt.Errorf("provide -graph FILE, -gen twitterlike|livejournallike, or an existing -graph-cache")
	}
	loadStart := time.Now()
	genN := 0
	if *path == "" && *genType != "" {
		genN = *n
	}
	g, err := repro.CachedGraphChecked(*cache, genN, buildGraph)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prserve: %v\n", err)
		os.Exit(1)
	}
	defer g.Close()
	cacheNote := ""
	if *cache != "" {
		cacheNote = fmt.Sprintf(" (cache %s)", *cache)
	}
	log.Printf("prserve: graph %d vertices / %d edges ready in %.3fs%s",
		g.NumVertices(), g.NumEdges(), time.Since(loadStart).Seconds(), cacheNote)

	cfg := serve.ServiceConfig{
		Build: serve.BuildConfig{
			Engine:            eng,
			Walkers:           *walkers,
			Iterations:        *iters,
			PS:                *ps,
			Machines:          *machines,
			WorkersPerMachine: *engWork,
			Workers:           *workers,
			Seed:              *seed,
			MaxK:              *maxK,
		},
		RefreshInterval: *refresh,
		OnRefreshError:  func(err error) { log.Printf("prserve: refresh: %v", err) },
		SnapshotDir:     *snapDir,
	}

	start := time.Now()
	srv, refresher, err := serve.NewService(g, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prserve: initial snapshot: %v\n", err)
		os.Exit(1)
	}
	snap := srv.Snapshot()
	if snap.WarmStart {
		log.Printf("prserve: warm start from %s: serving persisted epoch %d (%s, seed %d) after %.3fs; first refresh runs in the background",
			serve.SnapshotPath(*snapDir), snap.Epoch, snap.Engine, snap.Seed, time.Since(start).Seconds())
	} else {
		log.Printf("prserve: snapshot epoch %d ready in %.2fs (top index k<=%d)",
			snap.Epoch, time.Since(start).Seconds(), cfg.Build.MaxK)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *refresh > 0 || snap.WarmStart {
		if *refresh > 0 {
			log.Printf("prserve: background refresh every %s", *refresh)
		}
		go refresher.Run(ctx, cfg.OnRefreshError)
	}
	log.Printf("prserve: serving on %s", *addr)
	if err := srv.Serve(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "prserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("prserve: graceful shutdown after %d queries (%d cache hits, %d refreshes, %d persist errors)",
		srv.Queries(), srv.CacheHits(), refresher.Refreshes(), refresher.PersistErrors())
}
