// Command pagerank computes the PageRank vector of a graph and prints
// the top-k vertices. By default it runs the exact multicore power
// iteration — the ground truth against which FrogWild's approximation
// is judged; with -engine it instead runs the "GraphLab PR" baseline on
// the simulated vertex-cut cluster and reports the engine's metered
// cost. Both paths are bit-identical for any worker setting.
//
// Usage:
//
//	pagerank -graph tw.bin.gz -k 20
//	pagerank -graph tw.bin.gz -engine -machines 16 -engine-workers 2
//	gengraph -type rmat -scale 14 -out /tmp/g.bin && pagerank -graph /tmp/g.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file (edge list or binary; required)")
		k        = flag.Int("k", 20, "how many top vertices to print")
		teleport = flag.Float64("teleport", repro.DefaultTeleport, "teleportation probability pT")
		tol      = flag.Float64("tol", 1e-12, "L1 convergence tolerance")
		workers  = flag.Int("workers", 0, "worker goroutines for the exact inner loop (0 = all cores, 1 = serial)")
		engine   = flag.Bool("engine", false, "run GraphLab PR on the simulated cluster instead of the exact solver")
		machines = flag.Int("machines", 16, "simulated cluster size in -engine mode")
		iters    = flag.Int("iters", 0, "-engine mode supersteps (0 = iterate to tolerance)")
		engWork  = flag.Int("engine-workers", 0, "worker goroutines per simulated machine in -engine mode (0 = split cores across machines, 1 = serial per machine)")
		seed     = flag.Uint64("seed", 1, "partitioning/engine seed in -engine mode")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "pagerank: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if *engWork < 0 {
		fmt.Fprintf(os.Stderr, "pagerank: -engine-workers must be >= 0, got %d\n", *engWork)
		flag.Usage()
		os.Exit(2)
	}
	g, err := repro.LoadGraph(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagerank: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	if *engine {
		res, err := repro.RunGraphLabPR(g, repro.GraphLabPRConfig{
			Machines:          *machines,
			Teleport:          *teleport,
			Iterations:        *iters,
			Tolerance:         *tol,
			Seed:              *seed,
			WorkersPerMachine: *engWork,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pagerank: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("engine: %d machines, %d supersteps, simulated %.4fs, cpu %.4fs, network %d bytes\n",
			*machines, res.Stats.Supersteps, res.Stats.SimSeconds, res.Stats.CPUSeconds, res.Stats.Net.TotalBytes)
		printTop(res.Rank, *k)
		return
	}
	res, err := repro.ExactPageRank(g, repro.PageRankOptions{Teleport: *teleport, Tolerance: *tol, Workers: *workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagerank: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("converged=%v iterations=%d residual=%.3e\n", res.Converged, res.Iterations, res.Residual)
	printTop(res.Rank, *k)
}

// printTop prints the k highest-ranked vertices.
func printTop(rank []float64, k int) {
	fmt.Printf("%-8s %-10s %s\n", "rank", "vertex", "pagerank")
	for i, e := range repro.TopK(rank, k) {
		fmt.Printf("%-8d %-10d %.6e\n", i+1, e.Vertex, e.Score)
	}
}
